// Table 2: top GO terms of the discovered biclusters.
//
// The paper feeds its three Figure-8 clusters to the SGD GO Term Finder and
// reports, per cluster, the most significant biological-process,
// molecular-function and cellular-component terms, with p-values between
// ~1e-4 and ~1e-8.  Offline, this harness (a) builds the yeast surrogate,
// (b) generates a synthetic GO annotation database whose characteristic
// terms follow the implanted modules (see eval/annotation_gen.h), (c) mines
// reg-clusters, and (d) prints the same three-column table.  The claim
// under reproduction: clusters discovered by the reg-cluster model are
// functionally enriched at extremely low p-values, while random gene sets
// of the same size are not.

#include <cstdio>

#include "bench_common.h"
#include "eval/annotation_gen.h"
#include "eval/go_enrichment.h"
#include "synth/yeast_surrogate.h"
#include "util/prng.h"
#include "util/string_util.h"

namespace regcluster {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  synth::YeastSurrogateConfig cfg;
  cfg.num_modules = IntFlag(argc, argv, "modules", 25);
  auto ds = synth::MakeYeastSurrogate(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "surrogate: %s\n", ds.status().ToString().c_str());
    return 1;
  }

  std::vector<std::vector<int>> modules;
  for (const auto& imp : ds->implants) {
    modules.push_back(imp.Footprint().genes);
  }
  const eval::GoAnnotationDb db =
      eval::GenerateAnnotations(ds->data.num_genes(), modules);

  core::MinerOptions opts;
  opts.min_genes = 20;
  opts.min_conditions = 6;
  opts.gamma = 0.05;
  opts.epsilon = 1.0;
  opts.remove_dominated = true;
  core::RegClusterMiner miner(ds->data, opts);
  auto clusters = miner.Mine();
  if (!clusters.ok()) {
    std::fprintf(stderr, "miner: %s\n", clusters.status().ToString().c_str());
    return 1;
  }

  std::printf("== bench_go_enrichment (Table 2) ==\n");
  std::printf("%zu mined clusters; GO database: %d terms over %d genes\n\n",
              clusters->size(), db.num_terms(), db.population_size());
  std::printf("%-10s %-28s %-28s %-28s\n", "Cluster", "Process", "Function",
              "Cellular Component");

  const size_t max_rows =
      static_cast<size_t>(IntFlag(argc, argv, "rows", 10));
  eval::EnrichmentOptions eopts;
  eopts.max_p_value = 0.05;
  int enriched = 0;
  for (size_t i = 0; i < clusters->size() && i < max_rows; ++i) {
    auto results = eval::FindEnrichedTerms(db, (*clusters)[i].AllGenes(),
                                           eopts);
    if (!results.ok()) {
      std::fprintf(stderr, "enrichment: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> cells(3, "-");
    for (int cat = 0; cat < 3; ++cat) {
      const auto top = eval::TopTermOfCategory(
          db, *results, static_cast<eval::GoCategory>(cat));
      if (top.term >= 0) {
        cells[static_cast<size_t>(cat)] =
            util::StrFormat("%s (p=%.2e)", db.term(top.term).name.c_str(),
                            top.p_value);
        if (top.p_value < 1e-4) ++enriched;
      }
    }
    std::printf("c%-9zu %-28s %-28s %-28s\n", i + 1, cells[0].c_str(),
                cells[1].c_str(), cells[2].c_str());
  }

  // Negative control: random gene sets of the same size must not reach the
  // same significance.
  util::Prng prng(5);
  int control_hits = 0;
  const int control_trials = 20;
  for (int t = 0; t < control_trials; ++t) {
    std::vector<int> random_set =
        prng.SampleWithoutReplacement(ds->data.num_genes(), 21);
    auto results = eval::FindEnrichedTerms(db, random_set, eopts);
    if (results.ok() && !results->empty() && (*results)[0].p_value < 1e-4) {
      ++control_hits;
    }
  }
  std::printf(
      "\nmined clusters with a term at p < 1e-4: %d; random 21-gene control "
      "sets reaching p < 1e-4: %d / %d\n",
      enriched, control_hits, control_trials);
  if (enriched == 0) {
    std::fprintf(stderr, "FAILED: no mined cluster is enriched\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace regcluster

int main(int argc, char** argv) {
  return regcluster::bench::Main(argc, argv);
}
