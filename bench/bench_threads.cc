// Ablation: multi-threaded root search scaling (an extension beyond the
// paper, which was single-threaded 2006 code).  The level-1 conditions root
// independent subtrees, so the search parallelizes with a deterministic
// merge; this harness reports wall-clock speedup and verifies the output is
// identical at every thread count.

#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.h"
#include "util/timer.h"

namespace regcluster {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = IntFlag(argc, argv, "genes", 3000);
  cfg.num_conditions = IntFlag(argc, argv, "conditions", 40);
  cfg.num_clusters = IntFlag(argc, argv, "clusters", 30);
  cfg.seed = 2024;
  auto ds = synth::GenerateSynthetic(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator: %s\n", ds.status().ToString().c_str());
    return 1;
  }

  core::MinerOptions base;
  base.min_genes = std::max(2, static_cast<int>(0.01 * cfg.num_genes));
  base.min_conditions = 6;
  base.gamma = 0.1;
  base.epsilon = 0.01;

  std::printf("== bench_threads (parallel root search) ==\n");
  std::printf("dataset %dx%d, MinG=%d MinC=%d gamma=%.2f epsilon=%.2f\n",
              cfg.num_genes, cfg.num_conditions, base.min_genes,
              base.min_conditions, base.gamma, base.epsilon);
  std::printf(
      "hardware threads available: %u (speedup is bounded by this; the "
      "correctness claim -- identical output at every thread count -- is "
      "checked regardless)\n\n",
      std::thread::hardware_concurrency());
  std::printf("%8s %12s %10s %10s %10s\n", "threads", "runtime_s", "speedup",
              "clusters", "identical");

  double serial_time = 0.0;
  std::string reference_key;
  bool ok = true;
  for (int threads : {1, 2, 4, 8}) {
    core::MinerOptions o = base;
    o.num_threads = threads;
    core::RegClusterMiner miner(ds->data, o);
    util::WallTimer timer;
    auto clusters = miner.Mine();
    const double secs = timer.ElapsedSeconds();
    if (!clusters.ok()) {
      std::fprintf(stderr, "miner: %s\n",
                   clusters.status().ToString().c_str());
      return 1;
    }
    std::string key;
    for (const auto& c : *clusters) key += c.Key() + ";";
    if (threads == 1) {
      serial_time = secs;
      reference_key = key;
    }
    const bool identical = key == reference_key;
    ok = ok && identical;
    std::printf("%8d %12.4f %9.2fx %10zu %10s\n", threads, secs,
                serial_time / secs, clusters->size(),
                identical ? "yes" : "NO!");
  }
  if (!ok) {
    std::fprintf(stderr, "FAILED: thread count changed the output\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace regcluster

int main(int argc, char** argv) {
  return regcluster::bench::Main(argc, argv);
}
