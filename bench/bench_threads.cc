// Ablation: work-stealing parallel search scaling (an extension beyond the
// paper, which was single-threaded 2006 code).  Every level-1 condition and
// every level-2 subtree is an independently schedulable task on a
// util::TaskPool, merged in canonical order; this harness reports wall-clock
// speedup, verifies the output is identical at every thread count, and dumps
// the rows machine-readably into the "threads" section of BENCH_miner.json
// (see --out).

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "util/timer.h"

namespace regcluster {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = IntFlag(argc, argv, "genes", 3000);
  cfg.num_conditions = IntFlag(argc, argv, "conditions", 40);
  cfg.num_clusters = IntFlag(argc, argv, "clusters", 30);
  cfg.seed = 2024;
  const std::string out_path =
      FlagValue(argc, argv, "out", "BENCH_miner.json");
  auto ds = synth::GenerateSynthetic(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator: %s\n", ds.status().ToString().c_str());
    return 1;
  }

  core::MinerOptions base;
  base.min_genes = std::max(2, static_cast<int>(0.01 * cfg.num_genes));
  base.min_conditions = 6;
  base.gamma = 0.1;
  base.epsilon = 0.01;

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("== bench_threads (work-stealing parallel search) ==\n");
  std::printf("dataset %dx%d, MinG=%d MinC=%d gamma=%.2f epsilon=%.2f\n",
              cfg.num_genes, cfg.num_conditions, base.min_genes,
              base.min_conditions, base.gamma, base.epsilon);
  std::printf(
      "hardware threads available: %u (speedup is bounded by this; the "
      "correctness claim -- identical output at every thread count -- is "
      "checked regardless)\n\n",
      hw);
  std::printf("%8s %12s %10s %12s %10s %10s\n", "threads", "runtime_s",
              "speedup", "nodes_per_s", "clusters", "identical");

  double serial_time = 0.0;
  std::string reference_key;
  bool ok = true;
  std::vector<std::string> rows;
  for (int threads : {1, 2, 4, 8}) {
    core::MinerOptions o = base;
    o.num_threads = threads;
    core::RegClusterMiner miner(ds->data, o);
    util::WallTimer timer;
    auto clusters = miner.Mine();
    const double secs = timer.ElapsedSeconds();
    if (!clusters.ok()) {
      std::fprintf(stderr, "miner: %s\n",
                   clusters.status().ToString().c_str());
      return 1;
    }
    std::string key;
    for (const auto& c : *clusters) key += c.Key() + ";";
    if (threads == 1) {
      serial_time = secs;
      reference_key = key;
    }
    const bool identical = key == reference_key;
    ok = ok && identical;
    const core::MinerStats& st = miner.stats();
    const double nodes_per_sec =
        st.mine_seconds > 0
            ? static_cast<double>(st.nodes_expanded) / st.mine_seconds
            : 0.0;
    std::printf("%8d %12.4f %9.2fx %12.0f %10zu %10s\n", threads, secs,
                serial_time / secs, nodes_per_sec, clusters->size(),
                identical ? "yes" : "NO!");
    rows.push_back(JsonObject({
        JsonField("threads", JsonInt(threads)),
        JsonField("wall_seconds", JsonDouble(secs)),
        JsonField("mine_seconds", JsonDouble(st.mine_seconds)),
        JsonField("speedup", JsonDouble(serial_time / secs)),
        JsonField("nodes_expanded", JsonInt(st.nodes_expanded)),
        JsonField("nodes_per_sec", JsonDouble(nodes_per_sec)),
        JsonField("clusters", JsonInt(static_cast<int64_t>(clusters->size()))),
        JsonField("identical_to_serial", JsonBool(identical)),
    }));
  }

  const std::string section = JsonObject({
      JsonField("dataset", JsonObject({
                    JsonField("genes", JsonInt(cfg.num_genes)),
                    JsonField("conditions", JsonInt(cfg.num_conditions)),
                    JsonField("implanted_clusters", JsonInt(cfg.num_clusters)),
                    JsonField("seed", JsonInt(static_cast<int64_t>(cfg.seed))),
                })),
      JsonField("options", JsonObject({
                    JsonField("min_genes", JsonInt(base.min_genes)),
                    JsonField("min_conditions", JsonInt(base.min_conditions)),
                    JsonField("gamma", JsonDouble(base.gamma)),
                    JsonField("epsilon", JsonDouble(base.epsilon)),
                })),
      JsonField("hardware_threads", JsonInt(static_cast<int64_t>(hw))),
      JsonField("identical_at_all_thread_counts", JsonBool(ok)),
      JsonField("runs", JsonArray(rows)),
  });
  if (!UpsertBenchSection(out_path, "threads", section)) {
    std::fprintf(stderr, "WARNING: could not write %s\n", out_path.c_str());
  } else {
    std::printf("\nwrote section \"threads\" of %s\n", out_path.c_str());
  }

  if (!ok) {
    std::fprintf(stderr, "FAILED: thread count changed the output\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace regcluster

int main(int argc, char** argv) {
  return regcluster::bench::Main(argc, argv);
}
