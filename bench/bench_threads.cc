// Ablation: work-stealing parallel search scaling (an extension beyond the
// paper, which was single-threaded 2006 code).  Every level-1 condition and
// every level-2 subtree is an independently schedulable task on a
// util::TaskPool, merged in canonical order; this harness reports wall-clock
// speedup, verifies the output is identical at every thread count, and dumps
// the rows machine-readably into the "threads" section of BENCH_miner.json
// (see --out).  A final serial run with phase profiling on records the DFS
// hot-path breakdown (filter/score/sort/emit) in the same section.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/sweep.h"
#include "io/checkpoint.h"
#include "io/incremental.h"
#include "matrix/expression_matrix.h"
#include "matrix/matrix_io.h"
#include "util/simd/dispatch.h"
#include "util/timer.h"

namespace regcluster {
namespace bench {
namespace {

/// The thread counts to sweep.  When the hardware thread count is known,
/// powers of two up to the smallest power of two >= that count (always
/// including 2, so the identical-output claim is exercised even on one
/// core).  When detection failed we have no better information than a
/// blind default -- and the JSON says so instead of inventing a count.
std::vector<int> SweepThreadCounts(unsigned hw, bool detect_failed) {
  if (detect_failed) return {1, 2, 4, 8};
  std::vector<int> sweep;
  int t = 1;
  while (true) {
    sweep.push_back(t);
    if (t >= static_cast<int>(hw) && t >= 2) break;
    t *= 2;
  }
  return sweep;
}

int Main(int argc, char** argv) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = IntFlag(argc, argv, "genes", 3000);
  cfg.num_conditions = IntFlag(argc, argv, "conditions", 40);
  cfg.num_clusters = IntFlag(argc, argv, "clusters", 30);
  cfg.seed = 2024;
  const std::string out_path =
      FlagValue(argc, argv, "out", "BENCH_miner.json");
  auto ds = synth::GenerateSynthetic(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator: %s\n", ds.status().ToString().c_str());
    return 1;
  }

  core::MinerOptions base;
  base.min_genes = std::max(2, static_cast<int>(0.01 * cfg.num_genes));
  base.min_conditions = 6;
  base.gamma = 0.1;
  base.epsilon = 0.01;

  // hardware_concurrency() returns 0 when the count is "not computable"
  // (the standard's wording) -- record that honestly rather than folding it
  // into a plausible-looking number.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool hw_detect_failed = hw == 0;
  // Degraded hardware: thread-scaling speedups measured on an unknown or
  // single-core host say nothing about the engine, so the JSON carries a
  // flag that makes tools/bench_check.py skip its speedup gates (the
  // identical-output check is unaffected and still enforced below).
  const bool degraded_hw = hw_detect_failed || hw <= 1;
  const std::vector<int> sweep = SweepThreadCounts(hw, hw_detect_failed);

  std::printf("== bench_threads (work-stealing parallel search) ==\n");
  std::printf("dataset %dx%d, MinG=%d MinC=%d gamma=%.2f epsilon=%.2f\n",
              cfg.num_genes, cfg.num_conditions, base.min_genes,
              base.min_conditions, base.gamma, base.epsilon);
  if (hw_detect_failed) {
    std::printf(
        "hardware thread count NOT detectable on this platform; sweeping a "
        "blind default {1,2,4,8} (speedup numbers are not interpretable, "
        "the identical-output check still is)\n\n");
  } else {
    std::printf(
        "hardware threads available: %u (speedup is bounded by this; the "
        "correctness claim -- identical output at every thread count -- is "
        "checked regardless)\n",
        hw);
    if (degraded_hw) {
      std::printf(
          "WARNING: only one hardware thread -- speedup numbers below are "
          "contention noise, not scaling; recording degraded_hw=true so "
          "bench_check skips its speedup gates\n");
    }
    std::printf("\n");
  }
  std::printf("%8s %12s %10s %12s %10s %10s\n", "threads", "runtime_s",
              "speedup", "nodes_per_s", "clusters", "identical");

  double serial_time = 0.0;
  std::string reference_key;
  bool ok = true;
  core::MinerStats serial_stats;
  std::vector<std::string> rows;
  for (int threads : sweep) {
    core::MinerOptions o = base;
    o.num_threads = threads;
    core::RegClusterMiner miner(ds->data, o);
    util::WallTimer timer;
    auto clusters = miner.Mine();
    const double secs = timer.ElapsedSeconds();
    if (!clusters.ok()) {
      std::fprintf(stderr, "miner: %s\n",
                   clusters.status().ToString().c_str());
      return 1;
    }
    std::string key;
    for (const auto& c : *clusters) key += c.Key() + ";";
    if (threads == 1) {
      serial_time = secs;
      reference_key = key;
      serial_stats = miner.stats();
    }
    const bool identical = key == reference_key;
    ok = ok && identical;
    const core::MinerStats& st = miner.stats();
    const double nodes_per_sec =
        st.mine_seconds > 0
            ? static_cast<double>(st.nodes_expanded) / st.mine_seconds
            : 0.0;
    std::printf("%8d %12.4f %9.2fx %12.0f %10zu %10s\n", threads, secs,
                serial_time / secs, nodes_per_sec, clusters->size(),
                identical ? "yes" : "NO!");
    rows.push_back(JsonObject({
        JsonField("threads", JsonInt(threads)),
        JsonField("wall_seconds", JsonDouble(secs)),
        JsonField("mine_seconds", JsonDouble(st.mine_seconds)),
        JsonField("speedup", JsonDouble(serial_time / secs)),
        JsonField("nodes_expanded", JsonInt(st.nodes_expanded)),
        JsonField("nodes_per_sec", JsonDouble(nodes_per_sec)),
        JsonField("clusters", JsonInt(static_cast<int64_t>(clusters->size()))),
        JsonField("identical_to_serial", JsonBool(identical)),
    }));
  }

  // One serial run with phase profiling on: where does the DFS hot path
  // spend its time?  (profile_phases never changes the mined output; it is
  // kept out of the sweep so the timed rows carry no clock-read overhead.)
  core::MinerOptions prof = base;
  prof.num_threads = 1;
  prof.profile_phases = true;
  core::RegClusterMiner prof_miner(ds->data, prof);
  auto prof_out = prof_miner.Mine();
  if (!prof_out.ok()) {
    std::fprintf(stderr, "miner: %s\n", prof_out.status().ToString().c_str());
    return 1;
  }
  const core::MinerStats& ps = prof_miner.stats();
  std::printf(
      "\nserial phase breakdown: filter %.1f ms, score %.1f ms, sort %.1f "
      "ms, emit %.1f ms (mine %.1f ms; index build %.1f ms)\n",
      ps.filter_ns / 1e6, ps.score_ns / 1e6, ps.sort_ns / 1e6,
      ps.emit_ns / 1e6, ps.mine_seconds * 1e3,
      ps.index_build_seconds * 1e3);

  // SIMD ablation: the same profiled serial mine, forced-scalar vs the best
  // kernel set this machine supports, interleaved best-of-3 per side so one
  // noisy run cannot invent or erase a speedup.  The sort phase is the one
  // the radix pipeline replaces outright (comparator std::sort at the
  // scalar level), so its ratio is the headline number, gated (>= 1.5x
  // where a vector level exists) by tools/bench_check.py
  // --min-sort-speedup.
  const util::simd::Level entry_level = util::simd::CurrentLevel();
  const util::simd::Level best_level = util::simd::DetectBestLevel();
  int64_t scalar_sort_ns = INT64_MAX;
  int64_t best_sort_ns = INT64_MAX;
  auto profiled_sort_ns = [&](util::simd::Level level) -> int64_t {
    if (!util::simd::SetLevel(level).ok()) return -1;
    core::RegClusterMiner m(ds->data, prof);
    if (!m.Mine().ok()) return -1;
    return m.stats().sort_ns;
  };
  for (int rep = 0; rep < 3; ++rep) {
    const bool scalar_first = (rep % 2) == 0;
    const int64_t first =
        profiled_sort_ns(scalar_first ? util::simd::Level::kScalar
                                      : best_level);
    const int64_t second =
        profiled_sort_ns(scalar_first ? best_level
                                      : util::simd::Level::kScalar);
    if (first < 0 || second < 0) {
      std::fprintf(stderr, "simd ablation runs failed\n");
      return 1;
    }
    scalar_sort_ns =
        std::min(scalar_sort_ns, scalar_first ? first : second);
    best_sort_ns = std::min(best_sort_ns, scalar_first ? second : first);
  }
  if (!util::simd::SetLevel(entry_level).ok()) return 1;
  const double sort_speedup =
      best_sort_ns > 0
          ? static_cast<double>(scalar_sort_ns) / best_sort_ns
          : 0.0;
  std::printf(
      "simd sort ablation: scalar %.1f ms vs %s %.1f ms -> %.2fx "
      "(active level %s)\n",
      scalar_sort_ns / 1e6, util::simd::LevelName(best_level),
      best_sort_ns / 1e6, sort_speedup, util::simd::LevelName(entry_level));

  std::vector<std::string> fields = {
      JsonField("dataset", JsonObject({
                    JsonField("genes", JsonInt(cfg.num_genes)),
                    JsonField("conditions", JsonInt(cfg.num_conditions)),
                    JsonField("implanted_clusters", JsonInt(cfg.num_clusters)),
                    JsonField("seed", JsonInt(static_cast<int64_t>(cfg.seed))),
                })),
      JsonField("options", JsonObject({
                    JsonField("min_genes", JsonInt(base.min_genes)),
                    JsonField("min_conditions", JsonInt(base.min_conditions)),
                    JsonField("gamma", JsonDouble(base.gamma)),
                    JsonField("epsilon", JsonDouble(base.epsilon)),
                })),
      JsonField("hw_detect_failed", JsonBool(hw_detect_failed)),
      JsonField("degraded_hw", JsonBool(degraded_hw)),
  };
  if (!hw_detect_failed) {
    fields.push_back(
        JsonField("hardware_threads", JsonInt(static_cast<int64_t>(hw))));
  }
  fields.push_back(
      JsonField("identical_at_all_thread_counts", JsonBool(ok)));
  fields.push_back(JsonField("runs", JsonArray(rows)));
  fields.push_back(JsonField(
      "serial_phase_ns",
      JsonObject({
          JsonField("filter_ns", JsonInt(ps.filter_ns)),
          JsonField("score_ns", JsonInt(ps.score_ns)),
          JsonField("sort_ns", JsonInt(ps.sort_ns)),
          JsonField("emit_ns", JsonInt(ps.emit_ns)),
          JsonField("mine_seconds", JsonDouble(ps.mine_seconds)),
          JsonField("index_build_seconds",
                    JsonDouble(ps.index_build_seconds)),
      })));
  fields.push_back(JsonField(
      "simd",
      JsonObject({
          JsonField("level",
                    JsonString(util::simd::LevelName(entry_level))),
          JsonField("best_level",
                    JsonString(util::simd::LevelName(best_level))),
          JsonField("scalar_sort_ns", JsonInt(scalar_sort_ns)),
          JsonField("best_sort_ns", JsonInt(best_sort_ns)),
          JsonField("sort_speedup", JsonDouble(sort_speedup)),
      })));
  const std::string section = JsonObject(fields);
  if (!UpsertBenchSection(out_path, "threads", section)) {
    std::fprintf(stderr, "WARNING: could not write %s\n", out_path.c_str());
  } else {
    std::printf("wrote section \"threads\" of %s\n", out_path.c_str());
  }

  // Deterministic work counters of the serial run.  These are a pure
  // function of data + options, so tools/bench_check.py compares them
  // *exactly* against the committed baseline: an unintended change to the
  // search (a pruning regression, an index bug) shows up as a work-count
  // diff even when wall time happens to look fine.
  const std::string stats_section = JsonObject({
      JsonField("dataset",
                JsonObject({
                    JsonField("genes", JsonInt(cfg.num_genes)),
                    JsonField("conditions", JsonInt(cfg.num_conditions)),
                    JsonField("implanted_clusters", JsonInt(cfg.num_clusters)),
                    JsonField("seed", JsonInt(static_cast<int64_t>(cfg.seed))),
                })),
      JsonField("options",
                JsonObject({
                    JsonField("min_genes", JsonInt(base.min_genes)),
                    JsonField("min_conditions", JsonInt(base.min_conditions)),
                    JsonField("gamma", JsonDouble(base.gamma)),
                    JsonField("epsilon", JsonDouble(base.epsilon)),
                })),
      JsonField("nodes_expanded", JsonInt(serial_stats.nodes_expanded)),
      JsonField("extensions_tested", JsonInt(serial_stats.extensions_tested)),
      JsonField("pruned_min_genes", JsonInt(serial_stats.pruned_min_genes)),
      JsonField("pruned_p_majority", JsonInt(serial_stats.pruned_p_majority)),
      JsonField("pruned_duplicate", JsonInt(serial_stats.pruned_duplicate)),
      JsonField("pruned_coherence", JsonInt(serial_stats.pruned_coherence)),
      JsonField("genes_dropped_min_conds",
                JsonInt(serial_stats.genes_dropped_min_conds)),
      JsonField("clusters_emitted", JsonInt(serial_stats.clusters_emitted)),
      JsonField("index_word_ops", JsonInt(serial_stats.index_word_ops)),
      JsonField("coherence_divide_calls",
                JsonInt(serial_stats.coherence_divide_calls)),
      JsonField("coherence_scores", JsonInt(serial_stats.coherence_scores)),
      JsonField("dedup_probes", JsonInt(serial_stats.dedup_probes)),
  });
  if (!UpsertBenchSection(out_path, "stats", stats_section)) {
    std::fprintf(stderr, "WARNING: could not write %s\n", out_path.c_str());
  } else {
    std::printf("wrote section \"stats\" of %s\n", out_path.c_str());
  }

  // Batch-sweep sharing: a 4-point equal-gamma grid run through
  // core::SweepEngine (one TSV load, one shared model, four mines) against
  // the same four mines done the way four CLI invocations would do them
  // (each loads the TSV and builds its own model).  The grid uses a MinG
  // strict enough that the mines themselves are cheap, so the measured
  // speedup isolates what the engine actually shares; on a single core
  // there is no parallelism to hide behind.  Gated (>= 1.5x) by
  // tools/bench_check.py --min-sweep-speedup.
  {
    const std::string tsv_path =
        FlagValue(argc, argv, "sweep-tsv", "bench_sweep_scratch.tsv");
    if (auto s = matrix::SaveMatrix(ds->data, tsv_path); !s.ok()) {
      std::fprintf(stderr, "save matrix: %s\n", s.ToString().c_str());
      return 1;
    }
    core::MinerOptions sweep_base = base;
    sweep_base.num_threads = 1;
    sweep_base.min_genes = std::max(2, static_cast<int>(0.04 * cfg.num_genes));
    const std::vector<int> minc_grid = {8, 9, 10, 11};
    std::vector<core::MinerOptions> points;
    for (int minc : minc_grid) {
      core::MinerOptions p = sweep_base;
      p.min_conditions = minc;
      points.push_back(p);
    }
    auto cluster_key = [](const std::vector<core::RegCluster>& clusters) {
      std::string key;
      for (const auto& c : clusters) key += c.Key() + ";";
      return key;
    };

    util::WallTimer independent_timer;
    std::vector<std::string> independent_keys;
    for (const core::MinerOptions& p : points) {
      auto loaded = matrix::LoadMatrix(tsv_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "load matrix: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      core::RegClusterMiner m(*loaded, p);
      auto clusters = m.Mine();
      if (!clusters.ok()) {
        std::fprintf(stderr, "miner: %s\n",
                     clusters.status().ToString().c_str());
        return 1;
      }
      independent_keys.push_back(cluster_key(*clusters));
    }
    const double independent_secs = independent_timer.ElapsedSeconds();

    util::WallTimer engine_timer;
    auto loaded = matrix::LoadMatrix(tsv_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load matrix: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    core::SweepOptions sweep_opts;
    sweep_opts.num_threads = 1;
    auto report = core::SweepEngine(*loaded, sweep_opts).Run(points);
    const double engine_secs = engine_timer.ElapsedSeconds();
    std::remove(tsv_path.c_str());
    if (!report.ok()) {
      std::fprintf(stderr, "sweep: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    bool sweep_identical = report->runs_executed ==
                           static_cast<int>(points.size());
    for (size_t i = 0; i < points.size() && sweep_identical; ++i) {
      sweep_identical = cluster_key(report->runs[i].clusters) ==
                        independent_keys[i];
    }
    const double sweep_speedup =
        engine_secs > 0 ? independent_secs / engine_secs : 0.0;
    std::printf(
        "\nsweep sharing (%zu-point equal-gamma grid, MinG=%d, serial): "
        "independent %.4f s, engine %.4f s -> %.2fx, %d shared index "
        "build(s), identical %s\n",
        points.size(), sweep_base.min_genes, independent_secs, engine_secs,
        sweep_speedup, report->index_builds,
        sweep_identical ? "yes" : "NO!");
    std::vector<std::string> minc_json;
    for (int minc : minc_grid) minc_json.push_back(JsonInt(minc));
    const std::string sweep_section = JsonObject({
        JsonField("dataset",
                  JsonObject({
                      JsonField("genes", JsonInt(cfg.num_genes)),
                      JsonField("conditions", JsonInt(cfg.num_conditions)),
                      JsonField("implanted_clusters",
                                JsonInt(cfg.num_clusters)),
                      JsonField("seed",
                                JsonInt(static_cast<int64_t>(cfg.seed))),
                  })),
        JsonField("options",
                  JsonObject({
                      JsonField("min_genes", JsonInt(sweep_base.min_genes)),
                      JsonField("min_conditions_grid", JsonArray(minc_json)),
                      JsonField("gamma", JsonDouble(sweep_base.gamma)),
                      JsonField("epsilon", JsonDouble(sweep_base.epsilon)),
                  })),
        JsonField("points", JsonInt(static_cast<int64_t>(points.size()))),
        JsonField("independent_seconds", JsonDouble(independent_secs)),
        JsonField("engine_seconds", JsonDouble(engine_secs)),
        JsonField("speedup", JsonDouble(sweep_speedup)),
        JsonField("index_builds", JsonInt(report->index_builds)),
        JsonField("identical_to_independent", JsonBool(sweep_identical)),
    });
    if (!UpsertBenchSection(out_path, "sweep", sweep_section)) {
      std::fprintf(stderr, "WARNING: could not write %s\n", out_path.c_str());
    } else {
      std::printf("wrote section \"sweep\" of %s\n", out_path.c_str());
    }
    if (!sweep_identical) {
      std::fprintf(stderr,
                   "FAILED: sweep engine output differs from independent "
                   "mines\n");
      return 1;
    }
  }

  // Incremental time-course append: one new condition arrives at the
  // steady-state expression level, and MineIncremental (delta gamma-model
  // update + dirty roots only, clean roots spliced from the recorded state)
  // races a from-scratch Mine() of the grown matrix it must reproduce
  // byte-for-byte.  The matrix is a pure shift pattern over flat levels --
  // 10 apart under an absolute gamma of 4, so same-level conditions are
  // unregulated -- with most conditions at level 0 and a handful of
  // singleton upper levels.  Appending a level-0 condition keeps every
  // level-0 root clean (the new value is within gamma of theirs in every
  // gene), so only the upper-level roots and the appended root re-mine.
  // The level design also bounds the search: on a shift pattern no gene is
  // ever dropped, and with dense distinct values the chain enumeration is
  // exponential in the condition count.  Gated (>= 1.5x) by
  // tools/bench_check.py --min-incremental-speedup; byte-identity is
  // enforced here.
  {
    const int inc_base_conds = cfg.num_conditions - 6;  // level-0 block
    auto inc_level = [&](int c) {
      return c < inc_base_conds ? 0 : c - inc_base_conds + 1;
    };
    matrix::ExpressionMatrix inc_prefix(cfg.num_genes, cfg.num_conditions);
    for (int g = 0; g < cfg.num_genes; ++g) {
      for (int c = 0; c < cfg.num_conditions; ++c) {
        inc_prefix(g, c) = 10.0 * inc_level(c) + 1000.0 * g;
      }
    }
    core::MinerOptions inc_opts;
    inc_opts.num_threads = 1;
    inc_opts.min_genes = base.min_genes;
    inc_opts.min_conditions = 6;
    inc_opts.gamma = 4.0;
    inc_opts.gamma_policy = core::GammaPolicy::kAbsolute;
    inc_opts.epsilon = 0.5;

    util::WallTimer seed_timer;
    auto seeded = io::MineInitial(inc_prefix, inc_opts);
    const double seed_secs = seed_timer.ElapsedSeconds();
    if (!seeded.ok()) {
      std::fprintf(stderr, "incremental seed: %s\n",
                   seeded.status().ToString().c_str());
      return 1;
    }

    matrix::ExpressionMatrix inc_grown = inc_prefix;
    std::vector<double> new_col(static_cast<size_t>(cfg.num_genes));
    for (int g = 0; g < cfg.num_genes; ++g) {
      new_col[static_cast<size_t>(g)] = 1000.0 * g;  // level 0
    }
    if (auto s = inc_grown.AppendConditions({"t_new"}, {new_col}); !s.ok()) {
      std::fprintf(stderr, "incremental append: %s\n", s.ToString().c_str());
      return 1;
    }

    // Interleaved best-of-5 per side: both legs are millisecond-scale, so
    // one noisy run must not invent (or erase) the speedup.
    constexpr int kIncReps = 5;
    double inc_secs = 1e300, scratch_secs = 1e300;
    std::vector<core::RegCluster> inc_clusters, scratch_clusters;
    core::MinerStats inc_stats, scratch_stats;
    int roots_remined = 0, roots_spliced = 0;
    bool inc_failed = false;
    auto run_incremental = [&]() {
      util::WallTimer timer;
      auto r = io::MineIncremental(inc_grown, cfg.num_conditions, inc_opts,
                                   seeded->state, seeded->model);
      const double secs = timer.ElapsedSeconds();
      if (!r.ok()) {
        std::fprintf(stderr, "incremental mine: %s\n",
                     r.status().ToString().c_str());
        inc_failed = true;
        return;
      }
      if (secs < inc_secs) {
        inc_secs = secs;
        inc_clusters = std::move(r->clusters);
        inc_stats = r->stats;
        roots_remined = r->roots_remined;
        roots_spliced = r->roots_spliced;
      }
    };
    auto run_scratch = [&]() {
      core::RegClusterMiner m(inc_grown, inc_opts);
      util::WallTimer timer;
      auto clusters = m.Mine();
      const double secs = timer.ElapsedSeconds();
      if (!clusters.ok()) {
        std::fprintf(stderr, "from-scratch mine: %s\n",
                     clusters.status().ToString().c_str());
        inc_failed = true;
        return;
      }
      if (secs < scratch_secs) {
        scratch_secs = secs;
        scratch_clusters = *std::move(clusters);
        scratch_stats = m.stats();
      }
    };
    for (int rep = 0; rep < kIncReps && !inc_failed; ++rep) {
      if ((rep % 2) == 0) {
        run_incremental();
        if (!inc_failed) run_scratch();
      } else {
        run_scratch();
        if (!inc_failed) run_incremental();
      }
    }
    if (inc_failed) return 1;

    auto cluster_key = [](const std::vector<core::RegCluster>& clusters) {
      std::string key;
      for (const auto& c : clusters) key += c.Key() + ";";
      return key;
    };
    const bool inc_identical =
        cluster_key(inc_clusters) == cluster_key(scratch_clusters) &&
        inc_stats.nodes_expanded == scratch_stats.nodes_expanded &&
        inc_stats.extensions_tested == scratch_stats.extensions_tested &&
        inc_stats.pruned_min_genes == scratch_stats.pruned_min_genes &&
        inc_stats.pruned_p_majority == scratch_stats.pruned_p_majority &&
        inc_stats.pruned_duplicate == scratch_stats.pruned_duplicate &&
        inc_stats.pruned_coherence == scratch_stats.pruned_coherence &&
        inc_stats.genes_dropped_min_conds ==
            scratch_stats.genes_dropped_min_conds &&
        inc_stats.clusters_emitted == scratch_stats.clusters_emitted &&
        inc_stats.index_builds == scratch_stats.index_builds &&
        inc_stats.index_word_ops == scratch_stats.index_word_ops &&
        inc_stats.coherence_divide_calls ==
            scratch_stats.coherence_divide_calls &&
        inc_stats.coherence_scores == scratch_stats.coherence_scores &&
        inc_stats.dedup_probes == scratch_stats.dedup_probes;
    const double inc_speedup = inc_secs > 0 ? scratch_secs / inc_secs : 0.0;
    std::printf(
        "\nincremental append (1 steady-state condition onto %dx%d, serial): "
        "from-scratch %.4f s, incremental %.4f s -> %.2fx, %d roots re-mined "
        "/ %d spliced, identical %s\n",
        cfg.num_genes, cfg.num_conditions, scratch_secs, inc_secs,
        inc_speedup, roots_remined, roots_spliced,
        inc_identical ? "yes" : "NO!");
    const std::string inc_section = JsonObject({
        JsonField("dataset",
                  JsonObject({
                      JsonField("genes", JsonInt(cfg.num_genes)),
                      JsonField("conditions_before", JsonInt(cfg.num_conditions)),
                      JsonField("conditions_appended", JsonInt(1)),
                      JsonField("level0_conditions", JsonInt(inc_base_conds)),
                  })),
        JsonField("options",
                  JsonObject({
                      JsonField("min_genes", JsonInt(inc_opts.min_genes)),
                      JsonField("min_conditions",
                                JsonInt(inc_opts.min_conditions)),
                      JsonField("gamma", JsonDouble(inc_opts.gamma)),
                      JsonField("gamma_policy", JsonString("absolute")),
                      JsonField("epsilon", JsonDouble(inc_opts.epsilon)),
                  })),
        JsonField("seed_seconds", JsonDouble(seed_secs)),
        JsonField("from_scratch_seconds", JsonDouble(scratch_secs)),
        JsonField("incremental_seconds", JsonDouble(inc_secs)),
        JsonField("speedup", JsonDouble(inc_speedup)),
        JsonField("roots_remined", JsonInt(roots_remined)),
        JsonField("roots_spliced", JsonInt(roots_spliced)),
        JsonField("best_of", JsonInt(kIncReps)),
        JsonField("identical_to_scratch", JsonBool(inc_identical)),
    });
    if (!UpsertBenchSection(out_path, "incremental", inc_section)) {
      std::fprintf(stderr, "WARNING: could not write %s\n", out_path.c_str());
    } else {
      std::printf("wrote section \"incremental\" of %s\n", out_path.c_str());
    }
    if (!inc_identical) {
      std::fprintf(stderr,
                   "FAILED: incremental append output differs from the "
                   "from-scratch mine\n");
      return 1;
    }
  }

  // Overhead measurements: each compares an "off" and an "on" variant as
  // interleaved pairs (best-of-8 per side).  Alternating which variant runs
  // first means cache/frequency carry-over between neighbours biases
  // neither side, and shifting the heap frontier by an odd amount each rep
  // stops malloc from handing every rep the same addresses (whichever
  // variant lucked into better-aligned buffers would keep that -- easily
  // 10% -- edge for the whole process).  Taking the min across shifted
  // layouts converges both variants to their best case.
  // --skip-overhead skips the measurements (16 extra serial mines each) so
  // quick reruns can refresh the deterministic sections alone; the gates in
  // tools/bench_check.py then fall back to the committed baseline.
  const bool skip_overhead = BoolFlag(argc, argv, "skip-overhead");
  auto timed_mine = [&ds](const core::MinerOptions& o) {
    core::RegClusterMiner m(ds->data, o);
    util::WallTimer timer;
    if (!m.Mine().ok()) return -1.0;
    return timer.ElapsedSeconds();
  };
  constexpr int kOverheadReps = 8;
  struct OverheadResult {
    double off_seconds = 1e300;
    double on_seconds = 1e300;
    double fraction = 0.0;
    bool ok = true;
  };
  auto measure_overhead = [&](const char* label,
                              const std::function<double()>& run_off,
                              const std::function<double()>& run_on) {
    OverheadResult r;
    std::vector<std::unique_ptr<char[]>> heap_shift;
    for (int rep = 0; rep < kOverheadReps; ++rep) {
      heap_shift.push_back(
          std::make_unique<char[]>(static_cast<size_t>(rep + 1) * 68923));
      const bool off_first = (rep % 2) == 0;
      const double first = off_first ? run_off() : run_on();
      const double second = off_first ? run_on() : run_off();
      const double off_secs = off_first ? first : second;
      const double on_secs = off_first ? second : first;
      if (off_secs < 0 || on_secs < 0) {
        std::fprintf(stderr, "%s overhead runs failed\n", label);
        r.ok = false;
        return r;
      }
      std::printf("  %s overhead rep %d: off %.4f s, on %.4f s\n", label, rep,
                  off_secs, on_secs);
      r.off_seconds = std::min(r.off_seconds, off_secs);
      r.on_seconds = std::min(r.on_seconds, on_secs);
    }
    r.fraction = r.on_seconds / r.off_seconds - 1.0;
    return r;
  };

  if (!skip_overhead) {
    // Budget-guard overhead: with every stop source armed but none binding
    // (huge budgets, a never-tripped token), ShouldStop()/Poll() bookkeeping
    // is the only difference from an unbudgeted run.  Gated (<2%) by
    // tools/bench_check.py --max-budget-overhead.
    core::MinerOptions unbudgeted = base;
    unbudgeted.num_threads = 1;
    core::MinerOptions budgeted = unbudgeted;
    budgeted.max_nodes = int64_t{1} << 60;
    budgeted.max_clusters = int64_t{1} << 60;
    budgeted.deadline_ms = 1e9;
    budgeted.soft_memory_limit_bytes = int64_t{1} << 60;
    budgeted.cancel_token = std::make_shared<util::CancellationToken>();
    const OverheadResult budget = measure_overhead(
        "budget", [&] { return timed_mine(unbudgeted); },
        [&] { return timed_mine(budgeted); });
    if (!budget.ok) return 1;
    std::printf(
        "\nbudget-guard overhead (serial, all stop sources armed, none "
        "binding): off %.4f s, on %.4f s -> %+.2f%%\n",
        budget.off_seconds, budget.on_seconds, 100.0 * budget.fraction);
    const std::string overhead_section = JsonObject({
        JsonField("off_seconds", JsonDouble(budget.off_seconds)),
        JsonField("on_seconds", JsonDouble(budget.on_seconds)),
        JsonField("overhead_fraction", JsonDouble(budget.fraction)),
        JsonField("check_interval", JsonInt(budgeted.budget_check_interval)),
        JsonField("best_of", JsonInt(kOverheadReps)),
    });
    if (!UpsertBenchSection(out_path, "budget_overhead", overhead_section)) {
      std::fprintf(stderr, "WARNING: could not write %s\n", out_path.c_str());
    } else {
      std::printf("wrote section \"budget_overhead\" of %s\n",
                  out_path.c_str());
    }

    // Stats-collection overhead: collect_stats=true (the default; detail
    // counters live) vs. false (the instrumentation is compiled out via the
    // kCollect template).  Gated (<1%) by tools/bench_check.py
    // --max-stats-overhead.
    core::MinerOptions stats_off = base;
    stats_off.num_threads = 1;
    stats_off.collect_stats = false;
    core::MinerOptions stats_on = stats_off;
    stats_on.collect_stats = true;
    const OverheadResult stats_oh = measure_overhead(
        "stats", [&] { return timed_mine(stats_off); },
        [&] { return timed_mine(stats_on); });
    if (!stats_oh.ok) return 1;
    std::printf(
        "\nstats-collection overhead (serial, collect_stats on vs off): "
        "off %.4f s, on %.4f s -> %+.2f%%\n",
        stats_oh.off_seconds, stats_oh.on_seconds, 100.0 * stats_oh.fraction);
    const std::string stats_overhead_section = JsonObject({
        JsonField("off_seconds", JsonDouble(stats_oh.off_seconds)),
        JsonField("on_seconds", JsonDouble(stats_oh.on_seconds)),
        JsonField("overhead_fraction", JsonDouble(stats_oh.fraction)),
        JsonField("best_of", JsonInt(kOverheadReps)),
    });
    if (!UpsertBenchSection(out_path, "stats_overhead",
                            stats_overhead_section)) {
      std::fprintf(stderr, "WARNING: could not write %s\n", out_path.c_str());
    } else {
      std::printf("wrote section \"stats_overhead\" of %s\n",
                  out_path.c_str());
    }

    // Durability overhead: the same serial mine run through
    // io::RunCheckpointedMine -- chunked at root boundaries, snapshotting to
    // a real double-buffered file at the default 1 s cadence on the
    // background writer thread -- vs the plain Mine() it must reproduce
    // byte-for-byte.  The difference is everything a durable run pays:
    // chunk splicing, snapshot encoding, and the writer's file I/O.  The
    // final snapshot of a run is written synchronously whatever the run's
    // length, so the comparison uses a looser MinC than the sweep above:
    // durability is for long mines, and on a sub-second one that fixed
    // write would dominate the fraction instead of amortizing as it does
    // in practice.  Gated (<2%) by tools/bench_check.py
    // --max-checkpoint-overhead.
    core::MinerOptions durable = base;
    durable.num_threads = 1;
    durable.min_conditions = 5;
    const std::string ckpt_scratch =
        FlagValue(argc, argv, "checkpoint-scratch", "bench_ckpt_scratch");
    io::CheckpointConfig ckpt_cfg;
    ckpt_cfg.path = ckpt_scratch;
    auto timed_durable_mine = [&]() {
      util::WallTimer timer;
      auto r = io::RunCheckpointedMine(ds->data, durable, ckpt_cfg, nullptr);
      if (!r.ok() || !r->checkpoint_status.ok()) return -1.0;
      return timer.ElapsedSeconds();
    };
    const OverheadResult ckpt_oh = measure_overhead(
        "checkpoint", [&] { return timed_mine(durable); },
        timed_durable_mine);
    std::remove((ckpt_scratch + ".a").c_str());
    std::remove((ckpt_scratch + ".b").c_str());
    if (!ckpt_oh.ok) return 1;
    std::printf(
        "\ncheckpoint overhead (serial, durable chunked mine + snapshots vs "
        "plain): off %.4f s, on %.4f s -> %+.2f%%\n",
        ckpt_oh.off_seconds, ckpt_oh.on_seconds, 100.0 * ckpt_oh.fraction);
    const std::string ckpt_overhead_section = JsonObject({
        JsonField("off_seconds", JsonDouble(ckpt_oh.off_seconds)),
        JsonField("on_seconds", JsonDouble(ckpt_oh.on_seconds)),
        JsonField("overhead_fraction", JsonDouble(ckpt_oh.fraction)),
        JsonField("every_ms", JsonInt(ckpt_cfg.every_ms)),
        JsonField("best_of", JsonInt(kOverheadReps)),
    });
    if (!UpsertBenchSection(out_path, "checkpoint_overhead",
                            ckpt_overhead_section)) {
      std::fprintf(stderr, "WARNING: could not write %s\n", out_path.c_str());
    } else {
      std::printf("wrote section \"checkpoint_overhead\" of %s\n",
                  out_path.c_str());
    }
  } else {
    std::printf("\n--skip-overhead: overhead sections left untouched\n");
  }
  if (!UpsertBenchSection(out_path, "provenance", ProvenanceObject())) {
    std::fprintf(stderr, "WARNING: could not write provenance to %s\n",
                 out_path.c_str());
  }

  if (!ok) {
    std::fprintf(stderr, "FAILED: thread count changed the output\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace regcluster

int main(int argc, char** argv) {
  return regcluster::bench::Main(argc, argv);
}
