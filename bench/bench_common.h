// Shared helpers for the table/figure harnesses.

#ifndef REGCLUSTER_BENCH_BENCH_COMMON_H_
#define REGCLUSTER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/bicluster.h"
#include "core/miner.h"
#include "eval/match.h"
#include "synth/generator.h"

namespace regcluster {
namespace bench {

/// Parses "--flag=value" style arguments; returns fallback when absent.
inline std::string FlagValue(int argc, char** argv, const char* name,
                             const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline int IntFlag(int argc, char** argv, const char* name, int fallback) {
  const std::string v = FlagValue(argc, argv, name, "");
  return v.empty() ? fallback : std::atoi(v.c_str());
}

inline double DoubleFlag(int argc, char** argv, const char* name,
                         double fallback) {
  const std::string v = FlagValue(argc, argv, name, "");
  return v.empty() ? fallback : std::atof(v.c_str());
}

inline bool BoolFlag(int argc, char** argv, const char* name) {
  const std::string probe = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (probe == argv[i]) return true;
  }
  return false;
}

/// Footprints of a synthetic dataset's implants.
inline std::vector<core::Bicluster> Footprints(
    const synth::SyntheticDataset& ds) {
  std::vector<core::Bicluster> out;
  out.reserve(ds.implants.size());
  for (const auto& imp : ds.implants) out.push_back(imp.Footprint());
  return out;
}

/// Footprints of mined reg-clusters.
inline std::vector<core::Bicluster> Footprints(
    const std::vector<core::RegCluster>& clusters) {
  std::vector<core::Bicluster> out;
  out.reserve(clusters.size());
  for (const auto& c : clusters) out.push_back(core::ToBicluster(c));
  return out;
}

}  // namespace bench
}  // namespace regcluster

#endif  // REGCLUSTER_BENCH_BENCH_COMMON_H_
