// Warm-cache service latency: the daemon's reuse claim, measured.
//
// One MiningService handles the same mine request repeatedly on the
// 3000x40 synthetic.  The cold request pays the full pipeline -- matrix
// load, content hash, RWave model + bitmap index build, mine, render --
// while warm repeats hit both resource-cache levels and skip straight to
// the mine.  The request carries a small per-request node budget
// (max_nodes, the admission layer's own budget plumbing) so the search is
// a tiny canonical prefix -- identical cold and warm -- and the latency
// difference isolates exactly the work the cache removes.  Without the
// budget the 3000x40 search itself runs ~300 ms and would swamp the
// ~50 ms of load + build the cache skips.
//
// Writes the `server` section of BENCH_miner.json (UpsertBenchSection):
// cold/warm latency, the warm speedup gated by tools/bench_check.py
// --min-warm-speedup, and the byte-identity of warm vs cold responses.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "bench_json.h"
#include "matrix/matrix_io.h"
#include "server/service.h"
#include "synth/generator.h"

namespace regcluster {
namespace bench {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int Main(int argc, char** argv) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = IntFlag(argc, argv, "genes", 3000);
  cfg.num_conditions = IntFlag(argc, argv, "conditions", 40);
  cfg.num_clusters = 30;
  cfg.seed = 2024;
  const std::string out_path =
      FlagValue(argc, argv, "out", "BENCH_miner.json");
  const std::string matrix_path = FlagValue(
      argc, argv, "matrix-out", "/tmp/regcluster_bench_server_matrix.tsv");
  const int warm_repeats = IntFlag(argc, argv, "warm-repeats", 3);

  auto ds = synth::GenerateSynthetic(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  if (auto st = matrix::SaveMatrix(ds->data, matrix_path); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }

  // Strict thresholds plus a node budget: the search is a few milliseconds
  // of canonical prefix, so cold latency is dominated by exactly the work
  // the cache exists to skip.
  const int ming = IntFlag(argc, argv, "ming", 50);
  const int minc = IntFlag(argc, argv, "minc", 8);
  const double gamma = DoubleFlag(argc, argv, "gamma", 0.05);
  const double epsilon = DoubleFlag(argc, argv, "epsilon", 0.01);
  const int max_nodes = IntFlag(argc, argv, "max-nodes", 24);
  char body[512];
  std::snprintf(body, sizeof(body),
                "{\"matrix\":\"%s\",\"ming\":%d,\"minc\":%d,\"gamma\":%g,"
                "\"epsilon\":%g,\"max_nodes\":%d,"
                "\"deterministic_output\":true}",
                matrix_path.c_str(), ming, minc, gamma, epsilon, max_nodes);

  server::MiningService service(server::MiningService::Options{});

  std::printf("== bench_server (resource-cache warm latency) ==\n");
  std::printf("dataset %dx%d, MinG=%d MinC=%d gamma=%.3f epsilon=%.3f\n",
              cfg.num_genes, cfg.num_conditions, ming, minc, gamma, epsilon);

  auto start = std::chrono::steady_clock::now();
  const server::ServiceResponse cold =
      service.HandleHttp("POST", "/mine", body);
  const double cold_ms = MillisSince(start);
  if (cold.http_status != 200) {
    std::fprintf(stderr, "cold mine failed: %s\n", cold.body.c_str());
    return 1;
  }

  double warm_ms = 0.0;
  bool identical = true;
  for (int i = 0; i < warm_repeats; ++i) {
    start = std::chrono::steady_clock::now();
    const server::ServiceResponse warm =
        service.HandleHttp("POST", "/mine", body);
    const double ms = MillisSince(start);
    if (warm.http_status != 200) {
      std::fprintf(stderr, "warm mine failed: %s\n", warm.body.c_str());
      return 1;
    }
    identical = identical && warm.body == cold.body;
    warm_ms = i == 0 ? ms : std::min(warm_ms, ms);
  }

  const server::ResourceCache::Stats stats = service.cache_stats();
  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  std::printf("cold %.2f ms (load + hash + model build + mine + render)\n",
              cold_ms);
  std::printf("warm %.2f ms best of %d (cache-hit mine + render)\n", warm_ms,
              warm_repeats);
  std::printf("warm speedup %.2fx, responses byte-identical: %s\n", speedup,
              identical ? "yes" : "NO");
  std::printf(
      "cache: %lld/%lld matrix hits/misses, %lld/%lld model hits/misses\n",
      static_cast<long long>(stats.matrix_hits),
      static_cast<long long>(stats.matrix_misses),
      static_cast<long long>(stats.model_hits),
      static_cast<long long>(stats.model_misses));

  const std::string section = JsonObject({
      JsonField("dataset",
                JsonObject({JsonField("genes", JsonInt(cfg.num_genes)),
                            JsonField("conditions",
                                      JsonInt(cfg.num_conditions))})),
      JsonField("options",
                JsonObject({JsonField("min_genes", JsonInt(ming)),
                            JsonField("min_conditions", JsonInt(minc)),
                            JsonField("gamma", JsonDouble(gamma)),
                            JsonField("epsilon", JsonDouble(epsilon)),
                            JsonField("max_nodes", JsonInt(max_nodes))})),
      JsonField("cold_ms", JsonDouble(cold_ms)),
      JsonField("warm_ms", JsonDouble(warm_ms)),
      JsonField("warm_repeats", JsonInt(warm_repeats)),
      JsonField("warm_speedup", JsonDouble(speedup)),
      JsonField("identical_to_cold", JsonBool(identical)),
      JsonField("matrix_hits", JsonInt(stats.matrix_hits)),
      JsonField("matrix_misses", JsonInt(stats.matrix_misses)),
      JsonField("model_hits", JsonInt(stats.model_hits)),
      JsonField("model_misses", JsonInt(stats.model_misses)),
      JsonField("cache_resident_bytes", JsonInt(stats.resident_bytes)),
  });
  if (!UpsertBenchSection(out_path, "server", section)) {
    std::fprintf(stderr, "failed to update %s\n", out_path.c_str());
    return 1;
  }
  if (!UpsertBenchSection(out_path, "provenance", ProvenanceObject())) {
    std::fprintf(stderr, "failed to update provenance in %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote server section of %s\n", out_path.c_str());
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace regcluster

int main(int argc, char** argv) {
  return regcluster::bench::Main(argc, argv);
}
