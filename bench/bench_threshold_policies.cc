// Ablation: the Section 3.1 regulation-threshold menu.
//
// The paper defaults to gamma_i = gamma * range_i (Eq. 4) and notes that
// other per-gene thresholds (normalized/stddev, mean-relative, closest-gap,
// absolute) "can be used where appropriate".  This harness mines the same
// synthetic dataset under each policy at several gamma levels and reports
// cluster counts and recovery, showing how policy choice trades selectivity
// against sensitivity for genes with different dynamic ranges.

#include <cstdio>

#include "bench_common.h"
#include "core/threshold.h"

namespace regcluster {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = IntFlag(argc, argv, "genes", 600);
  cfg.num_conditions = 20;
  cfg.num_clusters = 8;
  cfg.avg_cluster_genes_fraction = 0.03;
  cfg.seed = 515;
  auto ds = synth::GenerateSynthetic(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  const auto truth = Footprints(*ds);

  std::printf("== bench_threshold_policies (Section 3.1 menu) ==\n");
  std::printf("dataset %dx%d with %zu implants; MinG=8 MinC=5 epsilon=0.02\n\n",
              cfg.num_genes, cfg.num_conditions, truth.size());
  std::printf("%-12s %8s | %9s %10s %10s\n", "policy", "gamma", "clusters",
              "recovery", "relevance");

  const core::GammaPolicy policies[] = {
      core::GammaPolicy::kRangeFraction, core::GammaPolicy::kStdDevFraction,
      core::GammaPolicy::kMeanFraction, core::GammaPolicy::kClosestGapFraction,
      core::GammaPolicy::kAbsolute};
  for (core::GammaPolicy policy : policies) {
    for (double gamma : {0.05, 0.1, 0.2}) {
      core::MinerOptions o;
      o.min_genes = 8;
      o.min_conditions = 5;
      o.gamma_policy = policy;
      // The absolute policy needs an expression-unit threshold; the others
      // take a fraction.
      o.gamma = policy == core::GammaPolicy::kAbsolute ? gamma * 30.0 : gamma;
      o.epsilon = 0.02;
      o.remove_dominated = true;
      core::RegClusterMiner miner(ds->data, o);
      auto clusters = miner.Mine();
      if (!clusters.ok()) {
        std::fprintf(stderr, "miner: %s\n",
                     clusters.status().ToString().c_str());
        return 1;
      }
      const auto r = eval::ScoreAgainstTruth(Footprints(*clusters), truth);
      std::printf("%-12s %8.3f | %9zu %10.3f %10.3f\n",
                  core::GammaPolicyName(policy), o.gamma, clusters->size(),
                  r.cell_recovery, r.cell_relevance);
    }
  }
  std::printf(
      "\nreading: the range policy (Eq. 4) is scale-free per gene and keeps "
      "recovery stable; stddev/mean policies shift selectivity with profile "
      "shape; the absolute policy penalizes low-amplitude genes -- the "
      "paper's argument for per-gene thresholds (Sec 3.1).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace regcluster

int main(int argc, char** argv) {
  return regcluster::bench::Main(argc, argv);
}
