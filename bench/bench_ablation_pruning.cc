// Ablation: effectiveness of the four pruning strategies of Section 4.
//
// The paper introduces prunings (1) MinG, (2) MinC reachability, (3a)
// p-majority, (3b) duplicate and (4) coherence windows but does not measure
// them individually.  This harness toggles each one off (where sound) and
// reports search effort and runtime on the default synthetic workload,
// verifying along the way that the output cluster set is unchanged --
// prunings are pure optimizations.

#include <cstdio>
#include <set>
#include <string>

#include "bench_common.h"
#include "util/timer.h"

namespace regcluster {
namespace bench {
namespace {

struct AblationResult {
  double seconds = 0;
  int64_t nodes = 0;
  int64_t extensions = 0;
  size_t clusters = 0;
  std::set<std::string> keys;
};

AblationResult Run(const matrix::ExpressionMatrix& data,
                   const core::MinerOptions& opts) {
  core::RegClusterMiner miner(data, opts);
  util::WallTimer timer;
  auto clusters = miner.Mine();
  AblationResult r;
  r.seconds = timer.ElapsedSeconds();
  if (!clusters.ok()) {
    std::fprintf(stderr, "miner: %s\n", clusters.status().ToString().c_str());
    std::exit(1);
  }
  r.nodes = miner.stats().nodes_expanded;
  r.extensions = miner.stats().extensions_tested;
  r.clusters = clusters->size();
  for (const auto& c : *clusters) r.keys.insert(c.Key());
  return r;
}

int Main(int argc, char** argv) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = IntFlag(argc, argv, "genes", 800);
  cfg.num_conditions = IntFlag(argc, argv, "conditions", 24);
  cfg.num_clusters = IntFlag(argc, argv, "clusters", 10);
  cfg.avg_cluster_genes_fraction = 0.02;
  cfg.seed = 31337;
  auto ds = synth::GenerateSynthetic(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator: %s\n", ds.status().ToString().c_str());
    return 1;
  }

  core::MinerOptions base;
  base.min_genes = std::max(2, static_cast<int>(0.01 * cfg.num_genes));
  base.min_conditions = 6;
  base.gamma = 0.1;
  base.epsilon = 0.01;

  std::printf("== bench_ablation_pruning (Section 4 design choices) ==\n");
  std::printf("dataset: %d x %d, %d implants; MinG=%d MinC=%d gamma=%.2f "
              "epsilon=%.2f\n\n",
              cfg.num_genes, cfg.num_conditions, cfg.num_clusters,
              base.min_genes, base.min_conditions, base.gamma, base.epsilon);
  std::printf("%-22s %10s %12s %14s %10s %9s\n", "configuration", "time_s",
              "nodes", "extensions", "clusters", "same_out");

  const AblationResult ref = Run(ds->data, base);
  std::printf("%-22s %10.4f %12lld %14lld %10zu %9s\n", "all prunings",
              ref.seconds, static_cast<long long>(ref.nodes),
              static_cast<long long>(ref.extensions), ref.clusters, "ref");

  struct Variant {
    const char* name;
    void (*apply)(core::MinerOptions*);
    bool output_must_match;
  };
  const Variant variants[] = {
      {"no MinG pruning (1)",
       [](core::MinerOptions* o) { o->prune_min_genes = false; }, true},
      {"no MinC pruning (2)",
       [](core::MinerOptions* o) { o->prune_min_conds = false; }, true},
      {"no p-majority (3a)",
       [](core::MinerOptions* o) { o->prune_p_majority = false; }, true},
      {"no dedup (3b)",
       [](core::MinerOptions* o) { o->prune_duplicates = false; }, false},
  };

  bool ok = true;
  for (const Variant& v : variants) {
    core::MinerOptions o = base;
    v.apply(&o);
    const AblationResult r = Run(ds->data, o);
    const bool same =
        !v.output_must_match || r.keys == ref.keys;
    std::printf("%-22s %10.4f %12lld %14lld %10zu %9s\n", v.name, r.seconds,
                static_cast<long long>(r.nodes),
                static_cast<long long>(r.extensions), r.clusters,
                v.output_must_match ? (same ? "yes" : "NO!") : "n/a");
    ok = ok && same;
    // Without dedup the emitted multiset may contain repeats, but the set of
    // distinct keys must still cover the reference.
    if (!v.output_must_match) {
      for (const std::string& k : ref.keys) {
        if (r.keys.find(k) == r.keys.end()) ok = false;
      }
    }
  }
  if (!ok) {
    std::fprintf(stderr, "FAILED: a pruning changed the output set\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace regcluster

int main(int argc, char** argv) {
  return regcluster::bench::Main(argc, argv);
}
