// Section 5.2 + Figure 8: effectiveness on the yeast-scale dataset.
//
// The paper runs reg-cluster on the 2884 x 17 Tavazoie/Church yeast matrix
// with MinG=20, MinC=6, gamma=0.05, epsilon=1.0 and reports 21
// bi-reg-clusters in 2.5 seconds, with pairwise cell overlap between 0% and
// 85%, then plots three non-overlapping 21-gene x 6-condition clusters
// whose profiles mix positively (solid) and negatively (dashed) correlated
// members with frequent crossovers (Figure 8).
//
// The original file is not available offline; this harness runs the same
// experiment on the yeast *surrogate* (see DESIGN.md, substitution table):
// same shape, heavy-tailed background, implanted noisy shifting-and-scaling
// modules with negative members.
//
// Flags: --dump-clusters (print Figure 8-style profile dumps of the first
// three non-overlapping clusters), --modules=N, --seed=N.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "core/coherence.h"
#include "io/cluster_io.h"
#include "synth/yeast_surrogate.h"
#include "util/timer.h"

namespace regcluster {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  synth::YeastSurrogateConfig cfg;
  cfg.num_modules = IntFlag(argc, argv, "modules", 25);
  cfg.seed = static_cast<uint64_t>(IntFlag(argc, argv, "seed", 1999));
  auto ds = synth::MakeYeastSurrogate(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "surrogate: %s\n", ds.status().ToString().c_str());
    return 1;
  }

  std::printf("== bench_yeast (Section 5.2, Figure 8) ==\n");
  std::printf("dataset: %d genes x %d conditions (yeast surrogate, %d "
              "implanted modules)\n",
              ds->data.num_genes(), ds->data.num_conditions(),
              cfg.num_modules);

  core::MinerOptions opts;
  opts.min_genes = 20;
  opts.min_conditions = 6;
  opts.gamma = 0.05;
  opts.epsilon = 1.0;
  opts.remove_dominated = true;
  core::RegClusterMiner miner(ds->data, opts);
  util::WallTimer timer;
  auto clusters = miner.Mine();
  const double seconds = timer.ElapsedSeconds();
  if (!clusters.ok()) {
    std::fprintf(stderr, "miner: %s\n", clusters.status().ToString().c_str());
    return 1;
  }

  std::printf("\nMinG=20 MinC=6 gamma=0.05 epsilon=1.0\n");
  std::printf("bi-reg-clusters: %zu   runtime: %.2f s   (paper: 21 in 2.5 s "
              "on 2006 hardware)\n",
              clusters->size(), seconds);

  // Overlap statistics, as quoted in Section 5.2.
  double min_overlap = 1.0, max_overlap = 0.0;
  const auto feet = Footprints(*clusters);
  for (size_t i = 0; i < feet.size(); ++i) {
    for (size_t j = i + 1; j < feet.size(); ++j) {
      const double o = core::OverlapFraction(feet[i], feet[j]);
      min_overlap = std::min(min_overlap, o);
      max_overlap = std::max(max_overlap, o);
    }
  }
  if (feet.size() > 1) {
    std::printf("pairwise cell overlap: %.0f%% .. %.0f%%   (paper: 0%% .. "
                "85%%)\n",
                100 * min_overlap, 100 * max_overlap);
  }

  // Recovery against the implanted ground truth (surrogate-only extra).
  const auto report = eval::ScoreAgainstTruth(feet, Footprints(*ds));
  std::printf("recovery vs implants: gene=%.3f cell=%.3f   relevance: "
              "gene=%.3f cell=%.3f\n",
              report.gene_recovery, report.cell_recovery,
              report.gene_relevance, report.cell_relevance);

  // Every output must validate and mix member signs like Figure 8.
  int with_negative = 0;
  for (const auto& c : *clusters) {
    std::string why;
    if (!core::ValidateRegCluster(ds->data, c, opts.gamma, opts.epsilon,
                                  &why)) {
      std::fprintf(stderr, "INVALID OUTPUT: %s\n", why.c_str());
      return 1;
    }
    if (!c.n_genes.empty()) ++with_negative;
  }
  std::printf("clusters with negatively correlated members: %d of %zu\n",
              with_negative, clusters->size());

  // Figure 8: pick up to three mutually non-overlapping clusters.
  std::vector<core::RegCluster> picked;
  for (const auto& c : *clusters) {
    const auto fc = core::ToBicluster(c);
    bool overlaps = false;
    for (const auto& p : picked) {
      if (core::SharedCells(fc, core::ToBicluster(p)) > 0) overlaps = true;
    }
    if (!overlaps) picked.push_back(c);
    if (picked.size() == 3) break;
  }
  std::printf("\n# Figure 8: %zu non-overlapping clusters", picked.size());
  std::printf(" (p-members ~ solid lines, n-members ~ dashed)\n");
  const std::string out_dir = FlagValue(argc, argv, "out-dir", "");
  if (!out_dir.empty()) {
    for (size_t i = 0; i < picked.size(); ++i) {
      const std::string path =
          out_dir + "/fig8_cluster" + std::to_string(i) + ".csv";
      std::ofstream csv(path);
      if (csv && io::WriteProfileCsv(picked[i], ds->data, csv).ok()) {
        std::printf("(profile archived: %s)\n", path.c_str());
      }
    }
  }
  if (BoolFlag(argc, argv, "dump-clusters")) {
    (void)io::WriteReport(picked, &ds->data, std::cout);
  } else {
    for (size_t i = 0; i < picked.size(); ++i) {
      std::printf("cluster %zu: %d genes (%zup/%zun) x %d conditions\n", i,
                  picked[i].num_genes(), picked[i].p_genes.size(),
                  picked[i].n_genes.size(), picked[i].num_conditions());
    }
    std::printf("(run with --dump-clusters for full profiles)\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace regcluster

int main(int argc, char** argv) {
  return regcluster::bench::Main(argc, argv);
}
