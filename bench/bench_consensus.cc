// Ablation: output post-processing.  The paper reports raw overlapping
// output (Section 5.2: "we did not perform any splitting and merging");
// this harness quantifies what the two post-passes buy on the yeast-scale
// run: the dominated-output filter and the consensus overlap merge.

#include <cstdio>

#include "bench_common.h"
#include "core/coherence.h"
#include "eval/consensus.h"
#include "eval/quality.h"
#include "synth/yeast_surrogate.h"
#include "util/timer.h"

namespace regcluster {
namespace bench {
namespace {

void Report(const char* name, const matrix::ExpressionMatrix& data,
            const std::vector<core::RegCluster>& clusters,
            const std::vector<core::Bicluster>& truth, double gamma,
            double epsilon) {
  const auto summary = eval::Summarize(clusters);
  const auto match = eval::ScoreAgainstTruth(Footprints(clusters), truth);
  int invalid = 0;
  for (const auto& c : clusters) {
    if (!core::ValidateRegCluster(data, c, gamma, epsilon)) ++invalid;
  }
  std::printf("%-22s %9d %10.3f %10.3f %12.0f%% %8d\n", name,
              summary.num_clusters, match.cell_recovery, match.cell_relevance,
              100 * summary.max_overlap, invalid);
}

int Main(int argc, char** argv) {
  synth::YeastSurrogateConfig cfg;
  cfg.num_modules = IntFlag(argc, argv, "modules", 25);
  auto ds = synth::MakeYeastSurrogate(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "surrogate: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  const auto truth = Footprints(*ds);

  const double gamma = 0.05, epsilon = 1.0;
  core::MinerOptions base;
  base.min_genes = 20;
  base.min_conditions = 6;
  base.gamma = gamma;
  base.epsilon = epsilon;

  std::printf("== bench_consensus (output post-processing ablation) ==\n");
  std::printf("yeast surrogate %dx%d, MinG=20 MinC=6 gamma=%.2f eps=%.1f\n\n",
              ds->data.num_genes(), ds->data.num_conditions(), gamma,
              epsilon);
  std::printf("%-22s %9s %10s %10s %13s %8s\n", "post-processing",
              "clusters", "recovery", "relevance", "max overlap", "invalid");

  // Raw output (the paper's reporting mode).
  {
    core::MinerOptions o = base;
    o.remove_dominated = false;
    auto clusters = core::RegClusterMiner(ds->data, o).Mine();
    if (!clusters.ok()) return 1;
    Report("raw (paper)", ds->data, *clusters, truth, gamma, epsilon);
  }
  // Dominated-output filter.
  std::vector<core::RegCluster> dominated_filtered;
  {
    core::MinerOptions o = base;
    o.remove_dominated = true;
    auto clusters = core::RegClusterMiner(ds->data, o).Mine();
    if (!clusters.ok()) return 1;
    dominated_filtered = *std::move(clusters);
    Report("remove-dominated", ds->data, dominated_filtered, truth, gamma,
           epsilon);
  }
  // Consensus merge on top.
  for (double threshold : {0.8, 0.5, 0.25}) {
    eval::ConsensusOptions copts;
    copts.min_overlap = threshold;
    copts.gamma_spec = {core::GammaPolicy::kRangeFraction, gamma};
    copts.epsilon = epsilon;
    auto merged =
        eval::MergeOverlapping(ds->data, dominated_filtered, copts);
    char label[40];
    std::snprintf(label, sizeof(label), "+ merge >= %.2f", threshold);
    Report(label, ds->data, merged, truth, gamma, epsilon);
  }
  std::printf(
      "\nreading: merging shrinks the cluster count at identical recovery "
      "(merged clusters still validate -- the 'invalid' column must be 0 "
      "everywhere).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace regcluster

int main(int argc, char** argv) {
  return regcluster::bench::Main(argc, argv);
}
