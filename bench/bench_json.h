// Machine-readable benchmark output.  Several harness binaries contribute to
// one JSON file (BENCH_miner.json): each owns a top-level section, and
// UpsertBenchSection() read-merges -- it loads the existing file, replaces
// only the caller's section, and rewrites the whole document -- so the
// harnesses can run in any order and the file always holds the latest result
// of each.
//
// The reader is a brace-matching scanner over this writer's own output (a
// flat object whose values are objects), not a general JSON parser; a file
// it cannot understand is replaced wholesale, which is the right recovery
// for a generated artifact.

#ifndef REGCLUSTER_BENCH_BENCH_JSON_H_
#define REGCLUSTER_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "io/json_export.h"
#include "util/simd/dispatch.h"

namespace regcluster {
namespace bench {

inline std::string JsonString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += io::JsonEscape(s);
  out += '"';
  return out;
}

inline std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

inline std::string JsonInt(int64_t v) { return std::to_string(v); }

inline std::string JsonBool(bool v) { return v ? "true" : "false"; }

/// Joins pre-rendered "key": value fields into an object literal.
inline std::string JsonObject(const std::vector<std::string>& fields) {
  std::string out = "{";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ", ";
    out += fields[i];
  }
  return out + "}";
}

inline std::string JsonArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += items[i];
  }
  return out + "]";
}

inline std::string JsonField(const std::string& key, const std::string& raw) {
  return JsonString(key) + ": " + raw;
}

/// One "provenance" object identifying what produced the file: the git
/// commit of the working tree, the compiler, and the flags the bench
/// binaries were compiled with (stamped by bench/CMakeLists.txt).  Every
/// harness upserts this section so a committed BENCH_miner.json can be
/// audited for comparability before being diffed (tools/bench_check.py).
inline std::string ProvenanceObject() {
  std::string sha = "unknown";
  if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), pipe)) {
      sha.assign(buf);
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
    }
    if (::pclose(pipe) != 0 || sha.empty()) sha = "unknown";
  }
#if defined(__clang__)
  const std::string compiler = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  const std::string compiler = std::string("gcc ") + __VERSION__;
#else
  const std::string compiler = "unknown";
#endif
#ifdef REGCLUSTER_BENCH_OPT_FLAGS
  const std::string flags = REGCLUSTER_BENCH_OPT_FLAGS;
#else
  const std::string flags = "";
#endif
#ifdef REGCLUSTER_BENCH_BUILD_TYPE
  const std::string build_type = REGCLUSTER_BENCH_BUILD_TYPE;
#else
  const std::string build_type = "";
#endif
  return JsonObject({
      JsonField("git_commit", JsonString(sha)),
      JsonField("compiler", JsonString(compiler)),
      JsonField("build_type", JsonString(build_type)),
      JsonField("cxx_flags", JsonString(flags)),
      // The kernel set the harness actually ran with (scalar/avx2/neon):
      // numbers from different levels are not comparable, so the committed
      // file says which one produced them.
      JsonField("simd_level",
                JsonString(util::simd::LevelName(util::simd::CurrentLevel()))),
  });
}

namespace internal {

/// Splits a previously written document into (section name, raw value) pairs.
/// Returns false when the text is not in this writer's format.
inline bool ParseSections(
    const std::string& text,
    std::vector<std::pair<std::string, std::string>>* sections) {
  size_t i = text.find('{');
  if (i == std::string::npos) return false;
  ++i;
  const auto skip_ws = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\n' ||
                               text[i] == '\r' || text[i] == '\t')) {
      ++i;
    }
  };
  skip_ws();
  while (i < text.size() && text[i] != '}') {
    if (text[i] == ',') {
      ++i;
      skip_ws();
      continue;
    }
    if (text[i] != '"') return false;
    const size_t key_start = ++i;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') ++i;  // sections we write never need this
      ++i;
    }
    if (i >= text.size()) return false;
    const std::string key = text.substr(key_start, i - key_start);
    ++i;
    skip_ws();
    if (i >= text.size() || text[i] != ':') return false;
    ++i;
    skip_ws();
    if (i >= text.size() || text[i] != '{') return false;
    const size_t value_start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          ++i;
          break;
        }
      }
    }
    if (depth != 0) return false;
    sections->emplace_back(key, text.substr(value_start, i - value_start));
    skip_ws();
  }
  return true;
}

}  // namespace internal

/// Writes `object_text` (a rendered JSON object) as the `section` entry of
/// the document at `path`, preserving every other section already there.
/// Returns false when the file could not be written.
inline bool UpsertBenchSection(const std::string& path,
                               const std::string& section,
                               const std::string& object_text) {
  std::vector<std::pair<std::string, std::string>> sections;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      std::vector<std::pair<std::string, std::string>> parsed;
      if (internal::ParseSections(buf.str(), &parsed)) {
        sections = std::move(parsed);
      }
    }
  }
  bool replaced = false;
  for (auto& kv : sections) {
    if (kv.first == section) {
      kv.second = object_text;
      replaced = true;
    }
  }
  if (!replaced) sections.emplace_back(section, object_text);

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\n";
  for (size_t i = 0; i < sections.size(); ++i) {
    out << "  " << JsonString(sections[i].first) << ": " << sections[i].second
        << (i + 1 < sections.size() ? ",\n" : "\n");
  }
  out << "}\n";
  return out.good();
}

}  // namespace bench
}  // namespace regcluster

#endif  // REGCLUSTER_BENCH_BENCH_JSON_H_
