// Micro-benchmarks (google-benchmark) for the core primitives: RWave model
// construction, regulation lookups, coherence scoring and end-to-end mining
// at several dataset sizes.  These back the cost model claimed in DESIGN.md
// (model build O(C log C) per gene, lookups O(log P)).  Besides the console
// table, every timing is appended machine-readably to the "micro" section of
// BENCH_miner.json (override the path with --bench_out=...).

#include <benchmark/benchmark.h>

#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/coherence.h"
#include "core/miner.h"
#include "core/rwave.h"
#include "matrix/transforms.h"
#include "synth/generator.h"
#include "util/math_util.h"
#include "util/prng.h"
#include "util/simd/dispatch.h"

namespace regcluster {
namespace {

std::vector<double> RandomProfile(int n, uint64_t seed) {
  util::Prng prng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = prng.Uniform(0, 10);
  return v;
}

void BM_RWaveBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> v = RandomProfile(n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::RWaveModel::Build(v.data(), n, 1.0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RWaveBuild)->Arg(17)->Arg(30)->Arg(100)->Arg(1000);

void BM_RWaveIsUpRegulated(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> v = RandomProfile(n, 43);
  const core::RWaveModel w = core::RWaveModel::Build(v.data(), n, 1.0);
  util::Prng prng(7);
  int a = 0, b = 1;
  for (auto _ : state) {
    a = static_cast<int>(prng.UniformInt(0, n - 1));
    b = static_cast<int>(prng.UniformInt(0, n - 1));
    benchmark::DoNotOptimize(w.IsUpRegulated(a, b));
  }
}
BENCHMARK(BM_RWaveIsUpRegulated)->Arg(30)->Arg(1000);

void BM_RWaveSetBuild(benchmark::State& state) {
  const int genes = static_cast<int>(state.range(0));
  synth::SyntheticConfig cfg;
  cfg.num_genes = genes;
  cfg.num_conditions = 30;
  cfg.num_clusters = 0;
  auto ds = synth::GenerateSynthetic(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::RWaveSet(ds->data, 0.1));
  }
  state.SetItemsProcessed(state.iterations() * genes);
}
BENCHMARK(BM_RWaveSetBuild)->Arg(500)->Arg(3000);

void BM_RWaveSetBuildParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  synth::SyntheticConfig cfg;
  cfg.num_genes = 3000;
  cfg.num_conditions = 30;
  cfg.num_clusters = 0;
  auto ds = synth::GenerateSynthetic(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::RWaveSet(ds->data, 0.1, threads));
  }
  state.SetItemsProcessed(state.iterations() * cfg.num_genes);
}
BENCHMARK(BM_RWaveSetBuildParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_MineSynthetic(benchmark::State& state) {
  const int genes = static_cast<int>(state.range(0));
  synth::SyntheticConfig cfg;
  cfg.num_genes = genes;
  cfg.num_conditions = 30;
  cfg.num_clusters = std::max(1, genes / 100);
  cfg.seed = 99;
  auto ds = synth::GenerateSynthetic(cfg);
  core::MinerOptions opts;
  opts.min_genes = std::max(2, static_cast<int>(0.01 * genes));
  opts.min_conditions = 6;
  opts.gamma = 0.1;
  opts.epsilon = 0.01;
  for (auto _ : state) {
    core::RegClusterMiner miner(ds->data, opts);
    auto clusters = miner.Mine();
    benchmark::DoNotOptimize(clusters);
  }
}
BENCHMARK(BM_MineSynthetic)->Arg(500)->Arg(1500)->Arg(3000)
    ->Unit(benchmark::kMillisecond);

void BM_CoherenceWindowExtension(benchmark::State& state) {
  // The dominant inner operation: extending a chain over many genes.
  synth::SyntheticConfig cfg;
  cfg.num_genes = 2000;
  cfg.num_conditions = 20;
  cfg.num_clusters = 5;
  auto ds = synth::GenerateSynthetic(cfg);
  core::MinerOptions opts;
  opts.min_genes = 20;
  opts.min_conditions = 5;
  opts.gamma = 0.1;
  opts.epsilon = 0.05;
  for (auto _ : state) {
    core::RegClusterMiner miner(ds->data, opts);
    benchmark::DoNotOptimize(miner.Mine());
  }
}
BENCHMARK(BM_CoherenceWindowExtension)->Unit(benchmark::kMillisecond);

// -- SIMD kernel microbenches -------------------------------------------
//
// Each pair compares the portable scalar kernel against the level the
// dispatcher would pick on this machine ("dispatched"; identical to scalar
// on a host without AVX2/NEON).  The kernels are fetched once with the level
// pinned and called through the captured table, so the numbers isolate the
// kernel itself -- no per-call dispatch resolution, no Auto-wrapper width
// shortcut.  bench_check.py gates the dispatched sort against the committed
// baseline like any other micro row; the end-to-end win is gated separately
// through the threads section's sort_speedup.

/// The SimdOps table that level `level` resolves to, without leaving the
/// process-wide level changed.
util::simd::SimdOps OpsAt(util::simd::Level level) {
  const util::simd::Level entry = util::simd::CurrentLevel();
  if (!util::simd::SetLevel(level).ok()) std::abort();
  const util::simd::SimdOps ops = util::simd::Ops();
  if (!util::simd::SetLevel(entry).ok()) std::abort();
  return ops;
}

util::simd::Level BenchLevel(bool dispatched) {
  return dispatched ? util::simd::DetectBestLevel()
                    : util::simd::Level::kScalar;
}

/// One scored column shaped like the miner's: two gene-ascending halves
/// (surviving members then re-tested drops) and scores that are a mix of a
/// tight cluster near 1.0 (the coherent mass radix sort must split on low
/// mantissa bytes) and a smooth spread.
struct ScoredColumn {
  std::vector<double> h;
  std::vector<int> gene;
  int split;
};

ScoredColumn MakeScoredColumn(int n, util::Prng* prng) {
  ScoredColumn col;
  col.split = n / 2;
  col.h.resize(static_cast<size_t>(n));
  col.gene.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    col.h[static_cast<size_t>(i)] = prng->Bernoulli(0.5)
                                        ? 1.0 + prng->Uniform(0.0, 1e-3)
                                        : prng->Uniform(0.0, 1.0);
    // Evens ascending, then odds ascending: both halves sorted by gene, as
    // RadixSortScored's merge precondition requires.
    col.gene[static_cast<size_t>(i)] =
        i < col.split ? 2 * i : 2 * (i - col.split) + 1;
  }
  return col;
}

void BM_RadixSortPhase(benchmark::State& state, bool dispatched) {
  const int n = static_cast<int>(state.range(0));
  const util::simd::SimdOps ops = OpsAt(BenchLevel(dispatched));
  constexpr int kPool = 64;  // rotate columns so none stays cache-resident
  util::Prng prng(2026);
  std::vector<ScoredColumn> pool;
  pool.reserve(kPool);
  for (int p = 0; p < kPool; ++p) pool.push_back(MakeScoredColumn(n, &prng));
  std::vector<int> order(static_cast<size_t>(n));
  std::vector<double> sorted_h(static_cast<size_t>(n));
  util::simd::SortScratch scratch;
  size_t p = 0;
  for (auto _ : state) {
    const ScoredColumn& col = pool[p];
    ops.sort_scored(col.h.data(), col.gene.data(), col.split, n, order.data(),
                    sorted_h.data(), &scratch);
    benchmark::DoNotOptimize(order.data());
    benchmark::ClobberMemory();
    p = (p + 1) % kPool;
  }
  state.SetItemsProcessed(state.iterations() * n);
}
// 80 sits in the miner's typical per-node range (n in [48, 96] on the
// reference dataset); 320 is the hybrid/full-LSD boundary; 2000 is the
// root-level sort of a large dataset.
BENCHMARK_CAPTURE(BM_RadixSortPhase, scalar, false)
    ->Arg(80)->Arg(320)->Arg(2000);
BENCHMARK_CAPTURE(BM_RadixSortPhase, dispatched, true)
    ->Arg(80)->Arg(320)->Arg(2000);

void BM_FilterKernel(benchmark::State& state, bool dispatched) {
  // FilterCandidate's dense pass: gather each surviving member's gene id,
  // denominator and numerator, then one vector divide.
  const int n = static_cast<int>(state.range(0));
  const util::simd::SimdOps ops = OpsAt(BenchLevel(dispatched));
  constexpr int kConds = 30;
  const int genes = 2 * n + 8;
  util::Prng prng(4242);
  std::vector<double> matrix(static_cast<size_t>(genes) * kConds);
  for (double& x : matrix) x = prng.Uniform(0.0, 10.0);
  std::vector<int> member_gene(static_cast<size_t>(n));
  std::vector<double> denoms(static_cast<size_t>(n));
  std::vector<double> bases(static_cast<size_t>(n));
  std::vector<int64_t> row_off(static_cast<size_t>(n));
  std::vector<int> idx(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    member_gene[static_cast<size_t>(i)] = 2 * i;  // sparse member subset
    row_off[static_cast<size_t>(i)] = static_cast<int64_t>(2 * i) * kConds;
    denoms[static_cast<size_t>(i)] = prng.Uniform(0.5, 2.0);
    bases[static_cast<size_t>(i)] =
        matrix[static_cast<size_t>(row_off[static_cast<size_t>(i)])];
    idx[static_cast<size_t>(i)] = i;
  }
  util::simd::GatherScoredArgs args;
  args.genes = member_gene.data();
  args.denoms = denoms.data();
  args.bases = bases.data();
  args.row_off = row_off.data();
  args.matrix = matrix.data();
  args.cand = kConds - 1;
  std::vector<int> out_gene(static_cast<size_t>(n));
  std::vector<double> out_denom(static_cast<size_t>(n));
  std::vector<double> out_h(static_cast<size_t>(n));
  for (auto _ : state) {
    ops.gather_scored(args, n, idx.data(), out_gene.data(), out_denom.data(),
                      out_h.data());
    ops.divide_columns(out_h.data(), out_denom.data(), n);
    benchmark::DoNotOptimize(out_h.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
// 80 ~ the average surviving-member count per extension on the reference
// dataset; 512 stresses the streaming regime.
BENCHMARK_CAPTURE(BM_FilterKernel, scalar, false)->Arg(80)->Arg(512);
BENCHMARK_CAPTURE(BM_FilterKernel, dispatched, true)->Arg(80)->Arg(512);

void BM_BitsetAndCount(benchmark::State& state, bool dispatched) {
  // The index row combine the miner leans on: dst = a & b, then the pruned
  // popcount a & ~b & mask.  At 1 word (a <= 64-condition matrix) the Auto
  // wrappers would bypass dispatch entirely; the wide rows are where the
  // vector kernels earn their keep.
  const int words = static_cast<int>(state.range(0));
  const util::simd::SimdOps ops = OpsAt(BenchLevel(dispatched));
  util::Prng prng(99);
  std::vector<uint64_t> a(static_cast<size_t>(words));
  std::vector<uint64_t> b(static_cast<size_t>(words));
  std::vector<uint64_t> mask(static_cast<size_t>(words));
  std::vector<uint64_t> dst(static_cast<size_t>(words));
  for (int w = 0; w < words; ++w) {
    a[static_cast<size_t>(w)] = prng.Next64();
    b[static_cast<size_t>(w)] = prng.Next64();
    mask[static_cast<size_t>(w)] = prng.Next64();
  }
  for (auto _ : state) {
    ops.and_words(dst.data(), a.data(), b.data(), words);
    const int64_t count =
        ops.andnot_mask_popcount(a.data(), b.data(), mask.data(), words);
    benchmark::DoNotOptimize(count);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * words);
}
BENCHMARK_CAPTURE(BM_BitsetAndCount, scalar, false)->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_BitsetAndCount, dispatched, true)->Arg(8)->Arg(64);

void BM_CoherenceScore(benchmark::State& state) {
  const std::vector<double> row = RandomProfile(64, 77);
  util::Prng prng(3);
  for (auto _ : state) {
    const int a = static_cast<int>(prng.UniformInt(0, 31));
    const int b = 32 + static_cast<int>(prng.UniformInt(0, 31));
    benchmark::DoNotOptimize(core::CoherenceScore(row.data(), a, b, b, a));
  }
}
BENCHMARK(BM_CoherenceScore);

void BM_HypergeomUpperTail(benchmark::State& state) {
  // Genome-scale enrichment query: k of 21 drawn, 60 of 6000 annotated.
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::HypergeomUpperTail(15, 6000, 60, 21));
  }
}
BENCHMARK(BM_HypergeomUpperTail);

void BM_ImputeKnn(benchmark::State& state) {
  const int genes = static_cast<int>(state.range(0));
  util::Prng prng(8);
  matrix::ExpressionMatrix m(genes, 17);
  for (int g = 0; g < genes; ++g) {
    for (int c = 0; c < 17; ++c) {
      m(g, c) = prng.Bernoulli(0.03)
                    ? std::numeric_limits<double>::quiet_NaN()
                    : prng.Uniform(0, 10);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(matrix::ImputeKnn(m, 10));
  }
}
BENCHMARK(BM_ImputeKnn)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_ValidateRegCluster(benchmark::State& state) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 500;
  cfg.num_conditions = 20;
  cfg.num_clusters = 1;
  cfg.avg_cluster_genes_fraction = 0.06;
  auto ds = synth::GenerateSynthetic(cfg);
  const core::RegCluster cluster = ds->implants[0].ToRegCluster();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ValidateRegCluster(ds->data, cluster, 0.1, 0.01));
  }
}
BENCHMARK(BM_ValidateRegCluster);

// Console output as usual, plus a machine-readable record of every
// completed run (name, per-iteration real/cpu time in the run's time unit).
class JsonSectionReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      rows_.push_back(bench::JsonObject({
          bench::JsonField("name", bench::JsonString(run.benchmark_name())),
          bench::JsonField("real_time", bench::JsonDouble(
                               run.GetAdjustedRealTime())),
          bench::JsonField("cpu_time", bench::JsonDouble(
                               run.GetAdjustedCPUTime())),
          bench::JsonField("time_unit", bench::JsonString(
                               benchmark::GetTimeUnitString(run.time_unit))),
          bench::JsonField("iterations",
                           bench::JsonInt(static_cast<int64_t>(
                               run.iterations))),
      }));
    }
  }

  const std::vector<std::string>& rows() const { return rows_; }

 private:
  std::vector<std::string> rows_;
};

}  // namespace
}  // namespace regcluster

int main(int argc, char** argv) {
  const std::string out_path = regcluster::bench::FlagValue(
      argc, argv, "bench_out", "BENCH_miner.json");
  benchmark::Initialize(&argc, argv);
  regcluster::JsonSectionReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  using regcluster::bench::JsonArray;
  using regcluster::bench::JsonField;
  using regcluster::bench::JsonObject;
  const std::string section =
      JsonObject({JsonField("benchmarks", JsonArray(reporter.rows()))});
  if (!regcluster::bench::UpsertBenchSection(out_path, "micro", section)) {
    std::fprintf(stderr, "WARNING: could not write %s\n", out_path.c_str());
  } else {
    std::printf("wrote section \"micro\" of %s\n", out_path.c_str());
  }
  if (!regcluster::bench::UpsertBenchSection(
          out_path, "provenance", regcluster::bench::ProvenanceObject())) {
    std::fprintf(stderr, "WARNING: could not write provenance to %s\n",
                 out_path.c_str());
  }
  return 0;
}
