// Micro-benchmarks (google-benchmark) for the core primitives: RWave model
// construction, regulation lookups, coherence scoring and end-to-end mining
// at several dataset sizes.  These back the cost model claimed in DESIGN.md
// (model build O(C log C) per gene, lookups O(log P)).  Besides the console
// table, every timing is appended machine-readably to the "micro" section of
// BENCH_miner.json (override the path with --bench_out=...).

#include <benchmark/benchmark.h>

#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/coherence.h"
#include "core/miner.h"
#include "core/rwave.h"
#include "matrix/transforms.h"
#include "synth/generator.h"
#include "util/math_util.h"
#include "util/prng.h"

namespace regcluster {
namespace {

std::vector<double> RandomProfile(int n, uint64_t seed) {
  util::Prng prng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = prng.Uniform(0, 10);
  return v;
}

void BM_RWaveBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> v = RandomProfile(n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::RWaveModel::Build(v.data(), n, 1.0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RWaveBuild)->Arg(17)->Arg(30)->Arg(100)->Arg(1000);

void BM_RWaveIsUpRegulated(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> v = RandomProfile(n, 43);
  const core::RWaveModel w = core::RWaveModel::Build(v.data(), n, 1.0);
  util::Prng prng(7);
  int a = 0, b = 1;
  for (auto _ : state) {
    a = static_cast<int>(prng.UniformInt(0, n - 1));
    b = static_cast<int>(prng.UniformInt(0, n - 1));
    benchmark::DoNotOptimize(w.IsUpRegulated(a, b));
  }
}
BENCHMARK(BM_RWaveIsUpRegulated)->Arg(30)->Arg(1000);

void BM_RWaveSetBuild(benchmark::State& state) {
  const int genes = static_cast<int>(state.range(0));
  synth::SyntheticConfig cfg;
  cfg.num_genes = genes;
  cfg.num_conditions = 30;
  cfg.num_clusters = 0;
  auto ds = synth::GenerateSynthetic(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::RWaveSet(ds->data, 0.1));
  }
  state.SetItemsProcessed(state.iterations() * genes);
}
BENCHMARK(BM_RWaveSetBuild)->Arg(500)->Arg(3000);

void BM_MineSynthetic(benchmark::State& state) {
  const int genes = static_cast<int>(state.range(0));
  synth::SyntheticConfig cfg;
  cfg.num_genes = genes;
  cfg.num_conditions = 30;
  cfg.num_clusters = std::max(1, genes / 100);
  cfg.seed = 99;
  auto ds = synth::GenerateSynthetic(cfg);
  core::MinerOptions opts;
  opts.min_genes = std::max(2, static_cast<int>(0.01 * genes));
  opts.min_conditions = 6;
  opts.gamma = 0.1;
  opts.epsilon = 0.01;
  for (auto _ : state) {
    core::RegClusterMiner miner(ds->data, opts);
    auto clusters = miner.Mine();
    benchmark::DoNotOptimize(clusters);
  }
}
BENCHMARK(BM_MineSynthetic)->Arg(500)->Arg(1500)->Arg(3000)
    ->Unit(benchmark::kMillisecond);

void BM_CoherenceWindowExtension(benchmark::State& state) {
  // The dominant inner operation: extending a chain over many genes.
  synth::SyntheticConfig cfg;
  cfg.num_genes = 2000;
  cfg.num_conditions = 20;
  cfg.num_clusters = 5;
  auto ds = synth::GenerateSynthetic(cfg);
  core::MinerOptions opts;
  opts.min_genes = 20;
  opts.min_conditions = 5;
  opts.gamma = 0.1;
  opts.epsilon = 0.05;
  for (auto _ : state) {
    core::RegClusterMiner miner(ds->data, opts);
    benchmark::DoNotOptimize(miner.Mine());
  }
}
BENCHMARK(BM_CoherenceWindowExtension)->Unit(benchmark::kMillisecond);

void BM_CoherenceScore(benchmark::State& state) {
  const std::vector<double> row = RandomProfile(64, 77);
  util::Prng prng(3);
  for (auto _ : state) {
    const int a = static_cast<int>(prng.UniformInt(0, 31));
    const int b = 32 + static_cast<int>(prng.UniformInt(0, 31));
    benchmark::DoNotOptimize(core::CoherenceScore(row.data(), a, b, b, a));
  }
}
BENCHMARK(BM_CoherenceScore);

void BM_HypergeomUpperTail(benchmark::State& state) {
  // Genome-scale enrichment query: k of 21 drawn, 60 of 6000 annotated.
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::HypergeomUpperTail(15, 6000, 60, 21));
  }
}
BENCHMARK(BM_HypergeomUpperTail);

void BM_ImputeKnn(benchmark::State& state) {
  const int genes = static_cast<int>(state.range(0));
  util::Prng prng(8);
  matrix::ExpressionMatrix m(genes, 17);
  for (int g = 0; g < genes; ++g) {
    for (int c = 0; c < 17; ++c) {
      m(g, c) = prng.Bernoulli(0.03)
                    ? std::numeric_limits<double>::quiet_NaN()
                    : prng.Uniform(0, 10);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(matrix::ImputeKnn(m, 10));
  }
}
BENCHMARK(BM_ImputeKnn)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_ValidateRegCluster(benchmark::State& state) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = 500;
  cfg.num_conditions = 20;
  cfg.num_clusters = 1;
  cfg.avg_cluster_genes_fraction = 0.06;
  auto ds = synth::GenerateSynthetic(cfg);
  const core::RegCluster cluster = ds->implants[0].ToRegCluster();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ValidateRegCluster(ds->data, cluster, 0.1, 0.01));
  }
}
BENCHMARK(BM_ValidateRegCluster);

// Console output as usual, plus a machine-readable record of every
// completed run (name, per-iteration real/cpu time in the run's time unit).
class JsonSectionReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      rows_.push_back(bench::JsonObject({
          bench::JsonField("name", bench::JsonString(run.benchmark_name())),
          bench::JsonField("real_time", bench::JsonDouble(
                               run.GetAdjustedRealTime())),
          bench::JsonField("cpu_time", bench::JsonDouble(
                               run.GetAdjustedCPUTime())),
          bench::JsonField("time_unit", bench::JsonString(
                               benchmark::GetTimeUnitString(run.time_unit))),
          bench::JsonField("iterations",
                           bench::JsonInt(static_cast<int64_t>(
                               run.iterations))),
      }));
    }
  }

  const std::vector<std::string>& rows() const { return rows_; }

 private:
  std::vector<std::string> rows_;
};

}  // namespace
}  // namespace regcluster

int main(int argc, char** argv) {
  const std::string out_path = regcluster::bench::FlagValue(
      argc, argv, "bench_out", "BENCH_miner.json");
  benchmark::Initialize(&argc, argv);
  regcluster::JsonSectionReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  using regcluster::bench::JsonArray;
  using regcluster::bench::JsonField;
  using regcluster::bench::JsonObject;
  const std::string section =
      JsonObject({JsonField("benchmarks", JsonArray(reporter.rows()))});
  if (!regcluster::bench::UpsertBenchSection(out_path, "micro", section)) {
    std::fprintf(stderr, "WARNING: could not write %s\n", out_path.c_str());
  } else {
    std::printf("wrote section \"micro\" of %s\n", out_path.c_str());
  }
  if (!regcluster::bench::UpsertBenchSection(
          out_path, "provenance", regcluster::bench::ProvenanceObject())) {
    std::fprintf(stderr, "WARNING: could not write provenance to %s\n",
                 out_path.c_str());
  }
  return 0;
}
