// Table 1 / Figures 2, 3, 6: the paper's running example, end to end.
//
// Prints the running dataset, the RWave^0.15 model of every gene
// (Figure 3), and the result of mining with gamma=0.15, epsilon=0.1,
// MinG=3, MinC=5 -- which must be exactly one reg-cluster, the chain
// c7 <- c9 <- c5 <- c1 <- c3 with p-members {g1, g3} and n-members {g2}
// (Figures 2 and 6).  Exits non-zero if the golden output is not matched.

#include <cstdio>

#include "core/coherence.h"
#include "core/miner.h"
#include "core/rwave.h"
#include "io/cluster_io.h"
#include "matrix/expression_matrix.h"
#include "util/string_util.h"

#include <iostream>

namespace regcluster {
namespace bench {
namespace {

matrix::ExpressionMatrix RunningDataset() {
  auto m = matrix::ExpressionMatrix::FromRows({
      {10, -14.5, 15, 10.5, 0, 14.5, -15, 0, -5, -5},
      {20, 15, 15, 43.5, 30, 44, 45, 43, 35, 20},
      {6, -3.8, 8, 6.2, 2, 7.8, -4, 2, 0, 0},
  });
  std::vector<std::string> genes{"g1", "g2", "g3"};
  std::vector<std::string> conds;
  for (int c = 1; c <= 10; ++c) conds.push_back(util::StrFormat("c%d", c));
  (void)m->SetGeneNames(genes);
  (void)m->SetConditionNames(conds);
  return *std::move(m);
}

int Main() {
  const auto data = RunningDataset();

  std::printf("== bench_running_example (Table 1, Figures 2/3/6) ==\n\n");
  std::printf("# Table 1: running dataset\n%-6s", "gene");
  for (int c = 0; c < data.num_conditions(); ++c) {
    std::printf("%7s", data.condition_name(c).c_str());
  }
  std::printf("\n");
  for (int g = 0; g < data.num_genes(); ++g) {
    std::printf("%-6s", data.gene_name(g).c_str());
    for (int c = 0; c < data.num_conditions(); ++c) {
      std::printf("%7.1f", data(g, c));
    }
    std::printf("\n");
  }

  std::printf("\n# Figure 3: RWave^0.15 models\n");
  core::RWaveSet waves(data, 0.15);
  for (int g = 0; g < data.num_genes(); ++g) {
    const core::RWaveModel& w = waves.model(g);
    std::printf("%s (gamma_i = %.2f): ", data.gene_name(g).c_str(),
                w.gamma_abs());
    for (int p = 0; p < w.num_conditions(); ++p) {
      std::printf("%s%s", p == 0 ? "" : " <= ",
                  data.condition_name(w.condition_at(p)).c_str());
    }
    std::printf("\n  pointers:");
    for (const auto& ptr : w.pointers()) {
      std::printf(" (%s <- %s)",
                  data.condition_name(w.condition_at(ptr.tail_pos)).c_str(),
                  data.condition_name(w.condition_at(ptr.head_pos)).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\n# Figure 6: mining with gamma=0.15, epsilon=0.1, MinG=3, MinC=5\n");
  core::MinerOptions opts;
  opts.min_genes = 3;
  opts.min_conditions = 5;
  opts.gamma = 0.15;
  opts.epsilon = 0.1;
  core::RegClusterMiner miner(data, opts);
  auto clusters = miner.Mine();
  if (!clusters.ok()) {
    std::fprintf(stderr, "miner failed: %s\n",
                 clusters.status().ToString().c_str());
    return 1;
  }
  const auto& stats = miner.stats();
  std::printf(
      "nodes=%lld extensions=%lld pruned{MinG=%lld, 3a=%lld, coherence=%lld, "
      "dup=%lld}\n",
      static_cast<long long>(stats.nodes_expanded),
      static_cast<long long>(stats.extensions_tested),
      static_cast<long long>(stats.pruned_min_genes),
      static_cast<long long>(stats.pruned_p_majority),
      static_cast<long long>(stats.pruned_coherence),
      static_cast<long long>(stats.pruned_duplicate));
  (void)io::WriteReport(*clusters, &data, std::cout);

  // Golden check.
  const std::vector<int> want_chain{6, 8, 4, 0, 2};
  if (clusters->size() != 1 || (*clusters)[0].chain != want_chain ||
      (*clusters)[0].p_genes != std::vector<int>{0, 2} ||
      (*clusters)[0].n_genes != std::vector<int>{1}) {
    std::fprintf(stderr, "GOLDEN MISMATCH: expected exactly the paper's "
                         "cluster c7<-c9<-c5<-c1<-c3 {g1,g3 | g2}\n");
    return 1;
  }
  std::printf("\nGOLDEN OK: output matches the paper's worked example.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace regcluster

int main() { return regcluster::bench::Main(); }
