// Figure 7: efficiency of the reg-cluster algorithm on synthetic datasets.
//
// Reproduces the three panels of Figure 7 -- average runtime while varying
// (a) the number of genes, (b) the number of conditions and (c) the number
// of embedded clusters, holding the other generator parameters at the
// paper's defaults (#g = 3000, #cond = 30, #clus = 30) and mining with
// MinG = 0.01 * #g, MinC = 6, gamma = 0.1, epsilon = 0.01.
//
// Usage:
//   bench_scalability                 # all three sweeps at --scale=1
//   bench_scalability --sweep=genes   # one panel
//   bench_scalability --scale=0.25    # shrink the dataset for quick runs
//
// Absolute numbers differ from the paper's 2006-era 3 GHz Windows PC; the
// claims under reproduction are the *shapes*: slightly superlinear in #g,
// superlinear in #cond, roughly linear in #clus (see EXPERIMENTS.md).
//
// A fourth, memory-capped scenario exercises the out-of-core path at
// genome scale and records its peak RSS into BENCH_miner.json:
//   bench_scalability --sweep=outofcore --oc-genes=100000 --oc-cache-mb=64
// The dataset is written to disk in the binary matrix format, mined through
// an mmap-backed MappedMatrix with a bounded model cache, and the
// "scalability" section (gated by tools/bench_check.py --max-peak-rss)
// reports wall time, peak RSS and the cache counters.

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>

#include "bench_common.h"
#include "bench_json.h"
#include "io/gnuplot.h"
#include "matrix/store.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace regcluster {
namespace bench {
namespace {

struct RunResult {
  double seconds = 0.0;
  int64_t clusters = 0;
  double recovery = 0.0;
};

RunResult RunOnce(int num_genes, int num_conditions, int num_clusters,
                  uint64_t seed) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = num_genes;
  cfg.num_conditions = num_conditions;
  cfg.num_clusters = num_clusters;
  cfg.seed = seed;
  auto ds = synth::GenerateSynthetic(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator: %s\n", ds.status().ToString().c_str());
    std::exit(1);
  }

  core::MinerOptions opts;
  opts.min_genes = std::max(2, static_cast<int>(0.01 * num_genes));
  opts.min_conditions = 6;
  opts.gamma = 0.1;
  opts.epsilon = 0.01;
  core::RegClusterMiner miner(ds->data, opts);

  util::WallTimer timer;
  auto clusters = miner.Mine();
  RunResult r;
  r.seconds = timer.ElapsedSeconds();
  if (!clusters.ok()) {
    std::fprintf(stderr, "miner: %s\n", clusters.status().ToString().c_str());
    std::exit(1);
  }
  r.clusters = static_cast<int64_t>(clusters->size());
  r.recovery = eval::CellMatchScore(Footprints(*ds), Footprints(*clusters));
  return r;
}

void Sweep(const char* name, const std::vector<int>& values, double scale,
           int repeats, int which, const std::string& out_dir) {
  std::printf("\n# Figure 7(%c): runtime vs %s\n",
              static_cast<char>('a' + which), name);
  std::printf("%-12s %12s %10s %10s\n", name, "runtime_s", "clusters",
              "recovery");
  io::DataSeries runtime_series;
  runtime_series.name = "reg-cluster";
  for (int v : values) {
    double total = 0.0;
    RunResult last;
    for (int rep = 0; rep < repeats; ++rep) {
      const int g = static_cast<int>(
          scale * (which == 0 ? v : 3000));
      const int c = which == 1 ? v : 30;
      const int k = static_cast<int>(
          scale * (which == 2 ? v : 30));
      last = RunOnce(std::max(g, 50), c, std::max(k, 1),
                     1000 + static_cast<uint64_t>(v) * 7 +
                         static_cast<uint64_t>(rep));
      total += last.seconds;
    }
    std::printf("%-12d %12.4f %10lld %10.3f\n", v, total / repeats,
                static_cast<long long>(last.clusters), last.recovery);
    runtime_series.points.push_back({static_cast<double>(v), total / repeats});
  }
  if (!out_dir.empty()) {
    io::PlotSpec spec;
    spec.title = util::StrFormat("Figure 7(%c): runtime vs %s",
                                 static_cast<char>('a' + which), name);
    spec.xlabel = name;
    spec.ylabel = "seconds";
    const std::string stem = util::StrFormat("fig7%c",
                                             static_cast<char>('a' + which));
    auto st = io::WriteFigure(spec, {runtime_series}, out_dir, stem);
    if (!st.ok()) {
      std::fprintf(stderr, "figure emission: %s\n", st.ToString().c_str());
    } else {
      std::printf("(figure archived: %s/%s.dat + .gp)\n", out_dir.c_str(),
                  stem.c_str());
    }
  }
}

/// High-water resident set of this process, in bytes.
int64_t PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<int64_t>(ru.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<int64_t>(ru.ru_maxrss) * 1024;  // kilobytes on Linux
#endif
}

int RunOutOfCore(int argc, char** argv) {
  const int genes = IntFlag(argc, argv, "oc-genes", 100000);
  const int conditions = IntFlag(argc, argv, "oc-conditions", 40);
  const int implants = IntFlag(argc, argv, "oc-clusters", 30);
  const int cache_mb = IntFlag(argc, argv, "oc-cache-mb", 64);
  const int shards = IntFlag(argc, argv, "oc-shards", 8);
  const int threads = IntFlag(argc, argv, "oc-threads", 1);
  const uint64_t seed =
      static_cast<uint64_t>(IntFlag(argc, argv, "oc-seed", 2026));
  const std::string bench_json =
      FlagValue(argc, argv, "bench-json", "BENCH_miner.json");
  const std::string matrix_path = FlagValue(
      argc, argv, "oc-matrix", "/tmp/regcluster_bench_outofcore.rgx");

  std::printf("\n# out-of-core: %d x %d, cache %d MiB over %d shards\n",
              genes, conditions, cache_mb, shards);

  util::WallTimer total_timer;
  int64_t file_bytes = 0;
  {
    // Generate and spill inside a scope so the resident copy is freed
    // before mining; the high-water mark then reflects the mining path,
    // not the generator.
    synth::SyntheticConfig cfg;
    cfg.num_genes = genes;
    cfg.num_conditions = conditions;
    cfg.num_clusters = implants;
    cfg.seed = seed;
    auto ds = synth::GenerateSynthetic(cfg);
    if (!ds.ok()) {
      std::fprintf(stderr, "generator: %s\n", ds.status().ToString().c_str());
      return 1;
    }
    if (auto st = matrix::WriteBinaryMatrix(ds->data, matrix_path);
        !st.ok()) {
      std::fprintf(stderr, "spill: %s\n", st.ToString().c_str());
      return 1;
    }
    file_bytes = static_cast<int64_t>(ds->data.num_genes()) *
                     ds->data.num_conditions() *
                     static_cast<int64_t>(sizeof(double));
  }
  const double generate_seconds = total_timer.ElapsedSeconds();

  auto mapped = matrix::MappedMatrix::Open(matrix_path);
  if (!mapped.ok()) {
    std::fprintf(stderr, "map: %s\n", mapped.status().ToString().c_str());
    return 1;
  }

  core::MinerOptions opts;
  opts.min_genes = std::max(2, static_cast<int>(0.01 * genes));
  opts.min_conditions = 6;
  opts.gamma = 0.1;
  opts.epsilon = 0.01;
  opts.num_threads = threads;
  opts.model_cache_bytes = static_cast<int64_t>(cache_mb) << 20;
  opts.model_cache_shards = shards;

  util::WallTimer mine_timer;
  core::RegClusterMiner miner(*mapped, opts);
  auto clusters = miner.Mine();
  const double mine_seconds = mine_timer.ElapsedSeconds();
  if (!clusters.ok()) {
    std::fprintf(stderr, "miner: %s\n", clusters.status().ToString().c_str());
    return 1;
  }
  const auto& outcome = miner.outcome();
  const int64_t peak_rss = PeakRssBytes();

  std::printf("%-24s %12.3f s\n", "generate+spill", generate_seconds);
  std::printf("%-24s %12.3f s\n", "mine (mapped)", mine_seconds);
  std::printf("%-24s %12lld\n", "clusters",
              static_cast<long long>(clusters->size()));
  std::printf("%-24s %12.1f MiB\n", "peak RSS",
              static_cast<double>(peak_rss) / (1 << 20));
  std::printf("%-24s %12.1f MiB mapped, %.1f MiB models\n", "footprint",
              static_cast<double>(outcome.mapped_bytes) / (1 << 20),
              static_cast<double>(outcome.model_bytes) / (1 << 20));
  std::printf("%-24s %12lld hits, %lld misses, %lld evictions\n", "cache",
              static_cast<long long>(outcome.model_cache_hits),
              static_cast<long long>(outcome.model_cache_misses),
              static_cast<long long>(outcome.model_cache_evictions));

  const std::string section = JsonObject({
      JsonField("dataset",
                JsonObject({JsonField("genes", JsonInt(genes)),
                            JsonField("conditions", JsonInt(conditions)),
                            JsonField("implanted_clusters", JsonInt(implants)),
                            JsonField("seed",
                                      JsonInt(static_cast<int64_t>(seed)))})),
      JsonField("cache_budget_bytes", JsonInt(opts.model_cache_bytes)),
      JsonField("cache_shards", JsonInt(shards)),
      JsonField("threads", JsonInt(threads)),
      JsonField("matrix_file_bytes", JsonInt(file_bytes)),
      JsonField("generate_seconds", JsonDouble(generate_seconds)),
      JsonField("mine_wall_seconds", JsonDouble(mine_seconds)),
      JsonField("clusters", JsonInt(static_cast<int64_t>(clusters->size()))),
      JsonField("peak_rss_bytes", JsonInt(peak_rss)),
      JsonField("mapped_bytes", JsonInt(outcome.mapped_bytes)),
      JsonField("model_bytes", JsonInt(outcome.model_bytes)),
      JsonField("model_cache_hits", JsonInt(outcome.model_cache_hits)),
      JsonField("model_cache_misses", JsonInt(outcome.model_cache_misses)),
      JsonField("model_cache_evictions",
                JsonInt(outcome.model_cache_evictions)),
      JsonField("model_cache_resident_bytes",
                JsonInt(outcome.model_cache_resident_bytes)),
  });
  if (!UpsertBenchSection(bench_json, "scalability", section) ||
      !UpsertBenchSection(bench_json, "provenance", ProvenanceObject())) {
    std::fprintf(stderr, "cannot write %s\n", bench_json.c_str());
    return 1;
  }
  std::printf("(scalability section upserted into %s)\n", bench_json.c_str());
  std::remove(matrix_path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  const std::string sweep = FlagValue(argc, argv, "sweep", "all");
  const double scale = DoubleFlag(argc, argv, "scale", 1.0);
  const int repeats = IntFlag(argc, argv, "repeats", 2);
  const std::string out_dir = FlagValue(argc, argv, "out-dir", "");

  if (sweep == "outofcore") return RunOutOfCore(argc, argv);

  std::printf("== bench_scalability (Figure 7) ==\n");
  std::printf(
      "generator defaults scaled by %.2f; mining MinG=0.01*#g, MinC=6, "
      "gamma=0.1, epsilon=0.01\n",
      scale);

  if (sweep == "all" || sweep == "genes") {
    Sweep("genes", {1000, 2000, 3000, 4000, 5000}, scale, repeats, 0,
          out_dir);
  }
  if (sweep == "all" || sweep == "conditions") {
    Sweep("conditions", {10, 20, 30, 40, 50}, scale, repeats, 1, out_dir);
  }
  if (sweep == "all" || sweep == "clusters") {
    Sweep("clusters", {10, 20, 30, 40, 50}, scale, repeats, 2, out_dir);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace regcluster

int main(int argc, char** argv) {
  return regcluster::bench::Main(argc, argv);
}
