// Figure 7: efficiency of the reg-cluster algorithm on synthetic datasets.
//
// Reproduces the three panels of Figure 7 -- average runtime while varying
// (a) the number of genes, (b) the number of conditions and (c) the number
// of embedded clusters, holding the other generator parameters at the
// paper's defaults (#g = 3000, #cond = 30, #clus = 30) and mining with
// MinG = 0.01 * #g, MinC = 6, gamma = 0.1, epsilon = 0.01.
//
// Usage:
//   bench_scalability                 # all three sweeps at --scale=1
//   bench_scalability --sweep=genes   # one panel
//   bench_scalability --scale=0.25    # shrink the dataset for quick runs
//
// Absolute numbers differ from the paper's 2006-era 3 GHz Windows PC; the
// claims under reproduction are the *shapes*: slightly superlinear in #g,
// superlinear in #cond, roughly linear in #clus (see EXPERIMENTS.md).

#include <cstdio>

#include "bench_common.h"
#include "io/gnuplot.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace regcluster {
namespace bench {
namespace {

struct RunResult {
  double seconds = 0.0;
  int64_t clusters = 0;
  double recovery = 0.0;
};

RunResult RunOnce(int num_genes, int num_conditions, int num_clusters,
                  uint64_t seed) {
  synth::SyntheticConfig cfg;
  cfg.num_genes = num_genes;
  cfg.num_conditions = num_conditions;
  cfg.num_clusters = num_clusters;
  cfg.seed = seed;
  auto ds = synth::GenerateSynthetic(cfg);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator: %s\n", ds.status().ToString().c_str());
    std::exit(1);
  }

  core::MinerOptions opts;
  opts.min_genes = std::max(2, static_cast<int>(0.01 * num_genes));
  opts.min_conditions = 6;
  opts.gamma = 0.1;
  opts.epsilon = 0.01;
  core::RegClusterMiner miner(ds->data, opts);

  util::WallTimer timer;
  auto clusters = miner.Mine();
  RunResult r;
  r.seconds = timer.ElapsedSeconds();
  if (!clusters.ok()) {
    std::fprintf(stderr, "miner: %s\n", clusters.status().ToString().c_str());
    std::exit(1);
  }
  r.clusters = static_cast<int64_t>(clusters->size());
  r.recovery = eval::CellMatchScore(Footprints(*ds), Footprints(*clusters));
  return r;
}

void Sweep(const char* name, const std::vector<int>& values, double scale,
           int repeats, int which, const std::string& out_dir) {
  std::printf("\n# Figure 7(%c): runtime vs %s\n",
              static_cast<char>('a' + which), name);
  std::printf("%-12s %12s %10s %10s\n", name, "runtime_s", "clusters",
              "recovery");
  io::DataSeries runtime_series;
  runtime_series.name = "reg-cluster";
  for (int v : values) {
    double total = 0.0;
    RunResult last;
    for (int rep = 0; rep < repeats; ++rep) {
      const int g = static_cast<int>(
          scale * (which == 0 ? v : 3000));
      const int c = which == 1 ? v : 30;
      const int k = static_cast<int>(
          scale * (which == 2 ? v : 30));
      last = RunOnce(std::max(g, 50), c, std::max(k, 1),
                     1000 + static_cast<uint64_t>(v) * 7 +
                         static_cast<uint64_t>(rep));
      total += last.seconds;
    }
    std::printf("%-12d %12.4f %10lld %10.3f\n", v, total / repeats,
                static_cast<long long>(last.clusters), last.recovery);
    runtime_series.points.push_back({static_cast<double>(v), total / repeats});
  }
  if (!out_dir.empty()) {
    io::PlotSpec spec;
    spec.title = util::StrFormat("Figure 7(%c): runtime vs %s",
                                 static_cast<char>('a' + which), name);
    spec.xlabel = name;
    spec.ylabel = "seconds";
    const std::string stem = util::StrFormat("fig7%c",
                                             static_cast<char>('a' + which));
    auto st = io::WriteFigure(spec, {runtime_series}, out_dir, stem);
    if (!st.ok()) {
      std::fprintf(stderr, "figure emission: %s\n", st.ToString().c_str());
    } else {
      std::printf("(figure archived: %s/%s.dat + .gp)\n", out_dir.c_str(),
                  stem.c_str());
    }
  }
}

int Main(int argc, char** argv) {
  const std::string sweep = FlagValue(argc, argv, "sweep", "all");
  const double scale = DoubleFlag(argc, argv, "scale", 1.0);
  const int repeats = IntFlag(argc, argv, "repeats", 2);
  const std::string out_dir = FlagValue(argc, argv, "out-dir", "");

  std::printf("== bench_scalability (Figure 7) ==\n");
  std::printf(
      "generator defaults scaled by %.2f; mining MinG=0.01*#g, MinC=6, "
      "gamma=0.1, epsilon=0.01\n",
      scale);

  if (sweep == "all" || sweep == "genes") {
    Sweep("genes", {1000, 2000, 3000, 4000, 5000}, scale, repeats, 0,
          out_dir);
  }
  if (sweep == "all" || sweep == "conditions") {
    Sweep("conditions", {10, 20, 30, 40, 50}, scale, repeats, 1, out_dir);
  }
  if (sweep == "all" || sweep == "clusters") {
    Sweep("clusters", {10, 20, 30, 40, 50}, scale, repeats, 2, out_dir);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace regcluster

int main(int argc, char** argv) {
  return regcluster::bench::Main(argc, argv);
}
