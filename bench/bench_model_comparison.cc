// Model comparison (Sections 1.1 / 3.3 claims): which cluster models can
// recover which pattern families?
//
// The paper argues that pCluster / delta-cluster handle only pure shifting,
// TriCluster-style models only pure positive scaling, tendency models have
// no coherence or regulation guarantee, and none handle negative
// correlation -- while reg-cluster handles the general shifting-and-scaling
// family including negative scaling.  This harness implants one pattern
// family at a time into background noise and reports each miner's cell-level
// recovery of the implants:
//
//   pattern family      reg-cluster   pCluster   scaling   OP-cluster
//   pure shifting           high         high       low        high*
//   pure scaling            high         low        high       high*
//   shift-and-scale         high         low        low        high*
//   negative mixed          high         low        low        low
//
// (*tendency recovers gene sets but over-broad condition sets and with no
// coherence guarantee; its relevance column exposes that.)

#include <algorithm>
#include <cstdio>

#include "baselines/cheng_church.h"
#include "baselines/floc.h"
#include "baselines/fullspace.h"
#include "baselines/opcluster.h"
#include "baselines/opsm.h"
#include "baselines/pcluster.h"
#include "baselines/scaling_cluster.h"
#include "bench_common.h"
#include "util/prng.h"

namespace regcluster {
namespace bench {
namespace {

enum class Family { kShift, kScale, kShiftScale, kNegativeMixed };

const char* FamilyName(Family f) {
  switch (f) {
    case Family::kShift:
      return "pure-shifting";
    case Family::kScale:
      return "pure-scaling";
    case Family::kShiftScale:
      return "shift-and-scale";
    case Family::kNegativeMixed:
      return "negative-mixed";
  }
  return "?";
}

/// Builds a dataset with `num_implants` implanted clusters of the given
/// family over a uniform background, and returns truth footprints.
struct FamilyDataset {
  matrix::ExpressionMatrix data;
  std::vector<core::Bicluster> truth;
};

FamilyDataset MakeFamilyDataset(Family family, uint64_t seed) {
  const int kGenes = 200, kConds = 16, kImplants = 3, kPerCluster = 10,
            kChain = 6;
  util::Prng prng(seed);
  FamilyDataset out;
  out.data = matrix::ExpressionMatrix(kGenes, kConds);
  for (int g = 0; g < kGenes; ++g) {
    for (int c = 0; c < kConds; ++c) out.data(g, c) = prng.Uniform(0, 10);
  }

  std::vector<int> pool(kGenes);
  for (int g = 0; g < kGenes; ++g) pool[static_cast<size_t>(g)] = g;
  prng.Shuffle(&pool);
  size_t next = 0;

  for (int k = 0; k < kImplants; ++k) {
    std::vector<int> conds = prng.SampleWithoutReplacement(kConds, kChain);
    prng.Shuffle(&conds);
    // Base profile spanning well past the background, steps >= 15% of span.
    std::vector<double> base(kChain);
    base[0] = 0.0;
    for (int i = 1; i < kChain; ++i) {
      base[static_cast<size_t>(i)] =
          base[static_cast<size_t>(i - 1)] + prng.Uniform(4.5, 8.0);
    }
    core::Bicluster footprint;
    for (int gi = 0; gi < kPerCluster; ++gi) {
      const int gene = pool[next++];
      footprint.genes.push_back(gene);
      double s1 = 1.0, s2 = 0.0;
      switch (family) {
        case Family::kShift:
          s1 = 1.0;
          s2 = prng.Uniform(-10, 10);
          break;
        case Family::kScale:
          s1 = prng.Uniform(0.5, 2.0);
          s2 = 0.0;
          break;
        case Family::kShiftScale:
          s1 = prng.Uniform(0.5, 2.0);
          s2 = prng.Uniform(-10, 10);
          break;
        case Family::kNegativeMixed:
          s1 = (gi % 2 == 0 ? 1.0 : -1.0) * prng.Uniform(0.5, 2.0);
          s2 = prng.Uniform(-10, 10) + (s1 < 0 ? 40.0 : 0.0);
          break;
      }
      for (int i = 0; i < kChain; ++i) {
        out.data(gene, conds[static_cast<size_t>(i)]) =
            s1 * base[static_cast<size_t>(i)] + s2;
      }
    }
    std::sort(footprint.genes.begin(), footprint.genes.end());
    footprint.conditions = conds;
    std::sort(footprint.conditions.begin(), footprint.conditions.end());
    out.truth.push_back(std::move(footprint));
  }
  return out;
}

struct Row {
  double regcluster = 0, pcluster = 0, scaling = 0, opcluster = 0;
  double opsm = 0, cheng_church = 0, floc = 0, kmeans = 0;
};

Row Evaluate(Family family, uint64_t seed) {
  const FamilyDataset ds = MakeFamilyDataset(family, seed);
  Row row;

  {
    core::MinerOptions o;
    o.min_genes = 5;
    o.min_conditions = 5;
    o.gamma = 0.08;
    o.epsilon = 0.05;
    o.remove_dominated = true;
    auto found = core::RegClusterMiner(ds.data, o).Mine();
    if (found.ok()) {
      row.regcluster = eval::CellMatchScore(ds.truth, Footprints(*found));
    }
  }
  {
    baselines::PClusterOptions o;
    o.delta = 0.8;
    o.min_genes = 5;
    o.min_conditions = 5;
    o.max_nodes = 500000;
    auto found = baselines::PClusterMiner(ds.data, o).Mine();
    if (found.ok()) row.pcluster = eval::CellMatchScore(ds.truth, *found);
  }
  {
    baselines::ScalingClusterOptions o;
    o.epsilon = 0.08;
    o.min_genes = 5;
    o.min_conditions = 5;
    o.max_nodes = 500000;
    auto found = baselines::ScalingClusterMiner(ds.data, o).Mine();
    if (found.ok()) row.scaling = eval::CellMatchScore(ds.truth, *found);
  }
  {
    baselines::OpClusterOptions o;
    o.min_genes = 8;
    o.min_conditions = 5;
    o.max_nodes = 500000;
    auto found = baselines::OpClusterMiner(ds.data, o).Mine();
    if (found.ok()) {
      std::vector<core::Bicluster> feet;
      for (const auto& c : *found) feet.push_back(c.ToBicluster());
      row.opcluster = eval::CellMatchScore(ds.truth, feet);
    }
  }
  {
    baselines::OpsmOptions o;
    o.sequence_length = 5;
    o.beam_width = 100;
    o.max_models = 6;
    auto found = baselines::MineOpsm(ds.data, o);
    if (found.ok()) {
      std::vector<core::Bicluster> feet;
      for (const auto& model : *found) {
        feet.push_back(model.ToOpCluster().ToBicluster());
      }
      row.opsm = eval::CellMatchScore(ds.truth, feet);
    }
  }
  {
    baselines::ChengChurchOptions o;
    o.delta = 0.05;  // pure-shifting blocks score MSR ~ 0
    o.num_biclusters = 6;
    auto found = baselines::MineChengChurch(ds.data, o);
    if (found.ok()) row.cheng_church = eval::CellMatchScore(ds.truth, *found);
  }
  {
    baselines::FlocOptions o;
    o.num_clusters = 6;
    o.init_row_probability = 0.08;
    o.init_col_probability = 0.4;
    o.max_sweeps = 100;
    auto found = baselines::MineFloc(ds.data, o);
    if (found.ok()) row.floc = eval::CellMatchScore(ds.truth, *found);
  }
  {
    baselines::KMeansOptions o;
    o.k = 6;
    auto found = baselines::KMeansRows(ds.data, o);
    if (found.ok()) {
      row.kmeans = eval::CellMatchScore(
          ds.truth, baselines::ToFullSpaceBiclusters(
                        found->clusters, ds.data.num_conditions()));
    }
  }
  return row;
}

int Main(int argc, char** argv) {
  const uint64_t seed = static_cast<uint64_t>(IntFlag(argc, argv, "seed", 7));
  std::printf("== bench_model_comparison (Sections 1.1 / 3.3) ==\n");
  std::printf("cell-level recovery of 3 implanted 10x6 clusters per family\n\n");
  std::printf("%-18s %12s %10s %9s %11s %6s %8s %7s %8s\n",
              "pattern family", "reg-cluster", "pCluster", "scaling",
              "OP-cluster", "OPSM", "ChengCh", "FLOC", "k-means");
  const Family families[] = {Family::kShift, Family::kScale,
                             Family::kShiftScale, Family::kNegativeMixed};
  bool ok = true;
  for (Family f : families) {
    const Row r = Evaluate(f, seed);
    std::printf("%-18s %12.3f %10.3f %9.3f %11.3f %6.3f %8.3f %7.3f %8.3f\n",
                FamilyName(f), r.regcluster, r.pcluster, r.scaling,
                r.opcluster, r.opsm, r.cheng_church, r.floc, r.kmeans);
    if (r.regcluster < 0.5) ok = false;
    if (f == Family::kShiftScale && (r.pcluster > 0.3 || r.scaling > 0.3)) {
      ok = false;
    }
    if (f == Family::kNegativeMixed && (r.pcluster > 0.3 || r.scaling > 0.3)) {
      ok = false;
    }
  }
  std::printf(
      "\nexpected shape: reg-cluster high everywhere; pCluster only on "
      "pure-shifting; scaling only on pure-scaling; OP-cluster ignores "
      "coherence (condition sets over-broad) and misses negative mixing.\n"
      "Cheng-Church / FLOC scores near zero are the classic greedy-MSR "
      "failure on small implanted modules (cf. Prelic et al. 2006): their "
      "global deletion / local moves have no mechanism to isolate a 10x6 "
      "block among 200 noise genes.  k-means sees only full-space "
      "distance.\n");
  if (!ok) {
    std::fprintf(stderr, "FAILED: comparison shape does not match the "
                         "paper's claims\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace regcluster

int main(int argc, char** argv) {
  return regcluster::bench::Main(argc, argv);
}
