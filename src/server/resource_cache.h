// Byte-budgeted two-level LRU over the daemon's reusable heavyweights:
// loaded matrices and baked SharedGammaModels.
//
// Level 1 is keyed by the matrix path and holds the storage handle (a
// resident ExpressionMatrix for text inputs, an mmap-backed MappedMatrix
// for the binary format) together with its content hash -- the same
// io::HashMatrixContent fingerprint the checkpoint layer binds snapshots
// to, and identical across the resident and mapped paths.  Level 2 is
// keyed by (content hash, gamma policy, gamma): everything a
// SharedGammaModel depends on.  Keying models by *content* rather than
// path means a matrix reachable under two paths (or re-converted to the
// binary format) still shares one model.
//
// Models are reusable across MinC because the bitmap index clamps chain
// requirements into its build ceiling: an entry built with
// max_chain_need = K answers every request with MinC <= K bit-identically
// (see SharedGammaModel).  A request needing a larger ceiling replaces the
// entry -- counted as a miss plus an eviction -- exactly like the sweep
// engine's largest-MinC build, amortized across requests instead of
// across sweep points.
//
// Both levels share one byte budget and one global LRU order.  Handles
// are shared_ptr: eviction merely drops the cache's reference, so an
// in-flight mine pinning a model keeps it alive after its entry is gone
// (the server_concurrency_test eviction-under-load case).  All operations
// run under a single mutex; loads and model builds happen *inside* the
// critical section, which serializes concurrent misses on the same key
// into one build and makes the hit/miss counters a pure function of the
// request order.

#ifndef REGCLUSTER_SERVER_RESOURCE_CACHE_H_
#define REGCLUSTER_SERVER_RESOURCE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/miner.h"
#include "core/threshold.h"
#include "matrix/store.h"
#include "util/hash128.h"
#include "util/status.h"

namespace regcluster {
namespace server {

class ResourceCache {
 public:
  struct Options {
    /// Combined budget over matrix handles and models.  Eviction runs from
    /// the global LRU tail until resident bytes fit; the most recently
    /// touched entry always survives (one-entry floor, as in
    /// core::ModelCache), so a single oversized matrix still mines.
    int64_t byte_budget = int64_t{256} << 20;
    /// Threads for model builds (0 = hardware concurrency).
    int build_threads = 1;
  };

  /// Deterministic given the request order (see file comment).
  struct Stats {
    int64_t matrix_hits = 0;
    int64_t matrix_misses = 0;
    int64_t model_hits = 0;
    int64_t model_misses = 0;
    int64_t evictions = 0;
    /// Entries dropped by InvalidateAppend (never double-counted as
    /// evictions).
    int64_t invalidations = 0;
    int64_t resident_bytes = 0;
  };

  /// A pinned level-1 entry: the storage handle plus its content hash and
  /// the cache generation it was loaded under (stale once the path is
  /// invalidated; see InvalidateAppend).
  struct MatrixHandle {
    std::shared_ptr<const matrix::MatrixStore> store;
    util::Hash128 content_hash{0, 0};
    int64_t bytes = 0;
    uint64_t generation = 0;
  };

  explicit ResourceCache(const Options& options) : options_(options) {}

  ResourceCache(const ResourceCache&) = delete;
  ResourceCache& operator=(const ResourceCache&) = delete;

  /// Loads (or reuses) the matrix at `path`.  The binary magic is sniffed:
  /// binary matrices map, text matrices load resident.  Missing values are
  /// FailedPrecondition -- the service has no impute step; callers prepare
  /// inputs with `regcluster convert`.  Load failures are not cached.
  /// `hit` (optional) reports whether an existing entry served the request.
  util::StatusOr<std::shared_ptr<const MatrixHandle>> GetMatrix(
      const std::string& path, bool* hit = nullptr);

  /// Returns a model for `spec` over the matrix behind `handle`, built with
  /// an index ceiling of at least `max_chain_need`.  `hit` (optional)
  /// reports whether an existing entry served the request.
  util::StatusOr<std::shared_ptr<const core::SharedGammaModel>> GetModel(
      const std::shared_ptr<const MatrixHandle>& handle,
      const core::GammaSpec& spec, int max_chain_need, bool* hit = nullptr);

  /// Drops the level-1 entry for `path` and -- through its content hash --
  /// every level-2 model derived from that matrix, leaving all other
  /// entries (other paths, other matrices' models) untouched.  Bumps the
  /// cache generation so handles pinned before the call are identifiable
  /// as stale.  Called by the daemon's append endpoint after the file on
  /// disk was widened; the next request on the path reloads and rebuilds.
  /// Returns the number of entries dropped (0 when the path was not
  /// cached -- still a generation bump, since the file changed).
  int InvalidateAppend(const std::string& path);

  /// Monotone generation tag, bumped by InvalidateAppend().
  uint64_t generation() const;

  Stats stats() const;

 private:
  struct ModelKey {
    util::Hash128 matrix_hash{0, 0};
    core::GammaPolicy policy = core::GammaPolicy::kRangeFraction;
    double gamma = 0.0;
    bool operator==(const ModelKey& o) const;
  };
  struct ModelKeyHasher {
    size_t operator()(const ModelKey& k) const;
  };

  /// One slot in the global LRU: exactly one of the two payloads is set.
  struct Entry {
    std::string path;  // level-1 key ("" for models)
    ModelKey model_key;
    bool is_model = false;
    int64_t bytes = 0;
    std::shared_ptr<const MatrixHandle> matrix;
    std::shared_ptr<const core::SharedGammaModel> model;
  };

  using LruList = std::list<Entry>;

  void Touch(LruList::iterator it);
  void Insert(Entry entry);
  void EvictToBudget();

  const Options options_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> by_path_;
  std::unordered_map<ModelKey, LruList::iterator, ModelKeyHasher> by_model_;
  Stats stats_;
  uint64_t generation_ = 0;  // bumped by InvalidateAppend
};

}  // namespace server
}  // namespace regcluster

#endif  // REGCLUSTER_SERVER_RESOURCE_CACHE_H_
