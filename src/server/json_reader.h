// Minimal JSON value reader for the service request bodies.
//
// The io layer is writer-heavy (json_export, sweep_io, metrics_export all
// *emit* JSON); the daemon is the first consumer that must *accept* JSON
// from untrusted clients, so parsing lives here with the rest of the
// attack surface.  The reader covers the full JSON grammar -- objects,
// arrays, strings with escapes, numbers, booleans, null -- because a
// protocol endpoint cannot dictate the shape of hostile input, but it is
// deliberately small: a tree of owning JsonValue nodes, a recursion-depth
// cap against stack exhaustion, and InvalidArgument errors carrying the
// byte offset (mirroring the matrix_io malformed-input contract).

#ifndef REGCLUSTER_SERVER_JSON_READER_H_
#define REGCLUSTER_SERVER_JSON_READER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace regcluster {
namespace server {

/// One parsed JSON value.  A tagged struct (not std::variant) keeps
/// accessors cheap and the error paths explicit.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  /// Object members in source order (duplicate keys are a parse error).
  std::vector<std::pair<std::string, JsonValue>> members;
  std::vector<JsonValue> elements;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_bool() const { return kind == Kind::kBool; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses `text` as exactly one JSON value (trailing bytes are an error).
/// Nesting beyond 64 levels, duplicate object keys, unpaired surrogates
/// and every grammar violation return InvalidArgument with a byte offset.
util::StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace server
}  // namespace regcluster

#endif  // REGCLUSTER_SERVER_JSON_READER_H_
