// The long-lived socket daemon behind `regcluster serve`: binds a TCP port
// and/or a unix socket, accepts connections, sniffs the transport (HTTP vs
// length-prefixed binary, see server/protocol.h) and dispatches requests
// into the MiningService.
//
// Threading: one thread per connection, bounded indirectly by the
// service's admission control (a connection over the limits gets a shed
// response, not a thread convoy -- parsing and shedding are cheap).  The
// accept loop polls the listening sockets plus a self-pipe.
//
// Shutdown contract (the cli_serve lifecycle test): RequestShutdown() is
// async-signal-safe (one write to the self-pipe), so the CLI's SIGTERM /
// SIGINT handler may call it directly.  The accept loop then stops
// accepting, half-closes every open connection for reading (in-flight
// requests complete and their responses are written; no new requests are
// read), joins the connection threads, and Run() returns -- a clean drain,
// exit 0.

#ifndef REGCLUSTER_SERVER_DAEMON_H_
#define REGCLUSTER_SERVER_DAEMON_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.h"
#include "util/status.h"

namespace regcluster {
namespace server {

class ServerDaemon {
 public:
  struct Options {
    /// TCP port to listen on; 0 picks an ephemeral port (see bound_port()),
    /// -1 disables TCP.  Binds 127.0.0.1 -- this daemon has no auth layer,
    /// so it never listens on the open network.
    int port = -1;
    /// Unix-domain socket path; empty disables.
    std::string unix_socket;
    MiningService::Options service;
  };

  explicit ServerDaemon(const Options& options);
  ~ServerDaemon();

  ServerDaemon(const ServerDaemon&) = delete;
  ServerDaemon& operator=(const ServerDaemon&) = delete;

  /// Binds and listens.  InvalidArgument when neither listener is
  /// configured; IoError on bind/listen failures (port in use, bad path).
  util::Status Start();

  /// The TCP port actually bound (resolves port 0); -1 without TCP.
  int bound_port() const { return bound_port_; }

  /// Serves until RequestShutdown(); returns after the drain completes.
  void Run();

  /// Async-signal-safe shutdown trigger.
  void RequestShutdown();

  MiningService* service() { return &service_; }

 private:
  /// State shared between a connection's handler thread and the accept
  /// loop.  The handler closes `fd` under conn_mu_ and marks it -1 before
  /// setting `done`, so the drain's shutdown() can never hit a closed fd
  /// number the process has since reused; `done` lets the accept loop reap
  /// finished threads instead of accumulating one join per connection ever
  /// served.
  struct ConnState {
    int fd = -1;
    std::atomic<bool> done{false};
  };
  struct Conn {
    std::thread thread;
    std::shared_ptr<ConnState> state;
  };

  void HandleConnection(std::shared_ptr<ConnState> state);
  void CloseListeners();
  void ReapFinishedLocked();

  const Options options_;
  MiningService service_;
  int tcp_fd_ = -1;
  int unix_fd_ = -1;
  int bound_port_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::mutex conn_mu_;
  std::vector<Conn> conns_;
  bool shutting_down_ = false;
};

}  // namespace server
}  // namespace regcluster

#endif  // REGCLUSTER_SERVER_DAEMON_H_
