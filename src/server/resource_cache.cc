#include "server/resource_cache.h"

#include <utility>

#include "io/checkpoint.h"
#include "matrix/expression_matrix.h"
#include "matrix/matrix_io.h"

namespace regcluster {
namespace server {

bool ResourceCache::ModelKey::operator==(const ModelKey& o) const {
  return matrix_hash == o.matrix_hash && policy == o.policy &&
         gamma == o.gamma;
}

size_t ResourceCache::ModelKeyHasher::operator()(const ModelKey& k) const {
  size_t h = util::Hash128Hasher()(k.matrix_hash);
  h ^= static_cast<size_t>(k.policy) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(k.gamma));
  __builtin_memcpy(&bits, &k.gamma, sizeof(bits));
  h ^= static_cast<size_t>(bits) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

util::StatusOr<std::shared_ptr<const ResourceCache::MatrixHandle>>
ResourceCache::GetMatrix(const std::string& path, bool* hit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = by_path_.find(path); it != by_path_.end()) {
    ++stats_.matrix_hits;
    if (hit != nullptr) *hit = true;
    Touch(it->second);
    return it->second->matrix;
  }
  ++stats_.matrix_misses;
  if (hit != nullptr) *hit = false;

  // Sniff the binary magic exactly like the CLI: a text matrix can never
  // start with it.  Binary matrices map (their pages are reclaimable and
  // charge nothing against the budget); text matrices load resident.
  std::shared_ptr<const matrix::MatrixStore> store;
  auto is_bin = matrix::IsBinaryMatrixFile(path);
  if (is_bin.ok() && *is_bin) {
    auto m = matrix::MappedMatrix::Open(path);
    if (!m.ok()) return m.status();
    store = std::make_shared<const matrix::MappedMatrix>(*std::move(m));
  } else {
    auto m = matrix::LoadMatrix(path);
    if (!m.ok()) {
      return util::Status(m.status().code(),
                          "loading " + path + ": " + m.status().message());
    }
    store = std::make_shared<const matrix::ExpressionMatrix>(*std::move(m));
  }
  if (store->HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix " + path +
        " contains missing values; impute offline first "
        "(regcluster convert --impute=rowmean)");
  }

  auto handle = std::make_shared<MatrixHandle>();
  handle->store = store;
  handle->content_hash = io::HashMatrixContent(*store);
  handle->bytes = store->resident_bytes();
  handle->generation = generation_;

  Entry entry;
  entry.path = path;
  entry.bytes = handle->bytes;
  entry.matrix = handle;
  Insert(std::move(entry));
  return std::shared_ptr<const MatrixHandle>(std::move(handle));
}

util::StatusOr<std::shared_ptr<const core::SharedGammaModel>>
ResourceCache::GetModel(const std::shared_ptr<const MatrixHandle>& handle,
                        const core::GammaSpec& spec, int max_chain_need,
                        bool* hit) {
  if (handle == nullptr || handle->store == nullptr) {
    return util::Status::InvalidArgument("GetModel needs a matrix handle");
  }
  std::lock_guard<std::mutex> lock(mu_);
  ModelKey key;
  key.matrix_hash = handle->content_hash;
  key.policy = spec.policy;
  key.gamma = spec.gamma;
  if (auto it = by_model_.find(key); it != by_model_.end()) {
    if (it->second->model->max_chain_need >= max_chain_need) {
      ++stats_.model_hits;
      if (hit != nullptr) *hit = true;
      Touch(it->second);
      return it->second->model;
    }
    // Ceiling too small: replace with a taller build (miss + eviction), the
    // per-request form of the sweep engine's largest-MinC sharing.
    stats_.resident_bytes -= it->second->bytes;
    ++stats_.evictions;
    lru_.erase(it->second);
    by_model_.erase(it);
  }
  ++stats_.model_misses;
  if (hit != nullptr) *hit = false;

  std::shared_ptr<const core::SharedGammaModel> model =
      core::SharedGammaModel::Build(*handle->store, spec, max_chain_need,
                                    options_.build_threads);

  Entry entry;
  entry.model_key = key;
  entry.is_model = true;
  entry.bytes = static_cast<int64_t>(model->MemoryBytes());
  entry.model = model;
  Insert(std::move(entry));
  return model;
}

int ResourceCache::InvalidateAppend(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  ++generation_;
  int dropped = 0;
  util::Hash128 hash{0, 0};
  bool have_hash = false;
  if (auto it = by_path_.find(path); it != by_path_.end()) {
    hash = it->second->matrix->content_hash;
    have_hash = true;
    stats_.resident_bytes -= it->second->bytes;
    ++stats_.invalidations;
    ++dropped;
    lru_.erase(it->second);
    by_path_.erase(it);
  }
  if (have_hash) {
    // Every model keyed by the stale matrix content, regardless of spec.
    for (auto it = by_model_.begin(); it != by_model_.end();) {
      if (it->first.matrix_hash == hash) {
        stats_.resident_bytes -= it->second->bytes;
        ++stats_.invalidations;
        ++dropped;
        lru_.erase(it->second);
        it = by_model_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

uint64_t ResourceCache::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

ResourceCache::Stats ResourceCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ResourceCache::Touch(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void ResourceCache::Insert(Entry entry) {
  stats_.resident_bytes += entry.bytes;
  lru_.push_front(std::move(entry));
  const LruList::iterator it = lru_.begin();
  if (it->is_model) {
    by_model_[it->model_key] = it;
  } else {
    by_path_[it->path] = it;
  }
  EvictToBudget();
}

void ResourceCache::EvictToBudget() {
  // Never evict the just-touched front: a single entry larger than the
  // whole budget must still be servable (one-entry floor).
  while (stats_.resident_bytes > options_.byte_budget && lru_.size() > 1) {
    const LruList::iterator victim = std::prev(lru_.end());
    stats_.resident_bytes -= victim->bytes;
    ++stats_.evictions;
    if (victim->is_model) {
      by_model_.erase(victim->model_key);
    } else {
      by_path_.erase(victim->path);
    }
    lru_.erase(victim);
  }
}

}  // namespace server
}  // namespace regcluster
