// Transport-independent request execution for the mining daemon: the
// session layer between the wire codecs (server/protocol.h) and the core
// miner.
//
// Each request runs as a *session* on the service's shared TaskPool via
// the staged miner API -- Prepare(), SubmitParallelWork(pool),
// WaitParallelWork(), Finalize() -- so concurrent mines interleave at
// phase-A (root / subtree task) granularity: the pool's work stealing
// balances across requests instead of queueing them whole.
// WaitParallelWork() is the per-run drain added for exactly this use;
// TaskPool::Wait() would barrier on *every* session's tasks.
//
// Admission control composes three limits, checked in order before any
// work happens:
//   1. memory  -- cache-resident bytes already over the global budget
//                 shed with "shed_memory" (503 + Retry-After);
//   2. queue   -- at most max_active sessions mine concurrently and at
//                 most max_queued wait; an overflowing request sheds with
//                 "shed_queue" instead of deepening the convoy;
//   3. request -- per-request deadline / node / cluster budgets from the
//                 body become the session's BudgetGuard limits (the miner
//                 composes them; a tripped run returns its canonical
//                 partial prefix, exactly like the CLI).
// Shedding is always a structured, retryable JSON status -- never a
// dropped connection, never an OOM.
//
// Responses are deterministic: with "deterministic_output": true the
// volatile report fields are zeroed (io::ZeroVolatileMineFields) and the
// body is byte-identical to a solo serial Mine() of the same request at
// any interleaving -- the server_concurrency_test contract.

#ifndef REGCLUSTER_SERVER_SERVICE_H_
#define REGCLUSTER_SERVER_SERVICE_H_

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/miner.h"
#include "obs/metrics.h"
#include "server/request.h"
#include "server/resource_cache.h"
#include "util/task_pool.h"

namespace regcluster {
namespace server {

/// Wire-agnostic response: the HTTP front maps it onto a status line, the
/// binary front onto a framed JSON envelope.
struct ServiceResponse {
  int http_status = 200;
  /// Stable machine-readable name: "ok", "bad_json", "bad_request",
  /// "unknown_endpoint", "unknown_op", "shed_queue", "shed_memory",
  /// "matrix_error", "mine_error", "append_error".  Error bodies carry it
  /// as "error_name"; transports may log or map it.
  std::string status_name = "ok";
  std::string content_type = "application/json";
  std::string body;
  /// Seconds hint for the Retry-After header; > 0 only when shedding.
  int retry_after_s = 0;
};

class MiningService {
 public:
  struct Options {
    /// Base options each request starts from; request fields overlay it.
    core::MinerOptions defaults;
    /// Workers of the shared phase-A pool; 1 = serial sessions (no pool).
    int num_threads = 1;
    /// Admission: concurrent mining sessions / waiting sessions.
    int max_active = 2;
    int max_queued = 8;
    /// Global memory budget the cache charges against (admission limit 1).
    int64_t memory_budget_bytes = int64_t{512} << 20;
    /// Cache eviction budget (<= memory budget to make shedding transient).
    int64_t cache_bytes = int64_t{256} << 20;
    int retry_after_s = 1;
    /// Test seam: runs at the start of every *admitted* mine / sweep
    /// session (after Admit, before any work).  The concurrency battery
    /// parks a session here to hold an active slot deterministically;
    /// null in production.
    std::function<void()> session_hook;
  };

  explicit MiningService(const Options& options);
  ~MiningService();

  MiningService(const MiningService&) = delete;
  MiningService& operator=(const MiningService&) = delete;

  /// Dispatches one HTTP request: POST /mine, POST /sweep, POST /append,
  /// GET /metrics (Prometheus), GET /healthz.  Never throws; every failure
  /// is a structured response.
  ServiceResponse HandleHttp(const std::string& method,
                             const std::string& target,
                             const std::string& body);

  /// Dispatches one binary frame payload: a JSON object with "op" set to
  /// "mine" | "sweep" | "append" | "metrics" | "health"; remaining fields
  /// as in the HTTP bodies.
  ServiceResponse HandleFrame(const std::string& payload);

  /// Server metric registry (regcluster_server_* live here).
  obs::MetricsRegistry* registry() { return &registry_; }

  ResourceCache::Stats cache_stats() const { return cache_.stats(); }

 private:
  ServiceResponse HandleMine(const JsonValue& body);
  ServiceResponse HandleSweep(const JsonValue& body);
  /// Widens a binary matrix on disk (atomic rewrite + rename) and drops
  /// exactly the cache entries the file backed: its path handle plus every
  /// gamma model keyed by its content hash.  Unrelated entries survive, so
  /// a warm mine on an untouched matrix stays a pure cache hit.
  ServiceResponse HandleAppend(const JsonValue& body);
  ServiceResponse HandleMetrics();
  ServiceResponse HandleHealth();

  /// Runs one parsed mine request end to end (cache, session, render).
  ServiceResponse ExecuteMine(const MineRequest& request);
  ServiceResponse ExecuteSweep(const MineRequest& request);

  /// Returns true when admitted; fills `shed` otherwise.  Every admit must
  /// be paired with Release().
  bool Admit(ServiceResponse* shed);
  void Release();

  const Options options_;
  ResourceCache cache_;
  std::unique_ptr<util::TaskPool> pool_;  // null when num_threads <= 1

  std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  int active_ = 0;
  int queued_ = 0;

  obs::MetricsRegistry registry_;
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* shed_total_ = nullptr;
  obs::Counter* cache_hits_total_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
};

}  // namespace server
}  // namespace regcluster

#endif  // REGCLUSTER_SERVER_SERVICE_H_
