// Request bodies of the mining service: the one JSON shape both transports
// carry (HTTP POST bodies and length-prefixed binary frames), decoded into
// core::MinerOptions.
//
// The schema is flat and strict.  Recognized fields:
//
//   "matrix"          string, required -- matrix path on the server
//   "ming" / "minc"   integers >= 1 / >= 2
//   "gamma"           number        "gamma_policy"  string (threshold.h names)
//   "epsilon"         number        "remove_dominated"  bool
//   "max_nodes" / "max_clusters"    integers (per-request budgets)
//   "deadline_ms"     number (per-request deadline budget)
//   "collect_stats"   bool          "deterministic_output"  bool
//   "spec"            string, sweep only -- io::ParseSweepSpec grammar
//
// Unknown fields are InvalidArgument, not ignored: a typo'd budget field
// silently dropped would mine without the budget the client asked for.
// Execution knobs (threads, caches, checkpoints) are the *server's*
// configuration and deliberately not in the schema.

#ifndef REGCLUSTER_SERVER_REQUEST_H_
#define REGCLUSTER_SERVER_REQUEST_H_

#include <string>
#include <vector>

#include "core/miner.h"
#include "server/json_reader.h"
#include "util/status.h"

namespace regcluster {
namespace server {

struct MineRequest {
  std::string matrix_path;
  core::MinerOptions options;
  /// Sweep grammar for /sweep; empty for /mine.
  std::string sweep_spec;
  /// Zero volatile (timing / scheduling) report fields so responses are
  /// byte-comparable, exactly like the CLI's --deterministic-output.
  bool deterministic_output = false;
};

/// Decodes a /mine body.  `defaults` seeds every unset option field.
util::StatusOr<MineRequest> ParseMineRequest(const JsonValue& body,
                                             const core::MinerOptions& defaults);

/// Decodes a /sweep body: the mine schema plus a required "spec"; the
/// option fields form the sweep's base point.
util::StatusOr<MineRequest> ParseSweepRequest(
    const JsonValue& body, const core::MinerOptions& defaults);

/// An /append body: new conditions for a binary matrix on the server.
///
///   "matrix"   string, required -- binary matrix path on the server
///   "names"    array of strings, required -- one label per new condition
///   "columns"  array of number arrays, required -- columns[k][g] is new
///              condition k's value for gene g; all columns equal length
///
/// Same strictness as the mine schema: unknown fields, ragged columns and
/// a names/columns count mismatch are InvalidArgument.  (Whether the
/// column length matches the matrix's gene count is checked against the
/// file by the append itself.)
struct AppendRequest {
  std::string matrix_path;
  std::vector<std::string> names;
  std::vector<std::vector<double>> columns;
};

util::StatusOr<AppendRequest> ParseAppendRequest(const JsonValue& body);

}  // namespace server
}  // namespace regcluster

#endif  // REGCLUSTER_SERVER_REQUEST_H_
