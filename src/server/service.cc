#include "server/service.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "core/sweep.h"
#include "io/checkpoint.h"
#include "io/json_export.h"
#include "io/sweep_io.h"
#include "server/json_reader.h"

namespace regcluster {
namespace server {
namespace {

using util::Status;
using util::StatusCode;

/// A hostile sweep spec can cross-product itself into millions of points;
/// a service request is not the place for that (run a checkpointed CLI
/// sweep instead).
constexpr size_t kMaxSweepPoints = 1024;

ServiceResponse ErrorResponse(int http_status, const std::string& name,
                              const std::string& message) {
  ServiceResponse r;
  r.http_status = http_status;
  r.status_name = name;
  r.body = "{\"status\":\"error\",\"error_name\":\"" + name +
           "\",\"error\":\"" + io::JsonEscape(message) + "\"}\n";
  return r;
}

/// Mirrors RegClusterMiner::Prepare's gamma screen (and the sweep engine's
/// GammaLooksValid): a spec failing this must never reach a model build.
bool GammaLooksValid(const core::MinerOptions& opts) {
  if (opts.gamma < 0.0) return false;
  if (opts.gamma_policy != core::GammaPolicy::kAbsolute && opts.gamma > 1.0) {
    return false;
  }
  return true;
}

/// Request-option validation that needs the loaded matrix.  Runs before
/// any model is built or cached: a bad request must cost parsing plus one
/// matrix lookup, never a model build under the cache mutex -- and an
/// unbounded MinC must never size an allocation (the bitmap index clamps
/// its ceiling as defense in depth, but the service rejects outright).
Status ValidateMineOptions(const core::MinerOptions& opts,
                           const matrix::MatrixStore& data) {
  if (opts.min_genes < 1) {
    return Status::InvalidArgument("ming must be >= 1");
  }
  if (opts.min_conditions < 2) {
    return Status::InvalidArgument(
        "minc must be >= 2 (a chain needs at least one regulation step)");
  }
  if (opts.min_conditions > data.num_conditions()) {
    return Status::InvalidArgument(
        "minc " + std::to_string(opts.min_conditions) +
        " exceeds the matrix's " + std::to_string(data.num_conditions()) +
        " conditions; no cluster can satisfy it");
  }
  if (!GammaLooksValid(opts)) {
    return Status::InvalidArgument(
        opts.gamma_policy != core::GammaPolicy::kAbsolute
            ? "gamma must be in [0, 1] for relative policies"
            : "absolute gamma must be >= 0");
  }
  if (opts.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  return Status::OK();
}

/// Maps a util::Status from the cache / miner onto an HTTP status.
int HttpStatusOf(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kInternal:
      return 500;
    default:
      return 400;  // the request named a matrix / options we reject
  }
}

}  // namespace

MiningService::MiningService(const Options& options)
    : options_(options),
      cache_([&] {
        ResourceCache::Options c;
        c.byte_budget = options.cache_bytes;
        c.build_threads = std::max(options.num_threads, 1);
        return c;
      }()) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<util::TaskPool>(options_.num_threads);
  }
  // Registration happens before any request thread exists, satisfying the
  // registry's register-before-sharing contract.
  requests_total_ =
      *registry_.AddCounter("regcluster_server_requests",
                            "Requests dispatched, every endpoint");
  shed_total_ = *registry_.AddCounter(
      "regcluster_server_shed", "Requests shed by admission control");
  cache_hits_total_ = *registry_.AddCounter(
      "regcluster_server_cache_hits",
      "Resource cache hits (matrix handles + gamma models)");
  active_gauge_ = *registry_.AddGauge("regcluster_server_active",
                                      "Mining sessions currently executing");
  queue_depth_gauge_ = *registry_.AddGauge(
      "regcluster_server_queue_depth", "Sessions waiting for admission");
}

MiningService::~MiningService() {
  // Sessions drain through Release(); the pool joins its workers after all
  // submitted phase-A tasks ran (TaskPool dtor waits).
  std::unique_lock<std::mutex> lock(admission_mu_);
  admission_cv_.wait(lock, [this] { return active_ == 0 && queued_ == 0; });
}

ServiceResponse MiningService::HandleHttp(const std::string& method,
                                          const std::string& target,
                                          const std::string& body) {
  // Strip a query string: /metrics?foo stays /metrics.
  std::string path = target.substr(0, target.find('?'));
  if (method == "GET" && path == "/healthz") return HandleHealth();
  if (method == "GET" && path == "/metrics") return HandleMetrics();
  if (method == "POST" &&
      (path == "/mine" || path == "/sweep" || path == "/append")) {
    requests_total_->Increment();
    auto parsed = ParseJson(body);
    if (!parsed.ok()) {
      return ErrorResponse(400, "bad_json", parsed.status().message());
    }
    if (path == "/mine") return HandleMine(*parsed);
    if (path == "/sweep") return HandleSweep(*parsed);
    return HandleAppend(*parsed);
  }
  return ErrorResponse(404, "unknown_endpoint",
                       method + " " + path + " is not served here");
}

ServiceResponse MiningService::HandleFrame(const std::string& payload) {
  auto parsed = ParseJson(payload);
  if (!parsed.ok()) {
    return ErrorResponse(400, "bad_json", parsed.status().message());
  }
  const JsonValue* op = parsed->Find("op");
  if (op == nullptr || !op->is_string()) {
    return ErrorResponse(400, "bad_request",
                         "frame needs a string \"op\" field");
  }
  // The remaining fields form the request body; drop "op" so the strict
  // field check does not see it.
  JsonValue body = *parsed;
  body.members.erase(
      std::remove_if(body.members.begin(), body.members.end(),
                     [](const auto& m) { return m.first == "op"; }),
      body.members.end());
  if (op->string_value == "health") return HandleHealth();
  if (op->string_value == "metrics") {
    requests_total_->Increment();
    ServiceResponse r;
    std::ostringstream out;
    if (Status s = registry_.WriteJson(out); !s.ok()) {
      return ErrorResponse(500, "metrics_error", s.message());
    }
    r.body = out.str();
    return r;
  }
  if (op->string_value == "mine") {
    requests_total_->Increment();
    return HandleMine(body);
  }
  if (op->string_value == "sweep") {
    requests_total_->Increment();
    return HandleSweep(body);
  }
  if (op->string_value == "append") {
    requests_total_->Increment();
    return HandleAppend(body);
  }
  return ErrorResponse(400, "unknown_op",
                       "op \"" + op->string_value + "\" is not served here");
}

ServiceResponse MiningService::HandleHealth() {
  requests_total_->Increment();
  ServiceResponse r;
  r.body = "{\"status\":\"ok\"}\n";
  return r;
}

ServiceResponse MiningService::HandleMetrics() {
  requests_total_->Increment();
  ServiceResponse r;
  std::ostringstream out;
  if (Status s = registry_.WritePrometheus(out); !s.ok()) {
    return ErrorResponse(500, "metrics_error", s.message());
  }
  r.content_type = "text/plain; version=0.0.4";
  r.body = out.str();
  return r;
}

ServiceResponse MiningService::HandleMine(const JsonValue& body) {
  auto request = ParseMineRequest(body, options_.defaults);
  if (!request.ok()) {
    return ErrorResponse(400, "bad_request", request.status().message());
  }
  ServiceResponse shed;
  if (!Admit(&shed)) return shed;
  if (options_.session_hook) options_.session_hook();
  ServiceResponse r = ExecuteMine(*request);
  Release();
  return r;
}

ServiceResponse MiningService::HandleAppend(const JsonValue& body) {
  auto request = ParseAppendRequest(body);
  if (!request.ok()) {
    return ErrorResponse(400, "bad_request", request.status().message());
  }
  // Only the binary format appends in place; a text matrix has no atomic
  // widen (convert it once with `regcluster convert`).
  auto is_bin = matrix::IsBinaryMatrixFile(request->matrix_path);
  if (!is_bin.ok()) {
    return ErrorResponse(HttpStatusOf(is_bin.status()), "matrix_error",
                         is_bin.status().message());
  }
  if (!*is_bin) {
    return ErrorResponse(400, "append_error",
                         request->matrix_path +
                             " is not a binary matrix; append needs the "
                             "binary format (regcluster convert)");
  }
  auto widened = matrix::AppendConditionsToBinaryMatrix(
      request->matrix_path, request->names, request->columns);
  if (!widened.ok()) {
    return ErrorResponse(HttpStatusOf(widened.status()), "append_error",
                         widened.status().message());
  }
  // Invalidate *after* the rename lands so no request can re-cache the old
  // file between the drop and the swap.  (A load racing the rewrite itself
  // still sees a complete old or complete new file, never a torn one.)
  const int invalidated = cache_.InvalidateAppend(request->matrix_path);
  ServiceResponse r;
  r.body = "{\"status\":\"ok\",\"num_conditions\":" +
           std::to_string(*widened) +
           ",\"invalidated\":" + std::to_string(invalidated) + "}\n";
  return r;
}

ServiceResponse MiningService::HandleSweep(const JsonValue& body) {
  auto request = ParseSweepRequest(body, options_.defaults);
  if (!request.ok()) {
    return ErrorResponse(400, "bad_request", request.status().message());
  }
  ServiceResponse shed;
  if (!Admit(&shed)) return shed;
  if (options_.session_hook) options_.session_hook();
  ServiceResponse r = ExecuteSweep(*request);
  Release();
  return r;
}

bool MiningService::Admit(ServiceResponse* shed) {
  // Limit 1 -- memory: the cache already holds more than the global budget
  // allows, so taking on work that loads more is how a daemon OOMs.  Shed
  // with a hint; eviction and request completion make a retry meaningful.
  if (cache_.stats().resident_bytes > options_.memory_budget_bytes) {
    shed_total_->Increment();
    *shed = ErrorResponse(503, "shed_memory",
                          "resource cache over the global memory budget");
    shed->body = "{\"status\":\"shed\",\"error_name\":\"shed_memory\","
                 "\"retry_after_s\":" +
                 std::to_string(options_.retry_after_s) + "}\n";
    shed->retry_after_s = options_.retry_after_s;
    return false;
  }
  // Limit 2 -- concurrency: max_active sessions mine, max_queued wait.
  std::unique_lock<std::mutex> lock(admission_mu_);
  if (active_ >= options_.max_active) {
    if (queued_ >= options_.max_queued) {
      shed_total_->Increment();
      *shed = ErrorResponse(503, "shed_queue", "admission queue full");
      shed->body = "{\"status\":\"shed\",\"error_name\":\"shed_queue\","
                   "\"retry_after_s\":" +
                   std::to_string(options_.retry_after_s) + "}\n";
      shed->retry_after_s = options_.retry_after_s;
      return false;
    }
    ++queued_;
    queue_depth_gauge_->Set(queued_);
    admission_cv_.wait(lock,
                       [this] { return active_ < options_.max_active; });
    --queued_;
    queue_depth_gauge_->Set(queued_);
  }
  ++active_;
  active_gauge_->Set(active_);
  return true;
}

void MiningService::Release() {
  std::lock_guard<std::mutex> lock(admission_mu_);
  --active_;
  active_gauge_->Set(active_);
  admission_cv_.notify_all();
}

ServiceResponse MiningService::ExecuteMine(const MineRequest& request) {
  bool matrix_hit = false;
  auto handle = cache_.GetMatrix(request.matrix_path, &matrix_hit);
  if (!handle.ok()) {
    return ErrorResponse(HttpStatusOf(handle.status()), "matrix_error",
                         handle.status().message());
  }
  if (Status st = ValidateMineOptions(request.options, *(*handle)->store);
      !st.ok()) {
    return ErrorResponse(400, "bad_request", st.message());
  }
  core::GammaSpec spec;
  spec.policy = request.options.gamma_policy;
  spec.gamma = request.options.gamma;
  bool model_hit = false;
  auto model = cache_.GetModel(*handle, spec, request.options.min_conditions,
                               &model_hit);
  if (!model.ok()) {
    return ErrorResponse(HttpStatusOf(model.status()), "mine_error",
                         model.status().message());
  }
  cache_hits_total_->Add((matrix_hit ? 1 : 0) + (model_hit ? 1 : 0));

  // One session: staged run on the shared pool, per-run drain, canonical
  // finalize.  options.num_threads stays 1 -- it would describe a pool the
  // session does not own (the sweep engine does the same).
  core::MinerOptions opts = request.options;
  opts.num_threads = 1;
  opts.shared_model = *model;
  core::RegClusterMiner miner(*(*handle)->store, opts);
  if (Status st = miner.Prepare(); !st.ok()) {
    return ErrorResponse(HttpStatusOf(st), "mine_error", st.message());
  }
  if (pool_ != nullptr) {
    miner.SubmitParallelWork(pool_.get());
    miner.WaitParallelWork();
  }
  auto clusters = miner.Finalize();
  if (!clusters.ok()) {
    return ErrorResponse(500, "mine_error", clusters.status().message());
  }

  core::MinerStats stats = miner.stats();
  core::MineOutcome outcome = miner.outcome();
  if (request.deterministic_output) {
    io::ZeroVolatileMineFields(&stats, &outcome);
  }
  std::ostringstream doc;
  if (Status st = io::WriteClustersJson(*clusters, (*handle)->store.get(),
                                        &outcome, &stats, doc);
      !st.ok()) {
    return ErrorResponse(500, "mine_error", st.message());
  }
  ServiceResponse r;
  r.body = doc.str();
  return r;
}

ServiceResponse MiningService::ExecuteSweep(const MineRequest& request) {
  bool matrix_hit = false;
  auto handle = cache_.GetMatrix(request.matrix_path, &matrix_hit);
  if (!handle.ok()) {
    return ErrorResponse(HttpStatusOf(handle.status()), "matrix_error",
                         handle.status().message());
  }
  core::MinerOptions base = request.options;
  base.num_threads = 1;
  auto points = io::ParseSweepSpec(request.sweep_spec, base);
  if (!points.ok()) {
    return ErrorResponse(400, "bad_request", points.status().message());
  }
  if (points->size() > kMaxSweepPoints) {
    return ErrorResponse(
        400, "bad_request",
        "sweep expands to " + std::to_string(points->size()) +
            " points (limit " + std::to_string(kMaxSweepPoints) +
            "); run it as a checkpointed CLI sweep");
  }

  // One model per distinct (policy, gamma), built with the group's largest
  // MinC so every point of the group reuses it (and later requests reuse
  // it through the cache).  First-appearance order keeps the cache
  // counters a pure function of the request stream.  Points that fail the
  // request-option screen never join a group (a garbage spec or unbounded
  // MinC must not build or pollute a cached model, cf. SweepEngine); they
  // run without a shared model and Prepare() records the rejection
  // per-run.
  core::SweepReport report;
  report.runs.resize(points->size());
  std::vector<std::pair<core::GammaSpec, int>> groups;
  std::vector<int> group_of(points->size(), -1);
  for (size_t i = 0; i < points->size(); ++i) {
    const core::MinerOptions& p = (*points)[i];
    if (!ValidateMineOptions(p, *(*handle)->store).ok()) continue;
    size_t g = 0;
    for (; g < groups.size(); ++g) {
      if (groups[g].first.policy == p.gamma_policy &&
          groups[g].first.gamma == p.gamma) {
        break;
      }
    }
    if (g == groups.size()) {
      core::GammaSpec spec;
      spec.policy = p.gamma_policy;
      spec.gamma = p.gamma;
      groups.emplace_back(spec, p.min_conditions);
    }
    groups[g].second = std::max(groups[g].second, p.min_conditions);
    group_of[i] = static_cast<int>(g);
  }
  std::vector<std::shared_ptr<const core::SharedGammaModel>> models;
  models.reserve(groups.size());
  int64_t hits = matrix_hit ? 1 : 0;
  for (const auto& [spec, ceiling] : groups) {
    bool model_hit = false;
    auto model = cache_.GetModel(*handle, spec, ceiling, &model_hit);
    if (!model.ok()) {
      return ErrorResponse(HttpStatusOf(model.status()), "mine_error",
                           model.status().message());
    }
    hits += model_hit ? 1 : 0;
    models.push_back(*model);
  }
  cache_hits_total_->Add(hits);

  for (size_t i = 0; i < points->size(); ++i) {
    core::SweepRun& run = report.runs[i];
    run.options = (*points)[i];
    if (group_of[i] >= 0) {
      run.options.shared_model = models[static_cast<size_t>(group_of[i])];
      run.used_shared_model = true;
    }
    core::RegClusterMiner miner(*(*handle)->store, run.options);
    run.status = miner.Prepare();
    if (!run.status.ok()) continue;
    if (pool_ != nullptr) {
      miner.SubmitParallelWork(pool_.get());
      miner.WaitParallelWork();
    }
    auto clusters = miner.Finalize();
    if (!clusters.ok()) {
      run.status = clusters.status();
      continue;
    }
    run.executed = true;
    run.clusters = *std::move(clusters);
    run.stats = miner.stats();
    run.outcome = miner.outcome();
    ++report.runs_executed;
    report.nodes_total += run.stats.nodes_expanded;
    report.clusters_total += static_cast<int64_t>(run.clusters.size());
  }
  report.first_unfinished = -1;
  if (request.deterministic_output) {
    io::ZeroVolatileSweepFields(&report);
  }
  std::ostringstream doc;
  if (Status st = io::WriteSweepJson(report, doc); !st.ok()) {
    return ErrorResponse(500, "mine_error", st.message());
  }
  ServiceResponse r;
  r.body = doc.str();
  return r;
}

}  // namespace server
}  // namespace regcluster
