#include "server/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <utility>

#include "io/json_export.h"
#include "server/protocol.h"

namespace regcluster {
namespace server {
namespace {

using util::Status;

Status IoErrno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

ServerDaemon::ServerDaemon(const Options& options)
    : options_(options), service_(options.service) {}

ServerDaemon::~ServerDaemon() {
  CloseListeners();
  for (Conn& c : conns_) {
    if (c.thread.joinable()) c.thread.join();
  }
  if (!options_.unix_socket.empty()) {
    ::unlink(options_.unix_socket.c_str());
  }
}

util::Status ServerDaemon::Start() {
  if (options_.port < 0 && options_.unix_socket.empty()) {
    return Status::InvalidArgument("serve needs --port and/or --socket");
  }
  if (::pipe(wake_pipe_) != 0) return IoErrno("pipe");

  if (options_.port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) return IoErrno("socket");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return IoErrno("bind port " + std::to_string(options_.port));
    }
    if (::listen(tcp_fd_, 64) != 0) return IoErrno("listen");
    socklen_t len = sizeof(addr);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      return IoErrno("getsockname");
    }
    bound_port_ = static_cast<int>(ntohs(addr.sin_port));
  }

  if (!options_.unix_socket.empty()) {
    sockaddr_un addr{};
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("--socket path too long");
    }
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) return IoErrno("socket");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket.c_str());
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return IoErrno("bind " + options_.unix_socket);
    }
    if (::listen(unix_fd_, 64) != 0) return IoErrno("listen");
  }
  return Status::OK();
}

void ServerDaemon::RequestShutdown() {
  // One byte through the self-pipe: write() is async-signal-safe, so the
  // CLI's SIGTERM handler may call this directly.
  const char b = 1;
  [[maybe_unused]] ssize_t unused = ::write(wake_pipe_[1], &b, 1);
}

void ServerDaemon::CloseListeners() {
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (wake_pipe_[0] >= 0) {
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
}

void ServerDaemon::Run() {
  while (true) {
    pollfd fds[3];
    nfds_t nfds = 0;
    const int wake_index = static_cast<int>(nfds);
    fds[nfds++] = {wake_pipe_[0], POLLIN, 0};
    int tcp_index = -1, unix_index = -1;
    if (tcp_fd_ >= 0) {
      tcp_index = static_cast<int>(nfds);
      fds[nfds++] = {tcp_fd_, POLLIN, 0};
    }
    if (unix_fd_ >= 0) {
      unix_index = static_cast<int>(nfds);
      fds[nfds++] = {unix_fd_, POLLIN, 0};
    }
    if (::poll(fds, nfds, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[wake_index].revents & POLLIN) != 0) break;
    for (const int idx : {tcp_index, unix_index}) {
      if (idx < 0 || (fds[idx].revents & POLLIN) == 0) continue;
      const int conn = ::accept(fds[idx].fd, nullptr, nullptr);
      if (conn < 0) continue;
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (shutting_down_) {
        ::close(conn);
        continue;
      }
      ReapFinishedLocked();
      Conn c;
      c.state = std::make_shared<ConnState>();
      c.state->fd = conn;
      auto state = c.state;
      c.thread = std::thread(
          [this, state = std::move(state)] { HandleConnection(state); });
      conns_.push_back(std::move(c));
    }
  }

  // Drain: stop reading new requests on every open connection (the
  // in-flight request keeps running and its response still writes), then
  // join.  New accepts are refused above via shutting_down_.  Handlers
  // close their fd under conn_mu_ and mark it -1, so every fd shut down
  // here is still owned by its connection -- never a number the process
  // reused for something else.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    shutting_down_ = true;
    for (const Conn& c : conns_) {
      if (c.state->fd >= 0) ::shutdown(c.state->fd, SHUT_RD);
    }
  }
  for (Conn& c : conns_) {
    if (c.thread.joinable()) c.thread.join();
  }
  conns_.clear();
  CloseListeners();
}

void ServerDaemon::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->state->done.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServerDaemon::HandleConnection(std::shared_ptr<ConnState> state) {
  const int fd = state->fd;
  FdStream stream(fd);
  char first = 0;
  while (true) {
    // Sniff the transport from the first byte of each request
    // (FdStream::Read already retries EINTR).
    const int r = stream.Read(&first, 1);
    if (r <= 0) break;  // EOF or error between requests: done

    if (std::isalpha(static_cast<unsigned char>(first)) != 0) {
      // HTTP: one request, one response, close (Connection: close).
      auto request = ReadHttpRequest(&stream, first);
      ServiceResponse response;
      if (!request.ok()) {
        const bool oversized =
            request.status().code() == util::StatusCode::kOutOfRange;
        response.http_status = oversized ? 413 : 400;
        response.status_name = oversized ? "body_too_large" : "bad_http";
        response.body = "{\"status\":\"error\",\"error_name\":\"" +
                        response.status_name + "\",\"error\":\"" +
                        io::JsonEscape(request.status().message()) + "\"}\n";
      } else {
        response = service_.HandleHttp(request->method, request->target,
                                       request->body);
      }
      const std::string wire =
          FormatHttpResponse(response.http_status, response.content_type,
                             response.body, response.retry_after_s);
      stream.Write(wire.data(), wire.size());
      break;
    }

    // Binary framing: persistent -- frames until EOF.  The sniffed byte is
    // the length prefix's high byte; feed it back through a tiny shim.
    class PrefixedStream : public ByteStream {
     public:
      PrefixedStream(char first, ByteStream* rest)
          : first_(first), rest_(rest) {}
      int Read(char* buf, size_t n) override {
        if (!served_ && n > 0) {
          served_ = true;
          buf[0] = first_;
          return 1;
        }
        return rest_->Read(buf, n);
      }
      bool Write(const char* buf, size_t n) override {
        return rest_->Write(buf, n);
      }

     private:
      char first_;
      ByteStream* rest_;
      bool served_ = false;
    } prefixed(first, &stream);

    auto payload = ReadFrame(&prefixed);
    if (!payload.ok()) {
      // Torn frames / oversized lengths leave the stream position
      // untrustworthy: answer with a framed error, then close.
      std::string name;
      switch (payload.status().code()) {
        case util::StatusCode::kOutOfRange:
          name = "frame_too_large";
          break;
        case util::StatusCode::kCorruption:
          name = "torn_frame";
          break;
        default:
          name = "io_error";
          break;
      }
      const std::string body = "{\"status\":\"error\",\"error_name\":\"" +
                               name + "\"}";
      (void)WriteFrame(&stream, body);
      break;
    }
    ServiceResponse response = service_.HandleFrame(*payload);
    if (!WriteFrame(&stream, response.body).ok()) break;
  }
  // Close under conn_mu_ and mark the slot dead first: the drain must
  // never shutdown() an fd number this close released for reuse.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    ::close(fd);
    state->fd = -1;
  }
  state->done.store(true, std::memory_order_release);
}

}  // namespace server
}  // namespace regcluster
