#include "server/request.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/threshold.h"
#include "util/string_util.h"

namespace regcluster {
namespace server {
namespace {

using util::Status;
using util::StatusOr;

Status FieldError(std::string_view field, std::string_view what) {
  return Status::InvalidArgument(util::StrFormat(
      "field '%.*s' %.*s", static_cast<int>(field.size()), field.data(),
      static_cast<int>(what.size()), what.data()));
}

Status ReadString(const JsonValue& v, std::string_view field,
                  std::string* out) {
  if (!v.is_string()) return FieldError(field, "must be a string");
  *out = v.string_value;
  return Status::OK();
}

Status ReadBool(const JsonValue& v, std::string_view field, bool* out) {
  if (!v.is_bool()) return FieldError(field, "must be a boolean");
  *out = v.bool_value;
  return Status::OK();
}

Status ReadDouble(const JsonValue& v, std::string_view field, double* out) {
  if (!v.is_number()) return FieldError(field, "must be a number");
  *out = v.number_value;
  return Status::OK();
}

Status ReadInt64(const JsonValue& v, std::string_view field, int64_t* out) {
  if (!v.is_number()) return FieldError(field, "must be a number");
  const double d = v.number_value;
  if (d != std::floor(d) || d < -9007199254740992.0 ||
      d > 9007199254740992.0) {
    return FieldError(field, "must be an integer");
  }
  *out = static_cast<int64_t>(d);
  return Status::OK();
}

Status ReadInt(const JsonValue& v, std::string_view field, int* out) {
  int64_t wide = 0;
  if (Status s = ReadInt64(v, field, &wide); !s.ok()) return s;
  if (wide < std::numeric_limits<int>::min() ||
      wide > std::numeric_limits<int>::max()) {
    return FieldError(field, "out of range");
  }
  *out = static_cast<int>(wide);
  return Status::OK();
}

StatusOr<MineRequest> ParseCommon(const JsonValue& body,
                                  const core::MinerOptions& defaults,
                                  bool sweep) {
  if (!body.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  MineRequest req;
  req.options = defaults;
  for (const auto& [key, value] : body.members) {
    Status s = Status::OK();
    if (key == "matrix") {
      s = ReadString(value, key, &req.matrix_path);
    } else if (key == "ming") {
      s = ReadInt(value, key, &req.options.min_genes);
    } else if (key == "minc") {
      s = ReadInt(value, key, &req.options.min_conditions);
    } else if (key == "gamma") {
      s = ReadDouble(value, key, &req.options.gamma);
    } else if (key == "gamma_policy") {
      std::string name;
      s = ReadString(value, key, &name);
      if (s.ok() &&
          !core::ParseGammaPolicy(name, &req.options.gamma_policy)) {
        s = FieldError(key, "names no gamma policy");
      }
    } else if (key == "epsilon") {
      s = ReadDouble(value, key, &req.options.epsilon);
    } else if (key == "remove_dominated") {
      s = ReadBool(value, key, &req.options.remove_dominated);
    } else if (key == "max_nodes") {
      s = ReadInt64(value, key, &req.options.max_nodes);
    } else if (key == "max_clusters") {
      s = ReadInt64(value, key, &req.options.max_clusters);
    } else if (key == "deadline_ms") {
      s = ReadDouble(value, key, &req.options.deadline_ms);
    } else if (key == "collect_stats") {
      s = ReadBool(value, key, &req.options.collect_stats);
    } else if (key == "deterministic_output") {
      s = ReadBool(value, key, &req.deterministic_output);
    } else if (key == "spec" && sweep) {
      s = ReadString(value, key, &req.sweep_spec);
    } else {
      s = FieldError(key, "is not a recognized request field");
    }
    if (!s.ok()) return s;
  }
  if (req.matrix_path.empty()) {
    return Status::InvalidArgument("request needs a non-empty \"matrix\"");
  }
  if (sweep && req.sweep_spec.empty()) {
    return Status::InvalidArgument("sweep request needs a non-empty \"spec\"");
  }
  return req;
}

}  // namespace

util::StatusOr<MineRequest> ParseMineRequest(
    const JsonValue& body, const core::MinerOptions& defaults) {
  return ParseCommon(body, defaults, /*sweep=*/false);
}

util::StatusOr<MineRequest> ParseSweepRequest(
    const JsonValue& body, const core::MinerOptions& defaults) {
  return ParseCommon(body, defaults, /*sweep=*/true);
}

util::StatusOr<AppendRequest> ParseAppendRequest(const JsonValue& body) {
  if (!body.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  AppendRequest req;
  bool saw_names = false, saw_columns = false;
  for (const auto& [key, value] : body.members) {
    Status s = Status::OK();
    if (key == "matrix") {
      s = ReadString(value, key, &req.matrix_path);
    } else if (key == "names") {
      saw_names = true;
      if (value.kind != JsonValue::Kind::kArray) {
        s = FieldError(key, "must be an array of strings");
      }
      for (const JsonValue& e : value.elements) {
        if (!s.ok()) break;
        std::string name;
        s = ReadString(e, key, &name);
        if (s.ok()) req.names.push_back(std::move(name));
      }
    } else if (key == "columns") {
      saw_columns = true;
      if (value.kind != JsonValue::Kind::kArray) {
        s = FieldError(key, "must be an array of number arrays");
      }
      for (const JsonValue& col : value.elements) {
        if (!s.ok()) break;
        if (col.kind != JsonValue::Kind::kArray) {
          s = FieldError(key, "must be an array of number arrays");
          break;
        }
        std::vector<double> values;
        values.reserve(col.elements.size());
        for (const JsonValue& e : col.elements) {
          double d = 0.0;
          s = ReadDouble(e, key, &d);
          if (!s.ok()) break;
          values.push_back(d);
        }
        if (s.ok()) req.columns.push_back(std::move(values));
      }
    } else {
      s = FieldError(key, "is not a recognized request field");
    }
    if (!s.ok()) return s;
  }
  if (req.matrix_path.empty()) {
    return Status::InvalidArgument("request needs a non-empty \"matrix\"");
  }
  if (!saw_names || !saw_columns) {
    return Status::InvalidArgument(
        "append request needs \"names\" and \"columns\"");
  }
  if (req.names.size() != req.columns.size()) {
    return Status::InvalidArgument(
        "\"names\" and \"columns\" must have the same length");
  }
  if (req.names.empty()) {
    return Status::InvalidArgument(
        "append request needs at least one condition");
  }
  for (const auto& col : req.columns) {
    if (col.size() != req.columns.front().size()) {
      return Status::InvalidArgument(
          "all appended columns must have the same length");
    }
  }
  return req;
}

}  // namespace server
}  // namespace regcluster
