#include "server/json_reader.h"

#include <cctype>
#include <cstdint>

#include "util/string_util.h"

namespace regcluster {
namespace server {
namespace {

using util::Status;
using util::StatusOr;

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue v;
    if (Status s = ParseValue(&v, 0); !s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing bytes after value");
    return v;
  }

 private:
  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting deeper than 64 levels");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      }
      case 't':
        if (!ConsumeWord("true")) return Error("expected 'true'");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return Status::OK();
      case 'f':
        if (!ConsumeWord("false")) return Error("expected 'false'");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return Status::OK();
      case 'n':
        if (!ConsumeWord("null")) return Error("expected 'null'");
        out->kind = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a string key");
      }
      std::string key;
      if (Status s = ParseString(&key); !s.ok()) return s;
      for (const auto& [existing, unused] : out->members) {
        if (existing == key) return Error("duplicate object key");
      }
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue member;
      if (Status s = ParseValue(&member, depth + 1); !s.ok()) return s;
      out->members.emplace_back(std::move(key), std::move(member));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue element;
      if (Status s = ParseValue(&element, depth + 1); !s.ok()) return s;
      out->elements.push_back(std::move(element));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control byte in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          if (Status s = ParseHex4(&cp); !s.ok()) return s;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the low half and combine.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            if (Status s = ParseHex4(&lo); !s.ok()) return s;
            if (lo < 0xDC00 || lo > 0xDFFF) return Error("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ == start) return Error("expected a value");
    StatusOr<double> v = util::ParseDouble(text_.substr(start, pos_ - start));
    if (!v.ok()) {
      pos_ = start;
      return Error("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = *v;
    return Status::OK();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status Error(std::string_view what) const {
    return Status::InvalidArgument(
        util::StrFormat("JSON: %.*s at byte %zu",
                        static_cast<int>(what.size()), what.data(), pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

util::StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace server
}  // namespace regcluster
