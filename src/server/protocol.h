// Wire codecs of the mining daemon: the length-prefixed binary framing and
// the minimal HTTP/1.1 front, both over an abstract byte stream so the
// protocol fault tests exercise torn frames, oversized lengths and
// mid-request disconnects without sockets.
//
// Binary framing: a 4-byte big-endian payload length followed by that many
// payload bytes (JSON, see server/request.h).  Responses use the same
// framing.  A declared length over kMaxFrameBytes is refused *before*
// reading the payload -- the daemon answers with a framed "frame_too_large"
// error and closes, since the stream position is no longer trustworthy.  A
// stream that ends mid-length or mid-payload is a torn frame; clean EOF on
// a frame boundary ends the connection without error.
//
// HTTP front: request line + headers + Content-Length body; enough for
// curl / Prometheus / load balancers, deliberately nothing more (no
// chunked encoding, no keep-alive -- every response closes).  Both fronts
// share one listening socket: the first byte distinguishes them (an HTTP
// method starts with an ASCII letter; a sane frame length's high byte is
// far below 'A').

#ifndef REGCLUSTER_SERVER_PROTOCOL_H_
#define REGCLUSTER_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace regcluster {
namespace server {

/// Frames (and HTTP bodies) above this are refused: 16 MiB holds any sane
/// request and bounds what one connection can make the daemon buffer.
constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Largest accepted HTTP request head (request line + headers).
constexpr size_t kMaxHttpHeadBytes = 64u << 10;

/// Blocking byte stream the codecs read/write.  Implementations: FdStream
/// (sockets, below) and the tests' in-memory stream.
class ByteStream {
 public:
  virtual ~ByteStream() = default;
  /// Reads up to `n` bytes; returns the count, 0 on EOF, < 0 on error.
  virtual int Read(char* buf, size_t n) = 0;
  /// Writes all `n` bytes; false on error.
  virtual bool Write(const char* buf, size_t n) = 0;
};

/// ByteStream over a file descriptor (not owned).  Retries EINTR.
class FdStream : public ByteStream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}
  int Read(char* buf, size_t n) override;
  bool Write(const char* buf, size_t n) override;

 private:
  int fd_;
};

/// Reads one length-prefixed frame payload.  Distinct failures:
///   kOutOfRange     "frame_too_large" -- declared length over the cap;
///   kCorruption     "torn_frame"      -- EOF mid-length or mid-payload;
///   kIoError        read error / disconnect.
/// Clean EOF before any length byte returns kNotFound ("end of stream"):
/// the connection ended between frames, which is not a fault.
util::StatusOr<std::string> ReadFrame(ByteStream* stream);

/// Writes one length-prefixed frame.
util::Status WriteFrame(ByteStream* stream, const std::string& payload);

/// One decoded HTTP request.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string body;
};

/// Reads one HTTP/1.1 request.  `first_byte` is the transport-sniff byte
/// already consumed by the caller.  Failures mirror ReadFrame's contract:
/// kOutOfRange for an oversized head or Content-Length, kCorruption for a
/// malformed head or a body cut short by disconnect, kIoError for read
/// errors.
util::StatusOr<HttpRequest> ReadHttpRequest(ByteStream* stream,
                                            char first_byte);

/// Serializes an HTTP/1.1 response (Connection: close; Retry-After header
/// when `retry_after_s` > 0).
std::string FormatHttpResponse(int status, const std::string& content_type,
                               const std::string& body, int retry_after_s);

/// Stable reason phrase for the status codes the service emits.
const char* HttpReasonPhrase(int status);

}  // namespace server
}  // namespace regcluster

#endif  // REGCLUSTER_SERVER_PROTOCOL_H_
