#include "server/protocol.h"

#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <limits>
#include <string_view>

#include "util/string_util.h"

namespace regcluster {
namespace server {
namespace {

using util::Status;
using util::StatusOr;

/// Strict non-negative decimal (no sign, no whitespace, no overflow).
bool ParseContentLength(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  int64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const int digit = c - '0';
    if (v > (std::numeric_limits<int64_t>::max() - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

/// Reads exactly `n` bytes.  Returns the count actually read (< n only on
/// EOF) or -1 on a stream error.
int64_t ReadFully(ByteStream* stream, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    const int r = stream->Read(buf + got, n - got);
    if (r < 0) return -1;
    if (r == 0) break;
    got += static_cast<size_t>(r);
  }
  return static_cast<int64_t>(got);
}

}  // namespace

int FdStream::Read(char* buf, size_t n) {
  while (true) {
    const ssize_t r = ::read(fd_, buf, n);
    if (r >= 0) return static_cast<int>(r);
    if (errno != EINTR) return -1;
  }
}

bool FdStream::Write(const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::write(fd_, buf + sent, n - sent);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

util::StatusOr<std::string> ReadFrame(ByteStream* stream) {
  char len_bytes[4];
  const int64_t len_got = ReadFully(stream, len_bytes, sizeof(len_bytes));
  if (len_got < 0) return Status::IoError("frame length read failed");
  if (len_got == 0) return Status::NotFound("end of stream");
  if (len_got < 4) {
    return Status::Corruption(util::StrFormat(
        "torn frame: stream ended %lld bytes into the length prefix",
        static_cast<long long>(len_got)));
  }
  const uint32_t length = (static_cast<uint32_t>(
                               static_cast<unsigned char>(len_bytes[0]))
                           << 24) |
                          (static_cast<uint32_t>(
                               static_cast<unsigned char>(len_bytes[1]))
                           << 16) |
                          (static_cast<uint32_t>(
                               static_cast<unsigned char>(len_bytes[2]))
                           << 8) |
                          static_cast<uint32_t>(
                              static_cast<unsigned char>(len_bytes[3]));
  if (length > kMaxFrameBytes) {
    return Status::OutOfRange(util::StrFormat(
        "frame declares %u bytes (cap %u)", length, kMaxFrameBytes));
  }
  std::string payload(length, '\0');
  const int64_t got = ReadFully(stream, payload.data(), length);
  if (got < 0) return Status::IoError("frame payload read failed");
  if (got < static_cast<int64_t>(length)) {
    return Status::Corruption(util::StrFormat(
        "torn frame: %lld of %u payload bytes before the stream ended",
        static_cast<long long>(got), length));
  }
  return payload;
}

util::Status WriteFrame(ByteStream* stream, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::OutOfRange("frame payload over the cap");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const char len_bytes[4] = {
      static_cast<char>((length >> 24) & 0xFF),
      static_cast<char>((length >> 16) & 0xFF),
      static_cast<char>((length >> 8) & 0xFF),
      static_cast<char>(length & 0xFF),
  };
  if (!stream->Write(len_bytes, sizeof(len_bytes)) ||
      !stream->Write(payload.data(), payload.size())) {
    return Status::IoError("frame write failed");
  }
  return Status::OK();
}

util::StatusOr<HttpRequest> ReadHttpRequest(ByteStream* stream,
                                            char first_byte) {
  // Accumulate the head byte-by-byte until the blank line; request heads
  // are tiny and this keeps us from over-reading into a pipelined body.
  std::string head(1, first_byte);
  while (head.size() < kMaxHttpHeadBytes) {
    if (head.size() >= 4 &&
        head.compare(head.size() - 4, 4, "\r\n\r\n") == 0) {
      break;
    }
    char c;
    const int r = stream->Read(&c, 1);
    if (r < 0) return Status::IoError("request head read failed");
    if (r == 0) {
      return Status::Corruption("connection closed mid request head");
    }
    head.push_back(c);
  }
  if (head.size() >= kMaxHttpHeadBytes) {
    return Status::OutOfRange("request head over 64 KiB");
  }

  HttpRequest request;
  const size_t line_end = head.find("\r\n");
  const std::string request_line = head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return Status::Corruption("malformed request line");
  }
  request.method = request_line.substr(0, sp1);
  request.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    return Status::Corruption("malformed request line: not HTTP/1.x");
  }

  // Headers: only Content-Length matters; everything else is skipped.
  int64_t content_length = 0;
  size_t pos = line_end + 2;
  while (pos + 2 <= head.size()) {
    const size_t eol = head.find("\r\n", pos);
    if (eol == pos) break;  // blank line
    std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::Corruption("malformed header line");
    }
    std::string name = line.substr(0, colon);
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (name == "content-length") {
      if (!ParseContentLength(util::Trim(line.substr(colon + 1)),
                              &content_length)) {
        return Status::Corruption("malformed Content-Length");
      }
    }
  }
  if (content_length > static_cast<int64_t>(kMaxFrameBytes)) {
    return Status::OutOfRange(util::StrFormat(
        "Content-Length %lld over the %u byte cap",
        static_cast<long long>(content_length), kMaxFrameBytes));
  }
  if (content_length > 0) {
    request.body.resize(static_cast<size_t>(content_length));
    const int64_t got =
        ReadFully(stream, request.body.data(), request.body.size());
    if (got < 0) return Status::IoError("request body read failed");
    if (got < content_length) {
      return Status::Corruption(util::StrFormat(
          "connection closed %lld bytes into a %lld byte body",
          static_cast<long long>(got),
          static_cast<long long>(content_length)));
    }
  }
  return request;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 413: return "Content Too Large";
    case 503: return "Service Unavailable";
    case 500:
    default: return "Internal Server Error";
  }
}

std::string FormatHttpResponse(int status, const std::string& content_type,
                               const std::string& body, int retry_after_s) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpReasonPhrase(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (retry_after_s > 0) {
    out += "Retry-After: " + std::to_string(retry_after_s) + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace server
}  // namespace regcluster
