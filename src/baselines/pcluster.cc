#include "baselines/pcluster.h"

#include <algorithm>

#include "util/string_util.h"
#include "util/timer.h"

namespace regcluster {
namespace baselines {
namespace {

std::string MakeKey(const std::vector<int>& conds,
                    const std::vector<int>& genes) {
  std::string key;
  key.reserve((conds.size() + genes.size()) * 6);
  for (int c : conds) key += util::StrFormat("%d,", c);
  key += '|';
  for (int g : genes) key += util::StrFormat("%d,", g);
  return key;
}

}  // namespace

bool IsDeltaPCluster(const matrix::ExpressionMatrix& data,
                     const std::vector<int>& genes,
                     const std::vector<int>& conds, double delta) {
  // For every condition pair, the gene-wise range of the column difference
  // must be within delta.
  for (size_t a = 0; a < conds.size(); ++a) {
    for (size_t b = a + 1; b < conds.size(); ++b) {
      double lo = 0.0, hi = 0.0;
      bool first = true;
      for (int g : genes) {
        const double diff = data(g, conds[a]) - data(g, conds[b]);
        if (first) {
          lo = hi = diff;
          first = false;
        } else {
          lo = std::min(lo, diff);
          hi = std::max(hi, diff);
        }
        if (hi - lo > delta) return false;
      }
    }
  }
  return true;
}

PClusterMiner::PClusterMiner(const matrix::ExpressionMatrix& data,
                             PClusterOptions options)
    : data_(data), options_(options) {}

util::StatusOr<std::vector<core::Bicluster>> PClusterMiner::Mine() {
  if (options_.delta < 0.0) {
    return util::Status::InvalidArgument("delta must be >= 0");
  }
  if (options_.min_genes < 2 || options_.min_conditions < 2) {
    return util::Status::InvalidArgument(
        "pCluster needs min_genes >= 2 and min_conditions >= 2");
  }
  if (data_.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix contains missing values; impute first");
  }
  stats_ = PClusterStats();
  seen_keys_.clear();
  util::WallTimer timer;

  std::vector<core::Bicluster> out;
  std::vector<int> all_genes(static_cast<size_t>(data_.num_genes()));
  for (int g = 0; g < data_.num_genes(); ++g) {
    all_genes[static_cast<size_t>(g)] = g;
  }
  // Anchors: a cluster's smallest condition id.  The anchor must leave at
  // least MinC-1 larger condition ids available.
  for (int a = 0; a + options_.min_conditions <= data_.num_conditions(); ++a) {
    Node node;
    node.conds.push_back(a);
    node.genes = all_genes;
    Extend(&node, &out);
  }
  stats_.mine_seconds = timer.ElapsedSeconds();
  return out;
}

void PClusterMiner::Extend(Node* node, std::vector<core::Bicluster>* out) {
  if (options_.max_nodes >= 0 && stats_.nodes_expanded >= options_.max_nodes) {
    return;
  }
  ++stats_.nodes_expanded;

  const int m = static_cast<int>(node->conds.size());
  if (m >= options_.min_conditions &&
      static_cast<int>(node->genes.size()) >= options_.min_genes) {
    // Exact all-pairs verification; the window invariant only bounds pScore
    // by 2*delta.
    if (IsDeltaPCluster(data_, node->genes, node->conds, options_.delta)) {
      const std::string key = MakeKey(node->conds, node->genes);
      if (seen_keys_.insert(key).second) {
        core::Bicluster b;
        b.genes = node->genes;
        b.conditions = node->conds;
        out->push_back(std::move(b));
        ++stats_.clusters_emitted;
      }
    } else {
      ++stats_.verification_failures;
    }
  }

  const int anchor = node->conds[0];
  struct Scored {
    double v;
    int gene;
  };
  std::vector<Scored> scored;
  for (int cand = node->conds.back() + 1; cand < data_.num_conditions();
       ++cand) {
    // Anchored differences; genes within a window of span <= delta satisfy
    // the (anchor, cand) constraint exactly and all other pairs within
    // 2*delta (verified exactly on emission).
    scored.clear();
    scored.reserve(node->genes.size());
    for (int g : node->genes) {
      scored.push_back(Scored{data_(g, cand) - data_(g, anchor), g});
    }
    std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
      if (a.v != b.v) return a.v < b.v;
      return a.gene < b.gene;
    });
    const size_t n = scored.size();
    size_t hi = 0, prev_hi = 0;
    for (size_t lo = 0; lo < n; ++lo) {
      if (hi < lo + 1) hi = lo + 1;
      while (hi < n && scored[hi].v - scored[lo].v <= options_.delta) ++hi;
      const bool maximal = lo == 0 || hi > prev_hi;
      prev_hi = hi;
      if (!maximal || static_cast<int>(hi - lo) < options_.min_genes) continue;
      Node child;
      child.conds = node->conds;
      child.conds.push_back(cand);
      child.genes.reserve(hi - lo);
      for (size_t i = lo; i < hi; ++i) child.genes.push_back(scored[i].gene);
      std::sort(child.genes.begin(), child.genes.end());
      Extend(&child, out);
      if (options_.max_nodes >= 0 &&
          stats_.nodes_expanded >= options_.max_nodes) {
        return;
      }
    }
  }
}

}  // namespace baselines
}  // namespace regcluster
