#include "baselines/cheng_church.h"

#include <algorithm>
#include <cmath>

#include "util/prng.h"

namespace regcluster {
namespace baselines {
namespace {

/// Residue bookkeeping for one candidate bicluster over a working matrix.
class Residues {
 public:
  Residues(const matrix::ExpressionMatrix& data, std::vector<int> genes,
           std::vector<int> conds)
      : data_(data),
        genes_(std::move(genes)),
        signs_(genes_.size(), 1.0),
        conds_(std::move(conds)) {
    Recompute();
  }

  const std::vector<int>& genes() const { return genes_; }
  const std::vector<int>& conds() const { return conds_; }
  double msr() const { return msr_; }

  /// Mean squared residue contributed by one row (gene).
  double RowScore(int gi) const {
    double s = 0.0;
    for (size_t j = 0; j < conds_.size(); ++j) {
      const double r = Residue(gi, static_cast<int>(j));
      s += r * r;
    }
    return s / static_cast<double>(conds_.size());
  }

  /// Mean squared residue contributed by one column (condition).
  double ColScore(int cj) const {
    double s = 0.0;
    for (size_t i = 0; i < genes_.size(); ++i) {
      const double r = Residue(static_cast<int>(i), cj);
      s += r * r;
    }
    return s / static_cast<double>(genes_.size());
  }

  /// Score of an outside gene against the current column means (direct row).
  double OutsideRowScore(int gene) const { return OutsideScore(gene, 1.0); }

  /// Score of an outside gene added as an *inverted* row (Cheng & Church's
  /// mechanism for shift-type negative correlation: the row participates
  /// with its values negated).
  double OutsideInvertedRowScore(int gene) const {
    return OutsideScore(gene, -1.0);
  }

  /// Score of an outside column against the current row means.
  double OutsideColScore(int cond) const {
    double mean = 0.0;
    for (int g : genes_) mean += data_(g, cond);
    mean /= static_cast<double>(genes_.size());
    double s = 0.0;
    for (size_t i = 0; i < genes_.size(); ++i) {
      const double r = data_(genes_[i], cond) - row_means_[i] - mean + all_mean_;
      s += r * r;
    }
    return s / static_cast<double>(genes_.size());
  }

  void RemoveGenes(const std::vector<char>& kill) {
    std::vector<int> keep;
    std::vector<double> keep_signs;
    for (size_t i = 0; i < genes_.size(); ++i) {
      if (!kill[i]) {
        keep.push_back(genes_[i]);
        keep_signs.push_back(signs_[i]);
      }
    }
    genes_ = std::move(keep);
    signs_ = std::move(keep_signs);
    Recompute();
  }

  void RemoveConds(const std::vector<char>& kill) {
    std::vector<int> keep;
    for (size_t j = 0; j < conds_.size(); ++j) {
      if (!kill[j]) keep.push_back(conds_[j]);
    }
    conds_ = std::move(keep);
    Recompute();
  }

  void AddGene(int gene, bool inverted) {
    genes_.push_back(gene);
    signs_.push_back(inverted ? -1.0 : 1.0);
    Recompute();
  }

  void AddCond(int cond) {
    conds_.push_back(cond);
    Recompute();
  }

  void Recompute() {
    const size_t nr = genes_.size();
    const size_t nc = conds_.size();
    row_means_.assign(nr, 0.0);
    col_means_.assign(nc, 0.0);
    all_mean_ = 0.0;
    if (nr == 0 || nc == 0) {
      msr_ = 0.0;
      return;
    }
    for (size_t i = 0; i < nr; ++i) {
      for (size_t j = 0; j < nc; ++j) {
        const double v = Cell(static_cast<int>(i), static_cast<int>(j));
        row_means_[i] += v;
        col_means_[j] += v;
        all_mean_ += v;
      }
    }
    for (double& m : row_means_) m /= static_cast<double>(nc);
    for (double& m : col_means_) m /= static_cast<double>(nr);
    all_mean_ /= static_cast<double>(nr * nc);
    double s = 0.0;
    for (size_t i = 0; i < nr; ++i) {
      for (size_t j = 0; j < nc; ++j) {
        const double r = Residue(static_cast<int>(i), static_cast<int>(j));
        s += r * r;
      }
    }
    msr_ = s / static_cast<double>(nr * nc);
  }

 private:
  double Cell(int gi, int cj) const {
    return signs_[static_cast<size_t>(gi)] *
           data_(genes_[static_cast<size_t>(gi)],
                 conds_[static_cast<size_t>(cj)]);
  }

  double Residue(int gi, int cj) const {
    return Cell(gi, cj) - row_means_[static_cast<size_t>(gi)] -
           col_means_[static_cast<size_t>(cj)] + all_mean_;
  }

  double OutsideScore(int gene, double sign) const {
    double mean = 0.0;
    for (int c : conds_) mean += sign * data_(gene, c);
    mean /= static_cast<double>(conds_.size());
    double s = 0.0;
    for (size_t j = 0; j < conds_.size(); ++j) {
      const double r =
          sign * data_(gene, conds_[j]) - mean - col_means_[j] + all_mean_;
      s += r * r;
    }
    return s / static_cast<double>(conds_.size());
  }

  const matrix::ExpressionMatrix& data_;
  std::vector<int> genes_;
  std::vector<double> signs_;  // +1 direct row, -1 inverted row
  std::vector<int> conds_;
  std::vector<double> row_means_;
  std::vector<double> col_means_;
  double all_mean_ = 0.0;
  double msr_ = 0.0;
};

}  // namespace

double MeanSquaredResidue(const matrix::ExpressionMatrix& data,
                          const std::vector<int>& genes,
                          const std::vector<int>& conds) {
  Residues r(data, genes, conds);
  return r.msr();
}

util::StatusOr<std::vector<core::Bicluster>> MineChengChurch(
    const matrix::ExpressionMatrix& data, const ChengChurchOptions& options) {
  if (options.delta < 0.0) {
    return util::Status::InvalidArgument("delta must be >= 0");
  }
  if (options.alpha < 1.0) {
    return util::Status::InvalidArgument("alpha must be >= 1");
  }
  if (options.num_biclusters < 1) {
    return util::Status::InvalidArgument("num_biclusters must be >= 1");
  }
  if (data.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix contains missing values; impute first");
  }

  matrix::ExpressionMatrix work = data;  // masking mutates a copy
  util::Prng prng(options.seed);
  std::vector<core::Bicluster> out;

  for (int round = 0; round < options.num_biclusters; ++round) {
    std::vector<int> genes(static_cast<size_t>(work.num_genes()));
    std::vector<int> conds(static_cast<size_t>(work.num_conditions()));
    for (int g = 0; g < work.num_genes(); ++g) genes[static_cast<size_t>(g)] = g;
    for (int c = 0; c < work.num_conditions(); ++c) conds[static_cast<size_t>(c)] = c;
    Residues r(work, std::move(genes), std::move(conds));

    // Phase 1: multiple node deletion.
    while (r.msr() > options.delta &&
           (static_cast<int>(r.genes().size()) >
                options.multiple_deletion_threshold ||
            static_cast<int>(r.conds().size()) >
                options.multiple_deletion_threshold)) {
      bool changed = false;
      if (static_cast<int>(r.genes().size()) >
          options.multiple_deletion_threshold) {
        std::vector<char> kill(r.genes().size(), 0);
        for (size_t i = 0; i < r.genes().size(); ++i) {
          if (r.RowScore(static_cast<int>(i)) > options.alpha * r.msr()) {
            kill[i] = 1;
            changed = true;
          }
        }
        if (changed) r.RemoveGenes(kill);
      }
      if (r.msr() <= options.delta) break;
      if (static_cast<int>(r.conds().size()) >
          options.multiple_deletion_threshold) {
        std::vector<char> kill(r.conds().size(), 0);
        bool col_changed = false;
        for (size_t j = 0; j < r.conds().size(); ++j) {
          if (r.ColScore(static_cast<int>(j)) > options.alpha * r.msr()) {
            kill[j] = 1;
            col_changed = true;
          }
        }
        if (col_changed) {
          r.RemoveConds(kill);
          changed = true;
        }
      }
      if (!changed) break;
    }

    // Phase 2: single node deletion.
    while (r.msr() > options.delta && r.genes().size() > 1 &&
           r.conds().size() > 1) {
      double worst_row = -1.0;
      int worst_row_idx = -1;
      for (size_t i = 0; i < r.genes().size(); ++i) {
        const double s = r.RowScore(static_cast<int>(i));
        if (s > worst_row) {
          worst_row = s;
          worst_row_idx = static_cast<int>(i);
        }
      }
      double worst_col = -1.0;
      int worst_col_idx = -1;
      for (size_t j = 0; j < r.conds().size(); ++j) {
        const double s = r.ColScore(static_cast<int>(j));
        if (s > worst_col) {
          worst_col = s;
          worst_col_idx = static_cast<int>(j);
        }
      }
      if (worst_row >= worst_col) {
        std::vector<char> kill(r.genes().size(), 0);
        kill[static_cast<size_t>(worst_row_idx)] = 1;
        r.RemoveGenes(kill);
      } else {
        std::vector<char> kill(r.conds().size(), 0);
        kill[static_cast<size_t>(worst_col_idx)] = 1;
        r.RemoveConds(kill);
      }
    }

    // Phase 3: node addition (columns first, then rows, per the paper).
    bool added = true;
    while (added) {
      added = false;
      std::vector<char> in_conds(static_cast<size_t>(work.num_conditions()), 0);
      for (int c : r.conds()) in_conds[static_cast<size_t>(c)] = 1;
      for (int c = 0; c < work.num_conditions(); ++c) {
        if (in_conds[static_cast<size_t>(c)]) continue;
        if (r.OutsideColScore(c) <= r.msr()) {
          r.AddCond(c);
          added = true;
        }
      }
      std::vector<char> in_genes(static_cast<size_t>(work.num_genes()), 0);
      for (int g : r.genes()) in_genes[static_cast<size_t>(g)] = 1;
      for (int g = 0; g < work.num_genes(); ++g) {
        if (in_genes[static_cast<size_t>(g)]) continue;
        const bool direct_ok = r.OutsideRowScore(g) <= r.msr();
        const bool inverted_ok =
            options.add_inverted_rows && r.OutsideInvertedRowScore(g) <= r.msr();
        if (direct_ok || inverted_ok) {
          r.AddGene(g, /*inverted=*/!direct_ok);
          added = true;
        }
      }
    }

    if (r.genes().empty() || r.conds().empty()) break;

    core::Bicluster b;
    b.genes = r.genes();
    b.conditions = r.conds();
    std::sort(b.genes.begin(), b.genes.end());
    std::sort(b.conditions.begin(), b.conditions.end());

    // Mask the found bicluster with random values so the next round finds
    // something else.
    for (int g : b.genes) {
      for (int c : b.conditions) {
        work(g, c) = prng.Uniform(options.mask_lo, options.mask_hi);
      }
    }
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace baselines
}  // namespace regcluster
