#include "baselines/opcluster.h"

#include <algorithm>

#include "util/string_util.h"
#include "util/timer.h"

namespace regcluster {
namespace baselines {

core::Bicluster OpCluster::ToBicluster() const {
  core::Bicluster b;
  b.genes = genes;
  b.conditions = sequence;
  std::sort(b.conditions.begin(), b.conditions.end());
  return b;
}

OpClusterMiner::OpClusterMiner(const matrix::ExpressionMatrix& data,
                               OpClusterOptions options)
    : data_(data), options_(options) {}

bool OpClusterMiner::Supports(int gene, int last, int cand) const {
  return data_(gene, cand) >= data_(gene, last) - options_.grouping_threshold;
}

util::StatusOr<std::vector<OpCluster>> OpClusterMiner::Mine() {
  if (options_.min_genes < 1 || options_.min_conditions < 2) {
    return util::Status::InvalidArgument(
        "OP-cluster needs min_genes >= 1 and min_conditions >= 2");
  }
  if (options_.grouping_threshold < 0.0) {
    return util::Status::InvalidArgument("grouping_threshold must be >= 0");
  }
  if (data_.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix contains missing values; impute first");
  }
  stats_ = OpClusterStats();
  seen_keys_.clear();
  util::WallTimer timer;

  std::vector<OpCluster> out;
  std::vector<int> all_genes(static_cast<size_t>(data_.num_genes()));
  for (int g = 0; g < data_.num_genes(); ++g) {
    all_genes[static_cast<size_t>(g)] = g;
  }
  for (int c = 0; c < data_.num_conditions(); ++c) {
    Node node;
    node.sequence.push_back(c);
    node.genes = all_genes;
    Extend(&node, &out);
  }
  stats_.mine_seconds = timer.ElapsedSeconds();
  return out;
}

void OpClusterMiner::Extend(Node* node, std::vector<OpCluster>* out) {
  if (options_.max_nodes >= 0 && stats_.nodes_expanded >= options_.max_nodes) {
    return;
  }
  ++stats_.nodes_expanded;

  const int last = node->sequence.back();
  bool closed = true;  // no extension preserves the full gene set
  std::vector<char> in_seq(static_cast<size_t>(data_.num_conditions()), 0);
  for (int c : node->sequence) in_seq[static_cast<size_t>(c)] = 1;

  for (int cand = 0; cand < data_.num_conditions(); ++cand) {
    if (in_seq[static_cast<size_t>(cand)]) continue;
    Node child;
    child.sequence = node->sequence;
    child.sequence.push_back(cand);
    for (int g : node->genes) {
      if (Supports(g, last, cand)) child.genes.push_back(g);
    }
    if (child.genes.size() == node->genes.size()) closed = false;
    if (static_cast<int>(child.genes.size()) < options_.min_genes) continue;
    Extend(&child, out);
    if (options_.max_nodes >= 0 &&
        stats_.nodes_expanded >= options_.max_nodes) {
      return;
    }
  }

  if (closed &&
      static_cast<int>(node->sequence.size()) >= options_.min_conditions &&
      static_cast<int>(node->genes.size()) >= options_.min_genes) {
    std::string key;
    for (int c : node->sequence) key += util::StrFormat("%d,", c);
    key += '|';
    for (int g : node->genes) key += util::StrFormat("%d,", g);
    if (seen_keys_.insert(std::move(key)).second) {
      OpCluster cluster;
      cluster.sequence = node->sequence;
      cluster.genes = node->genes;
      out->push_back(std::move(cluster));
      ++stats_.clusters_emitted;
    }
  }
}

}  // namespace baselines
}  // namespace regcluster
