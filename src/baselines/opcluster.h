// Tendency baseline in the style of OP-Cluster (Liu & Wang, ICDM 2003) and
// OPSM (Ben-Dor et al., RECOMB 2002): order-preserving submatrices.
//
// A submatrix X x (c1..cm) is an order-preserving cluster if every gene in
// X has non-decreasing expression along the condition sequence, optionally
// treating differences below a grouping threshold as equal.  The model
// captures synchronous *tendency* only -- no coherence and no regulation
// guarantee -- which is the third gap discussed in Sections 1.1/3.3: a gene
// whose steps are wildly disproportionate still joins the cluster, and with
// a non-zero regulation threshold the model cannot express "this pair of
// conditions is regulated, that one is not".
//
// Implementation: depth-first enumeration of condition sequences with gene
// support sets; a node is emitted when it is *closed* (no extension keeps
// the full gene set) and meets the size thresholds.

#ifndef REGCLUSTER_BASELINES_OPCLUSTER_H_
#define REGCLUSTER_BASELINES_OPCLUSTER_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/bicluster.h"
#include "matrix/expression_matrix.h"
#include "util/status.h"

namespace regcluster {
namespace baselines {

struct OpClusterOptions {
  int min_genes = 2;
  int min_conditions = 2;
  /// Differences with absolute value <= grouping_threshold count as "equal"
  /// and do not break the order (OP-Cluster's similarity grouping).
  double grouping_threshold = 0.0;
  int64_t max_nodes = -1;
};

struct OpClusterStats {
  int64_t nodes_expanded = 0;
  int64_t clusters_emitted = 0;
  double mine_seconds = 0.0;
};

/// An order-preserving cluster: the gene set plus the supporting condition
/// sequence (ascending expression for every gene).
struct OpCluster {
  std::vector<int> sequence;  ///< ordered conditions
  std::vector<int> genes;     ///< sorted

  core::Bicluster ToBicluster() const;
};

class OpClusterMiner {
 public:
  OpClusterMiner(const matrix::ExpressionMatrix& data,
                 OpClusterOptions options);

  util::StatusOr<std::vector<OpCluster>> Mine();
  const OpClusterStats& stats() const { return stats_; }

 private:
  struct Node {
    std::vector<int> sequence;
    std::vector<int> genes;
  };

  void Extend(Node* node, std::vector<OpCluster>* out);

  /// True iff `gene`'s expression admits the step last -> cand.
  bool Supports(int gene, int last, int cand) const;

  const matrix::ExpressionMatrix& data_;
  OpClusterOptions options_;
  OpClusterStats stats_;
  std::unordered_set<std::string> seen_keys_;
};

}  // namespace baselines
}  // namespace regcluster

#endif  // REGCLUSTER_BASELINES_OPCLUSTER_H_
