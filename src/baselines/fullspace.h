// Full-space clustering baselines (Section 2's first family): k-means and
// Eisen-style agglomerative hierarchical clustering.
//
// These methods evaluate similarity over *all* conditions, which is exactly
// the limitation the subspace models address: a module co-regulated on 6 of
// 30 conditions is invisible to them because the other 24 background
// columns dominate the distance.  They are included so the comparison
// benchmark can demonstrate that gap, and because any production clustering
// toolkit ships them.
//
// Both operate on genes (rows).  For comparability with biclusters, each
// result cluster is a gene set implicitly paired with the full condition
// set.

#ifndef REGCLUSTER_BASELINES_FULLSPACE_H_
#define REGCLUSTER_BASELINES_FULLSPACE_H_

#include <cstdint>
#include <vector>

#include "core/bicluster.h"
#include "matrix/expression_matrix.h"
#include "util/status.h"

namespace regcluster {
namespace baselines {

struct KMeansOptions {
  int k = 8;
  int max_iterations = 100;
  /// Number of random restarts; the best (lowest inertia) run wins.
  int restarts = 3;
  /// Z-score rows first (the usual preprocessing for expression profiles).
  bool zscore_rows = true;
  uint64_t seed = 5;
};

struct KMeansResult {
  /// assignment[g] = cluster id in [0, k).
  std::vector<int> assignment;
  /// Sum of squared distances to the assigned centroids.
  double inertia = 0.0;
  /// Gene sets per cluster (sorted).
  std::vector<std::vector<int>> clusters;
};

/// Lloyd's algorithm with k-means++ seeding.
util::StatusOr<KMeansResult> KMeansRows(const matrix::ExpressionMatrix& data,
                                        const KMeansOptions& options);

/// Linkage criteria for hierarchical clustering.
enum class Linkage : int { kSingle = 0, kComplete = 1, kAverage = 2 };

struct HierarchicalOptions {
  /// Cut the dendrogram into this many clusters.
  int num_clusters = 8;
  Linkage linkage = Linkage::kAverage;
  /// Distance: 1 - Pearson correlation (Eisen et al.) when true, Euclidean
  /// otherwise.
  bool correlation_distance = true;
};

/// Agglomerative clustering over genes; O(n^2 log n)-ish with a naive
/// distance matrix, fine for a few thousand genes.
util::StatusOr<std::vector<std::vector<int>>> HierarchicalRows(
    const matrix::ExpressionMatrix& data, const HierarchicalOptions& options);

/// Adapts full-space gene clusters to biclusters spanning all conditions.
std::vector<core::Bicluster> ToFullSpaceBiclusters(
    const std::vector<std::vector<int>>& gene_clusters, int num_conditions);

}  // namespace baselines
}  // namespace regcluster

#endif  // REGCLUSTER_BASELINES_FULLSPACE_H_
