#include "baselines/opsm.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace regcluster {
namespace baselines {
namespace {

struct Beam {
  std::vector<int> sequence;
  std::vector<int> genes;  // supporting genes, sorted
};

/// Support of `sequence` extended by `cand`, restricted to `genes`.
std::vector<int> ExtendSupport(const matrix::ExpressionMatrix& data,
                               const std::vector<int>& genes, int last,
                               int cand, double tol) {
  std::vector<int> out;
  out.reserve(genes.size());
  for (int g : genes) {
    if (data(g, cand) >= data(g, last) - tol) out.push_back(g);
  }
  return out;
}

}  // namespace

OpCluster OpsmModel::ToOpCluster() const {
  OpCluster c;
  c.sequence = sequence;
  c.genes = genes;
  return c;
}

util::StatusOr<std::vector<OpsmModel>> MineOpsm(
    const matrix::ExpressionMatrix& data, const OpsmOptions& options) {
  const int conds = data.num_conditions();
  const int genes = data.num_genes();
  if (options.sequence_length < 2 || options.sequence_length > conds) {
    return util::Status::InvalidArgument(
        "sequence_length must be in [2, num_conditions]");
  }
  if (options.beam_width < 1 || options.max_models < 1) {
    return util::Status::InvalidArgument(
        "beam_width and max_models must be >= 1");
  }
  if (options.tie_tolerance < 0.0) {
    return util::Status::InvalidArgument("tie_tolerance must be >= 0");
  }
  if (data.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix contains missing values; impute first");
  }

  // Round 1: all ordered pairs, ranked by support.
  std::vector<Beam> beams;
  std::vector<int> all(static_cast<size_t>(genes));
  for (int g = 0; g < genes; ++g) all[static_cast<size_t>(g)] = g;
  for (int a = 0; a < conds; ++a) {
    for (int b = 0; b < conds; ++b) {
      if (a == b) continue;
      Beam beam;
      beam.sequence = {a, b};
      beam.genes = ExtendSupport(data, all, a, b, options.tie_tolerance);
      if (!beam.genes.empty()) beams.push_back(std::move(beam));
    }
  }

  auto by_support = [](const Beam& x, const Beam& y) {
    if (x.genes.size() != y.genes.size()) {
      return x.genes.size() > y.genes.size();
    }
    return x.sequence < y.sequence;  // deterministic ties
  };
  auto shrink = [&](std::vector<Beam>* b, size_t width) {
    std::sort(b->begin(), b->end(), by_support);
    if (b->size() > width) b->resize(width);
  };
  shrink(&beams, static_cast<size_t>(options.beam_width));

  // Rounds 3..k: extend each beam with every unused column, keep the best.
  for (int len = 3; len <= options.sequence_length; ++len) {
    std::vector<Beam> next;
    for (const Beam& beam : beams) {
      for (int cand = 0; cand < conds; ++cand) {
        if (std::find(beam.sequence.begin(), beam.sequence.end(), cand) !=
            beam.sequence.end()) {
          continue;
        }
        Beam extended;
        extended.sequence = beam.sequence;
        extended.sequence.push_back(cand);
        extended.genes = ExtendSupport(data, beam.genes,
                                       beam.sequence.back(), cand,
                                       options.tie_tolerance);
        if (!extended.genes.empty()) next.push_back(std::move(extended));
      }
    }
    if (next.empty()) break;
    shrink(&next, static_cast<size_t>(options.beam_width));
    beams = std::move(next);
  }

  // Score and report.
  std::vector<OpsmModel> out;
  double log_kfact = 0.0;
  for (int i = 2; i <= options.sequence_length; ++i) {
    log_kfact += std::log(static_cast<double>(i));
  }
  const double p_support = std::exp(-log_kfact);  // 1/k!
  for (const Beam& beam : beams) {
    if (static_cast<int>(beam.sequence.size()) != options.sequence_length) {
      continue;
    }
    OpsmModel model;
    model.sequence = beam.sequence;
    model.genes = beam.genes;
    // Binomial upper tail in log space; clamp for display.
    double tail = 0.0;
    const int m = static_cast<int>(beam.genes.size());
    for (int i = m; i <= genes; ++i) {
      const double log_term = util::LogBinomial(genes, i) +
                              i * std::log(p_support) +
                              (genes - i) * std::log1p(-p_support);
      tail += std::exp(log_term);
      if (i > m + 40) break;  // terms vanish fast
    }
    model.neg_log10_p =
        tail > 0.0 ? -std::log10(std::min(1.0, tail)) : 320.0;
    out.push_back(std::move(model));
    if (static_cast<int>(out.size()) == options.max_models) break;
  }
  return out;
}

}  // namespace baselines
}  // namespace regcluster
