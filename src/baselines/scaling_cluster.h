// Scaling-pattern baseline, modelling the 2-D core of TriCluster (Zhao &
// Zaki, SIGMOD 2005) and the multiplicative delta-cluster model (Yang et
// al., ICDE 2002): pure *positive scaling* biclusters.
//
// A submatrix X x T is an (epsilon)-scaling cluster iff there is a base
// profile b(T) and per-gene positive multipliers m_g with
// d_g,c ~ m_g * b(c); operationally (TriCluster): for every condition pair
// (a, b) the gene-wise expression ratios d_ga / d_gb lie within a window
// [r, r * (1 + epsilon)].  Shifting patterns and patterns with negative
// scaling factors do not satisfy the bound, which is the other half of the
// gap the reg-cluster paper identifies.
//
// Implementation mirrors the pCluster baseline: anchored condition-set DFS
// with ratio-window gene partitioning, exact all-pairs verification before
// emission.  Genes whose anchor expression is ~0 or whose ratios change
// sign are excluded on the corresponding branch (the model is undefined
// there -- exactly the limitation Section 1.3 points out).

#ifndef REGCLUSTER_BASELINES_SCALING_CLUSTER_H_
#define REGCLUSTER_BASELINES_SCALING_CLUSTER_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/bicluster.h"
#include "matrix/expression_matrix.h"
#include "util/status.h"

namespace regcluster {
namespace baselines {

struct ScalingClusterOptions {
  /// Relative width of the valid ratio window per condition pair.
  double epsilon = 0.05;
  int min_genes = 2;
  int min_conditions = 2;
  /// |expression| below this is treated as zero (ratios undefined).
  double zero_tolerance = 1e-9;
  int64_t max_nodes = -1;
};

struct ScalingClusterStats {
  int64_t nodes_expanded = 0;
  int64_t clusters_emitted = 0;
  int64_t verification_failures = 0;
  double mine_seconds = 0.0;
};

/// True iff genes x conds is an exact scaling cluster: for every condition
/// pair the gene-wise ratio spread satisfies max <= min * (1 + epsilon)
/// with all ratios of one sign.
bool IsScalingCluster(const matrix::ExpressionMatrix& data,
                      const std::vector<int>& genes,
                      const std::vector<int>& conds, double epsilon,
                      double zero_tolerance);

class ScalingClusterMiner {
 public:
  ScalingClusterMiner(const matrix::ExpressionMatrix& data,
                      ScalingClusterOptions options);

  util::StatusOr<std::vector<core::Bicluster>> Mine();
  const ScalingClusterStats& stats() const { return stats_; }

 private:
  struct Node {
    std::vector<int> conds;
    std::vector<int> genes;
  };

  void Extend(Node* node, std::vector<core::Bicluster>* out);

  const matrix::ExpressionMatrix& data_;
  ScalingClusterOptions options_;
  ScalingClusterStats stats_;
  std::unordered_set<std::string> seen_keys_;
};

}  // namespace baselines
}  // namespace regcluster

#endif  // REGCLUSTER_BASELINES_SCALING_CLUSTER_H_
