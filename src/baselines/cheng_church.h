// Cheng & Church delta-bicluster baseline (ISMB 2000).
//
// Finds k biclusters with mean squared residue H(X, Y) <= delta:
//
//   H = (1/|X||Y|) * sum_{i,j} (d_ij - rowmean_i - colmean_j + allmean)^2
//
// via the published greedy pipeline: multiple node deletion -> single node
// deletion -> node addition (including inverted rows, the paper's mechanism
// for *shift-type* negative correlation), then masking the found bicluster
// with random values and repeating.  The MSR criterion tolerates shifting
// patterns but penalizes scaling -- the reg-cluster paper cites it as the
// classic regulation-motivated but coherence-limited model.

#ifndef REGCLUSTER_BASELINES_CHENG_CHURCH_H_
#define REGCLUSTER_BASELINES_CHENG_CHURCH_H_

#include <cstdint>
#include <vector>

#include "core/bicluster.h"
#include "matrix/expression_matrix.h"
#include "util/status.h"

namespace regcluster {
namespace baselines {

struct ChengChurchOptions {
  /// MSR acceptance threshold.
  double delta = 0.5;
  /// Multiple-node-deletion aggressiveness (paper's alpha, > 1).
  double alpha = 1.2;
  /// Number of biclusters to report.
  int num_biclusters = 10;
  /// Use multiple node deletion only while dimensions exceed this.
  int multiple_deletion_threshold = 100;
  /// Allow adding inverted rows during node addition.
  bool add_inverted_rows = true;
  /// Masking noise range (uniform) for cells of found biclusters.
  double mask_lo = 0.0;
  double mask_hi = 10.0;
  uint64_t seed = 17;
};

/// Mean squared residue of the submatrix genes x conds.
double MeanSquaredResidue(const matrix::ExpressionMatrix& data,
                          const std::vector<int>& genes,
                          const std::vector<int>& conds);

/// Runs the Cheng-Church pipeline.  Returns up to num_biclusters biclusters
/// (fewer if the whole matrix drops below delta first).  Operates on a
/// private copy of the data (masking mutates it).
util::StatusOr<std::vector<core::Bicluster>> MineChengChurch(
    const matrix::ExpressionMatrix& data, const ChengChurchOptions& options);

}  // namespace baselines
}  // namespace regcluster

#endif  // REGCLUSTER_BASELINES_CHENG_CHURCH_H_
