#include "baselines/scaling_cluster.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"
#include "util/timer.h"

namespace regcluster {
namespace baselines {
namespace {

std::string MakeKey(const std::vector<int>& conds,
                    const std::vector<int>& genes) {
  std::string key;
  key.reserve((conds.size() + genes.size()) * 6);
  for (int c : conds) key += util::StrFormat("%d,", c);
  key += '|';
  for (int g : genes) key += util::StrFormat("%d,", g);
  return key;
}

}  // namespace

bool IsScalingCluster(const matrix::ExpressionMatrix& data,
                      const std::vector<int>& genes,
                      const std::vector<int>& conds, double epsilon,
                      double zero_tolerance) {
  for (size_t a = 0; a < conds.size(); ++a) {
    for (size_t b = a + 1; b < conds.size(); ++b) {
      double lo = 0.0, hi = 0.0;
      bool first = true;
      for (int g : genes) {
        const double denom = data(g, conds[b]);
        if (std::fabs(denom) <= zero_tolerance) return false;
        const double r = data(g, conds[a]) / denom;
        if (first) {
          lo = hi = r;
          first = false;
        } else {
          lo = std::min(lo, r);
          hi = std::max(hi, r);
        }
      }
      if (first) continue;
      // Ratios must share a sign and stay within the relative window.
      if (lo <= 0.0 && hi >= 0.0) return false;
      const double alo = std::min(std::fabs(lo), std::fabs(hi));
      const double ahi = std::max(std::fabs(lo), std::fabs(hi));
      if (ahi > alo * (1.0 + epsilon)) return false;
    }
  }
  return true;
}

ScalingClusterMiner::ScalingClusterMiner(const matrix::ExpressionMatrix& data,
                                         ScalingClusterOptions options)
    : data_(data), options_(options) {}

util::StatusOr<std::vector<core::Bicluster>> ScalingClusterMiner::Mine() {
  if (options_.epsilon < 0.0) {
    return util::Status::InvalidArgument("epsilon must be >= 0");
  }
  if (options_.min_genes < 2 || options_.min_conditions < 2) {
    return util::Status::InvalidArgument(
        "scaling miner needs min_genes >= 2 and min_conditions >= 2");
  }
  if (data_.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix contains missing values; impute first");
  }
  stats_ = ScalingClusterStats();
  seen_keys_.clear();
  util::WallTimer timer;

  std::vector<core::Bicluster> out;
  for (int a = 0; a + options_.min_conditions <= data_.num_conditions(); ++a) {
    Node node;
    node.conds.push_back(a);
    node.genes.reserve(static_cast<size_t>(data_.num_genes()));
    for (int g = 0; g < data_.num_genes(); ++g) {
      if (std::fabs(data_(g, a)) > options_.zero_tolerance) {
        node.genes.push_back(g);
      }
    }
    Extend(&node, &out);
  }
  stats_.mine_seconds = timer.ElapsedSeconds();
  return out;
}

void ScalingClusterMiner::Extend(Node* node, std::vector<core::Bicluster>* out) {
  if (options_.max_nodes >= 0 && stats_.nodes_expanded >= options_.max_nodes) {
    return;
  }
  ++stats_.nodes_expanded;

  const int m = static_cast<int>(node->conds.size());
  if (m >= options_.min_conditions &&
      static_cast<int>(node->genes.size()) >= options_.min_genes) {
    if (IsScalingCluster(data_, node->genes, node->conds, options_.epsilon,
                         options_.zero_tolerance)) {
      const std::string key = MakeKey(node->conds, node->genes);
      if (seen_keys_.insert(key).second) {
        core::Bicluster b;
        b.genes = node->genes;
        b.conditions = node->conds;
        out->push_back(std::move(b));
        ++stats_.clusters_emitted;
      }
    } else {
      ++stats_.verification_failures;
    }
  }

  const int anchor = node->conds[0];
  struct Scored {
    double v;  // log |ratio|
    int gene;
  };
  std::vector<Scored> scored;
  const double log_window = std::log1p(options_.epsilon);
  for (int cand = node->conds.back() + 1; cand < data_.num_conditions();
       ++cand) {
    // Partition genes by the sign of the (cand / anchor) ratio, then apply
    // log-ratio windows of width log(1 + epsilon) within each sign class.
    for (int sign_class = 0; sign_class < 2; ++sign_class) {
      scored.clear();
      for (int g : node->genes) {
        const double num = data_(g, cand);
        if (std::fabs(num) <= options_.zero_tolerance) continue;
        const double ratio = num / data_(g, anchor);
        const bool negative = ratio < 0.0;
        if (static_cast<int>(negative) != sign_class) continue;
        scored.push_back(Scored{std::log(std::fabs(ratio)), g});
      }
      if (static_cast<int>(scored.size()) < options_.min_genes) continue;
      std::sort(scored.begin(), scored.end(),
                [](const Scored& a, const Scored& b) {
                  if (a.v != b.v) return a.v < b.v;
                  return a.gene < b.gene;
                });
      const size_t n = scored.size();
      size_t hi = 0, prev_hi = 0;
      for (size_t lo = 0; lo < n; ++lo) {
        if (hi < lo + 1) hi = lo + 1;
        while (hi < n && scored[hi].v - scored[lo].v <= log_window) ++hi;
        const bool maximal = lo == 0 || hi > prev_hi;
        prev_hi = hi;
        if (!maximal || static_cast<int>(hi - lo) < options_.min_genes) {
          continue;
        }
        Node child;
        child.conds = node->conds;
        child.conds.push_back(cand);
        child.genes.reserve(hi - lo);
        for (size_t i = lo; i < hi; ++i) child.genes.push_back(scored[i].gene);
        std::sort(child.genes.begin(), child.genes.end());
        Extend(&child, out);
        if (options_.max_nodes >= 0 &&
            stats_.nodes_expanded >= options_.max_nodes) {
          return;
        }
      }
    }
  }
}

}  // namespace baselines
}  // namespace regcluster
