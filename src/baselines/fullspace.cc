#include "baselines/fullspace.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "matrix/transforms.h"
#include "util/math_util.h"
#include "util/prng.h"

namespace regcluster {
namespace baselines {
namespace {

double SquaredDistance(const double* a, const double* b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

util::StatusOr<KMeansResult> KMeansRows(const matrix::ExpressionMatrix& data,
                                        const KMeansOptions& options) {
  const int n = data.num_genes();
  const int dim = data.num_conditions();
  if (options.k < 1) {
    return util::Status::InvalidArgument("k must be >= 1");
  }
  if (options.k > n) {
    return util::Status::InvalidArgument("k exceeds the number of genes");
  }
  if (options.max_iterations < 1 || options.restarts < 1) {
    return util::Status::InvalidArgument("iterations/restarts must be >= 1");
  }
  if (data.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix contains missing values; impute first");
  }

  const matrix::ExpressionMatrix work =
      options.zscore_rows ? matrix::ZScoreRows(data) : data;

  util::Prng prng(options.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < options.restarts; ++restart) {
    // k-means++ seeding.
    std::vector<std::vector<double>> centroids;
    centroids.reserve(static_cast<size_t>(options.k));
    {
      const int first = static_cast<int>(prng.UniformInt(0, n - 1));
      centroids.emplace_back(work.row_data(first), work.row_data(first) + dim);
      std::vector<double> d2(static_cast<size_t>(n));
      while (static_cast<int>(centroids.size()) < options.k) {
        double total = 0.0;
        for (int g = 0; g < n; ++g) {
          double nearest = std::numeric_limits<double>::infinity();
          for (const auto& c : centroids) {
            nearest = std::min(
                nearest, SquaredDistance(work.row_data(g), c.data(), dim));
          }
          d2[static_cast<size_t>(g)] = nearest;
          total += nearest;
        }
        int chosen = 0;
        if (total > 0.0) {
          double target = prng.NextDouble() * total;
          for (int g = 0; g < n; ++g) {
            target -= d2[static_cast<size_t>(g)];
            if (target <= 0.0) {
              chosen = g;
              break;
            }
          }
        } else {
          chosen = static_cast<int>(prng.UniformInt(0, n - 1));
        }
        centroids.emplace_back(work.row_data(chosen),
                               work.row_data(chosen) + dim);
      }
    }

    // Lloyd iterations.
    std::vector<int> assignment(static_cast<size_t>(n), 0);
    double inertia = 0.0;
    for (int iter = 0; iter < options.max_iterations; ++iter) {
      bool changed = false;
      inertia = 0.0;
      for (int g = 0; g < n; ++g) {
        double nearest = std::numeric_limits<double>::infinity();
        int arg = 0;
        for (int c = 0; c < options.k; ++c) {
          const double d = SquaredDistance(
              work.row_data(g), centroids[static_cast<size_t>(c)].data(), dim);
          if (d < nearest) {
            nearest = d;
            arg = c;
          }
        }
        if (assignment[static_cast<size_t>(g)] != arg) {
          assignment[static_cast<size_t>(g)] = arg;
          changed = true;
        }
        inertia += nearest;
      }
      if (!changed && iter > 0) break;
      // Recompute centroids.
      std::vector<std::vector<double>> sums(
          static_cast<size_t>(options.k),
          std::vector<double>(static_cast<size_t>(dim), 0.0));
      std::vector<int> counts(static_cast<size_t>(options.k), 0);
      for (int g = 0; g < n; ++g) {
        const int c = assignment[static_cast<size_t>(g)];
        ++counts[static_cast<size_t>(c)];
        const double* row = work.row_data(g);
        for (int j = 0; j < dim; ++j) {
          sums[static_cast<size_t>(c)][static_cast<size_t>(j)] += row[j];
        }
      }
      for (int c = 0; c < options.k; ++c) {
        if (counts[static_cast<size_t>(c)] == 0) continue;  // empty: keep old
        for (int j = 0; j < dim; ++j) {
          centroids[static_cast<size_t>(c)][static_cast<size_t>(j)] =
              sums[static_cast<size_t>(c)][static_cast<size_t>(j)] /
              counts[static_cast<size_t>(c)];
        }
      }
    }

    if (inertia < best.inertia) {
      best.inertia = inertia;
      best.assignment = assignment;
    }
  }

  best.clusters.assign(static_cast<size_t>(options.k), {});
  for (int g = 0; g < n; ++g) {
    best.clusters[static_cast<size_t>(best.assignment[static_cast<size_t>(g)])]
        .push_back(g);
  }
  return best;
}

util::StatusOr<std::vector<std::vector<int>>> HierarchicalRows(
    const matrix::ExpressionMatrix& data,
    const HierarchicalOptions& options) {
  const int n = data.num_genes();
  if (options.num_clusters < 1) {
    return util::Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (options.num_clusters > n) {
    return util::Status::InvalidArgument("num_clusters exceeds gene count");
  }
  if (data.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix contains missing values; impute first");
  }

  // Pairwise distances.
  std::vector<std::vector<double>> dist(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n), 0));
  for (int i = 0; i < n; ++i) {
    const std::vector<double> ri = data.Row(i);
    for (int j = i + 1; j < n; ++j) {
      const std::vector<double> rj = data.Row(j);
      double d;
      if (options.correlation_distance) {
        d = 1.0 - util::PearsonCorrelation(ri, rj);
      } else {
        d = std::sqrt(
            SquaredDistance(ri.data(), rj.data(), data.num_conditions()));
      }
      dist[static_cast<size_t>(i)][static_cast<size_t>(j)] = d;
      dist[static_cast<size_t>(j)][static_cast<size_t>(i)] = d;
    }
  }

  // Naive agglomeration with Lance-Williams updates.
  std::vector<std::vector<int>> clusters;
  clusters.reserve(static_cast<size_t>(n));
  for (int g = 0; g < n; ++g) clusters.push_back({g});
  std::vector<bool> alive(static_cast<size_t>(n), true);
  int remaining = n;

  while (remaining > options.num_clusters) {
    double best_d = std::numeric_limits<double>::infinity();
    int a = -1, b = -1;
    for (int i = 0; i < n; ++i) {
      if (!alive[static_cast<size_t>(i)]) continue;
      for (int j = i + 1; j < n; ++j) {
        if (!alive[static_cast<size_t>(j)]) continue;
        if (dist[static_cast<size_t>(i)][static_cast<size_t>(j)] < best_d) {
          best_d = dist[static_cast<size_t>(i)][static_cast<size_t>(j)];
          a = i;
          b = j;
        }
      }
    }
    // Merge b into a with the selected linkage.
    const double na = static_cast<double>(clusters[static_cast<size_t>(a)].size());
    const double nb = static_cast<double>(clusters[static_cast<size_t>(b)].size());
    for (int j = 0; j < n; ++j) {
      if (!alive[static_cast<size_t>(j)] || j == a || j == b) continue;
      const double daj = dist[static_cast<size_t>(a)][static_cast<size_t>(j)];
      const double dbj = dist[static_cast<size_t>(b)][static_cast<size_t>(j)];
      double merged;
      switch (options.linkage) {
        case Linkage::kSingle:
          merged = std::min(daj, dbj);
          break;
        case Linkage::kComplete:
          merged = std::max(daj, dbj);
          break;
        case Linkage::kAverage:
        default:
          merged = (na * daj + nb * dbj) / (na + nb);
          break;
      }
      dist[static_cast<size_t>(a)][static_cast<size_t>(j)] = merged;
      dist[static_cast<size_t>(j)][static_cast<size_t>(a)] = merged;
    }
    clusters[static_cast<size_t>(a)].insert(
        clusters[static_cast<size_t>(a)].end(),
        clusters[static_cast<size_t>(b)].begin(),
        clusters[static_cast<size_t>(b)].end());
    clusters[static_cast<size_t>(b)].clear();
    alive[static_cast<size_t>(b)] = false;
    --remaining;
  }

  std::vector<std::vector<int>> out;
  for (int i = 0; i < n; ++i) {
    if (!alive[static_cast<size_t>(i)]) continue;
    std::sort(clusters[static_cast<size_t>(i)].begin(),
              clusters[static_cast<size_t>(i)].end());
    out.push_back(std::move(clusters[static_cast<size_t>(i)]));
  }
  return out;
}

std::vector<core::Bicluster> ToFullSpaceBiclusters(
    const std::vector<std::vector<int>>& gene_clusters, int num_conditions) {
  std::vector<core::Bicluster> out;
  out.reserve(gene_clusters.size());
  for (const std::vector<int>& genes : gene_clusters) {
    core::Bicluster b;
    b.genes = genes;
    std::sort(b.genes.begin(), b.genes.end());
    b.conditions.resize(static_cast<size_t>(num_conditions));
    std::iota(b.conditions.begin(), b.conditions.end(), 0);
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace baselines
}  // namespace regcluster
