// FLOC-style move-based delta-cluster baseline (Yang, Wang, Wang & Yu,
// ICDE 2002 "delta-clusters" / FLOC).
//
// Unlike the enumeration miners, FLOC keeps a fixed set of k candidate
// biclusters and iteratively applies the single best "action" per gene and
// per condition: toggling the row/column's membership in the cluster where
// the toggle most reduces mean squared residue.  It converges to k
// low-residue biclusters of roughly controllable size.  Like Cheng-Church
// it scores with the additive-model MSR, so it shares the pure-shifting
// limitation the reg-cluster paper targets; it is included as the published
// delta-cluster representative and as a scalability point of comparison.

#ifndef REGCLUSTER_BASELINES_FLOC_H_
#define REGCLUSTER_BASELINES_FLOC_H_

#include <cstdint>
#include <vector>

#include "core/bicluster.h"
#include "matrix/expression_matrix.h"
#include "util/status.h"

namespace regcluster {
namespace baselines {

struct FlocOptions {
  /// Number of candidate biclusters maintained.
  int num_clusters = 10;
  /// Initial membership probability of each row/column per cluster.
  double init_row_probability = 0.3;
  double init_col_probability = 0.5;
  /// Stop after this many full sweeps without improvement (or max_sweeps).
  int max_sweeps = 50;
  /// Minimum rows/cols a cluster must keep (actions violating it are
  /// rejected).
  int min_genes = 2;
  int min_conditions = 2;
  uint64_t seed = 23;
};

struct FlocStats {
  int sweeps = 0;
  double initial_mean_residue = 0.0;
  double final_mean_residue = 0.0;
};

/// Runs FLOC.  Returns `num_clusters` biclusters (some may coincide on
/// degenerate inputs).  Deterministic for a fixed seed.
util::StatusOr<std::vector<core::Bicluster>> MineFloc(
    const matrix::ExpressionMatrix& data, const FlocOptions& options,
    FlocStats* stats = nullptr);

}  // namespace baselines
}  // namespace regcluster

#endif  // REGCLUSTER_BASELINES_FLOC_H_
