// OPSM baseline (Ben-Dor, Chor, Karp & Yakhini, RECOMB 2002): the
// order-preserving submatrix problem.
//
// OPSM searches for a *single* ordered column set of a given length with
// the statistically most surprising support -- the set of genes whose
// values strictly increase along it.  Ben-Dor et al. grow "partial models"
// (prefixes and suffixes of the hidden order) keeping the l
// highest-scoring ones per round; this implementation keeps the same
// keep-the-best-l structure as a beam search over ordered column
// sequences, extending one column per round, ranked by support.  It is the
// third tendency-family baseline cited by the reg-cluster paper ([3]) and,
// like OP-Cluster, carries no coherence or regulation guarantee.

#ifndef REGCLUSTER_BASELINES_OPSM_H_
#define REGCLUSTER_BASELINES_OPSM_H_

#include <cstdint>
#include <vector>

#include "baselines/opcluster.h"
#include "matrix/expression_matrix.h"
#include "util/status.h"

namespace regcluster {
namespace baselines {

struct OpsmOptions {
  /// Length of the hidden column order being sought (Ben-Dor's k).
  int sequence_length = 5;
  /// Beam width: partial models kept per round (Ben-Dor's l).
  int beam_width = 50;
  /// Report at most this many final models (<= beam_width), best first.
  int max_models = 5;
  /// Values within this of each other count as ordered either way
  /// (strictly 0 in the original).
  double tie_tolerance = 0.0;
};

struct OpsmModel {
  /// The ordered columns of the model.
  std::vector<int> sequence;
  /// Supporting genes (values non-decreasing along the sequence), sorted.
  std::vector<int> genes;
  /// Upper-tail binomial surprise: -log10 P(support >= |genes|) under the
  /// null where a random gene supports a fixed k-order with prob 1/k!.
  double neg_log10_p = 0.0;

  OpCluster ToOpCluster() const;
};

/// Runs the beam search.  Returns up to max_models models sorted by
/// support (desc), ties by sequence.  Fails on invalid options or matrices
/// with missing values.
util::StatusOr<std::vector<OpsmModel>> MineOpsm(
    const matrix::ExpressionMatrix& data, const OpsmOptions& options);

}  // namespace baselines
}  // namespace regcluster

#endif  // REGCLUSTER_BASELINES_OPSM_H_
