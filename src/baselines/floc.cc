#include "baselines/floc.h"

#include <algorithm>
#include <cmath>

#include "baselines/cheng_church.h"
#include "util/prng.h"

namespace regcluster {
namespace baselines {
namespace {

/// Mutable bicluster with membership masks and MSR recomputation.
struct Candidate {
  std::vector<char> rows;  // gene membership mask
  std::vector<char> cols;  // condition membership mask
  int row_count = 0;
  int col_count = 0;
  double msr = 0.0;

  std::vector<int> RowList() const {
    std::vector<int> out;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i]) out.push_back(static_cast<int>(i));
    }
    return out;
  }
  std::vector<int> ColList() const {
    std::vector<int> out;
    for (size_t j = 0; j < cols.size(); ++j) {
      if (cols[j]) out.push_back(static_cast<int>(j));
    }
    return out;
  }

  void Rescore(const matrix::ExpressionMatrix& data) {
    msr = (row_count >= 1 && col_count >= 1)
              ? MeanSquaredResidue(data, RowList(), ColList())
              : 0.0;
  }
};

}  // namespace

util::StatusOr<std::vector<core::Bicluster>> MineFloc(
    const matrix::ExpressionMatrix& data, const FlocOptions& options,
    FlocStats* stats) {
  const int rows = data.num_genes();
  const int cols = data.num_conditions();
  if (options.num_clusters < 1) {
    return util::Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (options.min_genes < 1 || options.min_conditions < 1) {
    return util::Status::InvalidArgument("minimum sizes must be >= 1");
  }
  if (options.min_genes > rows || options.min_conditions > cols) {
    return util::Status::InvalidArgument("minimum sizes exceed the matrix");
  }
  if (options.init_row_probability <= 0.0 ||
      options.init_row_probability > 1.0 ||
      options.init_col_probability <= 0.0 ||
      options.init_col_probability > 1.0) {
    return util::Status::InvalidArgument("init probabilities must be (0,1]");
  }
  if (data.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix contains missing values; impute first");
  }

  util::Prng prng(options.seed);
  std::vector<Candidate> cands(static_cast<size_t>(options.num_clusters));
  for (Candidate& c : cands) {
    c.rows.assign(static_cast<size_t>(rows), 0);
    c.cols.assign(static_cast<size_t>(cols), 0);
    // Random initialization; enforce the minimum sizes.
    while (c.row_count < options.min_genes) {
      for (int g = 0; g < rows; ++g) {
        if (!c.rows[static_cast<size_t>(g)] &&
            prng.Bernoulli(options.init_row_probability)) {
          c.rows[static_cast<size_t>(g)] = 1;
          ++c.row_count;
        }
      }
    }
    while (c.col_count < options.min_conditions) {
      for (int j = 0; j < cols; ++j) {
        if (!c.cols[static_cast<size_t>(j)] &&
            prng.Bernoulli(options.init_col_probability)) {
          c.cols[static_cast<size_t>(j)] = 1;
          ++c.col_count;
        }
      }
    }
    c.Rescore(data);
  }

  auto mean_residue = [&]() {
    double total = 0.0;
    for (const Candidate& c : cands) total += c.msr;
    return total / static_cast<double>(cands.size());
  };
  if (stats != nullptr) stats->initial_mean_residue = mean_residue();

  int sweeps = 0;
  for (; sweeps < options.max_sweeps; ++sweeps) {
    bool improved = false;

    // Row actions: for each gene, the best membership toggle across
    // clusters (including "do nothing").
    for (int g = 0; g < rows; ++g) {
      double best_gain = 1e-12;  // require a strict improvement
      int best_cluster = -1;
      double best_new_msr = 0.0;
      for (size_t k = 0; k < cands.size(); ++k) {
        Candidate& c = cands[k];
        const bool member = c.rows[static_cast<size_t>(g)];
        if (member && c.row_count <= options.min_genes) continue;
        // Toggle, rescore, untoggle.
        c.rows[static_cast<size_t>(g)] ^= 1;
        c.row_count += member ? -1 : 1;
        const double new_msr =
            MeanSquaredResidue(data, c.RowList(), c.ColList());
        c.rows[static_cast<size_t>(g)] ^= 1;
        c.row_count += member ? 1 : -1;
        const double gain = c.msr - new_msr;
        if (gain > best_gain) {
          best_gain = gain;
          best_cluster = static_cast<int>(k);
          best_new_msr = new_msr;
        }
      }
      if (best_cluster >= 0) {
        Candidate& c = cands[static_cast<size_t>(best_cluster)];
        const bool member = c.rows[static_cast<size_t>(g)];
        c.rows[static_cast<size_t>(g)] ^= 1;
        c.row_count += member ? -1 : 1;
        c.msr = best_new_msr;
        improved = true;
      }
    }

    // Column actions.
    for (int j = 0; j < cols; ++j) {
      double best_gain = 1e-12;
      int best_cluster = -1;
      double best_new_msr = 0.0;
      for (size_t k = 0; k < cands.size(); ++k) {
        Candidate& c = cands[k];
        const bool member = c.cols[static_cast<size_t>(j)];
        if (member && c.col_count <= options.min_conditions) continue;
        c.cols[static_cast<size_t>(j)] ^= 1;
        c.col_count += member ? -1 : 1;
        const double new_msr =
            MeanSquaredResidue(data, c.RowList(), c.ColList());
        c.cols[static_cast<size_t>(j)] ^= 1;
        c.col_count += member ? 1 : -1;
        const double gain = c.msr - new_msr;
        if (gain > best_gain) {
          best_gain = gain;
          best_cluster = static_cast<int>(k);
          best_new_msr = new_msr;
        }
      }
      if (best_cluster >= 0) {
        Candidate& c = cands[static_cast<size_t>(best_cluster)];
        const bool member = c.cols[static_cast<size_t>(j)];
        c.cols[static_cast<size_t>(j)] ^= 1;
        c.col_count += member ? -1 : 1;
        c.msr = best_new_msr;
        improved = true;
      }
    }

    if (!improved) break;
  }

  if (stats != nullptr) {
    stats->sweeps = sweeps;
    stats->final_mean_residue = mean_residue();
  }

  std::vector<core::Bicluster> out;
  out.reserve(cands.size());
  for (const Candidate& c : cands) {
    core::Bicluster b;
    b.genes = c.RowList();
    b.conditions = c.ColList();
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace baselines
}  // namespace regcluster
