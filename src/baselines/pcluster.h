// pCluster baseline (Wang, Wang, Yang & Yu, SIGMOD 2002): pure *shifting*
// pattern biclusters.
//
// A submatrix X x T is a delta-pCluster iff every 2x2 submatrix
// ({i,j} x {a,b}) has
//
//   pScore = |(d_ia - d_ja) - (d_ib - d_jb)| <= delta ,
//
// equivalently: for every condition pair (a, b) in T the gene-wise range of
// the column difference d_ga - d_gb over X is at most delta.  Pure shifting
// patterns (d_i = d_j + s2) score 0; shifting-AND-scaling patterns do not
// satisfy the bound for any small delta, which is exactly the gap the
// reg-cluster paper identifies (Section 1.1).
//
// Implementation: depth-first enumeration of condition sets anchored at the
// smallest condition id, with sliding-window gene partitioning on the
// anchored differences d_gc - d_g,anchor (a necessary condition bounding
// every pScore by 2*delta), followed by an exact all-pairs verification
// before a cluster is emitted.  This mirrors the pruning structure of the
// original pairwise-MDS algorithm while keeping the final phase (which is
// heuristic in the original too) simple; every emitted cluster is an exact
// delta-pCluster, maximality is best effort.

#ifndef REGCLUSTER_BASELINES_PCLUSTER_H_
#define REGCLUSTER_BASELINES_PCLUSTER_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/bicluster.h"
#include "matrix/expression_matrix.h"
#include "util/status.h"

namespace regcluster {
namespace baselines {

struct PClusterOptions {
  /// Maximum pScore of any 2x2 submatrix.
  double delta = 0.5;
  int min_genes = 2;
  int min_conditions = 2;
  /// Safety cap on search nodes; -1 disables.
  int64_t max_nodes = -1;
};

struct PClusterStats {
  int64_t nodes_expanded = 0;
  int64_t clusters_emitted = 0;
  int64_t verification_failures = 0;
  double mine_seconds = 0.0;
};

/// True iff genes x conds is an exact delta-pCluster of `data`.
bool IsDeltaPCluster(const matrix::ExpressionMatrix& data,
                     const std::vector<int>& genes,
                     const std::vector<int>& conds, double delta);

/// Mines delta-pClusters.
class PClusterMiner {
 public:
  PClusterMiner(const matrix::ExpressionMatrix& data, PClusterOptions options);

  util::StatusOr<std::vector<core::Bicluster>> Mine();
  const PClusterStats& stats() const { return stats_; }

 private:
  struct Node {
    std::vector<int> conds;  ///< ascending; conds[0] is the anchor
    std::vector<int> genes;  ///< ascending
  };

  void Extend(Node* node, std::vector<core::Bicluster>* out);

  const matrix::ExpressionMatrix& data_;
  PClusterOptions options_;
  PClusterStats stats_;
  std::unordered_set<std::string> seen_keys_;
};

}  // namespace baselines
}  // namespace regcluster

#endif  // REGCLUSTER_BASELINES_PCLUSTER_H_
