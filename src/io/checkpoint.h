// Durable checkpoint/restart for mines and sweeps.
//
// A long mine (ROADMAP: 100k-gene out-of-core runs) that dies to a crash,
// OOM kill or preemption today loses everything: ResumeToken splicing only
// exists in-process.  This module makes the token durable.  A checkpoint is
// a versioned binary snapshot (magic `RGCXCKP1`) of everything needed to
// continue a run in a fresh process: the semantic-options fingerprint, a
// content hash of the input matrix, the resume position, the emitted-cluster
// prefix and the accumulated MinerStats (for a sweep: the completed-run
// prefix plus `first_unfinished`).  Snapshots are written with the
// atomic-replace + CRC32C framing of util/durable_file.h, double-buffered as
// `PATH.a` / `PATH.b` under a generation counter, so at every instant at
// least one complete valid snapshot exists on disk; the loader picks the
// newest valid buffer and falls back to the other when a crash tore the
// in-flight write.
//
// Execution model ("chunked mining"): rather than snapshotting DFS internals
// mid-flight, RunCheckpointedMine drives the existing deterministic
// machinery -- a sequence of Mine() calls, each truncated at a canonical
// root boundary by a per-chunk node budget adapted to the requested
// checkpoint cadence, spliced via ResumeToken.  Root-granular splicing is
// bit-identical to a single unbudgeted run by the PR-3 contract, and
// MinerStats counters partition exactly across splices, so the final
// clusters *and* the deterministic counters of a killed-and-resumed run are
// byte-identical to an uninterrupted one regardless of where the kill
// landed.  Snapshots are encoded and written off the mining hot path on a
// dedicated writer thread (latest-wins; the final snapshot of a run is
// always written synchronously).
//
// Every malformed on-disk shape is rejected with a distinct kCorruption
// status (mirroring the matrix-store hardening); semantic mismatches
// (different options, different matrix, stale generation) are
// kFailedPrecondition.  tests/io/checkpoint_test.cc and the process-level
// kill harness tests/integration/crash_harness.cc enforce the contract.

#ifndef REGCLUSTER_IO_CHECKPOINT_H_
#define REGCLUSTER_IO_CHECKPOINT_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/miner.h"
#include "core/sweep.h"
#include "matrix/store.h"
#include "util/hash128.h"
#include "util/status.h"

namespace regcluster {
namespace io {

enum class CheckpointKind : uint32_t {
  kMine = 1,
  kSweep = 2,
};

/// Set in MineCheckpoint::flags when the user requested the
/// remove_dominated post-pass: chunks are mined without it (a global
/// post-pass cannot splice) and the pass runs once on the completed output.
inline constexpr uint32_t kCheckpointFlagRemoveDominated = 1u << 0;

/// Durable-run progress counters, exported as
/// regcluster_checkpoint_{writes,bytes,last_write_ns,resumes}.
struct CheckpointStats {
  int64_t writes = 0;         ///< snapshots written (both buffers)
  int64_t bytes = 0;          ///< total encoded snapshot bytes written
  int64_t last_write_ns = 0;  ///< wall duration of the most recent write
  int64_t resumes = 0;        ///< runs continued from an on-disk snapshot
};

/// Snapshot of a (possibly unfinished) mine.  `next_root` < 0 means the run
/// completed: `clusters` is the full raw output (pre dominance pass).
struct MineCheckpoint {
  /// RegClusterMiner::SemanticOptionsHash of the *chunk* options (the user's
  /// options with remove_dominated forced off; see flags).
  uint64_t semantic_options_hash = 0;
  /// Content hash of the input matrix (HashMatrixContent): dims + labels +
  /// cell payload, identical across the text/resident and binary/mapped
  /// paths, so a run may resume on either.
  util::Hash128 matrix_hash{0, 0};
  int64_t num_genes = 0;
  int64_t num_conditions = 0;
  uint32_t flags = 0;  ///< kCheckpointFlag* bits
  /// First canonical root not covered by `clusters`; -1 when complete.
  int64_t next_root = -1;
  int64_t roots_completed = 0;
  /// Accumulated execution telemetry (scheduling-dependent; carried so a
  /// resumed run can report sensible totals).
  int64_t nodes_visited = 0;
  double wall_seconds = 0.0;
  int64_t peak_scratch_bytes = 0;
  /// Accumulated deterministic counters of the covered prefix.
  core::MinerStats stats;
  /// Emitted clusters of the covered prefix, in canonical order.
  std::vector<core::RegCluster> clusters;

  bool complete() const { return next_root < 0; }
};

/// One completed (or per-point-failed) grid point inside a SweepCheckpoint.
struct SweepRunSnapshot {
  int32_t index = 0;  ///< position in the sweep's point list
  util::Status status;
  bool executed = false;
  bool used_shared_model = false;
  core::MinerStats stats;
  core::MineOutcome outcome;
  std::vector<core::RegCluster> clusters;
};

/// Snapshot of a (possibly unfinished) sweep.  Progress is tracked at gamma-
/// group boundaries (maximal consecutive points sharing gamma_policy+gamma):
/// `runs` covers every point before `first_unfinished` and a kill mid-group
/// re-runs only that group.
struct SweepCheckpoint {
  /// HashSweepGrid over the expanded point list; a resume re-parses the
  /// --sweep spec and must land on the same grid.
  uint64_t grid_hash = 0;
  util::Hash128 matrix_hash{0, 0};
  int64_t num_genes = 0;
  int64_t num_conditions = 0;
  uint32_t flags = 0;
  /// First point index not covered by `runs`; -1 when every point was
  /// attempted (the sweep finished, possibly truncated by its own budgets).
  int64_t first_unfinished = 0;
  int64_t runs_total = 0;
  /// Final sweep status, meaningful when complete(): 0 = complete,
  /// 1 = truncated, plus the util::StopReason that cut it.
  uint32_t truncated = 0;
  int32_t stop_reason = 0;
  /// Accumulated engine aggregates over the covered groups.
  int64_t index_builds = 0;
  int64_t shared_model_bytes = 0;
  double wall_seconds = 0.0;
  std::vector<SweepRunSnapshot> runs;

  bool complete() const { return first_unfinished < 0; }
};

/// A decoded snapshot file: generation + exactly one of the two payloads
/// (selected by `kind`).
struct Checkpoint {
  uint64_t generation = 0;
  CheckpointKind kind = CheckpointKind::kMine;
  MineCheckpoint mine;
  SweepCheckpoint sweep;
};

/// Serializes `ckpt` to the RGCXCKP1 wire format: a 28-byte preamble
/// (magic, version, endian tag, kind, generation) followed by CRC32C-framed
/// records (util::AppendRecord) and a count-bearing end record.
std::string EncodeCheckpoint(const Checkpoint& ckpt);

/// Inverse of EncodeCheckpoint.  Every malformed shape is a distinct
/// kCorruption: short preamble, bad magic, unsupported version, endianness
/// mismatch, unknown kind, torn/truncated/bit-flipped records (via
/// util::RecordReader), missing or out-of-order records, record-count
/// mismatch, trailing bytes.
util::StatusOr<Checkpoint> DecodeCheckpoint(std::string_view bytes);

/// The double-buffer file a given generation lands in: `base` + ".a" for
/// even generations, ".b" for odd.  Alternating buffers means the previous
/// snapshot is never the rename target of the next write.
std::string CheckpointBufferPath(const std::string& base, uint64_t generation);

/// Encodes and atomically writes `ckpt` into its generation's buffer file.
util::Status WriteCheckpointFile(const std::string& base,
                                 const Checkpoint& ckpt);

/// Loads the newest valid snapshot reachable from `base`: tries `base`
/// itself (a literal snapshot file), `base.a` and `base.b`, and returns the
/// decodable candidate with the highest generation.  kNotFound when no
/// candidate file exists; the first decode error when candidates exist but
/// none decodes; kFailedPrecondition ("stale checkpoint generation") when
/// the best valid generation is below `min_generation`.
util::StatusOr<Checkpoint> LoadCheckpoint(const std::string& base,
                                          uint64_t min_generation = 0);

/// FNV-128 content hash of a matrix: dims, gene/condition labels, and the
/// raw IEEE-754 cell payload.  A pure function of the logical matrix --
/// identical for the resident text path and the mmap'ed binary path.
util::Hash128 HashMatrixContent(const matrix::MatrixStore& data);

/// Order-sensitive fingerprint of an expanded sweep grid (each point's
/// semantic options hash mixed in sequence).
uint64_t HashSweepGrid(const std::vector<core::MinerOptions>& points);

/// Validates that `ckpt` may resume a run over `data` under `options`
/// (semantic hash, dominance flag, dims, matrix hash).  Each mismatch is a
/// distinct kFailedPrecondition.
util::Status ValidateMineCheckpoint(const MineCheckpoint& ckpt,
                                    const matrix::MatrixStore& data,
                                    const core::MinerOptions& options);

/// Sweep counterpart: grid hash, point count, dims, matrix hash.
util::Status ValidateSweepCheckpoint(const SweepCheckpoint& ckpt,
                                     const matrix::MatrixStore& data,
                                     const std::vector<core::MinerOptions>&
                                         points);

/// Background snapshot writer: one dedicated thread, latest-wins queue
/// (a submitted snapshot replaces an unwritten predecessor -- the newest
/// state is the only one worth crash-protecting), generations assigned
/// monotonically at submit so buffer files alternate.  `synchronous` makes
/// Submit() write inline (tests and final snapshots).
class CheckpointWriter {
 public:
  /// `next_generation` seeds the counter (resume passes loaded generation
  /// + 1 so new snapshots supersede the old process's).
  CheckpointWriter(std::string base_path, uint64_t next_generation,
                   bool synchronous);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Queues `ckpt` for the writer thread (inline write when synchronous).
  /// Write failures are sticky: see last_error().
  void Submit(Checkpoint ckpt);

  /// Discards any queued snapshot (ours is newer) and writes `ckpt`
  /// synchronously, returning the write's own status.
  util::Status WriteNow(Checkpoint ckpt);

  /// First write failure, if any (OK otherwise).  Durability errors must
  /// not kill a healthy mine; callers surface this as a warning.
  util::Status last_error() const;

  /// Counts a resume on behalf of the run this writer serves.
  void NoteResume();

  CheckpointStats stats() const;

 private:
  util::Status WriteLocked(Checkpoint ckpt);  // caller holds io_mutex_
  void ThreadBody();

  const std::string base_path_;
  const bool synchronous_;
  mutable std::mutex mutex_;            // queue + counters
  std::mutex io_mutex_;                 // serializes actual file writes
  std::condition_variable cv_;
  std::optional<Checkpoint> pending_;
  uint64_t next_generation_;
  bool stop_ = false;
  util::Status error_;
  CheckpointStats stats_;
  std::thread thread_;
};

/// Durable-run knobs shared by both drivers.
struct CheckpointConfig {
  /// Snapshot base path (buffers PATH.a / PATH.b).  Empty disables
  /// snapshot writing (a resume-only run still replays without writing).
  std::string path;
  /// Target wall-clock interval between snapshots; the mine driver adapts
  /// its chunk node budget to hit it.
  int every_ms = 1000;
  /// Node budget of the first chunk, before any throughput estimate exists.
  int64_t initial_chunk_nodes = 4096;
  /// Generation the run's first snapshot gets.  A resume passes the loaded
  /// snapshot's generation + 1 so new snapshots supersede the old
  /// process's in LoadCheckpoint's newest-valid-buffer selection.
  uint64_t next_generation = 1;
  /// Write every snapshot inline instead of on the writer thread.
  bool synchronous = false;
};

/// Result of a durable mine: exactly what RegClusterMiner::Mine() +
/// stats()/outcome() would have produced uninterrupted, plus the durability
/// counters and the final snapshot status.
struct DurableMineResult {
  std::vector<core::RegCluster> clusters;
  core::MinerStats stats;
  core::MineOutcome outcome;
  CheckpointStats checkpoint;
  /// Non-OK when a snapshot write failed (the mine itself still succeeded).
  util::Status checkpoint_status;
};

/// Runs a mine in resumable chunks, snapshotting progress to
/// `config.path`.  `resume` (may be null) is a previously loaded snapshot:
/// it is validated against (data, options) and the run continues from its
/// next_root.  The clusters and every deterministic MinerStats counter are
/// byte-identical to an uninterrupted RegClusterMiner::Mine() under
/// `options` at any kill/resume pattern and any thread count.
util::StatusOr<DurableMineResult> RunCheckpointedMine(
    const matrix::MatrixStore& data, const core::MinerOptions& options,
    const CheckpointConfig& config, const MineCheckpoint* resume);

/// Result of a durable sweep.
struct DurableSweepResult {
  core::SweepReport report;
  CheckpointStats checkpoint;
  util::Status checkpoint_status;
};

/// Runs a sweep gamma-group by gamma-group (one SweepEngine::Run per
/// maximal consecutive same-gamma group, so model sharing is preserved
/// where the grid makes it possible), snapshotting after each group.
/// Sweep-level node/cluster budgets are composed across groups from each
/// group's deterministic totals, so truncation lands on the same point
/// boundary as an uninterrupted run.
util::StatusOr<DurableSweepResult> RunCheckpointedSweep(
    const matrix::MatrixStore& data,
    const std::vector<core::MinerOptions>& points,
    const core::SweepOptions& sweep_options, const CheckpointConfig& config,
    const SweepCheckpoint* resume);

/// Zeroes the scheduling- and wall-clock-dependent fields of a mine run
/// record (nodes_visited, *_seconds, peak_scratch_bytes, cache telemetry)
/// so two byte-compared reports differ only if the *mined result* differs.
/// Backs the CLI's --deterministic-output flag and the crash harness.
void ZeroVolatileMineFields(core::MinerStats* stats,
                            core::MineOutcome* outcome);

/// Sweep counterpart: report wall_seconds plus every run's volatile fields.
void ZeroVolatileSweepFields(core::SweepReport* report);

}  // namespace io
}  // namespace regcluster

#endif  // REGCLUSTER_IO_CHECKPOINT_H_
