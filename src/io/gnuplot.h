// Figure emission: tabular .dat files plus gnuplot scripts.
//
// The benchmark harnesses print their tables to stdout; with an output
// directory they also archive each figure as a (data, script) pair so the
// paper's plots can be regenerated with stock gnuplot:
//
//     gnuplot fig7a.gp     # reads fig7a.dat, writes fig7a.png
//
// No gnuplot dependency at build or test time -- these are plain text
// emitters.

#ifndef REGCLUSTER_IO_GNUPLOT_H_
#define REGCLUSTER_IO_GNUPLOT_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace regcluster {
namespace io {

/// One plotted line: a name and (x, y) points.
struct DataSeries {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

/// Plot-level options.
struct PlotSpec {
  std::string title;
  std::string xlabel;
  std::string ylabel;
  bool logscale_y = false;
  /// Style: "linespoints" (default), "lines", "points".
  std::string style = "linespoints";
};

/// Writes the series as whitespace-separated columns: x, then one y column
/// per series (rows are the union of x values; missing y printed as "?",
/// which gnuplot skips).  Series names go into a header comment.
util::Status WriteDatFile(const std::vector<DataSeries>& series,
                          const std::string& path);

/// Writes a gnuplot script plotting `dat_filename` (a relative name, so the
/// pair is relocatable) to <path minus .gp>.png.
util::Status WriteGnuplotScript(const PlotSpec& spec,
                                const std::string& dat_filename,
                                const std::vector<DataSeries>& series,
                                const std::string& path);

/// Convenience: writes <dir>/<stem>.dat and <dir>/<stem>.gp.
util::Status WriteFigure(const PlotSpec& spec,
                         const std::vector<DataSeries>& series,
                         const std::string& dir, const std::string& stem);

}  // namespace io
}  // namespace regcluster

#endif  // REGCLUSTER_IO_GNUPLOT_H_
