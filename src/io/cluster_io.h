// Serialization of mined cluster sets.
//
// Two formats:
//  * a human-readable text report (one block per cluster, with gene /
//    condition names resolved against the source matrix), and
//  * a line-oriented machine format that round-trips exactly:
//
//      cluster <id>
//      chain <c1> <c2> ...
//      p <g...>
//      n <g...>
//
// The machine format is what the benchmark harnesses archive.

#ifndef REGCLUSTER_IO_CLUSTER_IO_H_
#define REGCLUSTER_IO_CLUSTER_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/bicluster.h"
#include "matrix/store.h"
#include "util/status.h"

namespace regcluster {
namespace io {

/// Writes the human-readable report.  `data` supplies names and values for
/// the per-cluster profile dump; pass nullptr to omit values.
util::Status WriteReport(const std::vector<core::RegCluster>& clusters,
                         const matrix::MatrixStore* data,
                         std::ostream& out);

/// Writes the machine format.
util::Status WriteClusters(const std::vector<core::RegCluster>& clusters,
                           std::ostream& out);

/// Writes the machine format to a file.
util::Status SaveClusters(const std::vector<core::RegCluster>& clusters,
                          const std::string& path);

/// Parses the machine format.
util::StatusOr<std::vector<core::RegCluster>> ReadClusters(std::istream& in);

/// Loads the machine format from a file.
util::StatusOr<std::vector<core::RegCluster>> LoadClusters(
    const std::string& path);

/// Writes one cluster's expression profiles as CSV, ready for plotting the
/// Figure-8 style chart: header `gene,member,<cond names along the chain>`,
/// then one row per member gene ("member" is "p" or "n") with its values on
/// the chain's conditions in chain order.
util::Status WriteProfileCsv(const core::RegCluster& cluster,
                             const matrix::MatrixStore& data,
                             std::ostream& out);

}  // namespace io
}  // namespace regcluster

#endif  // REGCLUSTER_IO_CLUSTER_IO_H_
