#include "io/incremental.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <thread>
#include <utility>

#include "core/bicluster.h"
#include "core/threshold.h"
#include "io/checkpoint.h"
#include "util/bitset.h"
#include "util/durable_file.h"
#include "util/timer.h"

namespace regcluster {
namespace io {

namespace {

constexpr char kMagic[8] = {'R', 'G', 'C', 'X', 'I', 'N', 'C', '1'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kEndianTag = 0x01020304;
constexpr size_t kPreambleBytes = 16;  // magic + version + endian

// Record tags, in required file order.
constexpr uint32_t kTagContext = 1;
constexpr uint32_t kTagRoot = 2;
constexpr uint32_t kTagEnd = 3;

// ---------------------------------------------------------------------------
// Little-endian primitive encoding (the checkpoint wire idiom).

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutDouble(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutIntVector(std::string* out, const std::vector<int>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (int x : v) PutU32(out, static_cast<uint32_t>(x));
}

// Bounds-checked sequential decoder over one record payload.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  util::Status ReadU32(const char* field, uint32_t* v) {
    REGCLUSTER_RETURN_IF_ERROR(Need(field, 4));
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    *v = r;
    pos_ += 4;
    return util::Status::OK();
  }

  util::Status ReadU64(const char* field, uint64_t* v) {
    REGCLUSTER_RETURN_IF_ERROR(Need(field, 8));
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    *v = r;
    pos_ += 8;
    return util::Status::OK();
  }

  util::Status ReadI64(const char* field, int64_t* v) {
    uint64_t u = 0;
    REGCLUSTER_RETURN_IF_ERROR(ReadU64(field, &u));
    *v = static_cast<int64_t>(u);
    return util::Status::OK();
  }

  util::Status ReadDouble(const char* field, double* v) {
    uint64_t u = 0;
    REGCLUSTER_RETURN_IF_ERROR(ReadU64(field, &u));
    *v = std::bit_cast<double>(u);
    return util::Status::OK();
  }

  util::Status ReadIntVector(const char* field, std::vector<int>* v) {
    uint32_t count = 0;
    REGCLUSTER_RETURN_IF_ERROR(ReadU32(field, &count));
    REGCLUSTER_RETURN_IF_ERROR(Need(field, 4ull * count));
    v->resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t x = 0;
      (void)ReadU32(field, &x);  // bounds already checked
      (*v)[i] = static_cast<int>(x);
    }
    return util::Status::OK();
  }

  util::Status ExpectDone(const char* record) {
    if (pos_ != data_.size()) {
      return util::Status::Corruption(
          std::string("trailing bytes in incremental-state record ") + record);
    }
    return util::Status::OK();
  }

 private:
  util::Status Need(const char* field, uint64_t bytes) {
    if (data_.size() - pos_ < bytes) {
      return util::Status::Corruption(
          std::string("truncated incremental-state field ") + field);
    }
    return util::Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// Same 16-field layout as the checkpoint format (13 i64 counters then 3
// doubles); the profiling *_ns fields are volatile and not round-tripped.
void PutMinerStats(std::string* out, const core::MinerStats& s) {
  PutI64(out, s.nodes_expanded);
  PutI64(out, s.extensions_tested);
  PutI64(out, s.pruned_min_genes);
  PutI64(out, s.pruned_p_majority);
  PutI64(out, s.pruned_duplicate);
  PutI64(out, s.pruned_coherence);
  PutI64(out, s.genes_dropped_min_conds);
  PutI64(out, s.clusters_emitted);
  PutI64(out, s.index_builds);
  PutI64(out, s.index_word_ops);
  PutI64(out, s.coherence_divide_calls);
  PutI64(out, s.coherence_scores);
  PutI64(out, s.dedup_probes);
  PutDouble(out, s.rwave_build_seconds);
  PutDouble(out, s.index_build_seconds);
  PutDouble(out, s.mine_seconds);
}

util::Status ReadMinerStats(Cursor* c, core::MinerStats* s) {
  REGCLUSTER_RETURN_IF_ERROR(c->ReadI64("nodes_expanded", &s->nodes_expanded));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("extensions_tested", &s->extensions_tested));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("pruned_min_genes", &s->pruned_min_genes));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("pruned_p_majority", &s->pruned_p_majority));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("pruned_duplicate", &s->pruned_duplicate));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("pruned_coherence", &s->pruned_coherence));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("genes_dropped_min_conds", &s->genes_dropped_min_conds));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("clusters_emitted", &s->clusters_emitted));
  REGCLUSTER_RETURN_IF_ERROR(c->ReadI64("index_builds", &s->index_builds));
  REGCLUSTER_RETURN_IF_ERROR(c->ReadI64("index_word_ops", &s->index_word_ops));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("coherence_divide_calls", &s->coherence_divide_calls));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("coherence_scores", &s->coherence_scores));
  REGCLUSTER_RETURN_IF_ERROR(c->ReadI64("dedup_probes", &s->dedup_probes));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadDouble("rwave_build_seconds", &s->rwave_build_seconds));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadDouble("index_build_seconds", &s->index_build_seconds));
  REGCLUSTER_RETURN_IF_ERROR(c->ReadDouble("mine_seconds", &s->mine_seconds));
  return util::Status::OK();
}

void PutClusters(std::string* out,
                 const std::vector<core::RegCluster>& clusters) {
  PutU64(out, clusters.size());
  for (const core::RegCluster& c : clusters) {
    PutIntVector(out, c.chain);
    PutIntVector(out, c.p_genes);
    PutIntVector(out, c.n_genes);
  }
}

util::Status ReadClusters(Cursor* c, std::vector<core::RegCluster>* clusters) {
  uint64_t count = 0;
  REGCLUSTER_RETURN_IF_ERROR(c->ReadU64("cluster count", &count));
  clusters->clear();
  clusters->reserve(count < (1u << 20) ? count : (1u << 20));
  for (uint64_t i = 0; i < count; ++i) {
    core::RegCluster cl;
    REGCLUSTER_RETURN_IF_ERROR(c->ReadIntVector("cluster chain", &cl.chain));
    REGCLUSTER_RETURN_IF_ERROR(
        c->ReadIntVector("cluster p_genes", &cl.p_genes));
    REGCLUSTER_RETURN_IF_ERROR(
        c->ReadIntVector("cluster n_genes", &cl.n_genes));
    clusters->push_back(std::move(cl));
  }
  return util::Status::OK();
}

// ---------------------------------------------------------------------------
// Splice machinery.

/// The deterministic + profiling fields that partition across roots.  The
/// wall-clock/build fields are set once at the top level, not summed.
void AccumulateSliceStats(const core::MinerStats& from, core::MinerStats* to) {
  to->nodes_expanded += from.nodes_expanded;
  to->extensions_tested += from.extensions_tested;
  to->pruned_min_genes += from.pruned_min_genes;
  to->pruned_p_majority += from.pruned_p_majority;
  to->pruned_duplicate += from.pruned_duplicate;
  to->pruned_coherence += from.pruned_coherence;
  to->genes_dropped_min_conds += from.genes_dropped_min_conds;
  to->clusters_emitted += from.clusters_emitted;
  to->index_word_ops += from.index_word_ops;
  to->coherence_divide_calls += from.coherence_divide_calls;
  to->coherence_scores += from.coherence_scores;
  to->dedup_probes += from.dedup_probes;
  to->filter_ns += from.filter_ns;
  to->score_ns += from.score_ns;
  to->sort_ns += from.sort_ns;
  to->emit_ns += from.emit_ns;
}

/// HashMatrixContent restricted to the first `cols` conditions -- exactly
/// the hash the pre-append matrix would produce, reconstructable from the
/// grown matrix because conditions only ever append at the end.
util::Hash128 HashMatrixPrefix(const matrix::MatrixStore& data, int cols) {
  util::Fnv128 h;
  h.MixInt(data.num_genes());
  h.MixInt(cols);
  for (int g = 0; g < data.num_genes(); ++g) {
    const std::string& name = data.gene_name(g);
    h.Mix64(static_cast<uint64_t>(name.size()));
    h.MixBytes(name.data(), name.size());
  }
  for (int c = 0; c < cols; ++c) {
    const std::string& name = data.condition_name(c);
    h.Mix64(static_cast<uint64_t>(name.size()));
    h.MixBytes(name.data(), name.size());
  }
  for (int g = 0; g < data.num_genes(); ++g) {
    h.MixBytes(data.row_data(g), static_cast<size_t>(cols) * sizeof(double));
  }
  return h.Digest();
}

/// The execution shapes root-granular splicing cannot reproduce.  Each is a
/// distinct InvalidArgument so callers learn which knob to drop.
util::Status ValidateIncrementalOptions(const core::MinerOptions& o) {
  if (o.max_nodes >= 0 || o.max_clusters >= 0) {
    return util::Status::InvalidArgument(
        "incremental mining cannot use node/cluster budgets: a truncated "
        "run has no per-root slices to splice from");
  }
  if (o.deadline_ms >= 0) {
    return util::Status::InvalidArgument(
        "incremental mining cannot use a deadline");
  }
  if (o.soft_memory_limit_bytes >= 0) {
    return util::Status::InvalidArgument(
        "incremental mining cannot use a memory limit");
  }
  if (o.cancel_token != nullptr) {
    return util::Status::InvalidArgument(
        "incremental mining cannot use a cancel token");
  }
  if (o.resume.can_resume()) {
    return util::Status::InvalidArgument(
        "incremental mining cannot resume a truncated run");
  }
  if (!o.root_set.empty()) {
    return util::Status::InvalidArgument(
        "incremental mining manages root_set itself");
  }
  if (o.capture_root_results) {
    return util::Status::InvalidArgument(
        "incremental mining manages capture_root_results itself");
  }
  if (o.shared_model != nullptr) {
    return util::Status::InvalidArgument(
        "incremental mining manages the gamma model itself; pass the "
        "previous step's model as prev_model");
  }
  if (o.model_cache_bytes >= 0) {
    return util::Status::InvalidArgument(
        "incremental mining requires the resident model path "
        "(model_cache_bytes < 0): delta updates need the previous models");
  }
  return util::Status::OK();
}

int ResolveThreads(int num_threads) {
  if (num_threads != 0) return num_threads;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw < 1 ? 1 : hw;
}

/// Mines the given roots of `data` on `model`, capturing per-root slices.
util::Status MineRootSlices(const matrix::MatrixStore& data,
                            const core::MinerOptions& options,
                            std::shared_ptr<const core::SharedGammaModel>
                                model,
                            std::vector<int> roots,
                            std::vector<core::RootMineResult>* slices) {
  core::MinerOptions slice_opts = options;
  slice_opts.remove_dominated = false;
  slice_opts.capture_root_results = true;
  slice_opts.shared_model = std::move(model);
  slice_opts.root_set = std::move(roots);
  core::RegClusterMiner miner(data, slice_opts);
  auto clusters = miner.Mine();
  if (!clusters.ok()) return clusters.status();
  *slices = miner.root_results();
  return util::Status::OK();
}

/// Assembles the final result from the full per-root slice vector.
IncrementalMineResult AssembleResult(
    const matrix::MatrixStore& data, const core::MinerOptions& options,
    std::shared_ptr<const core::SharedGammaModel> model,
    std::vector<core::RootMineResult> slices, double mine_seconds) {
  IncrementalMineResult r;
  r.state.semantic_options_hash = [&options] {
    core::MinerOptions slice_opts = options;
    slice_opts.remove_dominated = false;
    return core::RegClusterMiner::SemanticOptionsHash(slice_opts);
  }();
  r.state.matrix_hash = HashMatrixContent(data);
  r.state.num_genes = data.num_genes();
  r.state.num_conditions = data.num_conditions();
  r.state.flags =
      options.remove_dominated ? kIncrementalFlagRemoveDominated : 0;
  r.state.roots = std::move(slices);
  for (const core::RootMineResult& slice : r.state.roots) {
    AccumulateSliceStats(slice.stats, &r.stats);
    r.clusters.insert(r.clusters.end(), slice.clusters.begin(),
                      slice.clusters.end());
  }
  // The splice is the whole run, so the run-level fields mirror what a
  // non-shared Mine() would have reported: one model build (ours), its
  // build times, and this call's wall clock.
  r.stats.index_builds = 1;
  r.stats.rwave_build_seconds = model->rwave_build_seconds;
  r.stats.index_build_seconds = model->index_build_seconds;
  r.stats.mine_seconds = mine_seconds;
  if (options.remove_dominated) {
    r.clusters = core::RemoveDominated(std::move(r.clusters));
  }
  r.model = std::move(model);
  return r;
}

}  // namespace

std::vector<int> ComputeDirtyRoots(const core::RWaveBitmapIndex& index,
                                   int first_new) {
  const int num_conds = index.num_conditions();
  const int num_genes = index.num_genes();
  const int words = index.num_words();
  std::vector<int> dirty;
  if (first_new >= num_conds) return dirty;
  const int first_word = first_new / 64;
  const uint64_t first_mask = ~uint64_t{0} << (first_new % 64);
  const auto has_new_bit = [&](const uint64_t* row) {
    if ((row[first_word] & first_mask) != 0) return true;
    for (int w = first_word + 1; w < words; ++w) {
      if (row[w] != 0) return true;
    }
    return false;
  };
  for (int r = 0; r < first_new; ++r) {
    bool is_dirty = false;
    for (int g = 0; g < num_genes && !is_dirty; ++g) {
      const int pos = index.position(g, r);
      is_dirty = has_new_bit(index.UpCandidates(g, pos)) ||
                 has_new_bit(index.DownCandidates(g, pos));
    }
    if (is_dirty) dirty.push_back(r);
  }
  for (int r = first_new; r < num_conds; ++r) dirty.push_back(r);
  return dirty;
}

util::StatusOr<IncrementalMineResult> MineInitial(
    const matrix::MatrixStore& data, const core::MinerOptions& options) {
  REGCLUSTER_RETURN_IF_ERROR(ValidateIncrementalOptions(options));
  const int threads = ResolveThreads(options.num_threads);
  const core::GammaSpec spec{options.gamma_policy, options.gamma};
  util::WallTimer timer;
  auto model = core::SharedGammaModel::Build(data, spec,
                                             options.min_conditions, threads);
  std::vector<core::RootMineResult> slices;
  // Empty root_set = a plain full run; the capture hook records every root.
  REGCLUSTER_RETURN_IF_ERROR(MineRootSlices(data, options, model, {}, &slices));
  return AssembleResult(data, options, std::move(model), std::move(slices),
                        timer.ElapsedSeconds());
}

util::StatusOr<IncrementalMineResult> MineIncremental(
    const matrix::MatrixStore& new_data, int first_new,
    const core::MinerOptions& options, const IncrementalState& prev,
    std::shared_ptr<const core::SharedGammaModel> prev_model) {
  REGCLUSTER_RETURN_IF_ERROR(ValidateIncrementalOptions(options));
  const int num_genes = new_data.num_genes();
  const int num_conds = new_data.num_conditions();
  if (first_new < 0 || first_new > num_conds) {
    return util::Status::InvalidArgument(
        "first_new must be in [0, num_conditions]");
  }
  if (prev.num_genes != num_genes) {
    return util::Status::FailedPrecondition(
        "incremental state was mined over a different gene set");
  }
  if (prev.num_conditions != first_new) {
    return util::Status::FailedPrecondition(
        "first_new does not match the incremental state's condition count");
  }
  core::MinerOptions slice_opts = options;
  slice_opts.remove_dominated = false;
  if (prev.semantic_options_hash !=
      core::RegClusterMiner::SemanticOptionsHash(slice_opts)) {
    return util::Status::FailedPrecondition(
        "incremental state was mined under different options");
  }
  const uint32_t flags =
      options.remove_dominated ? kIncrementalFlagRemoveDominated : 0;
  if (prev.flags != flags) {
    return util::Status::FailedPrecondition(
        "incremental state disagrees on the remove_dominated post-pass");
  }
  if (HashMatrixPrefix(new_data, first_new) != prev.matrix_hash) {
    return util::Status::FailedPrecondition(
        "matrix prefix differs from the one the incremental state was "
        "mined over (appends must only add conditions at the end)");
  }
  if (static_cast<int64_t>(prev.roots.size()) != prev.num_conditions) {
    return util::Status::FailedPrecondition(
        "incremental state does not cover every previous root");
  }

  const int threads = ResolveThreads(options.num_threads);
  const core::GammaSpec spec{options.gamma_policy, options.gamma};
  util::WallTimer timer;
  std::shared_ptr<const core::SharedGammaModel> model;
  const bool model_compatible =
      prev_model != nullptr && prev_model->cache == nullptr &&
      prev_model->index.num_genes() == num_genes &&
      prev_model->index.num_conditions() == first_new &&
      prev_model->spec.policy == spec.policy &&
      std::bit_cast<uint64_t>(prev_model->spec.gamma) ==
          std::bit_cast<uint64_t>(spec.gamma) &&
      prev_model->max_chain_need >= options.min_conditions;
  if (model_compatible) {
    model = core::SharedGammaModel::UpdateAppend(*prev_model, new_data,
                                                 first_new, threads);
  } else {
    model = core::SharedGammaModel::Build(new_data, spec,
                                          options.min_conditions, threads);
  }

  // All-dirty fallbacks first: a moved per-gene threshold changes regulation
  // among the *old* conditions, and a grown bitmap word count changes every
  // root's index_word_ops -- either way no old slice is reusable.
  bool all_dirty =
      util::WordsForBits(num_conds) != util::WordsForBits(first_new);
  for (int g = 0; g < num_genes && !all_dirty; ++g) {
    const double old_gamma =
        core::AbsoluteGammaSpan(new_data.row_data(g), first_new, spec);
    const double new_gamma =
        core::AbsoluteGammaSpan(new_data.row_data(g), num_conds, spec);
    all_dirty = std::bit_cast<uint64_t>(old_gamma) !=
                std::bit_cast<uint64_t>(new_gamma);
  }
  std::vector<int> dirty;
  if (all_dirty) {
    dirty.resize(static_cast<size_t>(num_conds));
    std::iota(dirty.begin(), dirty.end(), 0);
  } else {
    dirty = ComputeDirtyRoots(model->index, first_new);
  }

  std::vector<core::RootMineResult> mined;
  if (!dirty.empty()) {
    REGCLUSTER_RETURN_IF_ERROR(
        MineRootSlices(new_data, options, model, dirty, &mined));
  }

  // Splice: dirty roots from this run, clean roots from the previous state,
  // in ascending root order (= canonical merge order of a full run).
  std::vector<core::RootMineResult> slices;
  slices.reserve(static_cast<size_t>(num_conds));
  size_t mi = 0;
  for (int c = 0; c < num_conds; ++c) {
    if (mi < mined.size() && mined[mi].root == c) {
      slices.push_back(std::move(mined[mi]));
      ++mi;
    } else {
      slices.push_back(prev.roots[static_cast<size_t>(c)]);
    }
  }
  auto result = AssembleResult(new_data, options, std::move(model),
                               std::move(slices), timer.ElapsedSeconds());
  result.roots_remined = static_cast<int>(dirty.size());
  result.roots_spliced = num_conds - static_cast<int>(dirty.size());
  return result;
}

std::string EncodeIncrementalState(const IncrementalState& state) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kVersion);
  PutU32(&out, kEndianTag);
  {
    std::string rec;
    PutU32(&rec, kTagContext);
    PutU64(&rec, state.semantic_options_hash);
    PutU64(&rec, state.matrix_hash.hi);
    PutU64(&rec, state.matrix_hash.lo);
    PutI64(&rec, state.num_genes);
    PutI64(&rec, state.num_conditions);
    PutU32(&rec, state.flags);
    util::AppendRecord(&out, rec);
  }
  for (const core::RootMineResult& slice : state.roots) {
    std::string rec;
    PutU32(&rec, kTagRoot);
    PutU32(&rec, static_cast<uint32_t>(slice.root));
    PutMinerStats(&rec, slice.stats);
    PutClusters(&rec, slice.clusters);
    util::AppendRecord(&out, rec);
  }
  {
    std::string rec;
    PutU32(&rec, kTagEnd);
    PutU64(&rec, state.roots.size());
    util::AppendRecord(&out, rec);
  }
  return out;
}

util::StatusOr<IncrementalState> DecodeIncrementalState(
    std::string_view bytes) {
  if (bytes.size() < kPreambleBytes) {
    return util::Status::Corruption("short incremental-state preamble");
  }
  if (std::string_view(bytes.data(), sizeof(kMagic)) !=
      std::string_view(kMagic, sizeof(kMagic))) {
    return util::Status::Corruption("bad incremental-state magic");
  }
  Cursor pre(bytes.substr(sizeof(kMagic), kPreambleBytes - sizeof(kMagic)));
  uint32_t version = 0, endian = 0;
  REGCLUSTER_RETURN_IF_ERROR(pre.ReadU32("version", &version));
  REGCLUSTER_RETURN_IF_ERROR(pre.ReadU32("endian tag", &endian));
  if (version != kVersion) {
    return util::Status::Corruption("unsupported incremental-state version");
  }
  if (endian != kEndianTag) {
    return util::Status::Corruption(
        "incremental state written with a different byte order");
  }

  IncrementalState state;
  util::RecordReader reader(bytes.substr(kPreambleBytes));
  bool saw_context = false;
  bool saw_end = false;
  uint64_t declared_roots = 0;
  while (!reader.AtEnd()) {
    if (saw_end) {
      return util::Status::Corruption(
          "records after the incremental-state end record");
    }
    auto rec = reader.Next();
    if (!rec.ok()) return rec.status();
    Cursor c(*rec);
    uint32_t tag = 0;
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU32("record tag", &tag));
    switch (tag) {
      case kTagContext: {
        if (saw_context) {
          return util::Status::Corruption(
              "duplicate incremental-state context record");
        }
        saw_context = true;
        REGCLUSTER_RETURN_IF_ERROR(
            c.ReadU64("semantic_options_hash", &state.semantic_options_hash));
        REGCLUSTER_RETURN_IF_ERROR(
            c.ReadU64("matrix_hash.hi", &state.matrix_hash.hi));
        REGCLUSTER_RETURN_IF_ERROR(
            c.ReadU64("matrix_hash.lo", &state.matrix_hash.lo));
        REGCLUSTER_RETURN_IF_ERROR(c.ReadI64("num_genes", &state.num_genes));
        REGCLUSTER_RETURN_IF_ERROR(
            c.ReadI64("num_conditions", &state.num_conditions));
        REGCLUSTER_RETURN_IF_ERROR(c.ReadU32("flags", &state.flags));
        REGCLUSTER_RETURN_IF_ERROR(c.ExpectDone("context"));
        break;
      }
      case kTagRoot: {
        if (!saw_context) {
          return util::Status::Corruption(
              "incremental-state root record before the context record");
        }
        core::RootMineResult slice;
        uint32_t root = 0;
        REGCLUSTER_RETURN_IF_ERROR(c.ReadU32("root", &root));
        slice.root = static_cast<int>(root);
        const int expected =
            state.roots.empty() ? 0 : state.roots.back().root + 1;
        if (slice.root != expected ||
            static_cast<int64_t>(slice.root) >= state.num_conditions) {
          return util::Status::Corruption(
              "incremental-state root records out of order");
        }
        REGCLUSTER_RETURN_IF_ERROR(ReadMinerStats(&c, &slice.stats));
        REGCLUSTER_RETURN_IF_ERROR(ReadClusters(&c, &slice.clusters));
        REGCLUSTER_RETURN_IF_ERROR(c.ExpectDone("root"));
        state.roots.push_back(std::move(slice));
        break;
      }
      case kTagEnd: {
        if (!saw_context) {
          return util::Status::Corruption(
              "incremental-state end record before the context record");
        }
        saw_end = true;
        REGCLUSTER_RETURN_IF_ERROR(c.ReadU64("root count", &declared_roots));
        REGCLUSTER_RETURN_IF_ERROR(c.ExpectDone("end"));
        break;
      }
      default:
        return util::Status::Corruption(
            "unknown incremental-state record tag");
    }
  }
  if (!saw_context) {
    return util::Status::Corruption("missing incremental-state context record");
  }
  if (!saw_end) {
    return util::Status::Corruption("missing incremental-state end record");
  }
  if (declared_roots != state.roots.size()) {
    return util::Status::Corruption(
        "incremental-state root count does not match its records");
  }
  if (static_cast<int64_t>(state.roots.size()) != state.num_conditions) {
    return util::Status::Corruption(
        "incremental state does not cover every root");
  }
  return state;
}

util::Status WriteIncrementalStateFile(const std::string& path,
                                       const IncrementalState& state) {
  return util::AtomicWriteFile(path, EncodeIncrementalState(state));
}

util::StatusOr<IncrementalState> LoadIncrementalState(
    const std::string& path) {
  auto bytes = util::ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return DecodeIncrementalState(*bytes);
}

}  // namespace io
}  // namespace regcluster
