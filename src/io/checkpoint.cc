#include "io/checkpoint.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <utility>

#include "core/bicluster.h"
#include "core/threshold.h"
#include "util/durable_file.h"
#include "util/simd/dispatch.h"
#include "util/timer.h"

namespace regcluster {
namespace io {

namespace {

constexpr char kMagic[8] = {'R', 'G', 'C', 'X', 'C', 'K', 'P', '1'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kEndianTag = 0x01020304;
constexpr size_t kPreambleBytes = 28;  // magic + version + endian + kind + gen

// Record tags, in required file order.
constexpr uint32_t kTagContext = 1;
constexpr uint32_t kTagProgress = 2;
constexpr uint32_t kTagStats = 3;
constexpr uint32_t kTagClusters = 4;
constexpr uint32_t kTagSweepAggregate = 5;
constexpr uint32_t kTagSweepRun = 6;
constexpr uint32_t kTagEnd = 7;

// ---------------------------------------------------------------------------
// Little-endian primitive encoding.

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutDouble(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutIntVector(std::string* out, const std::vector<int>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (int x : v) PutU32(out, static_cast<uint32_t>(x));
}

// Bounds-checked sequential decoder over one record payload.  Any overrun is
// the same kind of damage as a torn write, so it reports kCorruption with the
// field context.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  util::Status ReadU32(const char* field, uint32_t* v) {
    REGCLUSTER_RETURN_IF_ERROR(Need(field, 4));
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    *v = r;
    pos_ += 4;
    return util::Status::OK();
  }

  util::Status ReadU64(const char* field, uint64_t* v) {
    REGCLUSTER_RETURN_IF_ERROR(Need(field, 8));
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    *v = r;
    pos_ += 8;
    return util::Status::OK();
  }

  util::Status ReadI64(const char* field, int64_t* v) {
    uint64_t u = 0;
    REGCLUSTER_RETURN_IF_ERROR(ReadU64(field, &u));
    *v = static_cast<int64_t>(u);
    return util::Status::OK();
  }

  util::Status ReadDouble(const char* field, double* v) {
    uint64_t u = 0;
    REGCLUSTER_RETURN_IF_ERROR(ReadU64(field, &u));
    *v = std::bit_cast<double>(u);
    return util::Status::OK();
  }

  util::Status ReadString(const char* field, std::string* v) {
    uint32_t len = 0;
    REGCLUSTER_RETURN_IF_ERROR(ReadU32(field, &len));
    REGCLUSTER_RETURN_IF_ERROR(Need(field, len));
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return util::Status::OK();
  }

  util::Status ReadIntVector(const char* field, std::vector<int>* v) {
    uint32_t count = 0;
    REGCLUSTER_RETURN_IF_ERROR(ReadU32(field, &count));
    REGCLUSTER_RETURN_IF_ERROR(Need(field, 4ull * count));
    v->resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t x = 0;
      (void)ReadU32(field, &x);  // bounds already checked
      (*v)[i] = static_cast<int>(x);
    }
    return util::Status::OK();
  }

  util::Status ExpectDone(const char* record) {
    if (pos_ != data_.size()) {
      return util::Status::Corruption(
          std::string("trailing bytes in checkpoint record ") + record);
    }
    return util::Status::OK();
  }

 private:
  util::Status Need(const char* field, uint64_t bytes) {
    if (data_.size() - pos_ < bytes) {
      return util::Status::Corruption(
          std::string("truncated checkpoint field ") + field);
    }
    return util::Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Struct (en|de)coding.  Field order is the wire format; never reorder.

void PutMinerStats(std::string* out, const core::MinerStats& s) {
  PutI64(out, s.nodes_expanded);
  PutI64(out, s.extensions_tested);
  PutI64(out, s.pruned_min_genes);
  PutI64(out, s.pruned_p_majority);
  PutI64(out, s.pruned_duplicate);
  PutI64(out, s.pruned_coherence);
  PutI64(out, s.genes_dropped_min_conds);
  PutI64(out, s.clusters_emitted);
  PutI64(out, s.index_builds);
  PutI64(out, s.index_word_ops);
  PutI64(out, s.coherence_divide_calls);
  PutI64(out, s.coherence_scores);
  PutI64(out, s.dedup_probes);
  PutDouble(out, s.rwave_build_seconds);
  PutDouble(out, s.index_build_seconds);
  PutDouble(out, s.mine_seconds);
}

util::Status ReadMinerStats(Cursor* c, core::MinerStats* s) {
  REGCLUSTER_RETURN_IF_ERROR(c->ReadI64("nodes_expanded", &s->nodes_expanded));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("extensions_tested", &s->extensions_tested));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("pruned_min_genes", &s->pruned_min_genes));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("pruned_p_majority", &s->pruned_p_majority));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("pruned_duplicate", &s->pruned_duplicate));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("pruned_coherence", &s->pruned_coherence));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("genes_dropped_min_conds", &s->genes_dropped_min_conds));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("clusters_emitted", &s->clusters_emitted));
  REGCLUSTER_RETURN_IF_ERROR(c->ReadI64("index_builds", &s->index_builds));
  REGCLUSTER_RETURN_IF_ERROR(c->ReadI64("index_word_ops", &s->index_word_ops));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("coherence_divide_calls", &s->coherence_divide_calls));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("coherence_scores", &s->coherence_scores));
  REGCLUSTER_RETURN_IF_ERROR(c->ReadI64("dedup_probes", &s->dedup_probes));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadDouble("rwave_build_seconds", &s->rwave_build_seconds));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadDouble("index_build_seconds", &s->index_build_seconds));
  REGCLUSTER_RETURN_IF_ERROR(c->ReadDouble("mine_seconds", &s->mine_seconds));
  return util::Status::OK();
}

void PutClusters(std::string* out,
                 const std::vector<core::RegCluster>& clusters) {
  PutU64(out, clusters.size());
  for (const core::RegCluster& c : clusters) {
    PutIntVector(out, c.chain);
    PutIntVector(out, c.p_genes);
    PutIntVector(out, c.n_genes);
  }
}

util::Status ReadClusters(Cursor* c, std::vector<core::RegCluster>* clusters) {
  uint64_t count = 0;
  REGCLUSTER_RETURN_IF_ERROR(c->ReadU64("cluster count", &count));
  clusters->clear();
  clusters->reserve(count < (1u << 20) ? count : (1u << 20));
  for (uint64_t i = 0; i < count; ++i) {
    core::RegCluster cl;
    REGCLUSTER_RETURN_IF_ERROR(c->ReadIntVector("cluster chain", &cl.chain));
    REGCLUSTER_RETURN_IF_ERROR(
        c->ReadIntVector("cluster p_genes", &cl.p_genes));
    REGCLUSTER_RETURN_IF_ERROR(
        c->ReadIntVector("cluster n_genes", &cl.n_genes));
    clusters->push_back(std::move(cl));
  }
  return util::Status::OK();
}

// The MineOutcome subset a sweep snapshot restores (the fields sweep reports
// print plus the resume contract fields).
void PutOutcome(std::string* out, const core::MineOutcome& o) {
  PutU32(out, o.status == core::MineStatus::kTruncated ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(o.stop_reason));
  PutI64(out, o.nodes_visited);
  PutI64(out, o.roots_completed);
  PutI64(out, o.roots_total);
  PutDouble(out, o.wall_seconds);
  PutI64(out, o.peak_scratch_bytes);
  PutI64(out, o.resume.next_root);
  PutU64(out, o.resume.options_hash);
}

util::Status ReadOutcome(Cursor* c, core::MineOutcome* o) {
  uint32_t truncated = 0, reason = 0;
  int64_t roots_completed = 0, roots_total = 0, next_root = -1;
  REGCLUSTER_RETURN_IF_ERROR(c->ReadU32("outcome status", &truncated));
  REGCLUSTER_RETURN_IF_ERROR(c->ReadU32("outcome stop_reason", &reason));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("outcome nodes_visited", &o->nodes_visited));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("outcome roots_completed", &roots_completed));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("outcome roots_total", &roots_total));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadDouble("outcome wall_seconds", &o->wall_seconds));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadI64("outcome peak_scratch_bytes", &o->peak_scratch_bytes));
  REGCLUSTER_RETURN_IF_ERROR(c->ReadI64("outcome next_root", &next_root));
  REGCLUSTER_RETURN_IF_ERROR(
      c->ReadU64("outcome options_hash", &o->resume.options_hash));
  o->status = truncated != 0 ? core::MineStatus::kTruncated
                             : core::MineStatus::kComplete;
  o->stop_reason = static_cast<util::StopReason>(reason);
  o->roots_completed = static_cast<int>(roots_completed);
  o->roots_total = static_cast<int>(roots_total);
  o->resume.next_root = static_cast<int>(next_root);
  return util::Status::OK();
}

std::string EncodeMineBody(const MineCheckpoint& m) {
  std::string body;
  {
    std::string rec;
    PutU32(&rec, kTagContext);
    PutU64(&rec, m.semantic_options_hash);
    PutU64(&rec, m.matrix_hash.hi);
    PutU64(&rec, m.matrix_hash.lo);
    PutI64(&rec, m.num_genes);
    PutI64(&rec, m.num_conditions);
    PutU32(&rec, m.flags);
    util::AppendRecord(&body, rec);
  }
  {
    std::string rec;
    PutU32(&rec, kTagProgress);
    PutI64(&rec, m.next_root);
    PutI64(&rec, m.roots_completed);
    PutI64(&rec, m.nodes_visited);
    PutDouble(&rec, m.wall_seconds);
    PutI64(&rec, m.peak_scratch_bytes);
    util::AppendRecord(&body, rec);
  }
  {
    std::string rec;
    PutU32(&rec, kTagStats);
    PutMinerStats(&rec, m.stats);
    util::AppendRecord(&body, rec);
  }
  {
    std::string rec;
    PutU32(&rec, kTagClusters);
    PutClusters(&rec, m.clusters);
    util::AppendRecord(&body, rec);
  }
  return body;
}

std::string EncodeSweepBody(const SweepCheckpoint& s) {
  std::string body;
  {
    std::string rec;
    PutU32(&rec, kTagContext);
    PutU64(&rec, s.grid_hash);
    PutU64(&rec, s.matrix_hash.hi);
    PutU64(&rec, s.matrix_hash.lo);
    PutI64(&rec, s.num_genes);
    PutI64(&rec, s.num_conditions);
    PutU32(&rec, s.flags);
    util::AppendRecord(&body, rec);
  }
  {
    std::string rec;
    PutU32(&rec, kTagSweepAggregate);
    PutI64(&rec, s.first_unfinished);
    PutI64(&rec, s.runs_total);
    PutU32(&rec, s.truncated);
    PutU32(&rec, static_cast<uint32_t>(s.stop_reason));
    PutI64(&rec, s.index_builds);
    PutI64(&rec, s.shared_model_bytes);
    PutDouble(&rec, s.wall_seconds);
    PutU64(&rec, s.runs.size());
    util::AppendRecord(&body, rec);
  }
  for (const SweepRunSnapshot& run : s.runs) {
    std::string rec;
    PutU32(&rec, kTagSweepRun);
    PutU32(&rec, static_cast<uint32_t>(run.index));
    PutU32(&rec, static_cast<uint32_t>(run.status.code()));
    PutString(&rec, run.status.message());
    PutU32(&rec, run.executed ? 1 : 0);
    PutU32(&rec, run.used_shared_model ? 1 : 0);
    PutMinerStats(&rec, run.stats);
    PutOutcome(&rec, run.outcome);
    PutClusters(&rec, run.clusters);
    util::AppendRecord(&body, rec);
  }
  return body;
}

// Reads one framed record and checks its tag.
util::StatusOr<std::string_view> NextRecord(util::RecordReader* reader,
                                            uint32_t want_tag,
                                            const char* what) {
  if (reader->AtEnd()) {
    return util::Status::Corruption(std::string("missing checkpoint record ") +
                                    what);
  }
  auto rec = reader->Next();
  if (!rec.ok()) return rec.status();
  if (rec->size() < 4) {
    return util::Status::Corruption(std::string("checkpoint record ") + what +
                                    " too short for a tag");
  }
  uint32_t tag = static_cast<uint32_t>(static_cast<unsigned char>((*rec)[0])) |
                 static_cast<uint32_t>(static_cast<unsigned char>((*rec)[1]))
                     << 8 |
                 static_cast<uint32_t>(static_cast<unsigned char>((*rec)[2]))
                     << 16 |
                 static_cast<uint32_t>(static_cast<unsigned char>((*rec)[3]))
                     << 24;
  if (tag != want_tag) {
    return util::Status::Corruption(
        std::string("unexpected checkpoint record tag where ") + what +
        " was required");
  }
  return std::string_view(rec->data() + 4, rec->size() - 4);
}

util::Status DecodeMineBody(util::RecordReader* reader, MineCheckpoint* m,
                            uint32_t* record_count) {
  {
    auto rec = NextRecord(reader, kTagContext, "context");
    if (!rec.ok()) return rec.status();
    Cursor c(*rec);
    REGCLUSTER_RETURN_IF_ERROR(
        c.ReadU64("semantic_options_hash", &m->semantic_options_hash));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU64("matrix_hash.hi", &m->matrix_hash.hi));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU64("matrix_hash.lo", &m->matrix_hash.lo));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadI64("num_genes", &m->num_genes));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadI64("num_conditions", &m->num_conditions));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU32("flags", &m->flags));
    REGCLUSTER_RETURN_IF_ERROR(c.ExpectDone("context"));
  }
  {
    auto rec = NextRecord(reader, kTagProgress, "progress");
    if (!rec.ok()) return rec.status();
    Cursor c(*rec);
    REGCLUSTER_RETURN_IF_ERROR(c.ReadI64("next_root", &m->next_root));
    REGCLUSTER_RETURN_IF_ERROR(
        c.ReadI64("roots_completed", &m->roots_completed));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadI64("nodes_visited", &m->nodes_visited));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadDouble("wall_seconds", &m->wall_seconds));
    REGCLUSTER_RETURN_IF_ERROR(
        c.ReadI64("peak_scratch_bytes", &m->peak_scratch_bytes));
    REGCLUSTER_RETURN_IF_ERROR(c.ExpectDone("progress"));
  }
  {
    auto rec = NextRecord(reader, kTagStats, "stats");
    if (!rec.ok()) return rec.status();
    Cursor c(*rec);
    REGCLUSTER_RETURN_IF_ERROR(ReadMinerStats(&c, &m->stats));
    REGCLUSTER_RETURN_IF_ERROR(c.ExpectDone("stats"));
  }
  {
    auto rec = NextRecord(reader, kTagClusters, "clusters");
    if (!rec.ok()) return rec.status();
    Cursor c(*rec);
    REGCLUSTER_RETURN_IF_ERROR(ReadClusters(&c, &m->clusters));
    REGCLUSTER_RETURN_IF_ERROR(c.ExpectDone("clusters"));
  }
  *record_count = 4;
  return util::Status::OK();
}

util::Status DecodeSweepBody(util::RecordReader* reader, SweepCheckpoint* s,
                             uint32_t* record_count) {
  {
    auto rec = NextRecord(reader, kTagContext, "context");
    if (!rec.ok()) return rec.status();
    Cursor c(*rec);
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU64("grid_hash", &s->grid_hash));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU64("matrix_hash.hi", &s->matrix_hash.hi));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU64("matrix_hash.lo", &s->matrix_hash.lo));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadI64("num_genes", &s->num_genes));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadI64("num_conditions", &s->num_conditions));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU32("flags", &s->flags));
    REGCLUSTER_RETURN_IF_ERROR(c.ExpectDone("context"));
  }
  uint64_t run_count = 0;
  {
    auto rec = NextRecord(reader, kTagSweepAggregate, "sweep aggregate");
    if (!rec.ok()) return rec.status();
    Cursor c(*rec);
    uint32_t reason = 0;
    REGCLUSTER_RETURN_IF_ERROR(
        c.ReadI64("first_unfinished", &s->first_unfinished));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadI64("runs_total", &s->runs_total));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU32("truncated", &s->truncated));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU32("stop_reason", &reason));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadI64("index_builds", &s->index_builds));
    REGCLUSTER_RETURN_IF_ERROR(
        c.ReadI64("shared_model_bytes", &s->shared_model_bytes));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadDouble("wall_seconds", &s->wall_seconds));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU64("run snapshot count", &run_count));
    s->stop_reason = static_cast<int32_t>(reason);
  }
  s->runs.clear();
  for (uint64_t i = 0; i < run_count; ++i) {
    auto rec = NextRecord(reader, kTagSweepRun, "sweep run");
    if (!rec.ok()) return rec.status();
    Cursor c(*rec);
    SweepRunSnapshot run;
    uint32_t index = 0, code = 0, executed = 0, shared = 0;
    std::string message;
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU32("run index", &index));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU32("run status code", &code));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadString("run status message", &message));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU32("run executed", &executed));
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU32("run used_shared_model", &shared));
    REGCLUSTER_RETURN_IF_ERROR(ReadMinerStats(&c, &run.stats));
    REGCLUSTER_RETURN_IF_ERROR(ReadOutcome(&c, &run.outcome));
    REGCLUSTER_RETURN_IF_ERROR(ReadClusters(&c, &run.clusters));
    REGCLUSTER_RETURN_IF_ERROR(c.ExpectDone("sweep run"));
    run.index = static_cast<int32_t>(index);
    run.status = code == 0 ? util::Status::OK()
                           : util::Status(static_cast<util::StatusCode>(code),
                                          std::move(message));
    run.executed = executed != 0;
    run.used_shared_model = shared != 0;
    s->runs.push_back(std::move(run));
  }
  *record_count = static_cast<uint32_t>(2 + run_count);
  return util::Status::OK();
}

// ---------------------------------------------------------------------------
// Mine driver helpers.

// The options one resumable chunk runs under: the user's semantics with the
// global dominance post-pass deferred (it cannot splice across chunks; the
// driver applies core::RemoveDominated once on the completed output).
core::MinerOptions ChunkOptions(const core::MinerOptions& user) {
  core::MinerOptions chunk = user;
  chunk.remove_dominated = false;
  return chunk;
}

void AccumulateStats(core::MinerStats* total, const core::MinerStats& chunk) {
  total->nodes_expanded += chunk.nodes_expanded;
  total->extensions_tested += chunk.extensions_tested;
  total->pruned_min_genes += chunk.pruned_min_genes;
  total->pruned_p_majority += chunk.pruned_p_majority;
  total->pruned_duplicate += chunk.pruned_duplicate;
  total->pruned_coherence += chunk.pruned_coherence;
  total->genes_dropped_min_conds += chunk.genes_dropped_min_conds;
  total->clusters_emitted += chunk.clusters_emitted;
  total->index_builds += chunk.index_builds;
  total->index_word_ops += chunk.index_word_ops;
  total->coherence_divide_calls += chunk.coherence_divide_calls;
  total->coherence_scores += chunk.coherence_scores;
  total->dedup_probes += chunk.dedup_probes;
  total->rwave_build_seconds += chunk.rwave_build_seconds;
  total->index_build_seconds += chunk.index_build_seconds;
  total->mine_seconds += chunk.mine_seconds;
}

}  // namespace

// ---------------------------------------------------------------------------
// Wire format.

std::string EncodeCheckpoint(const Checkpoint& ckpt) {
  std::string out;
  out.append(kMagic, sizeof kMagic);
  PutU32(&out, kVersion);
  PutU32(&out, kEndianTag);
  PutU32(&out, static_cast<uint32_t>(ckpt.kind));
  PutU64(&out, ckpt.generation);
  std::string body = ckpt.kind == CheckpointKind::kMine
                         ? EncodeMineBody(ckpt.mine)
                         : EncodeSweepBody(ckpt.sweep);
  uint32_t records = ckpt.kind == CheckpointKind::kMine
                         ? 4
                         : static_cast<uint32_t>(2 + ckpt.sweep.runs.size());
  out.append(body);
  std::string end;
  PutU32(&end, kTagEnd);
  PutU32(&end, records);
  util::AppendRecord(&out, end);
  return out;
}

util::StatusOr<Checkpoint> DecodeCheckpoint(std::string_view bytes) {
  if (bytes.size() < kPreambleBytes) {
    return util::Status::Corruption("checkpoint file shorter than preamble");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return util::Status::Corruption("bad checkpoint magic");
  }
  Cursor pre(bytes.substr(sizeof kMagic, kPreambleBytes - sizeof kMagic));
  uint32_t version = 0, endian = 0, kind = 0;
  uint64_t generation = 0;
  REGCLUSTER_RETURN_IF_ERROR(pre.ReadU32("version", &version));
  REGCLUSTER_RETURN_IF_ERROR(pre.ReadU32("endian tag", &endian));
  REGCLUSTER_RETURN_IF_ERROR(pre.ReadU32("kind", &kind));
  REGCLUSTER_RETURN_IF_ERROR(pre.ReadU64("generation", &generation));
  if (version != kVersion) {
    return util::Status::Corruption("unsupported checkpoint version " +
                                    std::to_string(version));
  }
  if (endian != kEndianTag) {
    return util::Status::Corruption("checkpoint endianness mismatch");
  }
  if (kind != static_cast<uint32_t>(CheckpointKind::kMine) &&
      kind != static_cast<uint32_t>(CheckpointKind::kSweep)) {
    return util::Status::Corruption("unknown checkpoint kind " +
                                    std::to_string(kind));
  }

  Checkpoint ckpt;
  ckpt.generation = generation;
  ckpt.kind = static_cast<CheckpointKind>(kind);
  util::RecordReader reader(bytes.substr(kPreambleBytes));
  uint32_t body_records = 0;
  if (ckpt.kind == CheckpointKind::kMine) {
    REGCLUSTER_RETURN_IF_ERROR(
        DecodeMineBody(&reader, &ckpt.mine, &body_records));
  } else {
    REGCLUSTER_RETURN_IF_ERROR(
        DecodeSweepBody(&reader, &ckpt.sweep, &body_records));
  }
  auto end = NextRecord(&reader, kTagEnd, "end");
  if (!end.ok()) return end.status();
  {
    Cursor c(*end);
    uint32_t declared = 0;
    REGCLUSTER_RETURN_IF_ERROR(c.ReadU32("record count", &declared));
    REGCLUSTER_RETURN_IF_ERROR(c.ExpectDone("end"));
    if (declared != body_records) {
      return util::Status::Corruption("checkpoint record count mismatch");
    }
  }
  if (!reader.AtEnd()) {
    return util::Status::Corruption("trailing bytes after checkpoint footer");
  }
  return ckpt;
}

std::string CheckpointBufferPath(const std::string& base,
                                 uint64_t generation) {
  return base + (generation % 2 == 0 ? ".a" : ".b");
}

util::Status WriteCheckpointFile(const std::string& base,
                                 const Checkpoint& ckpt) {
  return util::AtomicWriteFile(CheckpointBufferPath(base, ckpt.generation),
                               EncodeCheckpoint(ckpt));
}

util::StatusOr<Checkpoint> LoadCheckpoint(const std::string& base,
                                          uint64_t min_generation) {
  const std::string candidates[3] = {base, base + ".a", base + ".b"};
  bool any_file = false;
  util::Status first_error;
  std::optional<Checkpoint> best;
  for (const std::string& path : candidates) {
    auto bytes = util::ReadFileToString(path);
    if (!bytes.ok()) {
      // Missing buffers are normal (e.g. only one write ever happened);
      // real IO errors are remembered like decode failures.
      if (bytes.status().code() != util::StatusCode::kNotFound &&
          first_error.ok()) {
        first_error = bytes.status();
      }
      if (bytes.status().code() != util::StatusCode::kNotFound) {
        any_file = true;
      }
      continue;
    }
    any_file = true;
    auto ckpt = DecodeCheckpoint(*bytes);
    if (!ckpt.ok()) {
      if (first_error.ok()) first_error = ckpt.status();
      continue;
    }
    if (!best || ckpt->generation > best->generation) {
      best = std::move(ckpt).value();
    }
  }
  if (!best) {
    if (!any_file) {
      return util::Status::NotFound("no checkpoint found at " + base +
                                    " (tried it plus .a/.b buffers)");
    }
    return first_error;
  }
  if (best->generation < min_generation) {
    return util::Status::FailedPrecondition(
        "stale checkpoint generation " + std::to_string(best->generation) +
        " (need >= " + std::to_string(min_generation) + ")");
  }
  return std::move(*best);
}

// ---------------------------------------------------------------------------
// Hashes and validation.

util::Hash128 HashMatrixContent(const matrix::MatrixStore& data) {
  util::Fnv128 h;
  h.MixInt(data.num_genes());
  h.MixInt(data.num_conditions());
  for (int g = 0; g < data.num_genes(); ++g) {
    const std::string& name = data.gene_name(g);
    h.Mix64(static_cast<uint64_t>(name.size()));
    h.MixBytes(name.data(), name.size());
  }
  for (int c = 0; c < data.num_conditions(); ++c) {
    const std::string& name = data.condition_name(c);
    h.Mix64(static_cast<uint64_t>(name.size()));
    h.MixBytes(name.data(), name.size());
  }
  // Cell payload row by row: bit patterns, so NaN layouts hash stably and
  // the resident and mapped paths agree byte for byte.
  for (int g = 0; g < data.num_genes(); ++g) {
    h.MixBytes(data.row_data(g),
               static_cast<size_t>(data.num_conditions()) * sizeof(double));
  }
  return h.Digest();
}

uint64_t HashSweepGrid(const std::vector<core::MinerOptions>& points) {
  util::Fnv128 h;
  h.Mix64(static_cast<uint64_t>(points.size()));
  for (const core::MinerOptions& p : points) {
    h.MixInt(static_cast<int64_t>(
        core::RegClusterMiner::SemanticOptionsHash(p)));
  }
  return h.Digest().lo;
}

util::Status ValidateMineCheckpoint(const MineCheckpoint& ckpt,
                                    const matrix::MatrixStore& data,
                                    const core::MinerOptions& options) {
  const uint32_t want_flags =
      options.remove_dominated ? kCheckpointFlagRemoveDominated : 0;
  if (ckpt.flags != want_flags) {
    return util::Status::FailedPrecondition(
        "checkpoint dominance-pass setting differs from the requested "
        "options");
  }
  const uint64_t want_hash =
      core::RegClusterMiner::SemanticOptionsHash(ChunkOptions(options));
  if (ckpt.semantic_options_hash != want_hash) {
    return util::Status::FailedPrecondition(
        "checkpoint was written under different mining options "
        "(semantic hash mismatch)");
  }
  if (ckpt.num_genes != data.num_genes() ||
      ckpt.num_conditions != data.num_conditions()) {
    return util::Status::FailedPrecondition(
        "checkpoint matrix dimensions differ: snapshot " +
        std::to_string(ckpt.num_genes) + "x" +
        std::to_string(ckpt.num_conditions) + ", matrix " +
        std::to_string(data.num_genes()) + "x" +
        std::to_string(data.num_conditions()));
  }
  const util::Hash128 h = HashMatrixContent(data);
  if (!(h == ckpt.matrix_hash)) {
    return util::Status::FailedPrecondition(
        "checkpoint was written for a different matrix "
        "(content hash mismatch)");
  }
  return util::Status::OK();
}

util::Status ValidateSweepCheckpoint(
    const SweepCheckpoint& ckpt, const matrix::MatrixStore& data,
    const std::vector<core::MinerOptions>& points) {
  if (ckpt.runs_total != static_cast<int64_t>(points.size())) {
    return util::Status::FailedPrecondition(
        "checkpoint sweep grid size differs: snapshot " +
        std::to_string(ckpt.runs_total) + " points, spec " +
        std::to_string(points.size()));
  }
  if (ckpt.grid_hash != HashSweepGrid(points)) {
    return util::Status::FailedPrecondition(
        "checkpoint was written for a different sweep grid "
        "(grid hash mismatch)");
  }
  if (ckpt.num_genes != data.num_genes() ||
      ckpt.num_conditions != data.num_conditions()) {
    return util::Status::FailedPrecondition(
        "checkpoint matrix dimensions differ: snapshot " +
        std::to_string(ckpt.num_genes) + "x" +
        std::to_string(ckpt.num_conditions) + ", matrix " +
        std::to_string(data.num_genes()) + "x" +
        std::to_string(data.num_conditions()));
  }
  const util::Hash128 h = HashMatrixContent(data);
  if (!(h == ckpt.matrix_hash)) {
    return util::Status::FailedPrecondition(
        "checkpoint was written for a different matrix "
        "(content hash mismatch)");
  }
  return util::Status::OK();
}

// ---------------------------------------------------------------------------
// CheckpointWriter.

CheckpointWriter::CheckpointWriter(std::string base_path,
                                   uint64_t next_generation, bool synchronous)
    : base_path_(std::move(base_path)),
      synchronous_(synchronous),
      next_generation_(next_generation) {
  if (!synchronous_ && !base_path_.empty()) {
    thread_ = std::thread([this] { ThreadBody(); });
  }
}

CheckpointWriter::~CheckpointWriter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void CheckpointWriter::Submit(Checkpoint ckpt) {
  if (base_path_.empty()) return;
  if (synchronous_) {
    (void)WriteNow(std::move(ckpt));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_ = std::move(ckpt);  // latest-wins: replaces any unwritten one
  }
  cv_.notify_one();
}

util::Status CheckpointWriter::WriteNow(Checkpoint ckpt) {
  if (base_path_.empty()) return util::Status::OK();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.reset();  // ours is newer than anything queued
  }
  std::lock_guard<std::mutex> io_lock(io_mutex_);
  return WriteLocked(std::move(ckpt));
}

util::Status CheckpointWriter::WriteLocked(Checkpoint ckpt) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ckpt.generation = next_generation_++;
  }
  util::WallTimer timer;
  std::string encoded = EncodeCheckpoint(ckpt);
  util::Status st = util::AtomicWriteFile(
      CheckpointBufferPath(base_path_, ckpt.generation), encoded);
  std::lock_guard<std::mutex> lock(mutex_);
  if (st.ok()) {
    ++stats_.writes;
    stats_.bytes += static_cast<int64_t>(encoded.size());
    stats_.last_write_ns =
        static_cast<int64_t>(timer.ElapsedSeconds() * 1e9);
  } else if (error_.ok()) {
    error_ = st;
  }
  return st;
}

void CheckpointWriter::ThreadBody() {
  for (;;) {
    std::optional<Checkpoint> work;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || pending_.has_value(); });
      if (pending_.has_value()) {
        work = std::move(pending_);
        pending_.reset();
      } else if (stop_) {
        return;
      }
    }
    if (work) {
      std::lock_guard<std::mutex> io_lock(io_mutex_);
      (void)WriteLocked(std::move(*work));
    }
  }
}

util::Status CheckpointWriter::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return error_;
}

void CheckpointWriter::NoteResume() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.resumes;
}

CheckpointStats CheckpointWriter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Durable mine driver.

util::StatusOr<DurableMineResult> RunCheckpointedMine(
    const matrix::MatrixStore& data, const core::MinerOptions& options,
    const CheckpointConfig& config, const MineCheckpoint* resume) {
  util::WallTimer run_timer;
  const core::MinerOptions chunk_base = ChunkOptions(options);
  const uint64_t semantic_hash =
      core::RegClusterMiner::SemanticOptionsHash(chunk_base);
  const uint32_t flags =
      options.remove_dominated ? kCheckpointFlagRemoveDominated : 0;

  if (resume != nullptr) {
    REGCLUSTER_RETURN_IF_ERROR(ValidateMineCheckpoint(*resume, data, options));
  }

  // Mutable run state, seeded from the snapshot when resuming.
  MineCheckpoint state;
  state.semantic_options_hash = semantic_hash;
  state.matrix_hash = HashMatrixContent(data);
  state.num_genes = data.num_genes();
  state.num_conditions = data.num_conditions();
  state.flags = flags;
  state.next_root = 0;
  if (resume != nullptr) {
    state = *resume;
  }

  CheckpointWriter writer(config.path, config.next_generation,
                          config.synchronous);
  if (resume != nullptr) writer.NoteResume();

  DurableMineResult result;
  auto finish = [&](core::MineStatus status, util::StopReason reason,
                    const core::ResumeToken& token,
                    const core::MineOutcome* last_chunk) {
    result.clusters = std::move(state.clusters);
    result.stats = state.stats;
    result.outcome.status = status;
    result.outcome.stop_reason = reason;
    result.outcome.nodes_visited = state.nodes_visited;
    result.outcome.roots_completed = static_cast<int>(state.roots_completed);
    result.outcome.roots_total = data.num_conditions();
    result.outcome.wall_seconds = state.wall_seconds;
    result.outcome.peak_scratch_bytes = state.peak_scratch_bytes;
    result.outcome.resume = token;
    result.outcome.simd_level = util::simd::CurrentLevel();
    if (last_chunk != nullptr) {
      result.outcome.simd_level = last_chunk->simd_level;
      result.outcome.model_cache_hits = last_chunk->model_cache_hits;
      result.outcome.model_cache_misses = last_chunk->model_cache_misses;
      result.outcome.model_cache_evictions = last_chunk->model_cache_evictions;
      result.outcome.model_cache_resident_bytes =
          last_chunk->model_cache_resident_bytes;
      result.outcome.model_bytes = last_chunk->model_bytes;
      result.outcome.mapped_bytes = last_chunk->mapped_bytes;
    }
    if (options.remove_dominated && status == core::MineStatus::kComplete) {
      result.clusters = core::RemoveDominated(std::move(result.clusters));
    }
  };

  // A snapshot that says "complete" short-circuits: replay the stored
  // result (the dominance pass, when requested, re-runs on the stored raw
  // clusters -- it is deterministic).
  if (state.complete()) {
    finish(core::MineStatus::kComplete, util::StopReason::kNone,
           core::ResumeToken{}, nullptr);
    result.checkpoint = writer.stats();
    result.checkpoint_status = writer.last_error();
    return result;
  }

  // Build the gamma model once for all chunks (Mine() would otherwise
  // rebuild it per chunk).  Resident or out-of-core per the user's knobs.
  std::shared_ptr<const core::SharedGammaModel> model = options.shared_model;
  if (model == nullptr) {
    const core::GammaSpec spec{options.gamma_policy, options.gamma};
    if (options.gamma < 0.0 ||
        (options.gamma_policy != core::GammaPolicy::kAbsolute &&
         options.gamma > 1.0)) {
      // Leave gamma validation to Mine(): run one chunk without a model and
      // surface its error verbatim.
    } else if (options.model_cache_bytes >= 0) {
      model = core::SharedGammaModel::BuildOutOfCore(
          data, spec, std::max(options.min_conditions, 2),
          options.model_cache_bytes, options.model_cache_shards,
          options.num_threads);
    } else {
      model = core::SharedGammaModel::Build(
          data, spec, std::max(options.min_conditions, 2),
          options.num_threads);
    }
  }
  // One logical run builds the model once; report it that way (chunks all
  // run with a shared model, contributing index_builds == 0).
  if (resume == nullptr && model != nullptr) {
    state.stats.index_builds = 1;
    state.stats.rwave_build_seconds = model->rwave_build_seconds;
    state.stats.index_build_seconds = model->index_build_seconds;
  }

  constexpr int64_t kUnlimited = std::numeric_limits<int64_t>::max();
  const int64_t user_nodes =
      options.max_nodes >= 0 ? options.max_nodes : kUnlimited;
  const int64_t user_clusters =
      options.max_clusters >= 0 ? options.max_clusters : kUnlimited;
  int64_t chunk_budget = std::max<int64_t>(config.initial_chunk_nodes, 1);
  core::ResumeToken token;
  token.next_root = static_cast<int>(state.next_root);
  token.options_hash = semantic_hash;
  core::MineOutcome last_outcome;

  for (;;) {
    const int64_t nodes_rem = user_nodes == kUnlimited
                                  ? kUnlimited
                                  : user_nodes - state.stats.nodes_expanded;
    const int64_t clusters_rem =
        user_clusters == kUnlimited
            ? kUnlimited
            : user_clusters - state.stats.clusters_emitted;
    const int64_t this_budget = std::min(chunk_budget, nodes_rem);

    core::MinerOptions chunk = chunk_base;
    chunk.shared_model = model;
    chunk.max_nodes = this_budget == kUnlimited ? -1 : this_budget;
    chunk.max_clusters = clusters_rem == kUnlimited ? -1 : clusters_rem;
    if (token.can_resume() && token.next_root > 0) {
      chunk.resume = token;
    } else {
      chunk.resume = core::ResumeToken{};
    }
    if (options.deadline_ms >= 0) {
      chunk.deadline_ms =
          std::max(0.0, options.deadline_ms - run_timer.ElapsedMillis());
    }

    util::WallTimer chunk_timer;
    core::RegClusterMiner miner(data, chunk);
    auto clusters = miner.Mine();
    if (!clusters.ok()) return clusters.status();
    const double chunk_ms = chunk_timer.ElapsedMillis();
    const core::MineOutcome& oc = miner.outcome();
    last_outcome = oc;

    const bool progressed = oc.roots_completed > 0;
    if (progressed) {
      state.clusters.insert(state.clusters.end(),
                            std::make_move_iterator(clusters->begin()),
                            std::make_move_iterator(clusters->end()));
      AccumulateStats(&state.stats, miner.stats());
      state.roots_completed += oc.roots_completed;
    }
    state.nodes_visited += oc.nodes_visited;
    state.wall_seconds += oc.wall_seconds;
    state.peak_scratch_bytes =
        std::max(state.peak_scratch_bytes, oc.peak_scratch_bytes);

    if (oc.status == core::MineStatus::kComplete) {
      state.next_root = -1;
      Checkpoint final_ckpt;
      final_ckpt.kind = CheckpointKind::kMine;
      final_ckpt.mine = state;
      finish(core::MineStatus::kComplete, util::StopReason::kNone,
             core::ResumeToken{}, &last_outcome);
      result.checkpoint_status = writer.WriteNow(std::move(final_ckpt));
      result.checkpoint = writer.stats();
      return result;
    }

    token = oc.resume;
    state.next_root = token.next_root;

    const bool hard = util::IsHardStop(oc.stop_reason);
    // A soft stop is *final* when the chunk's budget already was the user's
    // whole remaining budget: the next root does not fit the logical run.
    const bool user_node_cut = oc.stop_reason ==
                                   util::StopReason::kNodeBudget &&
                               this_budget == nodes_rem;
    const bool user_cluster_cut =
        oc.stop_reason == util::StopReason::kClusterBudget;
    if (hard || user_node_cut || user_cluster_cut) {
      Checkpoint final_ckpt;
      final_ckpt.kind = CheckpointKind::kMine;
      final_ckpt.mine = state;
      finish(core::MineStatus::kTruncated, oc.stop_reason, token,
             &last_outcome);
      result.checkpoint_status = writer.WriteNow(std::move(final_ckpt));
      result.checkpoint = writer.stats();
      return result;
    }

    if (!progressed) {
      // Driver-pace budget too small for even one root: grow and retry
      // (nothing new to snapshot).
      chunk_budget = chunk_budget * 2;
      continue;
    }

    // Periodic snapshot, off the hot path on the writer thread.
    Checkpoint ckpt;
    ckpt.kind = CheckpointKind::kMine;
    ckpt.mine = state;
    writer.Submit(std::move(ckpt));

    // Adapt the chunk size to the requested cadence from the measured
    // throughput of the chunk that just ran.
    const double nodes_per_ms =
        static_cast<double>(miner.stats().nodes_expanded) /
        std::max(chunk_ms, 0.1);
    const double target =
        nodes_per_ms * static_cast<double>(std::max(config.every_ms, 1));
    chunk_budget = std::clamp<int64_t>(static_cast<int64_t>(target), 1024,
                                       int64_t{1} << 40);
  }
}

// ---------------------------------------------------------------------------
// Durable sweep driver.

util::StatusOr<DurableSweepResult> RunCheckpointedSweep(
    const matrix::MatrixStore& data,
    const std::vector<core::MinerOptions>& points,
    const core::SweepOptions& sweep_options, const CheckpointConfig& config,
    const SweepCheckpoint* resume) {
  util::WallTimer run_timer;
  if (points.empty()) {
    return util::Status::InvalidArgument("sweep has no points");
  }
  if (resume != nullptr) {
    REGCLUSTER_RETURN_IF_ERROR(
        ValidateSweepCheckpoint(*resume, data, points));
  }

  SweepCheckpoint state;
  state.grid_hash = HashSweepGrid(points);
  state.matrix_hash = HashMatrixContent(data);
  state.num_genes = data.num_genes();
  state.num_conditions = data.num_conditions();
  state.first_unfinished = 0;
  state.runs_total = static_cast<int64_t>(points.size());
  if (resume != nullptr) state = *resume;

  CheckpointWriter writer(config.path, config.next_generation,
                          config.synchronous);
  if (resume != nullptr) writer.NoteResume();

  DurableSweepResult result;
  core::SweepReport& report = result.report;
  report.runs.resize(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    report.runs[i].options = points[i];
  }

  // Replay the snapshot prefix into the report.
  for (const SweepRunSnapshot& snap : state.runs) {
    if (snap.index < 0 ||
        snap.index >= static_cast<int32_t>(report.runs.size())) {
      return util::Status::Corruption(
          "checkpoint sweep run index out of range");
    }
    core::SweepRun& run = report.runs[snap.index];
    run.status = snap.status;
    run.executed = snap.executed;
    run.used_shared_model = snap.used_shared_model;
    run.stats = snap.stats;
    run.outcome = snap.outcome;
    run.clusters = snap.clusters;
    if (run.executed) {
      ++report.runs_executed;
      report.nodes_total += run.stats.nodes_expanded;
      report.clusters_total += static_cast<int64_t>(run.clusters.size());
    }
  }
  report.index_builds = static_cast<int>(state.index_builds);
  report.shared_model_bytes = state.shared_model_bytes;
  report.wall_seconds = state.wall_seconds;

  auto snapshot_runs_prefix = [&](int64_t boundary) {
    state.runs.clear();
    for (int64_t i = 0; i < boundary; ++i) {
      const core::SweepRun& run = report.runs[static_cast<size_t>(i)];
      SweepRunSnapshot snap;
      snap.index = static_cast<int32_t>(i);
      snap.status = run.status;
      snap.executed = run.executed;
      snap.used_shared_model = run.used_shared_model;
      snap.stats = run.stats;
      snap.outcome = run.outcome;
      snap.clusters = run.clusters;
      state.runs.push_back(std::move(snap));
    }
  };

  auto finish = [&](bool truncated, util::StopReason reason,
                    int64_t first_unfinished) -> util::Status {
    report.status =
        truncated ? core::MineStatus::kTruncated : core::MineStatus::kComplete;
    report.stop_reason = reason;
    report.first_unfinished = static_cast<int>(first_unfinished);
    report.wall_seconds = state.wall_seconds + run_timer.ElapsedSeconds();
    state.truncated = truncated ? 1 : 0;
    state.stop_reason = static_cast<int32_t>(reason);
    state.first_unfinished = -1;
    state.index_builds = report.index_builds;
    state.shared_model_bytes = report.shared_model_bytes;
    state.wall_seconds = report.wall_seconds;
    snapshot_runs_prefix(static_cast<int64_t>(points.size()));
    Checkpoint ckpt;
    ckpt.kind = CheckpointKind::kSweep;
    ckpt.sweep = state;
    return writer.WriteNow(std::move(ckpt));
  };

  // A snapshot that says "complete" short-circuits to the stored report.
  if (state.complete()) {
    report.status = state.truncated != 0 ? core::MineStatus::kTruncated
                                         : core::MineStatus::kComplete;
    report.stop_reason = static_cast<util::StopReason>(state.stop_reason);
    report.first_unfinished = -1;
    // Recover the truncation boundary for the report: the first point with
    // no verdict.  A complete sweep keeps -1.
    if (state.truncated != 0) {
      for (size_t i = 0; i < report.runs.size(); ++i) {
        if (!report.runs[i].executed && report.runs[i].status.ok()) {
          report.first_unfinished = static_cast<int>(i);
          break;
        }
      }
    }
    result.checkpoint = writer.stats();
    result.checkpoint_status = writer.last_error();
    return result;
  }

  constexpr int64_t kUnlimited = std::numeric_limits<int64_t>::max();
  const int64_t user_nodes =
      sweep_options.max_nodes >= 0 ? sweep_options.max_nodes : kUnlimited;
  const int64_t user_clusters = sweep_options.max_clusters >= 0
                                    ? sweep_options.max_clusters
                                    : kUnlimited;
  int64_t consumed_nodes = 0;
  int64_t consumed_clusters = 0;
  for (const core::SweepRun& run : report.runs) {
    if (run.executed) {
      consumed_nodes += run.stats.nodes_expanded;
      consumed_clusters += run.stats.clusters_emitted;
    }
  }

  // Gamma groups: maximal consecutive points sharing (policy, exact gamma
  // bits).  One engine Run per group keeps model sharing where the grid
  // makes it possible and gives kill-invariant group boundaries.
  auto same_group = [](const core::MinerOptions& a,
                       const core::MinerOptions& b) {
    return a.gamma_policy == b.gamma_policy &&
           std::bit_cast<uint64_t>(a.gamma) == std::bit_cast<uint64_t>(b.gamma);
  };

  size_t start = static_cast<size_t>(state.first_unfinished);
  while (start < points.size()) {
    size_t end = start + 1;
    while (end < points.size() && same_group(points[end], points[start])) {
      ++end;
    }

    core::SweepOptions group_opts = sweep_options;
    group_opts.max_nodes =
        user_nodes == kUnlimited ? -1 : user_nodes - consumed_nodes;
    group_opts.max_clusters =
        user_clusters == kUnlimited ? -1 : user_clusters - consumed_clusters;
    if (sweep_options.deadline_ms >= 0) {
      group_opts.deadline_ms = std::max(
          0.0, sweep_options.deadline_ms - run_timer.ElapsedMillis());
    }

    core::SweepEngine engine(data, group_opts);
    std::vector<core::MinerOptions> group_points(points.begin() + start,
                                                 points.begin() + end);
    auto group_report = engine.Run(group_points);
    if (!group_report.ok()) return group_report.status();

    for (size_t i = 0; i < group_points.size(); ++i) {
      core::SweepRun& dst = report.runs[start + i];
      core::SweepRun& src = group_report->runs[i];
      dst.status = src.status;
      dst.executed = src.executed;
      dst.used_shared_model = src.used_shared_model;
      dst.stats = src.stats;
      dst.outcome = src.outcome;
      dst.clusters = std::move(src.clusters);
      if (dst.executed) {
        ++report.runs_executed;
        report.nodes_total += dst.stats.nodes_expanded;
        report.clusters_total += static_cast<int64_t>(dst.clusters.size());
        consumed_nodes += dst.stats.nodes_expanded;
        consumed_clusters += dst.stats.clusters_emitted;
      }
    }
    report.index_builds += group_report->index_builds;
    report.shared_model_bytes += group_report->shared_model_bytes;

    if (group_report->status == core::MineStatus::kTruncated) {
      const int64_t absolute =
          static_cast<int64_t>(start) + group_report->first_unfinished;
      result.checkpoint_status =
          finish(true, group_report->stop_reason, absolute);
      result.checkpoint = writer.stats();
      return result;
    }

    start = end;
    if (start < points.size()) {
      // Group finished, more to go: snapshot at the boundary.
      state.first_unfinished = static_cast<int64_t>(start);
      state.index_builds = report.index_builds;
      state.shared_model_bytes = report.shared_model_bytes;
      state.wall_seconds = report.wall_seconds + run_timer.ElapsedSeconds();
      snapshot_runs_prefix(static_cast<int64_t>(start));
      Checkpoint ckpt;
      ckpt.kind = CheckpointKind::kSweep;
      ckpt.sweep = state;
      writer.Submit(std::move(ckpt));
    }
  }

  result.checkpoint_status = finish(false, util::StopReason::kNone, -1);
  result.checkpoint = writer.stats();
  return result;
}

// ---------------------------------------------------------------------------
// Deterministic-output sanitization.

void ZeroVolatileMineFields(core::MinerStats* stats,
                            core::MineOutcome* outcome) {
  if (stats != nullptr) {
    stats->rwave_build_seconds = 0.0;
    stats->index_build_seconds = 0.0;
    stats->mine_seconds = 0.0;
  }
  if (outcome != nullptr) {
    outcome->nodes_visited = 0;
    outcome->wall_seconds = 0.0;
    outcome->peak_scratch_bytes = 0;
    outcome->phase_a_seconds = 0.0;
    outcome->phase_b_seconds = 0.0;
    outcome->pool_steals = 0;
    outcome->pool_queue_high_water = 0;
    outcome->budget_polls = 0;
    outcome->model_cache_hits = 0;
    outcome->model_cache_misses = 0;
    outcome->model_cache_evictions = 0;
    outcome->model_cache_resident_bytes = 0;
    outcome->model_bytes = 0;
    outcome->mapped_bytes = 0;
  }
}

void ZeroVolatileSweepFields(core::SweepReport* report) {
  if (report == nullptr) return;
  report->wall_seconds = 0.0;
  for (core::SweepRun& run : report->runs) {
    ZeroVolatileMineFields(&run.stats, &run.outcome);
  }
}

}  // namespace io
}  // namespace regcluster
