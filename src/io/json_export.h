// JSON export of mined cluster sets -- for notebooks, web viewers and any
// downstream tool that does not want to parse the line format.
//
// Output schema (stable):
//   {
//     "outcome": {                     // only when a MineOutcome is supplied
//       "status": "complete"|"truncated",
//       "stop_reason": "none"|"cancelled"|"deadline"|"memory_budget"|
//                      "node_budget"|"cluster_budget",
//       "nodes_visited": N, "roots_completed": R, "roots_total": T,
//       "wall_seconds": S, "peak_scratch_bytes": B,
//       "resume_next_root": -1|r, "resume_options_hash": H
//     },
//     "stats": {                       // only when MinerStats is supplied
//       "nodes_expanded": N, "extensions_tested": N,
//       "pruned_min_genes": N, "pruned_p_majority": N,
//       "pruned_duplicate": N, "pruned_coherence": N,
//       "genes_dropped_min_conds": N, "clusters_emitted": N,
//       "index_word_ops": N, "coherence_divide_calls": N,
//       "coherence_scores": N, "dedup_probes": N,
//       "rwave_build_seconds": S, "index_build_seconds": S,
//       "mine_seconds": S
//     },
//     "num_clusters": N,
//     "clusters": [
//       {
//         "chain": [ids...],
//         "chain_names": ["..."],      // only when a matrix is supplied
//         "p_genes": [ids...], "p_gene_names": [...],
//         "n_genes": [ids...], "n_gene_names": [...]
//       }, ...
//     ]
//   }
//
// Writing only -- the machine line format (cluster_io.h) is the round-trip
// archive format.

#ifndef REGCLUSTER_IO_JSON_EXPORT_H_
#define REGCLUSTER_IO_JSON_EXPORT_H_

#include <iosfwd>
#include <vector>

#include "core/bicluster.h"
#include "core/miner.h"
#include "matrix/store.h"
#include "util/status.h"

namespace regcluster {
namespace io {

/// Writes the JSON document.  `data` (optional) supplies names; ids must be
/// valid for it when given.
util::Status WriteClustersJson(const std::vector<core::RegCluster>& clusters,
                               const matrix::MatrixStore* data,
                               std::ostream& out);

/// Same, with a leading "outcome" block describing the partial-result
/// contract of the Mine() call that produced `clusters` (pass
/// miner.outcome()); `outcome == nullptr` writes the plain document.
util::Status WriteClustersJson(const std::vector<core::RegCluster>& clusters,
                               const matrix::MatrixStore* data,
                               const core::MineOutcome* outcome,
                               std::ostream& out);

/// Same, plus a "stats" block with the deterministic search-effort counters
/// of the run (pass miner.stats()); `stats == nullptr` omits the block.
/// The counters are written even when they are all zero
/// (collect_stats=false): a reader can rely on the keys being present.
util::Status WriteClustersJson(const std::vector<core::RegCluster>& clusters,
                               const matrix::MatrixStore* data,
                               const core::MineOutcome* outcome,
                               const core::MinerStats* stats,
                               std::ostream& out);

/// Escapes a string for inclusion in a JSON string literal.
std::string JsonEscape(const std::string& s);

}  // namespace io
}  // namespace regcluster

#endif  // REGCLUSTER_IO_JSON_EXPORT_H_
