// JSON export of mined cluster sets -- for notebooks, web viewers and any
// downstream tool that does not want to parse the line format.
//
// Output schema (stable):
//   {
//     "num_clusters": N,
//     "clusters": [
//       {
//         "chain": [ids...],
//         "chain_names": ["..."],      // only when a matrix is supplied
//         "p_genes": [ids...], "p_gene_names": [...],
//         "n_genes": [ids...], "n_gene_names": [...]
//       }, ...
//     ]
//   }
//
// Writing only -- the machine line format (cluster_io.h) is the round-trip
// archive format.

#ifndef REGCLUSTER_IO_JSON_EXPORT_H_
#define REGCLUSTER_IO_JSON_EXPORT_H_

#include <iosfwd>
#include <vector>

#include "core/bicluster.h"
#include "matrix/expression_matrix.h"
#include "util/status.h"

namespace regcluster {
namespace io {

/// Writes the JSON document.  `data` (optional) supplies names; ids must be
/// valid for it when given.
util::Status WriteClustersJson(const std::vector<core::RegCluster>& clusters,
                               const matrix::ExpressionMatrix* data,
                               std::ostream& out);

/// Escapes a string for inclusion in a JSON string literal.
std::string JsonEscape(const std::string& s);

}  // namespace io
}  // namespace regcluster

#endif  // REGCLUSTER_IO_JSON_EXPORT_H_
