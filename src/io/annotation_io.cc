#include "io/annotation_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/string_util.h"

namespace regcluster {
namespace io {
namespace {

util::StatusOr<eval::GoCategory> ParseCategory(const std::string& s) {
  if (s == "process") return eval::GoCategory::kBiologicalProcess;
  if (s == "function") return eval::GoCategory::kMolecularFunction;
  if (s == "component") return eval::GoCategory::kCellularComponent;
  return util::Status::Corruption("unknown GO category: '" + s + "'");
}

const char* CategoryToken(eval::GoCategory c) {
  switch (c) {
    case eval::GoCategory::kBiologicalProcess:
      return "process";
    case eval::GoCategory::kMolecularFunction:
      return "function";
    case eval::GoCategory::kCellularComponent:
      return "component";
  }
  return "?";
}

}  // namespace

util::StatusOr<AnnotationLoadResult> ReadAnnotations(
    std::istream& in, const matrix::ExpressionMatrix& data) {
  AnnotationLoadResult result;
  result.db = eval::GoAnnotationDb(data.num_genes());

  std::unordered_map<std::string, int> gene_index;
  for (int g = 0; g < data.num_genes(); ++g) {
    gene_index.emplace(data.gene_name(g), g);
  }
  std::unordered_map<std::string, int> term_index;

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::vector<std::string> fields = util::Split(line, '\t');
    if (fields.size() != 4) {
      return util::Status::Corruption(util::StrFormat(
          "line %d: expected 4 tab-separated fields, got %d", line_no,
          static_cast<int>(fields.size())));
    }
    auto category = ParseCategory(std::string(util::Trim(fields[3])));
    if (!category.ok()) {
      return util::Status::Corruption(
          util::StrFormat("line %d: %s", line_no,
                          category.status().message().c_str()));
    }

    const auto gene_it = gene_index.find(fields[0]);
    if (gene_it == gene_index.end()) {
      ++result.unknown_genes_skipped;
      continue;
    }

    int term;
    const auto term_it = term_index.find(fields[1]);
    if (term_it == term_index.end()) {
      eval::GoTerm t;
      t.id = fields[1];
      t.name = fields[2];
      t.category = *category;
      term = result.db.AddTerm(std::move(t));
      term_index.emplace(fields[1], term);
    } else {
      term = term_it->second;
    }
    REGCLUSTER_RETURN_IF_ERROR(result.db.Annotate(gene_it->second, term));
    ++result.annotations_loaded;
  }
  return result;
}

util::StatusOr<AnnotationLoadResult> LoadAnnotations(
    const std::string& path, const matrix::ExpressionMatrix& data) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for reading: " + path);
  return ReadAnnotations(in, data);
}

util::Status WriteAnnotations(const eval::GoAnnotationDb& db,
                              const matrix::ExpressionMatrix& data,
                              std::ostream& out) {
  if (db.population_size() != data.num_genes()) {
    return util::Status::InvalidArgument(
        "annotation population does not match the matrix");
  }
  for (int g = 0; g < db.population_size(); ++g) {
    for (int t : db.GeneTerms(g)) {
      const eval::GoTerm& term = db.term(t);
      out << data.gene_name(g) << '\t' << term.id << '\t' << term.name << '\t'
          << CategoryToken(term.category) << '\n';
    }
  }
  if (!out) return util::Status::IoError("stream write failed");
  return util::Status::OK();
}

}  // namespace io
}  // namespace regcluster
