// Incremental time-course mining: condition-append delta updates.
//
// Expression time courses grow condition by condition (ROADMAP item 4), and
// a full reload + RWave rebuild + re-mine after every new array throws away
// everything the previous run computed.  This module makes the append a
// delta: the gamma model updates through SharedGammaModel::UpdateAppend
// (genes whose absolute threshold is unchanged merge just the new columns
// into their sorted order), and the search re-runs only the *dirty roots* --
// level-1 conditions whose subtree can possibly involve an appended
// condition -- splicing every other root's (stats, clusters) slice from the
// previous run's recorded per-root results (MinerOptions::root_set +
// capture_root_results).
//
// Dirty-set rule (proof sketch in DESIGN.md): regulation reachability is
// transitively closed in one step per gene -- FirstSuccessorPos is
// non-decreasing in position, so every condition reachable from root r
// through an upward chain of gene g is a *direct* regulation successor of r
// in g's model (mirror for downward chains).  Hence root r's subtree can
// touch a new condition iff some gene has a new condition directly in
// UpCandidates(g, pos_g(r)) or DownCandidates(g, pos_g(r)), evaluated on
// the post-append index.  Appended conditions are always mined (they are
// new roots).  Two append shapes invalidate every root at once:
//   * a gene's absolute threshold moved (the append widened its range under
//     kRangeFraction, or shifted a statistic under the other policies) --
//     regulation among the *old* conditions then changes too;
//   * the bitmap word count grew (WordsForBits) -- the per-root
//     index_word_ops counters scale with the word stride, so old slices
//     would no longer sum to a from-scratch run's counters.
//
// Contract: after any append sequence, MineIncremental's clusters AND every
// deterministic MinerStats counter are byte-identical to a from-scratch
// RegClusterMiner::Mine() over the grown matrix, at any thread count
// (tests/core/incremental_append_test.cc).  The state is durable: a
// versioned binary snapshot (magic RGCXINC1, CRC32C-framed records like the
// checkpoint format) holding the per-root slices, so the CLI chains appends
// across processes (`mine --append=cols.txt --prev-outcome=STATE`).

#ifndef REGCLUSTER_IO_INCREMENTAL_H_
#define REGCLUSTER_IO_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/miner.h"
#include "matrix/store.h"
#include "util/hash128.h"
#include "util/status.h"

namespace regcluster {
namespace io {

/// Set in IncrementalState::flags when the user mines with remove_dominated:
/// per-root slices are recorded without it (a global post-pass cannot be
/// attributed to roots) and the pass runs once over each spliced output.
inline constexpr uint32_t kIncrementalFlagRemoveDominated = 1u << 0;

/// Everything a later append needs from the previous mine: identity of the
/// matrix and options it answered, plus every root's (stats, clusters)
/// slice in ascending root order.
struct IncrementalState {
  /// RegClusterMiner::SemanticOptionsHash of the slice options (the user's
  /// options with remove_dominated forced off; see flags).
  uint64_t semantic_options_hash = 0;
  /// HashMatrixContent of the matrix the slices were mined over.
  util::Hash128 matrix_hash{0, 0};
  int64_t num_genes = 0;
  int64_t num_conditions = 0;
  uint32_t flags = 0;  ///< kIncrementalFlag* bits
  /// One slice per root condition, ascending; clusters are pre-dominance.
  std::vector<core::RootMineResult> roots;
};

/// What an incremental (or initial) mine produced.
struct IncrementalMineResult {
  /// The final output, byte-identical to a from-scratch mine under the same
  /// options (dominance pass applied when requested).
  std::vector<core::RegCluster> clusters;
  /// Spliced deterministic counters -- byte-identical to a from-scratch
  /// mine's stats() except the wall-clock fields, which time this call.
  core::MinerStats stats;
  /// State to feed the next MineIncremental call.
  IncrementalState state;
  /// The gamma model at the mined width; pass it back as `prev_model` so
  /// the next in-process append takes the UpdateAppend delta path.
  std::shared_ptr<const core::SharedGammaModel> model;
  int roots_remined = 0;  ///< dirty roots searched this call
  int roots_spliced = 0;  ///< clean roots served from the previous state
};

/// Seeds an incremental chain: one full mine of `data` under `options`,
/// recording every root's slice.  The clusters and stats are byte-identical
/// to a plain RegClusterMiner::Mine() under the same options.  Rejects
/// (InvalidArgument) options the incremental contract cannot splice:
/// budgets, deadline, memory limit, cancel token, resume, root_set,
/// capture_root_results, shared_model, and out-of-core model_cache_bytes.
util::StatusOr<IncrementalMineResult> MineInitial(
    const matrix::MatrixStore& data, const core::MinerOptions& options);

/// Re-mines only the dirty roots of `new_data` -- the matrix after appending
/// conditions at the end, `first_new` = the previous condition count -- and
/// splices every clean root from `prev`.  `prev_model` (may be null) is the
/// gamma model of the previous step at width `first_new`; when compatible it
/// delta-updates via SharedGammaModel::UpdateAppend, otherwise the model is
/// rebuilt at the new width (same bytes either way).  Validates that `prev`
/// matches the options (semantic hash, dominance flag) and that the first
/// `first_new` columns of `new_data` are content-identical to the matrix
/// `prev` was mined over; each mismatch is a distinct FailedPrecondition.
util::StatusOr<IncrementalMineResult> MineIncremental(
    const matrix::MatrixStore& new_data, int first_new,
    const core::MinerOptions& options, const IncrementalState& prev,
    std::shared_ptr<const core::SharedGammaModel> prev_model = nullptr);

/// Serializes `state` to the RGCXINC1 wire format: a 16-byte preamble
/// (magic, version, endian tag) followed by CRC32C-framed records
/// (util::AppendRecord) -- a context record, one record per root slice, and
/// a count-bearing end record.
std::string EncodeIncrementalState(const IncrementalState& state);

/// Inverse of EncodeIncrementalState.  Every malformed shape is a distinct
/// kCorruption (short preamble, bad magic, version/endianness mismatch,
/// torn records, out-of-order roots, count mismatch, trailing bytes).
util::StatusOr<IncrementalState> DecodeIncrementalState(
    std::string_view bytes);

/// Encodes and atomically writes `state` to `path`
/// (util::AtomicWriteFile: complete old or complete new, never torn).
util::Status WriteIncrementalStateFile(const std::string& path,
                                       const IncrementalState& state);

/// Reads and decodes the state file at `path`.
util::StatusOr<IncrementalState> LoadIncrementalState(const std::string& path);

/// The dirty-root set of an append, for tests and diagnostics: every root
/// in [0, first_new) with an appended condition directly in some gene's
/// successor/predecessor candidates (evaluated on the post-append `index`),
/// plus every appended root.  Sorted ascending.  The all-dirty fallbacks
/// (threshold moved, word count grew) are applied by MineIncremental, not
/// here.
std::vector<int> ComputeDirtyRoots(const core::RWaveBitmapIndex& index,
                                   int first_new);

}  // namespace io
}  // namespace regcluster

#endif  // REGCLUSTER_IO_INCREMENTAL_H_
