// Parsing and serialization for batch parameter sweeps (core::SweepEngine).
//
// Spec grammar (--sweep):
//   spec      := axes | json-list
//   axes      := axis '=' values (',' axis '=' values)*
//   axis      := 'gamma' | 'eps' | 'epsilon' | 'ming' | 'minc'
//   values    := lo ':' hi ':' step      inclusive arithmetic range
//              | v (';' v)*              explicit list
//   json-list := '[' {"gamma": g, "eps": e, "ming": m, "minc": c}, ... ']'
//
// Axes form a cross product with later axes varying fastest, so
// "gamma=0.1;0.2,ming=20;30" yields (0.1,20) (0.1,30) (0.2,20) (0.2,30).
// Every point starts from the caller's base MinerOptions (so flags like
// --policy or --threads-independent toggles carry over) with only the listed
// axes overridden.  JSON objects may set any subset of the four keys
// ("epsilon" is accepted for "eps"); unknown keys are errors.
//
// JSON report schema (stable):
//   {
//     "sweep": {
//       "status": "complete"|"truncated", "stop_reason": "...",
//       "runs_total": N, "runs_executed": N, "first_unfinished": -1|i,
//       "index_builds": N, "shared_model_bytes": B,
//       "nodes_total": N, "clusters_total": N, "wall_seconds": S
//     },
//     "runs": [
//       {
//         "run": i,
//         "options": {"gamma": g, "gamma_policy": "...", "epsilon": e,
//                     "min_genes": m, "min_conditions": c},
//         "executed": true|false, "shared_model": true|false,
//         "error": "...",              // only on a per-point option error
//         "outcome": {"status": ..., "stop_reason": ..., "wall_seconds": S},
//         "stats": {"nodes_expanded": N, "extensions_tested": N,
//                   "clusters_emitted": N, "mine_seconds": S},
//         "num_clusters": N,           // outcome/stats/clusters only when
//         "clusters": [                // executed
//           {"chain": [...], "p_genes": [...], "n_genes": [...]}, ...
//         ]
//       }, ...
//     ]
//   }
//
// CSV summary columns (stable, one row per point):
//   run,gamma,gamma_policy,epsilon,min_genes,min_conditions,executed,
//   shared_model,status,stop_reason,clusters,nodes_expanded,
//   extensions_tested,mine_seconds,wall_seconds
// `status` is complete|truncated for executed runs, error for a per-point
// option failure, skipped for points beyond a sweep truncation; counters and
// seconds are 0 for non-executed rows.

#ifndef REGCLUSTER_IO_SWEEP_IO_H_
#define REGCLUSTER_IO_SWEEP_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/miner.h"
#include "core/sweep.h"
#include "io/checkpoint.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace regcluster {
namespace io {

/// Expands a sweep spec into one MinerOptions per grid point, each starting
/// from `base`.  InvalidArgument on malformed specs (empty axes, unknown
/// axis, bad number, descending range, non-integer MinG/MinC, bad JSON).
util::StatusOr<std::vector<core::MinerOptions>> ParseSweepSpec(
    const std::string& spec, const core::MinerOptions& base);

/// Writes the JSON report (schema above).
util::Status WriteSweepJson(const core::SweepReport& report,
                            std::ostream& out);

/// Writes the CSV summary (columns above), header row first.
util::Status WriteSweepCsv(const core::SweepReport& report, std::ostream& out);

/// Registers sweep-level aggregates under stable names:
///   regcluster_sweep_runs_total, regcluster_sweep_runs_executed,
///   regcluster_sweep_index_builds, regcluster_sweep_shared_model_bytes,
///   regcluster_sweep_nodes_total, regcluster_sweep_clusters_total,
///   regcluster_sweep_wall_seconds, regcluster_sweep_truncated
/// Fails only on registry name conflicts.  `checkpoint` adds the
/// regcluster_checkpoint_* durability counters (registered as zeros when
/// null, so a non-durable sweep still exposes them).
util::Status RegisterSweepMetrics(const core::SweepReport& report,
                                  obs::MetricsRegistry* registry,
                                  const CheckpointStats* checkpoint = nullptr);

}  // namespace io
}  // namespace regcluster

#endif  // REGCLUSTER_IO_SWEEP_IO_H_
