#include "io/metrics_export.h"

#include <ostream>

#include "util/simd/dispatch.h"

namespace regcluster {
namespace io {
namespace {

/// Registers one counter and sets it; propagates the registry error.
util::Status SetCounter(obs::MetricsRegistry* registry, const std::string& name,
                        const std::string& help, int64_t value) {
  auto counter = registry->AddCounter(name, help);
  if (!counter.ok()) return counter.status();
  (*counter)->Add(value);
  return util::Status::OK();
}

util::Status SetGauge(obs::MetricsRegistry* registry, const std::string& name,
                      const std::string& help, double value) {
  auto gauge = registry->AddGauge(name, help);
  if (!gauge.ok()) return gauge.status();
  (*gauge)->Set(value);
  return util::Status::OK();
}

}  // namespace

util::StatusOr<MetricsFormat> ParseMetricsFormat(const std::string& name) {
  if (name == "json") return MetricsFormat::kJson;
  if (name == "prom" || name == "prometheus") return MetricsFormat::kPrometheus;
  return util::Status::InvalidArgument("unknown metrics format \"" + name +
                                       "\" (expected json or prom)");
}

util::Status RegisterCheckpointMetrics(const CheckpointStats* checkpoint,
                                       obs::MetricsRegistry* registry) {
  // Zeros, not absence, when checkpointing is off: a dashboard must be able
  // to tell "feature disabled" (all 0) from "metrics missing".
  static const CheckpointStats kDisabled;
  const CheckpointStats& cs = checkpoint != nullptr ? *checkpoint : kDisabled;
  util::Status s = SetCounter(registry, "regcluster_checkpoint_writes_total",
                              "Durable snapshots written (both buffers)",
                              cs.writes);
  if (!s.ok()) return s;
  s = SetCounter(registry, "regcluster_checkpoint_bytes_total",
                 "Encoded snapshot bytes written", cs.bytes);
  if (!s.ok()) return s;
  s = SetGauge(registry, "regcluster_checkpoint_last_write_ns",
               "Wall duration of the most recent snapshot write",
               static_cast<double>(cs.last_write_ns));
  if (!s.ok()) return s;
  return SetCounter(registry, "regcluster_checkpoint_resumes_total",
                    "Runs continued from an on-disk snapshot", cs.resumes);
}

util::Status RegisterMinerMetrics(const core::MinerStats& stats,
                                  const core::MineOutcome& outcome,
                                  obs::MetricsRegistry* registry,
                                  const CheckpointStats* checkpoint) {
#define REGCLUSTER_COUNTER(name, help, value)                       \
  do {                                                              \
    util::Status s = SetCounter(registry, (name), (help), (value)); \
    if (!s.ok()) return s;                                          \
  } while (0)
#define REGCLUSTER_GAUGE(name, help, value)                       \
  do {                                                            \
    util::Status s = SetGauge(registry, (name), (help), (value)); \
    if (!s.ok()) return s;                                        \
  } while (0)

  // Deterministic search-work counters (pure function of data + options).
  REGCLUSTER_COUNTER("regcluster_nodes_expanded_total",
                     "Chain nodes expanded by the DFS (canonical prefix)",
                     stats.nodes_expanded);
  REGCLUSTER_COUNTER("regcluster_extensions_tested_total",
                     "(node, candidate condition) pairs examined",
                     stats.extensions_tested);
  REGCLUSTER_COUNTER("regcluster_pruned_min_genes_total",
                     "Branches cut by pruning 1 (MinG)",
                     stats.pruned_min_genes);
  REGCLUSTER_COUNTER("regcluster_pruned_p_majority_total",
                     "Branches cut by pruning 3a (p-majority)",
                     stats.pruned_p_majority);
  REGCLUSTER_COUNTER("regcluster_pruned_duplicate_total",
                     "Branches cut by pruning 3b (duplicate emission)",
                     stats.pruned_duplicate);
  REGCLUSTER_COUNTER("regcluster_pruned_coherence_total",
                     "Candidates with no valid coherence window (pruning 4)",
                     stats.pruned_coherence);
  REGCLUSTER_COUNTER("regcluster_genes_dropped_min_conds_total",
                     "Gene drops by pruning 2 (MinC chain bound)",
                     stats.genes_dropped_min_conds);
  REGCLUSTER_COUNTER("regcluster_clusters_emitted_total",
                     "Validated clusters emitted before post-passes",
                     stats.clusters_emitted);
  REGCLUSTER_COUNTER("regcluster_index_word_ops_total",
                     "64-bit bitmap-index words touched by candidate "
                     "generation (collect_stats only)",
                     stats.index_word_ops);
  REGCLUSTER_COUNTER("regcluster_coherence_divide_calls_total",
                     "Coherence divide passes over a scored column "
                     "(collect_stats only)",
                     stats.coherence_divide_calls);
  REGCLUSTER_COUNTER("regcluster_coherence_scores_total",
                     "Individual coherence scores computed "
                     "(collect_stats only)",
                     stats.coherence_scores);
  REGCLUSTER_COUNTER("regcluster_dedup_probes_total",
                     "Duplicate-key set probes (collect_stats only)",
                     stats.dedup_probes);

  // Hot-path phase breakdown (profile_phases only; 0 otherwise).
  REGCLUSTER_COUNTER("regcluster_phase_filter_ns_total",
                     "Candidate generation + member filtering time "
                     "(profile_phases only)",
                     stats.filter_ns);
  REGCLUSTER_COUNTER("regcluster_phase_score_ns_total",
                     "Coherence divide pass time (profile_phases only)",
                     stats.score_ns);
  REGCLUSTER_COUNTER("regcluster_phase_sort_ns_total",
                     "Scored-column index-sort time (profile_phases only)",
                     stats.sort_ns);
  REGCLUSTER_COUNTER("regcluster_phase_emit_ns_total",
                     "Dedup keying + cluster materialization time "
                     "(profile_phases only)",
                     stats.emit_ns);

  // Phase durations (wall-clock; machine-dependent).
  REGCLUSTER_GAUGE("regcluster_rwave_build_seconds",
                   "RWave model construction time", stats.rwave_build_seconds);
  REGCLUSTER_GAUGE("regcluster_index_build_seconds",
                   "Bitmap index bake time", stats.index_build_seconds);
  REGCLUSTER_GAUGE("regcluster_mine_seconds", "Search time (both phases)",
                   stats.mine_seconds);

  // Execution telemetry (scheduling-dependent; from MineOutcome).
  REGCLUSTER_GAUGE("regcluster_wall_seconds", "Total Mine() wall time",
                   outcome.wall_seconds);
  REGCLUSTER_GAUGE("regcluster_phase_a_seconds",
                   "Parallel optimistic phase (0 when serial)",
                   outcome.phase_a_seconds);
  REGCLUSTER_GAUGE("regcluster_phase_b_seconds",
                   "Canonical finalize / serial mining phase",
                   outcome.phase_b_seconds);
  REGCLUSTER_COUNTER("regcluster_nodes_visited_total",
                     "All DFS nodes visited, including abandoned work",
                     outcome.nodes_visited);
  REGCLUSTER_COUNTER("regcluster_pool_steals_total",
                     "Work-stealing task transfers between pool workers",
                     outcome.pool_steals);
  REGCLUSTER_GAUGE("regcluster_pool_queue_high_water",
                   "Deepest single worker deque observed",
                   static_cast<double>(outcome.pool_queue_high_water));
  REGCLUSTER_COUNTER("regcluster_budget_polls_total",
                     "BudgetGuard::Poll() calls across all workers",
                     outcome.budget_polls);
  REGCLUSTER_GAUGE("regcluster_roots_completed",
                   "Canonical roots whose clusters are in the output",
                   static_cast<double>(outcome.roots_completed));
  REGCLUSTER_GAUGE("regcluster_roots_total",
                   "Roots this call was asked to search",
                   static_cast<double>(outcome.roots_total));
  REGCLUSTER_GAUGE("regcluster_peak_scratch_bytes",
                   "Peak approximate live mining memory",
                   static_cast<double>(outcome.peak_scratch_bytes));
  REGCLUSTER_GAUGE("regcluster_truncated",
                   "1 when the run was budget/cancel truncated, else 0",
                   outcome.status == core::MineStatus::kTruncated ? 1.0 : 0.0);
  REGCLUSTER_GAUGE("regcluster_simd_level",
                   "Resolved SIMD kernel set (0 scalar, 1 avx2, 2 neon); "
                   "every level is bit-identical",
                   static_cast<double>(static_cast<int>(outcome.simd_level)));

  // Out-of-core telemetry (all 0 on the eager resident path).  With the
  // model build forced serial the hit/miss totals are a pure function of
  // the access sequence; under a parallel build racing misses on one gene
  // can split differently, but hits + misses still equals total accesses.
  REGCLUSTER_COUNTER("regcluster_model_cache_hits_total",
                     "RWave model cache lookups served from a resident entry",
                     outcome.model_cache_hits);
  REGCLUSTER_COUNTER("regcluster_model_cache_misses_total",
                     "RWave model cache lookups that built the model",
                     outcome.model_cache_misses);
  REGCLUSTER_COUNTER("regcluster_model_cache_evictions_total",
                     "RWave models evicted past the cache byte budget",
                     outcome.model_cache_evictions);
  REGCLUSTER_GAUGE("regcluster_model_cache_resident_bytes",
                   "Bytes of RWave models resident in the cache at run end",
                   static_cast<double>(outcome.model_cache_resident_bytes));
  REGCLUSTER_GAUGE("regcluster_model_bytes",
                   "Heap bytes of the gamma model (index + models + cache)",
                   static_cast<double>(outcome.model_bytes));
  REGCLUSTER_GAUGE("regcluster_mapped_bytes",
                   "Input matrix bytes served by a file mapping (0 when "
                   "resident)",
                   static_cast<double>(outcome.mapped_bytes));

#undef REGCLUSTER_COUNTER
#undef REGCLUSTER_GAUGE
  return RegisterCheckpointMetrics(checkpoint, registry);
}

util::Status WriteMinerMetrics(const core::MinerStats& stats,
                               const core::MineOutcome& outcome,
                               MetricsFormat format, std::ostream& out,
                               const CheckpointStats* checkpoint) {
  obs::MetricsRegistry registry;
  util::Status s = RegisterMinerMetrics(stats, outcome, &registry, checkpoint);
  if (!s.ok()) return s;
  return format == MetricsFormat::kJson ? registry.WriteJson(out)
                                        : registry.WritePrometheus(out);
}

}  // namespace io
}  // namespace regcluster
