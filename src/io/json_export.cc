#include "io/json_export.h"

#include <ostream>

#include "util/simd/dispatch.h"
#include "util/string_util.h"

namespace regcluster {
namespace io {
namespace {

void WriteIntArray(std::ostream& out, const std::vector<int>& v) {
  out << '[';
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out << ',';
    out << v[i];
  }
  out << ']';
}

void WriteNameArray(std::ostream& out, const matrix::MatrixStore& data,
                    const std::vector<int>& ids, bool genes) {
  out << '[';
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out << ',';
    const std::string& name =
        genes ? data.gene_name(ids[i]) : data.condition_name(ids[i]);
    out << '"' << JsonEscape(name) << '"';
  }
  out << ']';
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

util::Status WriteClustersJson(const std::vector<core::RegCluster>& clusters,
                               const matrix::MatrixStore* data,
                               std::ostream& out) {
  return WriteClustersJson(clusters, data, /*outcome=*/nullptr, out);
}

util::Status WriteClustersJson(const std::vector<core::RegCluster>& clusters,
                               const matrix::MatrixStore* data,
                               const core::MineOutcome* outcome,
                               std::ostream& out) {
  return WriteClustersJson(clusters, data, outcome, /*stats=*/nullptr, out);
}

util::Status WriteClustersJson(const std::vector<core::RegCluster>& clusters,
                               const matrix::MatrixStore* data,
                               const core::MineOutcome* outcome,
                               const core::MinerStats* stats,
                               std::ostream& out) {
  if (data != nullptr) {
    for (const core::RegCluster& c : clusters) {
      for (int g : c.AllGenes()) {
        if (g < 0 || g >= data->num_genes()) {
          return util::Status::InvalidArgument(
              util::StrFormat("gene %d outside the matrix", g));
        }
      }
      for (int cond : c.chain) {
        if (cond < 0 || cond >= data->num_conditions()) {
          return util::Status::InvalidArgument(
              util::StrFormat("condition %d outside the matrix", cond));
        }
      }
    }
  }

  out << "{\n";
  if (outcome != nullptr) {
    const bool truncated = outcome->status == core::MineStatus::kTruncated;
    out << "  \"outcome\": {\n"
        << "    \"status\": \"" << (truncated ? "truncated" : "complete")
        << "\",\n    \"stop_reason\": \""
        << util::StopReasonName(outcome->stop_reason)
        << "\",\n    \"nodes_visited\": " << outcome->nodes_visited
        << ",\n    \"roots_completed\": " << outcome->roots_completed
        << ",\n    \"roots_total\": " << outcome->roots_total
        << ",\n    \"wall_seconds\": " << outcome->wall_seconds
        << ",\n    \"peak_scratch_bytes\": " << outcome->peak_scratch_bytes
        << ",\n    \"resume_next_root\": " << outcome->resume.next_root
        << ",\n    \"resume_options_hash\": " << outcome->resume.options_hash
        << ",\n    \"simd\": \""
        << util::simd::LevelName(outcome->simd_level) << "\"\n  },\n";
  }
  if (stats != nullptr) {
    out << "  \"stats\": {\n"
        << "    \"nodes_expanded\": " << stats->nodes_expanded
        << ",\n    \"extensions_tested\": " << stats->extensions_tested
        << ",\n    \"pruned_min_genes\": " << stats->pruned_min_genes
        << ",\n    \"pruned_p_majority\": " << stats->pruned_p_majority
        << ",\n    \"pruned_duplicate\": " << stats->pruned_duplicate
        << ",\n    \"pruned_coherence\": " << stats->pruned_coherence
        << ",\n    \"genes_dropped_min_conds\": "
        << stats->genes_dropped_min_conds
        << ",\n    \"clusters_emitted\": " << stats->clusters_emitted
        << ",\n    \"index_word_ops\": " << stats->index_word_ops
        << ",\n    \"coherence_divide_calls\": "
        << stats->coherence_divide_calls
        << ",\n    \"coherence_scores\": " << stats->coherence_scores
        << ",\n    \"dedup_probes\": " << stats->dedup_probes
        << ",\n    \"rwave_build_seconds\": " << stats->rwave_build_seconds
        << ",\n    \"index_build_seconds\": " << stats->index_build_seconds
        << ",\n    \"mine_seconds\": " << stats->mine_seconds << "\n  },\n";
  }
  out << "  \"num_clusters\": " << clusters.size()
      << ",\n  \"clusters\": [";
  for (size_t i = 0; i < clusters.size(); ++i) {
    const core::RegCluster& c = clusters[i];
    out << (i > 0 ? ",\n    {" : "\n    {");
    out << "\"chain\": ";
    WriteIntArray(out, c.chain);
    if (data != nullptr) {
      out << ", \"chain_names\": ";
      WriteNameArray(out, *data, c.chain, /*genes=*/false);
    }
    out << ", \"p_genes\": ";
    WriteIntArray(out, c.p_genes);
    if (data != nullptr) {
      out << ", \"p_gene_names\": ";
      WriteNameArray(out, *data, c.p_genes, /*genes=*/true);
    }
    out << ", \"n_genes\": ";
    WriteIntArray(out, c.n_genes);
    if (data != nullptr) {
      out << ", \"n_gene_names\": ";
      WriteNameArray(out, *data, c.n_genes, /*genes=*/true);
    }
    out << '}';
  }
  out << "\n  ]\n}\n";
  if (!out) return util::Status::IoError("stream write failed");
  return util::Status::OK();
}

}  // namespace io
}  // namespace regcluster
