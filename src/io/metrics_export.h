// Bridges the miner's run record (core::MinerStats + core::MineOutcome)
// into an obs::MetricsRegistry and writes it in an operator-consumable
// format.  This is the one place that fixes the external metric names, so
// dashboards and scrape configs survive internal refactors:
//
//   regcluster_nodes_expanded_total, regcluster_extensions_tested_total,
//   regcluster_pruned_{min_genes,p_majority,duplicate,coherence}_total,
//   regcluster_genes_dropped_min_conds_total,
//   regcluster_clusters_emitted_total, regcluster_index_word_ops_total,
//   regcluster_coherence_divide_calls_total, regcluster_coherence_scores_total,
//   regcluster_dedup_probes_total                 -- deterministic counters
//   regcluster_{rwave_build,index_build,mine,wall,phase_a,phase_b}_seconds
//   regcluster_pool_steals_total, regcluster_pool_queue_high_water,
//   regcluster_budget_polls_total, regcluster_nodes_visited_total,
//   regcluster_roots_completed, regcluster_roots_total,
//   regcluster_peak_scratch_bytes, regcluster_truncated
//                                                 -- execution telemetry
//
// The deterministic counters are a pure function of data + options (see
// core::MinerStats); everything sourced from MineOutcome is scheduling-
// dependent.  The registry keeps registration order, so both export formats
// are byte-stable given equal values.

#ifndef REGCLUSTER_IO_METRICS_EXPORT_H_
#define REGCLUSTER_IO_METRICS_EXPORT_H_

#include <iosfwd>
#include <string>

#include "core/miner.h"
#include "io/checkpoint.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace regcluster {
namespace io {

enum class MetricsFormat {
  kJson,        ///< obs::MetricsRegistry::WriteJson document
  kPrometheus,  ///< Prometheus text exposition format 0.0.4
};

/// Parses "json" / "prom" (also "prometheus"); anything else is
/// InvalidArgument.
util::StatusOr<MetricsFormat> ParseMetricsFormat(const std::string& name);

/// Registers the run record under the stable regcluster_* names above.
/// Fails only on registry conflicts (e.g. called twice on one registry).
/// `checkpoint` adds the regcluster_checkpoint_* durability counters; pass
/// nullptr for a run without checkpointing -- the counters are still
/// registered with value 0 (absence would make dashboards treat a disabled
/// feature as a scrape failure).
util::Status RegisterMinerMetrics(const core::MinerStats& stats,
                                  const core::MineOutcome& outcome,
                                  obs::MetricsRegistry* registry,
                                  const CheckpointStats* checkpoint = nullptr);

/// Registers only the regcluster_checkpoint_{writes,bytes,last_write_ns,
/// resumes} durability counters (zeros when `checkpoint` is null).  Used by
/// both the miner and sweep exports.
util::Status RegisterCheckpointMetrics(const CheckpointStats* checkpoint,
                                       obs::MetricsRegistry* registry);

/// One-shot convenience: builds a registry from the run record and writes it
/// to `out` in `format`.
util::Status WriteMinerMetrics(const core::MinerStats& stats,
                               const core::MineOutcome& outcome,
                               MetricsFormat format, std::ostream& out,
                               const CheckpointStats* checkpoint = nullptr);

}  // namespace io
}  // namespace regcluster

#endif  // REGCLUSTER_IO_METRICS_EXPORT_H_
