#include "io/cluster_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/durable_file.h"
#include "util/string_util.h"

namespace regcluster {
namespace io {

util::Status WriteReport(const std::vector<core::RegCluster>& clusters,
                         const matrix::MatrixStore* data,
                         std::ostream& out) {
  if (data != nullptr) {
    for (const core::RegCluster& c : clusters) {
      for (int g : c.AllGenes()) {
        if (g < 0 || g >= data->num_genes()) {
          return util::Status::InvalidArgument(
              util::StrFormat("gene %d outside the matrix", g));
        }
      }
      for (int cond : c.chain) {
        if (cond < 0 || cond >= data->num_conditions()) {
          return util::Status::InvalidArgument(
              util::StrFormat("condition %d outside the matrix", cond));
        }
      }
    }
  }
  out << "# " << clusters.size() << " reg-cluster(s)\n";
  for (size_t i = 0; i < clusters.size(); ++i) {
    const core::RegCluster& c = clusters[i];
    out << "\ncluster " << i << ": " << c.num_genes() << " genes x "
        << c.num_conditions() << " conditions\n";
    out << "  chain:";
    for (int cond : c.chain) {
      if (data != nullptr) {
        out << " " << data->condition_name(cond);
      } else {
        out << " c" << cond;
      }
    }
    out << "\n  p-members (" << c.p_genes.size() << "):";
    for (int g : c.p_genes) {
      out << " " << (data != nullptr ? data->gene_name(g)
                                     : util::StrFormat("g%d", g));
    }
    out << "\n  n-members (" << c.n_genes.size() << "):";
    for (int g : c.n_genes) {
      out << " " << (data != nullptr ? data->gene_name(g)
                                     : util::StrFormat("g%d", g));
    }
    out << "\n";
    if (data != nullptr) {
      for (int g : c.p_genes) {
        out << "    " << data->gene_name(g) << " (+):";
        for (int cond : c.chain) {
          out << util::StrFormat(" %8.3f", (*data)(g, cond));
        }
        out << "\n";
      }
      for (int g : c.n_genes) {
        out << "    " << data->gene_name(g) << " (-):";
        for (int cond : c.chain) {
          out << util::StrFormat(" %8.3f", (*data)(g, cond));
        }
        out << "\n";
      }
    }
  }
  if (!out) return util::Status::IoError("stream write failed");
  return util::Status::OK();
}

util::Status WriteClusters(const std::vector<core::RegCluster>& clusters,
                           std::ostream& out) {
  for (size_t i = 0; i < clusters.size(); ++i) {
    const core::RegCluster& c = clusters[i];
    out << "cluster " << i << "\n";
    out << "chain";
    for (int cond : c.chain) out << " " << cond;
    out << "\np";
    for (int g : c.p_genes) out << " " << g;
    out << "\nn";
    for (int g : c.n_genes) out << " " << g;
    out << "\n";
  }
  if (!out) return util::Status::IoError("stream write failed");
  return util::Status::OK();
}

util::Status SaveClusters(const std::vector<core::RegCluster>& clusters,
                          const std::string& path) {
  // Atomic replace: a crash mid-save must never leave a half-written
  // archive where a previous complete one existed (see util/durable_file.h).
  std::ostringstream out;
  REGCLUSTER_RETURN_IF_ERROR(WriteClusters(clusters, out));
  return util::AtomicWriteFile(path, out.str());
}

util::StatusOr<std::vector<core::RegCluster>> ReadClusters(std::istream& in) {
  std::vector<core::RegCluster> out;
  std::string line;
  int line_no = 0;
  core::RegCluster current;
  bool have_cluster = false;

  auto flush = [&]() {
    if (have_cluster) out.push_back(std::move(current));
    current = core::RegCluster();
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view t = util::Trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::vector<std::string> fields = util::Split(std::string(t), ' ');
    const std::string& tag = fields[0];
    if (tag == "cluster") {
      flush();
      have_cluster = true;
      continue;
    }
    if (!have_cluster) {
      return util::Status::Corruption(
          util::StrFormat("line %d: '%s' before any 'cluster' header",
                          line_no, tag.c_str()));
    }
    std::vector<int>* target = nullptr;
    if (tag == "chain") {
      target = &current.chain;
    } else if (tag == "p") {
      target = &current.p_genes;
    } else if (tag == "n") {
      target = &current.n_genes;
    } else {
      return util::Status::Corruption(
          util::StrFormat("line %d: unknown tag '%s'", line_no, tag.c_str()));
    }
    for (size_t i = 1; i < fields.size(); ++i) {
      if (fields[i].empty()) continue;
      auto v = util::ParseInt(fields[i]);
      if (!v.ok()) {
        return util::Status::Corruption(util::StrFormat(
            "line %d: %s", line_no, v.status().message().c_str()));
      }
      target->push_back(static_cast<int>(*v));
    }
  }
  flush();
  return out;
}

util::StatusOr<std::vector<core::RegCluster>> LoadClusters(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for reading: " + path);
  return ReadClusters(in);
}

util::Status WriteProfileCsv(const core::RegCluster& cluster,
                             const matrix::MatrixStore& data,
                             std::ostream& out) {
  for (int g : cluster.AllGenes()) {
    if (g < 0 || g >= data.num_genes()) {
      return util::Status::InvalidArgument(
          util::StrFormat("gene %d outside the matrix", g));
    }
  }
  for (int c : cluster.chain) {
    if (c < 0 || c >= data.num_conditions()) {
      return util::Status::InvalidArgument(
          util::StrFormat("condition %d outside the matrix", c));
    }
  }
  out << "gene,member";
  for (int c : cluster.chain) out << ',' << data.condition_name(c);
  out << '\n';
  auto write_rows = [&](const std::vector<int>& genes, const char* tag) {
    for (int g : genes) {
      out << data.gene_name(g) << ',' << tag;
      for (int c : cluster.chain) {
        out << ',' << util::StrFormat("%.10g", data(g, c));
      }
      out << '\n';
    }
  };
  write_rows(cluster.p_genes, "p");
  write_rows(cluster.n_genes, "n");
  if (!out) return util::Status::IoError("stream write failed");
  return util::Status::OK();
}

}  // namespace io
}  // namespace regcluster
