#include "io/sweep_io.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/threshold.h"
#include "io/json_export.h"
#include "io/metrics_export.h"
#include "util/string_util.h"

namespace regcluster {
namespace io {
namespace {

using util::Status;
using util::StatusOr;

// One sweep axis: which option it overrides plus its expanded values.
enum class Axis { kGamma, kEps, kMinG, kMinC };

StatusOr<Axis> ParseAxisName(std::string_view name) {
  if (name == "gamma") return Axis::kGamma;
  if (name == "eps" || name == "epsilon") return Axis::kEps;
  if (name == "ming") return Axis::kMinG;
  if (name == "minc") return Axis::kMinC;
  return Status::InvalidArgument(util::StrFormat(
      "unknown sweep axis '%.*s' (want gamma|eps|ming|minc)",
      static_cast<int>(name.size()), name.data()));
}

bool IsIntAxis(Axis axis) { return axis == Axis::kMinG || axis == Axis::kMinC; }

Status ApplyAxis(Axis axis, double value, core::MinerOptions* opts) {
  if (IsIntAxis(axis)) {
    const double rounded = std::round(value);
    if (std::abs(value - rounded) > 1e-9) {
      return Status::InvalidArgument(util::StrFormat(
          "%s must be an integer, got %g",
          axis == Axis::kMinG ? "ming" : "minc", value));
    }
    if (axis == Axis::kMinG) {
      opts->min_genes = static_cast<int>(rounded);
    } else {
      opts->min_conditions = static_cast<int>(rounded);
    }
    return Status::OK();
  }
  if (axis == Axis::kGamma) {
    opts->gamma = value;
  } else {
    opts->epsilon = value;
  }
  return Status::OK();
}

/// Expands "lo:hi:step" / "v;v;v" / "v" into a value list.
// ParseDouble follows matrix-cell semantics where ""/NA mean "missing" and
// come back as NaN with an OK status; a sweep axis has no missing values, so
// anything non-finite is a spec error.
StatusOr<double> ParseAxisNumber(std::string_view axis_name,
                                 std::string_view text) {
  StatusOr<double> v = util::ParseDouble(text);
  if (!v.ok()) return v;
  if (!std::isfinite(*v)) {
    return Status::InvalidArgument(util::StrFormat(
        "sweep axis %.*s: '%.*s' is not a number",
        static_cast<int>(axis_name.size()), axis_name.data(),
        static_cast<int>(text.size()), text.data()));
  }
  return v;
}

StatusOr<std::vector<double>> ExpandValues(std::string_view axis_name,
                                           std::string_view text) {
  std::vector<double> values;
  const std::vector<std::string> range_parts =
      util::Split(std::string(text), ':');
  if (range_parts.size() == 3) {
    StatusOr<double> lo = ParseAxisNumber(axis_name, util::Trim(range_parts[0]));
    StatusOr<double> hi = ParseAxisNumber(axis_name, util::Trim(range_parts[1]));
    StatusOr<double> step =
        ParseAxisNumber(axis_name, util::Trim(range_parts[2]));
    if (!lo.ok()) return lo.status();
    if (!hi.ok()) return hi.status();
    if (!step.ok()) return step.status();
    if (*step <= 0) {
      return Status::InvalidArgument(
          util::StrFormat("sweep axis %.*s: step must be > 0",
                          static_cast<int>(axis_name.size()),
                          axis_name.data()));
    }
    if (*hi < *lo) {
      return Status::InvalidArgument(
          util::StrFormat("sweep axis %.*s: range is descending",
                          static_cast<int>(axis_name.size()),
                          axis_name.data()));
    }
    // Inclusive endpoints with an epsilon so 0.1:0.5:0.1 hits 0.5 despite
    // binary rounding.
    const int count = static_cast<int>(std::floor((*hi - *lo) / *step + 1e-9));
    for (int k = 0; k <= count; ++k) values.push_back(*lo + k * *step);
    return values;
  }
  if (range_parts.size() != 1) {
    return Status::InvalidArgument(util::StrFormat(
        "sweep axis %.*s: want lo:hi:step or v;v;...",
        static_cast<int>(axis_name.size()), axis_name.data()));
  }
  for (const std::string& item : util::Split(std::string(text), ';')) {
    StatusOr<double> v = ParseAxisNumber(axis_name, util::Trim(item));
    if (!v.ok()) return v.status();
    values.push_back(*v);
  }
  return values;
}

StatusOr<std::vector<core::MinerOptions>> ParseAxesSpec(
    std::string_view spec, const core::MinerOptions& base) {
  std::vector<std::pair<Axis, std::vector<double>>> axes;
  for (const std::string& field : util::Split(std::string(spec), ',')) {
    const std::string_view trimmed = util::Trim(field);
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(util::StrFormat(
          "sweep spec field '%.*s' has no '='",
          static_cast<int>(trimmed.size()), trimmed.data()));
    }
    const std::string_view name = util::Trim(trimmed.substr(0, eq));
    StatusOr<Axis> axis = ParseAxisName(name);
    if (!axis.ok()) return axis.status();
    for (const auto& [prev, unused] : axes) {
      if (prev == *axis) {
        return Status::InvalidArgument(util::StrFormat(
            "sweep axis '%.*s' listed twice", static_cast<int>(name.size()),
            name.data()));
      }
    }
    StatusOr<std::vector<double>> values =
        ExpandValues(name, util::Trim(trimmed.substr(eq + 1)));
    if (!values.ok()) return values.status();
    if (values->empty()) {
      return Status::InvalidArgument(util::StrFormat(
          "sweep axis '%.*s' has no values", static_cast<int>(name.size()),
          name.data()));
    }
    axes.emplace_back(*axis, std::move(*values));
  }
  if (axes.empty()) {
    return Status::InvalidArgument("empty sweep spec");
  }

  // Cross product, later axes varying fastest.
  std::vector<core::MinerOptions> points(1, base);
  for (const auto& [axis, values] : axes) {
    std::vector<core::MinerOptions> next;
    next.reserve(points.size() * values.size());
    for (const core::MinerOptions& p : points) {
      for (double v : values) {
        core::MinerOptions q = p;
        if (Status s = ApplyAxis(axis, v, &q); !s.ok()) return s;
        next.push_back(std::move(q));
      }
    }
    points = std::move(next);
  }
  return points;
}

// --- Minimal JSON-list parser: '[' {objects of numeric fields} ']'.  Only
// the shape the spec grammar admits; anything else is InvalidArgument with a
// byte offset. ---
class JsonSpecParser {
 public:
  explicit JsonSpecParser(std::string_view text) : text_(text) {}

  StatusOr<std::vector<core::MinerOptions>> Parse(
      const core::MinerOptions& base) {
    std::vector<core::MinerOptions> points;
    SkipSpace();
    if (!Consume('[')) return Error("expected '['");
    SkipSpace();
    if (Consume(']')) {
      if (!AtEnd()) return Error("trailing bytes after ']'");
      return Status::InvalidArgument("sweep JSON list is empty");
    }
    while (true) {
      StatusOr<core::MinerOptions> point = ParseObject(base);
      if (!point.ok()) return point.status();
      points.push_back(std::move(*point));
      SkipSpace();
      if (Consume(',')) {
        SkipSpace();
        continue;
      }
      if (Consume(']')) break;
      return Error("expected ',' or ']'");
    }
    SkipSpace();
    if (!AtEnd()) return Error("trailing bytes after ']'");
    return points;
  }

 private:
  StatusOr<core::MinerOptions> ParseObject(const core::MinerOptions& base) {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    core::MinerOptions point = base;
    SkipSpace();
    if (Consume('}')) return point;
    while (true) {
      SkipSpace();
      StatusOr<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      SkipSpace();
      StatusOr<double> value = ParseNumber();
      if (!value.ok()) return value.status();
      StatusOr<Axis> axis = ParseAxisName(*key);
      if (!axis.ok()) return axis.status();
      if (Status s = ApplyAxis(*axis, *value, &point); !s.ok()) return s;
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return point;
      return Error("expected ',' or '}'");
    }
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') return Error("escapes not supported in keys");
      out += text_[pos_++];
    }
    if (!Consume('"')) return Error("unterminated string");
    return out;
  }

  StatusOr<double> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a number");
    StatusOr<double> v = util::ParseDouble(text_.substr(start, pos_ - start));
    if (!v.ok()) return v.status();
    return *v;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AtEnd() const { return pos_ >= text_.size(); }
  Status Error(const char* what) const {
    return Status::InvalidArgument(
        util::StrFormat("sweep JSON: %s at byte %zu", what, pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void WriteIntArray(std::ostream& out, const std::vector<int>& v) {
  out << '[';
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out << ',';
    out << v[i];
  }
  out << ']';
}

const char* MineStatusName(core::MineStatus status) {
  return status == core::MineStatus::kTruncated ? "truncated" : "complete";
}

}  // namespace

StatusOr<std::vector<core::MinerOptions>> ParseSweepSpec(
    const std::string& spec, const core::MinerOptions& base) {
  const std::string_view trimmed = util::Trim(spec);
  if (trimmed.empty()) return Status::InvalidArgument("empty sweep spec");
  if (trimmed.front() == '[') {
    return JsonSpecParser(trimmed).Parse(base);
  }
  return ParseAxesSpec(trimmed, base);
}

Status WriteSweepJson(const core::SweepReport& report, std::ostream& out) {
  out << "{\n  \"sweep\": {\n"
      << "    \"status\": \"" << MineStatusName(report.status)
      << "\",\n    \"stop_reason\": \""
      << util::StopReasonName(report.stop_reason)
      << "\",\n    \"runs_total\": " << report.runs.size()
      << ",\n    \"runs_executed\": " << report.runs_executed
      << ",\n    \"first_unfinished\": " << report.first_unfinished
      << ",\n    \"index_builds\": " << report.index_builds
      << ",\n    \"shared_model_bytes\": " << report.shared_model_bytes
      << ",\n    \"nodes_total\": " << report.nodes_total
      << ",\n    \"clusters_total\": " << report.clusters_total
      << ",\n    \"wall_seconds\": " << report.wall_seconds
      << "\n  },\n  \"runs\": [\n";
  for (size_t i = 0; i < report.runs.size(); ++i) {
    const core::SweepRun& run = report.runs[i];
    const core::MinerOptions& o = run.options;
    out << "    {\n      \"run\": " << i << ",\n      \"options\": {"
        << "\"gamma\": " << o.gamma << ", \"gamma_policy\": \""
        << core::GammaPolicyName(o.gamma_policy)
        << "\", \"epsilon\": " << o.epsilon
        << ", \"min_genes\": " << o.min_genes
        << ", \"min_conditions\": " << o.min_conditions << "},\n"
        << "      \"executed\": " << (run.executed ? "true" : "false")
        << ",\n      \"shared_model\": "
        << (run.used_shared_model ? "true" : "false");
    if (!run.status.ok()) {
      out << ",\n      \"error\": \"" << JsonEscape(run.status.ToString())
          << "\"";
    }
    if (run.executed) {
      out << ",\n      \"outcome\": {\"status\": \""
          << MineStatusName(run.outcome.status) << "\", \"stop_reason\": \""
          << util::StopReasonName(run.outcome.stop_reason)
          << "\", \"wall_seconds\": " << run.outcome.wall_seconds << "},\n"
          << "      \"stats\": {\"nodes_expanded\": "
          << run.stats.nodes_expanded
          << ", \"extensions_tested\": " << run.stats.extensions_tested
          << ", \"clusters_emitted\": " << run.stats.clusters_emitted
          << ", \"mine_seconds\": " << run.stats.mine_seconds << "},\n"
          << "      \"num_clusters\": " << run.clusters.size()
          << ",\n      \"clusters\": [";
      for (size_t c = 0; c < run.clusters.size(); ++c) {
        const core::RegCluster& cluster = run.clusters[c];
        out << (c > 0 ? ",\n        " : "\n        ") << "{\"chain\": ";
        WriteIntArray(out, cluster.chain);
        out << ", \"p_genes\": ";
        WriteIntArray(out, cluster.p_genes);
        out << ", \"n_genes\": ";
        WriteIntArray(out, cluster.n_genes);
        out << "}";
      }
      out << (run.clusters.empty() ? "]" : "\n      ]");
    }
    out << "\n    }" << (i + 1 < report.runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out.good()) return Status::IoError("write failed");
  return Status::OK();
}

Status WriteSweepCsv(const core::SweepReport& report, std::ostream& out) {
  out << "run,gamma,gamma_policy,epsilon,min_genes,min_conditions,executed,"
         "shared_model,status,stop_reason,clusters,nodes_expanded,"
         "extensions_tested,mine_seconds,wall_seconds\n";
  for (size_t i = 0; i < report.runs.size(); ++i) {
    const core::SweepRun& run = report.runs[i];
    const core::MinerOptions& o = run.options;
    const char* status = "skipped";
    if (run.executed) {
      status = MineStatusName(run.outcome.status);
    } else if (!run.status.ok()) {
      status = "error";
    }
    out << i << ',' << o.gamma << ',' << core::GammaPolicyName(o.gamma_policy)
        << ',' << o.epsilon << ',' << o.min_genes << ',' << o.min_conditions
        << ',' << (run.executed ? 1 : 0) << ','
        << (run.used_shared_model ? 1 : 0) << ',' << status << ','
        << util::StopReasonName(run.executed ? run.outcome.stop_reason
                                             : util::StopReason::kNone)
        << ',' << run.clusters.size() << ',' << run.stats.nodes_expanded
        << ',' << run.stats.extensions_tested << ',' << run.stats.mine_seconds
        << ',' << run.outcome.wall_seconds << '\n';
  }
  if (!out.good()) return Status::IoError("write failed");
  return Status::OK();
}

Status RegisterSweepMetrics(const core::SweepReport& report,
                            obs::MetricsRegistry* registry,
                            const CheckpointStats* checkpoint) {
  struct CounterSpec {
    const char* name;
    const char* help;
    int64_t value;
  };
  const CounterSpec counters[] = {
      {"regcluster_sweep_runs_total", "Grid points in the sweep",
       static_cast<int64_t>(report.runs.size())},
      {"regcluster_sweep_runs_executed", "Runs with output in the report",
       report.runs_executed},
      {"regcluster_sweep_index_builds",
       "Distinct gamma groups the engine built a shared model for",
       report.index_builds},
      {"regcluster_sweep_shared_model_bytes",
       "Heap bytes of the engine-built shared models",
       report.shared_model_bytes},
      {"regcluster_sweep_nodes_total",
       "Deterministic DFS nodes over executed runs", report.nodes_total},
      {"regcluster_sweep_clusters_total",
       "Deterministic emissions over executed runs", report.clusters_total},
      {"regcluster_sweep_truncated",
       "1 when a sweep-level budget/deadline/cancel cut the sweep",
       report.status == core::MineStatus::kTruncated ? 1 : 0},
  };
  for (const CounterSpec& spec : counters) {
    StatusOr<obs::Counter*> counter =
        registry->AddCounter(spec.name, spec.help);
    if (!counter.ok()) return counter.status();
    (*counter)->Add(spec.value);
  }
  StatusOr<obs::Gauge*> wall = registry->AddGauge(
      "regcluster_sweep_wall_seconds", "Wall clock of the whole sweep");
  if (!wall.ok()) return wall.status();
  (*wall)->Set(report.wall_seconds);
  return RegisterCheckpointMetrics(checkpoint, registry);
}

}  // namespace io
}  // namespace regcluster
