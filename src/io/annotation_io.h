// Loading GO-style annotation files into eval::GoAnnotationDb.
//
// Format: tab-separated, one annotation per line, '#' comments allowed:
//
//     <gene-name> <TAB> <term-id> <TAB> <term-name> <TAB> <category>
//
// with category one of "process", "function", "component".  Gene names are
// resolved against the matrix's gene labels; unknown genes are reported in
// the result (they are common in real annotation dumps) rather than being
// an error.

#ifndef REGCLUSTER_IO_ANNOTATION_IO_H_
#define REGCLUSTER_IO_ANNOTATION_IO_H_

#include <iosfwd>
#include <string>

#include "eval/go_enrichment.h"
#include "matrix/expression_matrix.h"
#include "util/status.h"

namespace regcluster {
namespace io {

struct AnnotationLoadResult {
  eval::GoAnnotationDb db{0};
  int64_t annotations_loaded = 0;
  int64_t unknown_genes_skipped = 0;
};

/// Parses the annotation stream against `data`'s gene names.
util::StatusOr<AnnotationLoadResult> ReadAnnotations(
    std::istream& in, const matrix::ExpressionMatrix& data);

/// Loads from a file path.
util::StatusOr<AnnotationLoadResult> LoadAnnotations(
    const std::string& path, const matrix::ExpressionMatrix& data);

/// Writes a database back out in the same format (used to archive the
/// synthetic database so enrichment runs are reproducible from files).
util::Status WriteAnnotations(const eval::GoAnnotationDb& db,
                              const matrix::ExpressionMatrix& data,
                              std::ostream& out);

}  // namespace io
}  // namespace regcluster

#endif  // REGCLUSTER_IO_ANNOTATION_IO_H_
