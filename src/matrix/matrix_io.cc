#include "matrix/matrix_io.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/string_util.h"

namespace regcluster {
namespace matrix {

util::StatusOr<ExpressionMatrix> ReadMatrix(std::istream& in,
                                            const TextFormat& format) {
  if (format.skip_annotation_columns < 0 || format.skip_leading_rows < 0) {
    return util::Status::InvalidArgument("negative skip counts");
  }
  std::vector<std::string> condition_names;
  std::vector<std::string> gene_names;
  std::unordered_map<std::string, int> gene_label_lines;  // label -> line no
  std::vector<std::vector<double>> rows;
  std::string line;
  bool header_pending = format.has_header;
  int rows_to_skip = format.skip_leading_rows;
  int line_no = 0;
  int expected_fields = -1;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    std::vector<std::string> fields = util::Split(line, format.delimiter);
    if (header_pending) {
      header_pending = false;
      const size_t first = (format.has_gene_names ? 1u : 0u) +
                           static_cast<size_t>(format.skip_annotation_columns);
      if (fields.size() < first) {
        return util::Status::Corruption(
            util::StrFormat("line %d: header narrower than the skipped "
                            "annotation columns", line_no));
      }
      condition_names.assign(fields.begin() + static_cast<long>(first),
                             fields.end());
      continue;
    }
    if (rows_to_skip > 0) {
      --rows_to_skip;
      continue;
    }

    if (expected_fields < 0) {
      expected_fields = static_cast<int>(fields.size());
    } else if (static_cast<int>(fields.size()) != expected_fields) {
      return util::Status::Corruption(util::StrFormat(
          "line %d: expected %d fields, got %d", line_no, expected_fields,
          static_cast<int>(fields.size())));
    }

    size_t first = 0;
    if (format.has_gene_names) {
      if (fields.empty()) {
        return util::Status::Corruption(
            util::StrFormat("line %d: empty row", line_no));
      }
      auto [it, inserted] = gene_label_lines.emplace(fields[0], line_no);
      if (!inserted) {
        return util::Status::Corruption(util::StrFormat(
            "line %d, column 1: duplicate gene label \"%s\" (first seen on "
            "line %d)",
            line_no, fields[0].c_str(), it->second));
      }
      gene_names.push_back(fields[0]);
      first = 1;
    }
    first += static_cast<size_t>(format.skip_annotation_columns);
    if (fields.size() < first) {
      return util::Status::Corruption(util::StrFormat(
          "line %d: row narrower than the skipped annotation columns",
          line_no));
    }
    std::vector<double> row;
    row.reserve(fields.size() - first);
    for (size_t i = first; i < fields.size(); ++i) {
      auto v = util::ParseDouble(fields[i]);
      if (!v.ok()) {
        // 1-based column over *all* fields of the line (including any gene
        // label / annotation columns), matching what an editor shows.
        return util::Status::Corruption(util::StrFormat(
            "line %d, column %d: %s", line_no, static_cast<int>(i) + 1,
            v.status().message().c_str()));
      }
      row.push_back(*v);
    }
    rows.push_back(std::move(row));
  }

  if (rows.empty()) {
    return util::Status::Corruption(util::StrFormat(
        "no data rows in %d line(s) of input: the matrix is empty", line_no));
  }
  auto m = ExpressionMatrix::FromRows(rows);
  if (!m.ok()) return m.status();

  if (format.has_header) {
    if (static_cast<int>(condition_names.size()) != m->num_conditions()) {
      return util::Status::Corruption(util::StrFormat(
          "header has %d condition names but rows have %d values",
          static_cast<int>(condition_names.size()), m->num_conditions()));
    }
    REGCLUSTER_RETURN_IF_ERROR(m->SetConditionNames(condition_names));
  }
  if (format.has_gene_names) {
    REGCLUSTER_RETURN_IF_ERROR(m->SetGeneNames(gene_names));
  }
  return m;
}

util::StatusOr<ExpressionMatrix> ReadMatrixFromString(
    const std::string& text, const TextFormat& format) {
  std::istringstream in(text);
  return ReadMatrix(in, format);
}

util::StatusOr<ExpressionMatrix> LoadMatrix(const std::string& path,
                                            const TextFormat& format) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for reading: " + path);
  return ReadMatrix(in, format);
}

util::Status WriteMatrix(const ExpressionMatrix& m, std::ostream& out,
                         const TextFormat& format) {
  const char d = format.delimiter;
  if (format.has_header) {
    if (format.has_gene_names) out << "gene";
    for (int j = 0; j < m.num_conditions(); ++j) {
      if (j > 0 || format.has_gene_names) out << d;
      out << m.condition_name(j);
    }
    out << "\n";
  }
  for (int i = 0; i < m.num_genes(); ++i) {
    if (format.has_gene_names) out << m.gene_name(i);
    for (int j = 0; j < m.num_conditions(); ++j) {
      if (j > 0 || format.has_gene_names) out << d;
      const double v = m(i, j);
      if (std::isnan(v)) {
        out << "NA";
      } else {
        out << util::StrFormat("%.10g", v);
      }
    }
    out << "\n";
  }
  if (!out) return util::Status::IoError("stream write failed");
  return util::Status::OK();
}

util::Status SaveMatrix(const ExpressionMatrix& m, const std::string& path,
                        const TextFormat& format) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open for writing: " + path);
  return WriteMatrix(m, out, format);
}

}  // namespace matrix
}  // namespace regcluster
