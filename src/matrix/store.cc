#include "matrix/store.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "matrix/expression_matrix.h"
#include "util/string_util.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define REGCLUSTER_HAVE_MMAP 1
#endif

namespace regcluster {
namespace matrix {
namespace {

constexpr char kMagic[8] = {'R', 'G', 'C', 'X', 'M', 'A', 'T', '1'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kEndianTag = 0x01020304u;
constexpr uint32_t kEndianTagSwapped = 0x04030201u;
constexpr size_t kHeaderBytes = 64;
constexpr size_t kPayloadAlign = 4096;  // page aligned for the mapping
// A dimension cap that keeps rows * cols * 8 far from size_t overflow while
// allowing matrices three orders of magnitude past the 100k-gene target.
constexpr uint32_t kMaxDim = 1u << 30;

struct Header {
  uint32_t rows = 0;
  uint32_t cols = 0;
  uint64_t values_offset = 0;
  uint64_t names_offset = 0;
  uint64_t names_bytes = 0;
  uint64_t file_bytes = 0;
};

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Validates the fixed 64-byte header against the actual file size.  Every
/// failure is a kCorruption status naming the offending field.
util::Status ParseHeader(const uint8_t* raw, uint64_t actual_file_bytes,
                         Header* out) {
  if (actual_file_bytes < kHeaderBytes) {
    return util::Status::Corruption(util::StrFormat(
        "truncated header: file is %lld bytes, header needs %d",
        static_cast<long long>(actual_file_bytes),
        static_cast<int>(kHeaderBytes)));
  }
  if (std::memcmp(raw, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::Corruption(
        "bad magic: not a regcluster binary matrix");
  }
  const uint32_t version = GetU32(raw + 8);
  if (version != kVersion) {
    return util::Status::Corruption(
        util::StrFormat("unsupported binary matrix version %u (reader "
                        "understands version %u)",
                        version, kVersion));
  }
  const uint32_t endian = GetU32(raw + 12);
  if (endian == kEndianTagSwapped) {
    return util::Status::Corruption(
        "endianness mismatch: file was written on an opposite-endian "
        "machine");
  }
  if (endian != kEndianTag) {
    return util::Status::Corruption(
        util::StrFormat("bad endianness tag 0x%08x", endian));
  }
  out->rows = GetU32(raw + 16);
  out->cols = GetU32(raw + 20);
  out->values_offset = GetU64(raw + 24);
  out->names_offset = GetU64(raw + 32);
  out->names_bytes = GetU64(raw + 40);
  out->file_bytes = GetU64(raw + 48);
  if (out->rows > kMaxDim || out->cols > kMaxDim) {
    return util::Status::Corruption(
        util::StrFormat("implausible dimensions %u x %u", out->rows,
                        out->cols));
  }
  if (out->file_bytes != actual_file_bytes) {
    return util::Status::Corruption(util::StrFormat(
        "file size mismatch: header records %llu bytes, file has %llu "
        "(truncated or over-appended)",
        static_cast<unsigned long long>(out->file_bytes),
        static_cast<unsigned long long>(actual_file_bytes)));
  }
  if (out->names_offset < kHeaderBytes ||
      out->names_offset + out->names_bytes < out->names_offset ||
      out->names_offset + out->names_bytes > actual_file_bytes) {
    return util::Status::Corruption("label section out of file bounds");
  }
  const uint64_t payload_bytes =
      static_cast<uint64_t>(out->rows) * out->cols * sizeof(double);
  if (out->values_offset % sizeof(double) != 0) {
    return util::Status::Corruption(util::StrFormat(
        "values offset %llu is not 8-byte aligned",
        static_cast<unsigned long long>(out->values_offset)));
  }
  if (out->values_offset < kHeaderBytes ||
      out->values_offset + payload_bytes < out->values_offset ||
      out->values_offset + payload_bytes > actual_file_bytes) {
    return util::Status::Corruption(util::StrFormat(
        "truncated values section: %u x %u doubles need %llu bytes at "
        "offset %llu, file has %llu",
        out->rows, out->cols,
        static_cast<unsigned long long>(payload_bytes),
        static_cast<unsigned long long>(out->values_offset),
        static_cast<unsigned long long>(actual_file_bytes)));
  }
  return util::Status::OK();
}

/// Decodes the label section: `count` strings of u32 length + bytes.
util::Status ReadNames(const uint8_t* base, uint64_t limit, uint64_t* pos,
                       int count, const char* what,
                       std::vector<std::string>* out) {
  out->clear();
  out->reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    if (*pos + sizeof(uint32_t) > limit) {
      return util::Status::Corruption(util::StrFormat(
          "label section overrun reading %s name %d of %d", what, i + 1,
          count));
    }
    const uint32_t len = GetU32(base + *pos);
    *pos += sizeof(uint32_t);
    if (*pos + len > limit) {
      return util::Status::Corruption(util::StrFormat(
          "label section overrun: %s name %d of %d claims %u bytes", what,
          i + 1, count, len));
    }
    out->emplace_back(reinterpret_cast<const char*>(base + *pos), len);
    *pos += len;
  }
  return util::Status::OK();
}

struct ParsedFile {
  Header header;
  std::vector<std::string> gene_names;
  std::vector<std::string> condition_names;
};

/// Header + labels from a fully readable byte range.
util::Status ParseFile(const uint8_t* data, uint64_t size, ParsedFile* out) {
  REGCLUSTER_RETURN_IF_ERROR(ParseHeader(data, size, &out->header));
  const Header& h = out->header;
  uint64_t pos = h.names_offset;
  const uint64_t limit = h.names_offset + h.names_bytes;
  REGCLUSTER_RETURN_IF_ERROR(ReadNames(data, limit, &pos,
                                       static_cast<int>(h.rows), "gene",
                                       &out->gene_names));
  REGCLUSTER_RETURN_IF_ERROR(ReadNames(data, limit, &pos,
                                       static_cast<int>(h.cols), "condition",
                                       &out->condition_names));
  return util::Status::OK();
}

/// Reads the whole file into `bytes`.  kIoError when unreadable.
util::Status SlurpFile(const std::string& path, std::vector<uint8_t>* bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return util::Status::IoError("cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return util::Status::IoError("cannot stat " + path);
  }
  bytes->resize(static_cast<size_t>(size));
  const size_t got = size == 0 ? 0 : std::fread(bytes->data(), 1,
                                                bytes->size(), f);
  std::fclose(f);
  if (got != bytes->size()) {
    return util::Status::IoError("short read on " + path);
  }
  return util::Status::OK();
}

}  // namespace

std::vector<double> MatrixStore::Row(int gene) const {
  const double* p = row_data(gene);
  return std::vector<double>(p, p + cols_);
}

std::vector<double> MatrixStore::RowOnConditions(
    int gene, const std::vector<int>& conds) const {
  std::vector<double> out;
  out.reserve(conds.size());
  for (int c : conds) out.push_back((*this)(gene, c));
  return out;
}

util::Status MatrixStore::SetGeneNames(std::vector<std::string> names) {
  if (static_cast<int>(names.size()) != rows_) {
    return util::Status::InvalidArgument("gene name count mismatch");
  }
  gene_names_ = std::move(names);
  return util::Status::OK();
}

util::Status MatrixStore::SetConditionNames(std::vector<std::string> names) {
  if (static_cast<int>(names.size()) != cols_) {
    return util::Status::InvalidArgument("condition name count mismatch");
  }
  condition_names_ = std::move(names);
  return util::Status::OK();
}

int MatrixStore::FindGene(const std::string& name) const {
  for (int i = 0; i < rows_; ++i) {
    if (gene_names_[static_cast<size_t>(i)] == name) return i;
  }
  return -1;
}

int MatrixStore::FindCondition(const std::string& name) const {
  for (int j = 0; j < cols_; ++j) {
    if (condition_names_[static_cast<size_t>(j)] == name) return j;
  }
  return -1;
}

std::pair<double, double> MatrixStore::RowRange(int gene) const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  const double* p = row_data(gene);
  for (int j = 0; j < cols_; ++j) {
    if (std::isnan(p[j])) continue;
    lo = std::min(lo, p[j]);
    hi = std::max(hi, p[j]);
  }
  if (lo > hi) return {0.0, 0.0};
  return {lo, hi};
}

bool MatrixStore::HasMissingValues() const {
  const size_t n = static_cast<size_t>(rows_) * cols_;
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(values_[i])) return true;
  }
  return false;
}

int64_t MatrixStore::resident_bytes() const {
  int64_t bytes = 0;
  for (const std::string& s : gene_names_) {
    bytes += static_cast<int64_t>(sizeof(std::string) + s.capacity());
  }
  for (const std::string& s : condition_names_) {
    bytes += static_cast<int64_t>(sizeof(std::string) + s.capacity());
  }
  return bytes;
}

MappedMatrix::~MappedMatrix() { Release(); }

MappedMatrix::MappedMatrix(MappedMatrix&& other) noexcept
    : MatrixStore(std::move(other)),
      map_base_(other.map_base_),
      map_len_(other.map_len_),
      heap_values_(std::move(other.heap_values_)) {
  if (!map_base_) values_ = heap_values_.data();
  other.map_base_ = nullptr;
  other.map_len_ = 0;
  other.values_ = nullptr;
  other.rows_ = 0;
  other.cols_ = 0;
}

MappedMatrix& MappedMatrix::operator=(MappedMatrix&& other) noexcept {
  if (this == &other) return *this;
  Release();
  MatrixStore::operator=(std::move(other));
  map_base_ = other.map_base_;
  map_len_ = other.map_len_;
  heap_values_ = std::move(other.heap_values_);
  if (!map_base_) values_ = heap_values_.data();
  other.map_base_ = nullptr;
  other.map_len_ = 0;
  other.values_ = nullptr;
  other.rows_ = 0;
  other.cols_ = 0;
  return *this;
}

void MappedMatrix::Release() {
#ifdef REGCLUSTER_HAVE_MMAP
  if (map_base_) ::munmap(map_base_, map_len_);
#endif
  map_base_ = nullptr;
  map_len_ = 0;
  heap_values_.clear();
  values_ = nullptr;
}

util::StatusOr<MappedMatrix> MappedMatrix::Open(const std::string& path) {
  MappedMatrix m;
#ifdef REGCLUSTER_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::IoError("cannot open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return util::Status::IoError("cannot stat " + path);
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    Header dummy;
    uint8_t empty[kHeaderBytes] = {0};
    return ParseHeader(empty, size, &dummy);  // canonical truncation error
  }
  void* base = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return util::Status::IoError("mmap failed for " + path);
  }
  ParsedFile parsed;
  util::Status s =
      ParseFile(static_cast<const uint8_t*>(base), size, &parsed);
  if (!s.ok()) {
    ::munmap(base, static_cast<size_t>(size));
    return s;
  }
  m.map_base_ = base;
  m.map_len_ = static_cast<size_t>(size);
  m.rows_ = static_cast<int>(parsed.header.rows);
  m.cols_ = static_cast<int>(parsed.header.cols);
  m.values_ = reinterpret_cast<const double*>(
      static_cast<const uint8_t*>(base) + parsed.header.values_offset);
  m.gene_names_ = std::move(parsed.gene_names);
  m.condition_names_ = std::move(parsed.condition_names);
  return m;
#else
  // No mmap on this platform: fall back to a private heap copy with the
  // same validation and accessor semantics (mapped_bytes() reports 0).
  std::vector<uint8_t> bytes;
  REGCLUSTER_RETURN_IF_ERROR(SlurpFile(path, &bytes));
  ParsedFile parsed;
  REGCLUSTER_RETURN_IF_ERROR(
      ParseFile(bytes.data(), bytes.size(), &parsed));
  const size_t n = static_cast<size_t>(parsed.header.rows) *
                   parsed.header.cols;
  m.heap_values_.resize(n);
  std::memcpy(m.heap_values_.data(), bytes.data() + parsed.header.values_offset,
              n * sizeof(double));
  m.rows_ = static_cast<int>(parsed.header.rows);
  m.cols_ = static_cast<int>(parsed.header.cols);
  m.values_ = m.heap_values_.data();
  m.gene_names_ = std::move(parsed.gene_names);
  m.condition_names_ = std::move(parsed.condition_names);
  return m;
#endif
}

int64_t MappedMatrix::resident_bytes() const {
  return MatrixStore::resident_bytes() +
         static_cast<int64_t>(heap_values_.capacity() * sizeof(double));
}

util::Status WriteBinaryMatrix(const MatrixStore& m, const std::string& path) {
  // Render the label section first so the header can point past it.
  std::vector<uint8_t> names;
  const auto append_name = [&names](const std::string& s) {
    uint8_t len[4];
    PutU32(len, static_cast<uint32_t>(s.size()));
    names.insert(names.end(), len, len + 4);
    names.insert(names.end(), s.begin(), s.end());
  };
  for (int g = 0; g < m.num_genes(); ++g) append_name(m.gene_name(g));
  for (int c = 0; c < m.num_conditions(); ++c) {
    append_name(m.condition_name(c));
  }

  const uint64_t names_offset = kHeaderBytes;
  const uint64_t names_end = names_offset + names.size();
  const uint64_t values_offset =
      (names_end + kPayloadAlign - 1) / kPayloadAlign * kPayloadAlign;
  const uint64_t payload_bytes = static_cast<uint64_t>(m.num_genes()) *
                                 m.num_conditions() * sizeof(double);
  const uint64_t file_bytes = values_offset + payload_bytes;

  uint8_t header[kHeaderBytes] = {0};
  std::memcpy(header, kMagic, sizeof(kMagic));
  PutU32(header + 8, kVersion);
  PutU32(header + 12, kEndianTag);
  PutU32(header + 16, static_cast<uint32_t>(m.num_genes()));
  PutU32(header + 20, static_cast<uint32_t>(m.num_conditions()));
  PutU64(header + 24, values_offset);
  PutU64(header + 32, names_offset);
  PutU64(header + 40, names.size());
  PutU64(header + 48, file_bytes);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    return util::Status::IoError("cannot open " + path + " for writing");
  }
  bool ok = std::fwrite(header, 1, kHeaderBytes, f) == kHeaderBytes;
  ok = ok && (names.empty() ||
              std::fwrite(names.data(), 1, names.size(), f) == names.size());
  const std::vector<uint8_t> pad(
      static_cast<size_t>(values_offset - names_end), 0);
  ok = ok && (pad.empty() ||
              std::fwrite(pad.data(), 1, pad.size(), f) == pad.size());
  // One gene profile at a time: the writer never needs the whole payload
  // contiguous, so converting never doubles peak memory.
  for (int g = 0; ok && g < m.num_genes(); ++g) {
    ok = std::fwrite(m.row_data(g), sizeof(double),
                     static_cast<size_t>(m.num_conditions()),
                     f) == static_cast<size_t>(m.num_conditions());
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(path.c_str());
    return util::Status::IoError("short write on " + path);
  }
  return util::Status::OK();
}

util::StatusOr<ExpressionMatrix> ReadBinaryMatrix(const std::string& path) {
  std::vector<uint8_t> bytes;
  REGCLUSTER_RETURN_IF_ERROR(SlurpFile(path, &bytes));
  ParsedFile parsed;
  REGCLUSTER_RETURN_IF_ERROR(ParseFile(bytes.data(), bytes.size(), &parsed));
  ExpressionMatrix m(static_cast<int>(parsed.header.rows),
                     static_cast<int>(parsed.header.cols));
  if (m.num_genes() > 0 && m.num_conditions() > 0) {
    std::memcpy(&m(0, 0), bytes.data() + parsed.header.values_offset,
                static_cast<size_t>(m.num_genes()) * m.num_conditions() *
                    sizeof(double));
  }
  REGCLUSTER_RETURN_IF_ERROR(m.SetGeneNames(std::move(parsed.gene_names)));
  REGCLUSTER_RETURN_IF_ERROR(
      m.SetConditionNames(std::move(parsed.condition_names)));
  return m;
}

util::StatusOr<bool> IsBinaryMatrixFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return util::Status::IoError("cannot open " + path);
  }
  char magic[sizeof(kMagic)];
  const size_t got = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  return got == sizeof(kMagic) &&
         std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

util::StatusOr<int> AppendConditionsToBinaryMatrix(
    const std::string& path, const std::vector<std::string>& names,
    const std::vector<std::vector<double>>& columns) {
  // Header offsets shift with the label section, so the append is a rewrite:
  // read, widen in memory, write to a scratch file, rename over the
  // original (atomic on POSIX).
  auto m = ReadBinaryMatrix(path);
  if (!m.ok()) return m.status();
  REGCLUSTER_RETURN_IF_ERROR(m->AppendConditions(names, columns));
  const std::string tmp = path + ".append.tmp";
  REGCLUSTER_RETURN_IF_ERROR(WriteBinaryMatrix(*m, tmp));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::IoError("cannot rename " + tmp + " over " + path);
  }
  return m->num_conditions();
}

}  // namespace matrix
}  // namespace regcluster
