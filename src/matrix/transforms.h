// Whole-matrix preprocessing transforms.
//
// The paper (Section 1.1, Eq. 1-2) discusses the global log / exp transforms
// that pCluster and TriCluster rely on to turn scaling into shifting and
// vice versa; these are provided here both for the baseline implementations
// and so users can replicate those pipelines.  Missing-value imputation is
// also provided because real microarray matrices (like the yeast benchmark)
// contain NaNs which no miner in this library accepts.

#ifndef REGCLUSTER_MATRIX_TRANSFORMS_H_
#define REGCLUSTER_MATRIX_TRANSFORMS_H_

#include "matrix/expression_matrix.h"
#include "util/status.h"

namespace regcluster {
namespace matrix {

/// Returns log(x) applied cell-wise.  Fails (InvalidArgument) if any cell is
/// <= 0, since the pure-scaling -> pure-shifting reduction (Eq. 1) is only
/// defined for positive matrices.
util::StatusOr<ExpressionMatrix> LogTransform(const ExpressionMatrix& m);

/// Returns exp(x) applied cell-wise (Eq. 2, shifting -> scaling reduction).
/// Fails if any cell is large enough to overflow.
util::StatusOr<ExpressionMatrix> ExpTransform(const ExpressionMatrix& m);

/// Adds `offset` to every cell.
ExpressionMatrix Shift(const ExpressionMatrix& m, double offset);

/// Multiplies every cell by `factor`.
ExpressionMatrix Scale(const ExpressionMatrix& m, double factor);

/// Z-score normalizes each gene (row): (x - mean) / stddev.  Constant rows
/// become all-zero rows.
ExpressionMatrix ZScoreRows(const ExpressionMatrix& m);

/// Replaces NaN cells with the mean of the non-missing values in the same
/// row (row-mean imputation; the standard simple choice for microarrays).
/// All-NaN rows become all-zero rows.
ExpressionMatrix ImputeRowMean(const ExpressionMatrix& m);

/// KNN imputation (Troyanskaya et al. 2001, the standard for microarrays):
/// each missing cell is filled with the inverse-distance-weighted average of
/// the k nearest genes (Euclidean over commonly observed conditions,
/// normalized by overlap count) that observe the cell.  Cells with no usable
/// neighbour fall back to the row mean.  Fails for k < 1.
util::StatusOr<ExpressionMatrix> ImputeKnn(const ExpressionMatrix& m, int k);

/// Quantile normalization across conditions (columns): every column is
/// forced to share the same empirical distribution (the mean of the sorted
/// columns).  The standard cross-array normalization before mining.  Fails
/// if the matrix has missing values (impute first).
util::StatusOr<ExpressionMatrix> QuantileNormalizeColumns(
    const ExpressionMatrix& m);

/// Counts NaN cells.
int64_t CountMissing(const ExpressionMatrix& m);

}  // namespace matrix
}  // namespace regcluster

#endif  // REGCLUSTER_MATRIX_TRANSFORMS_H_
