#include "matrix/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "util/math_util.h"
#include "util/string_util.h"

namespace regcluster {
namespace matrix {
namespace {

SeriesStats FromValues(const std::vector<double>& values, int missing) {
  SeriesStats s;
  s.count = static_cast<int>(values.size());
  s.missing = missing;
  if (values.empty()) return s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.mean = util::Mean(values);
  s.stddev = util::StdDev(values);
  return s;
}

}  // namespace

SeriesStats GeneStats(const ExpressionMatrix& m, int gene) {
  std::vector<double> values;
  int missing = 0;
  for (int c = 0; c < m.num_conditions(); ++c) {
    const double v = m(gene, c);
    if (std::isnan(v)) {
      ++missing;
    } else {
      values.push_back(v);
    }
  }
  return FromValues(values, missing);
}

SeriesStats ConditionStats(const ExpressionMatrix& m, int cond) {
  std::vector<double> values;
  int missing = 0;
  for (int g = 0; g < m.num_genes(); ++g) {
    const double v = m(g, cond);
    if (std::isnan(v)) {
      ++missing;
    } else {
      values.push_back(v);
    }
  }
  return FromValues(values, missing);
}

MatrixStats Summarize(const ExpressionMatrix& m) {
  MatrixStats s;
  s.num_genes = m.num_genes();
  s.num_conditions = m.num_conditions();
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double total = 0.0;
  int64_t count = 0;
  for (int g = 0; g < m.num_genes(); ++g) {
    const SeriesStats row = GeneStats(m, g);
    s.missing_cells += row.missing;
    s.genes_with_missing += row.missing > 0;
    if (row.count > 0) {
      s.constant_genes += row.min == row.max;
      s.min = std::min(s.min, row.min);
      s.max = std::max(s.max, row.max);
      total += row.mean * row.count;
      count += row.count;
    } else {
      ++s.constant_genes;  // all-missing row has no range either
    }
  }
  if (count == 0) {
    s.min = s.max = 0.0;
  } else {
    s.mean = total / static_cast<double>(count);
  }
  return s;
}

util::Status WriteStatsReport(const ExpressionMatrix& m, std::ostream& out,
                              int worst) {
  const MatrixStats s = Summarize(m);
  out << util::StrFormat(
      "matrix: %d genes x %d conditions\n"
      "values: min=%.4g max=%.4g mean=%.4g\n"
      "missing: %lld cells in %d genes\n"
      "constant (unminable) genes: %d\n",
      s.num_genes, s.num_conditions, s.min, s.max, s.mean,
      static_cast<long long>(s.missing_cells), s.genes_with_missing,
      s.constant_genes);

  out << "\nper-condition:\n";
  out << util::StrFormat("%-16s %8s %8s %10s %10s %10s %10s\n", "condition",
                         "n", "missing", "min", "max", "mean", "stddev");
  for (int c = 0; c < m.num_conditions(); ++c) {
    const SeriesStats cs = ConditionStats(m, c);
    out << util::StrFormat("%-16s %8d %8d %10.4g %10.4g %10.4g %10.4g\n",
                           m.condition_name(c).c_str(), cs.count, cs.missing,
                           cs.min, cs.max, cs.mean, cs.stddev);
  }

  if (worst > 0 && m.num_genes() > 0) {
    struct Flat {
      double range;
      int gene;
    };
    std::vector<Flat> flats;
    flats.reserve(static_cast<size_t>(m.num_genes()));
    for (int g = 0; g < m.num_genes(); ++g) {
      const SeriesStats gs = GeneStats(m, g);
      flats.push_back(Flat{gs.count > 0 ? gs.max - gs.min : 0.0, g});
    }
    std::sort(flats.begin(), flats.end(), [](const Flat& a, const Flat& b) {
      if (a.range != b.range) return a.range < b.range;
      return a.gene < b.gene;
    });
    out << util::StrFormat("\nflattest %d genes (smallest dynamic range):\n",
                           worst);
    for (int i = 0; i < worst && i < static_cast<int>(flats.size()); ++i) {
      out << util::StrFormat("  %-16s range=%.4g\n",
                             m.gene_name(flats[static_cast<size_t>(i)].gene).c_str(),
                             flats[static_cast<size_t>(i)].range);
    }
  }
  if (!out) return util::Status::IoError("stream write failed");
  return util::Status::OK();
}

}  // namespace matrix
}  // namespace regcluster
