// Reading and writing expression matrices as delimited text.
//
// The on-disk format matches the usual microarray distribution format (and
// the Church-lab yeast file the paper uses): a header line
//
//     <id-col-name> <TAB> cond1 <TAB> cond2 ...
//
// followed by one line per gene: gene name, then one value per condition.
// Fields "NA", "NaN", "?" and empty fields parse as missing (NaN).  Lines
// starting with '#' are comments.

#ifndef REGCLUSTER_MATRIX_MATRIX_IO_H_
#define REGCLUSTER_MATRIX_MATRIX_IO_H_

#include <iosfwd>
#include <string>

#include "matrix/expression_matrix.h"
#include "util/status.h"

namespace regcluster {
namespace matrix {

/// Options controlling delimited-text parsing.
struct TextFormat {
  /// Field delimiter ('\t' for TSV, ',' for CSV).
  char delimiter = '\t';
  /// Whether the first line is a header with condition names.
  bool has_header = true;
  /// Whether the first column holds gene names.
  bool has_gene_names = true;
  /// Annotation columns to skip between the gene name and the first value
  /// (the Church-lab yeast distribution has NAME and GWEIGHT columns).
  int skip_annotation_columns = 0;
  /// Data rows to skip after the header (e.g. an EWEIGHT row).
  int skip_leading_rows = 0;
};

/// Parses a matrix from an input stream.
util::StatusOr<ExpressionMatrix> ReadMatrix(std::istream& in,
                                            const TextFormat& format = {});

/// Parses a matrix from a string (convenience for tests).
util::StatusOr<ExpressionMatrix> ReadMatrixFromString(
    const std::string& text, const TextFormat& format = {});

/// Loads a matrix from a file path.
util::StatusOr<ExpressionMatrix> LoadMatrix(const std::string& path,
                                            const TextFormat& format = {});

/// Writes a matrix to a stream in the same format.
util::Status WriteMatrix(const ExpressionMatrix& m, std::ostream& out,
                         const TextFormat& format = {});

/// Saves a matrix to a file path.
util::Status SaveMatrix(const ExpressionMatrix& m, const std::string& path,
                        const TextFormat& format = {});

}  // namespace matrix
}  // namespace regcluster

#endif  // REGCLUSTER_MATRIX_MATRIX_IO_H_
