// Dense gene-expression matrix: genes (rows) x conditions (columns).
//
// The matrix is the single input type of every miner in this library.  Rows
// and columns carry human-readable labels (gene / condition names); all
// algorithms address them by dense integer index.  Values are doubles;
// missing values are quiet NaN and are imputed (or rejected) explicitly by
// the caller -- see transforms.h.
//
// ExpressionMatrix is the mutable, heap-owned implementation of the
// MatrixStore view (store.h); mmap-backed matrices (MappedMatrix) present
// the same read interface without owning their payload.

#ifndef REGCLUSTER_MATRIX_EXPRESSION_MATRIX_H_
#define REGCLUSTER_MATRIX_EXPRESSION_MATRIX_H_

#include <cassert>
#include <string>
#include <utility>
#include <vector>

#include "matrix/store.h"
#include "util/status.h"

namespace regcluster {
namespace matrix {

/// Dense row-major matrix of expression levels with named rows and columns.
class ExpressionMatrix : public MatrixStore {
 public:
  /// Creates an empty matrix (0 x 0).
  ExpressionMatrix() = default;

  /// Creates a rows x cols matrix filled with `fill`, with auto-generated
  /// labels ("g0", "g1", ... / "c0", "c1", ...).
  ExpressionMatrix(int rows, int cols, double fill = 0.0);

  // The base caches a raw pointer into data_, so every copy/move rebinds it
  // to the destination's own storage.
  ExpressionMatrix(const ExpressionMatrix& other)
      : MatrixStore(other), data_(other.data_) {
    values_ = data_.data();
  }
  ExpressionMatrix(ExpressionMatrix&& other) noexcept
      : MatrixStore(std::move(other)), data_(std::move(other.data_)) {
    values_ = data_.data();
    other.values_ = other.data_.data();
  }
  ExpressionMatrix& operator=(const ExpressionMatrix& other) {
    MatrixStore::operator=(other);
    data_ = other.data_;
    values_ = data_.data();
    return *this;
  }
  ExpressionMatrix& operator=(ExpressionMatrix&& other) noexcept {
    MatrixStore::operator=(std::move(other));
    data_ = std::move(other.data_);
    values_ = data_.data();
    other.values_ = other.data_.data();
    return *this;
  }

  /// Builds a matrix from explicit row data.  Every row must have the same
  /// length.  Labels are auto-generated.
  static util::StatusOr<ExpressionMatrix> FromRows(
      const std::vector<std::vector<double>>& rows);

  /// Element access (unchecked in release builds).  The const overload
  /// comes from MatrixStore.
  using MatrixStore::operator();
  double& operator()(int gene, int cond) {
    assert(gene >= 0 && gene < rows_ && cond >= 0 && cond < cols_);
    return data_[static_cast<size_t>(gene) * cols_ + cond];
  }

  /// Returns the submatrix restricted to the given genes and conditions (in
  /// the given orders), carrying labels along.
  ExpressionMatrix Submatrix(const std::vector<int>& genes,
                             const std::vector<int>& conds) const;

  /// Appends conditions (columns) at the end of the matrix: columns[k] is
  /// the new column k, one value per gene, and names[k] its label.  The
  /// gene-major payload is re-laid out at the new stride in place.  Fails
  /// (InvalidArgument) on a name/column count mismatch or a column whose
  /// length is not num_genes(); the matrix is unchanged on failure.
  util::Status AppendConditions(const std::vector<std::string>& names,
                                const std::vector<std::vector<double>>& columns);

  int64_t resident_bytes() const override;

 private:
  std::vector<double> data_;
};

}  // namespace matrix
}  // namespace regcluster

#endif  // REGCLUSTER_MATRIX_EXPRESSION_MATRIX_H_
