// Dense gene-expression matrix: genes (rows) x conditions (columns).
//
// The matrix is the single input type of every miner in this library.  Rows
// and columns carry human-readable labels (gene / condition names); all
// algorithms address them by dense integer index.  Values are doubles;
// missing values are quiet NaN and are imputed (or rejected) explicitly by
// the caller -- see transforms.h.

#ifndef REGCLUSTER_MATRIX_EXPRESSION_MATRIX_H_
#define REGCLUSTER_MATRIX_EXPRESSION_MATRIX_H_

#include <cassert>
#include <string>
#include <vector>

#include "util/status.h"

namespace regcluster {
namespace matrix {

/// Dense row-major matrix of expression levels with named rows and columns.
class ExpressionMatrix {
 public:
  /// Creates an empty matrix (0 x 0).
  ExpressionMatrix() = default;

  /// Creates a rows x cols matrix filled with `fill`, with auto-generated
  /// labels ("g0", "g1", ... / "c0", "c1", ...).
  ExpressionMatrix(int rows, int cols, double fill = 0.0);

  /// Builds a matrix from explicit row data.  Every row must have the same
  /// length.  Labels are auto-generated.
  static util::StatusOr<ExpressionMatrix> FromRows(
      const std::vector<std::vector<double>>& rows);

  int num_genes() const { return rows_; }
  int num_conditions() const { return cols_; }

  /// Element access (unchecked in release builds).
  double operator()(int gene, int cond) const {
    assert(gene >= 0 && gene < rows_ && cond >= 0 && cond < cols_);
    return data_[static_cast<size_t>(gene) * cols_ + cond];
  }
  double& operator()(int gene, int cond) {
    assert(gene >= 0 && gene < rows_ && cond >= 0 && cond < cols_);
    return data_[static_cast<size_t>(gene) * cols_ + cond];
  }

  /// Pointer to the first element of a gene's profile (contiguous, length
  /// num_conditions()).
  const double* row_data(int gene) const {
    assert(gene >= 0 && gene < rows_);
    return data_.data() + static_cast<size_t>(gene) * cols_;
  }

  /// Copies a gene's full profile.
  std::vector<double> Row(int gene) const;

  /// Copies a gene's profile restricted to `conds`, in the order given.
  std::vector<double> RowOnConditions(int gene,
                                      const std::vector<int>& conds) const;

  /// Row (gene) and column (condition) labels.
  const std::string& gene_name(int gene) const { return gene_names_[gene]; }
  const std::string& condition_name(int cond) const {
    return condition_names_[cond];
  }
  const std::vector<std::string>& gene_names() const { return gene_names_; }
  const std::vector<std::string>& condition_names() const {
    return condition_names_;
  }

  /// Replaces all labels.  Sizes must match the matrix dimensions.
  util::Status SetGeneNames(std::vector<std::string> names);
  util::Status SetConditionNames(std::vector<std::string> names);

  /// Index of the gene with the given name, or -1 if absent (linear scan;
  /// intended for tests and small lookups).
  int FindGene(const std::string& name) const;
  int FindCondition(const std::string& name) const;

  /// Min / max expression of a gene across all conditions, ignoring NaNs.
  /// Returns {0, 0} for an all-NaN row.
  std::pair<double, double> RowRange(int gene) const;

  /// True if any cell is NaN.
  bool HasMissingValues() const;

  /// Returns the submatrix restricted to the given genes and conditions (in
  /// the given orders), carrying labels along.
  ExpressionMatrix Submatrix(const std::vector<int>& genes,
                             const std::vector<int>& conds) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
  std::vector<std::string> gene_names_;
  std::vector<std::string> condition_names_;
};

}  // namespace matrix
}  // namespace regcluster

#endif  // REGCLUSTER_MATRIX_EXPRESSION_MATRIX_H_
