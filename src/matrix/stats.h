// Descriptive statistics of an expression matrix -- the data-QC step before
// mining (spotting dead arrays, saturated conditions, missing-value
// hotspots, genes with no dynamic range).

#ifndef REGCLUSTER_MATRIX_STATS_H_
#define REGCLUSTER_MATRIX_STATS_H_

#include <iosfwd>
#include <vector>

#include "matrix/expression_matrix.h"
#include "util/status.h"

namespace regcluster {
namespace matrix {

/// Five-number-ish summary of one row or column, NaN-aware.
struct SeriesStats {
  int count = 0;    ///< non-missing values
  int missing = 0;  ///< NaN cells
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Stats of one gene's profile.
SeriesStats GeneStats(const ExpressionMatrix& m, int gene);

/// Stats of one condition's column.
SeriesStats ConditionStats(const ExpressionMatrix& m, int cond);

/// Whole-matrix summary.
struct MatrixStats {
  int num_genes = 0;
  int num_conditions = 0;
  int64_t missing_cells = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  /// Genes whose non-missing values are all identical (unminable: their
  /// regulation threshold collapses to zero range).
  int constant_genes = 0;
  /// Genes with at least one missing cell.
  int genes_with_missing = 0;
};

MatrixStats Summarize(const ExpressionMatrix& m);

/// Prints a QC report: the matrix summary plus a per-condition table (one
/// line each) and the `worst` flattest genes by range.
util::Status WriteStatsReport(const ExpressionMatrix& m, std::ostream& out,
                              int worst = 5);

}  // namespace matrix
}  // namespace regcluster

#endif  // REGCLUSTER_MATRIX_STATS_H_
