#include "matrix/expression_matrix.h"

#include <cstring>

#include "util/string_util.h"

namespace regcluster {
namespace matrix {
namespace {

std::vector<std::string> DefaultNames(const char* prefix, int n) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    names.push_back(util::StrFormat("%s%d", prefix, i));
  }
  return names;
}

}  // namespace

ExpressionMatrix::ExpressionMatrix(int rows, int cols, double fill)
    : data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
  assert(rows >= 0 && cols >= 0);
  rows_ = rows;
  cols_ = cols;
  values_ = data_.data();
  gene_names_ = DefaultNames("g", rows);
  condition_names_ = DefaultNames("c", cols);
}

util::StatusOr<ExpressionMatrix> ExpressionMatrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  const int r = static_cast<int>(rows.size());
  const int c = rows.empty() ? 0 : static_cast<int>(rows[0].size());
  for (const auto& row : rows) {
    if (static_cast<int>(row.size()) != c) {
      return util::Status::InvalidArgument("ragged row data");
    }
  }
  ExpressionMatrix m(r, c);
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) m(i, j) = rows[static_cast<size_t>(i)][static_cast<size_t>(j)];
  }
  return m;
}

ExpressionMatrix ExpressionMatrix::Submatrix(
    const std::vector<int>& genes, const std::vector<int>& conds) const {
  ExpressionMatrix out(static_cast<int>(genes.size()),
                       static_cast<int>(conds.size()));
  std::vector<std::string> gnames, cnames;
  gnames.reserve(genes.size());
  cnames.reserve(conds.size());
  for (size_t i = 0; i < genes.size(); ++i) {
    gnames.push_back(gene_name(genes[i]));
    for (size_t j = 0; j < conds.size(); ++j) {
      out(static_cast<int>(i), static_cast<int>(j)) =
          (*this)(genes[i], conds[j]);
    }
  }
  for (int c : conds) cnames.push_back(condition_name(c));
  // Sizes match by construction.
  (void)out.SetGeneNames(std::move(gnames));
  (void)out.SetConditionNames(std::move(cnames));
  return out;
}

util::Status ExpressionMatrix::AppendConditions(
    const std::vector<std::string>& names,
    const std::vector<std::vector<double>>& columns) {
  if (names.size() != columns.size()) {
    return util::Status::InvalidArgument(
        "appended condition names and columns must pair up");
  }
  for (const auto& col : columns) {
    if (static_cast<int>(col.size()) != rows_) {
      return util::Status::InvalidArgument(
          "appended column length must equal num_genes()");
    }
  }
  const int added = static_cast<int>(columns.size());
  if (added == 0) return util::Status::OK();
  const int new_cols = cols_ + added;
  // Re-layout at the wider stride, back to front so each gene's old profile
  // is read before anything overwrites it.
  data_.resize(static_cast<size_t>(rows_) * static_cast<size_t>(new_cols));
  for (int g = rows_ - 1; g >= 0; --g) {
    double* dst = data_.data() + static_cast<size_t>(g) * new_cols;
    const double* src = data_.data() + static_cast<size_t>(g) * cols_;
    std::memmove(dst, src, static_cast<size_t>(cols_) * sizeof(double));
    for (int k = 0; k < added; ++k) {
      dst[cols_ + k] = columns[static_cast<size_t>(k)][static_cast<size_t>(g)];
    }
  }
  condition_names_.insert(condition_names_.end(), names.begin(), names.end());
  cols_ = new_cols;
  values_ = data_.data();
  return util::Status::OK();
}

int64_t ExpressionMatrix::resident_bytes() const {
  return MatrixStore::resident_bytes() +
         static_cast<int64_t>(data_.capacity() * sizeof(double));
}

}  // namespace matrix
}  // namespace regcluster
