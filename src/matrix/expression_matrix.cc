#include "matrix/expression_matrix.h"

#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace regcluster {
namespace matrix {
namespace {

std::vector<std::string> DefaultNames(const char* prefix, int n) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    names.push_back(util::StrFormat("%s%d", prefix, i));
  }
  return names;
}

}  // namespace

ExpressionMatrix::ExpressionMatrix(int rows, int cols, double fill)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill),
      gene_names_(DefaultNames("g", rows)),
      condition_names_(DefaultNames("c", cols)) {
  assert(rows >= 0 && cols >= 0);
}

util::StatusOr<ExpressionMatrix> ExpressionMatrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  const int r = static_cast<int>(rows.size());
  const int c = rows.empty() ? 0 : static_cast<int>(rows[0].size());
  for (const auto& row : rows) {
    if (static_cast<int>(row.size()) != c) {
      return util::Status::InvalidArgument("ragged row data");
    }
  }
  ExpressionMatrix m(r, c);
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) m(i, j) = rows[static_cast<size_t>(i)][static_cast<size_t>(j)];
  }
  return m;
}

std::vector<double> ExpressionMatrix::Row(int gene) const {
  const double* p = row_data(gene);
  return std::vector<double>(p, p + cols_);
}

std::vector<double> ExpressionMatrix::RowOnConditions(
    int gene, const std::vector<int>& conds) const {
  std::vector<double> out;
  out.reserve(conds.size());
  for (int c : conds) out.push_back((*this)(gene, c));
  return out;
}

util::Status ExpressionMatrix::SetGeneNames(std::vector<std::string> names) {
  if (static_cast<int>(names.size()) != rows_) {
    return util::Status::InvalidArgument("gene name count mismatch");
  }
  gene_names_ = std::move(names);
  return util::Status::OK();
}

util::Status ExpressionMatrix::SetConditionNames(
    std::vector<std::string> names) {
  if (static_cast<int>(names.size()) != cols_) {
    return util::Status::InvalidArgument("condition name count mismatch");
  }
  condition_names_ = std::move(names);
  return util::Status::OK();
}

int ExpressionMatrix::FindGene(const std::string& name) const {
  for (int i = 0; i < rows_; ++i) {
    if (gene_names_[static_cast<size_t>(i)] == name) return i;
  }
  return -1;
}

int ExpressionMatrix::FindCondition(const std::string& name) const {
  for (int j = 0; j < cols_; ++j) {
    if (condition_names_[static_cast<size_t>(j)] == name) return j;
  }
  return -1;
}

std::pair<double, double> ExpressionMatrix::RowRange(int gene) const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  const double* p = row_data(gene);
  for (int j = 0; j < cols_; ++j) {
    if (std::isnan(p[j])) continue;
    lo = std::min(lo, p[j]);
    hi = std::max(hi, p[j]);
  }
  if (lo > hi) return {0.0, 0.0};
  return {lo, hi};
}

bool ExpressionMatrix::HasMissingValues() const {
  for (double v : data_) {
    if (std::isnan(v)) return true;
  }
  return false;
}

ExpressionMatrix ExpressionMatrix::Submatrix(
    const std::vector<int>& genes, const std::vector<int>& conds) const {
  ExpressionMatrix out(static_cast<int>(genes.size()),
                       static_cast<int>(conds.size()));
  std::vector<std::string> gnames, cnames;
  gnames.reserve(genes.size());
  cnames.reserve(conds.size());
  for (size_t i = 0; i < genes.size(); ++i) {
    gnames.push_back(gene_name(genes[i]));
    for (size_t j = 0; j < conds.size(); ++j) {
      out(static_cast<int>(i), static_cast<int>(j)) =
          (*this)(genes[i], conds[j]);
    }
  }
  for (int c : conds) cnames.push_back(condition_name(c));
  // Sizes match by construction.
  (void)out.SetGeneNames(std::move(gnames));
  (void)out.SetConditionNames(std::move(cnames));
  return out;
}

}  // namespace matrix
}  // namespace regcluster
