// Storage abstraction over the dense expression matrix, plus the binary
// on-disk format that backs out-of-core mining.
//
// MatrixStore is the read-only view every consumer in src/core addresses:
// dense (gene, condition) doubles with a flat, gene-profile-contiguous
// payload (`values()` / `row_data()`), named rows and columns, and byte
// accounting that distinguishes heap-resident from mmap-backed storage.
// Two implementations exist:
//
//   * ExpressionMatrix (expression_matrix.h) -- the mutable in-memory
//     matrix, payload owned by a std::vector<double>;
//   * MappedMatrix (below) -- an immutable view of a binary matrix file
//     mapped into the address space, so the payload competes for physical
//     memory only through the page cache and can be reclaimed under
//     pressure instead of counting against the miner's budget.
//
// The hot accessors are deliberately non-virtual: they read protected
// fields set once by the concrete class, so a MatrixStore& in the miner's
// inner loop costs the same as the concrete matrix did.
//
// On-disk layout (version 1): the payload is stored column-major over the
// paper's conditions x genes orientation -- i.e. each gene's profile is
// contiguous, matching the in-memory layout -- so a mapped file serves the
// miner's flat base pointer directly, with no deserialization pass.
//
//   offset 0    8 bytes   magic "RGCXMAT1"
//          8    u32       format version (1)
//         12    u32       endianness tag 0x01020304, written in host order
//         16    u32       num_genes
//         20    u32       num_conditions
//         24    u64       byte offset of the values payload (page aligned)
//         32    u64       byte offset of the label section
//         40    u64       byte length of the label section
//         48    u64       total file size in bytes (truncation check)
//         56    8 bytes   reserved, zero
//   labels     num_genes then num_conditions strings, each u32 length +
//              raw bytes (no terminator)
//   values     num_genes * num_conditions doubles, gene-major
//
// Every structural violation (short header, bad magic, foreign byte order,
// section overrun, size mismatch) is a distinct kCorruption Status naming
// the field, mirroring the text reader's error contract (matrix_io.h).

#ifndef REGCLUSTER_MATRIX_STORE_H_
#define REGCLUSTER_MATRIX_STORE_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace regcluster {
namespace matrix {

class ExpressionMatrix;

/// Read-only dense matrix view: the single input type of the mining core.
class MatrixStore {
 public:
  virtual ~MatrixStore() = default;

  int num_genes() const { return rows_; }
  int num_conditions() const { return cols_; }

  /// Element access (unchecked in release builds).
  double operator()(int gene, int cond) const {
    assert(gene >= 0 && gene < rows_ && cond >= 0 && cond < cols_);
    return values_[static_cast<size_t>(gene) * cols_ + cond];
  }

  /// Pointer to the first element of a gene's profile (contiguous, length
  /// num_conditions()).  row_data(0) is the base of the whole payload:
  /// gene g's profile starts g * num_conditions() doubles later.
  const double* row_data(int gene) const {
    assert(gene >= 0 && gene < rows_);
    return values_ + static_cast<size_t>(gene) * cols_;
  }

  /// Copies a gene's full profile.
  std::vector<double> Row(int gene) const;

  /// Copies a gene's profile restricted to `conds`, in the order given.
  std::vector<double> RowOnConditions(int gene,
                                      const std::vector<int>& conds) const;

  /// Row (gene) and column (condition) labels.
  const std::string& gene_name(int gene) const {
    return gene_names_[static_cast<size_t>(gene)];
  }
  const std::string& condition_name(int cond) const {
    return condition_names_[static_cast<size_t>(cond)];
  }
  const std::vector<std::string>& gene_names() const { return gene_names_; }
  const std::vector<std::string>& condition_names() const {
    return condition_names_;
  }

  /// Replaces all labels.  Sizes must match the matrix dimensions.
  util::Status SetGeneNames(std::vector<std::string> names);
  util::Status SetConditionNames(std::vector<std::string> names);

  /// Index of the gene with the given name, or -1 if absent (linear scan;
  /// intended for tests and small lookups).
  int FindGene(const std::string& name) const;
  int FindCondition(const std::string& name) const;

  /// Min / max expression of a gene across all conditions, ignoring NaNs.
  /// Returns {0, 0} for an all-NaN row.
  std::pair<double, double> RowRange(int gene) const;

  /// True if any cell is NaN.
  bool HasMissingValues() const;

  /// Heap bytes owned by this store (labels plus any heap payload).
  virtual int64_t resident_bytes() const;

  /// Bytes of payload served through a file mapping (0 for heap stores).
  /// Mapped pages are reclaimable clean pages, not committed heap, so the
  /// miner's memory budget accounts them separately.
  virtual int64_t mapped_bytes() const { return 0; }

 protected:
  MatrixStore() = default;
  // Copying the base copies dimensions and labels; the concrete class must
  // rebind `values_` to its own payload afterwards (the pointer targets
  // storage the base does not own).
  MatrixStore(const MatrixStore&) = default;
  MatrixStore(MatrixStore&&) noexcept = default;
  MatrixStore& operator=(const MatrixStore&) = default;
  MatrixStore& operator=(MatrixStore&&) noexcept = default;

  int rows_ = 0;
  int cols_ = 0;
  /// Flat gene-major payload, rows_ * cols_ doubles; set by the concrete
  /// class and rebound on every copy/move/resize of the backing storage.
  const double* values_ = nullptr;
  std::vector<std::string> gene_names_;
  std::vector<std::string> condition_names_;
};

/// An immutable MatrixStore view of a binary matrix file, mapped into the
/// address space (falling back to a private heap copy where mmap is
/// unavailable).  Movable, not copyable; the mapping lives until
/// destruction.
class MappedMatrix : public MatrixStore {
 public:
  MappedMatrix() = default;
  ~MappedMatrix() override;

  MappedMatrix(const MappedMatrix&) = delete;
  MappedMatrix& operator=(const MappedMatrix&) = delete;
  MappedMatrix(MappedMatrix&& other) noexcept;
  MappedMatrix& operator=(MappedMatrix&& other) noexcept;

  /// Maps the binary matrix at `path`.  Fails with kIoError when the file
  /// cannot be opened and kCorruption when it is not a valid version-1
  /// binary matrix (see the header-format contract above).
  static util::StatusOr<MappedMatrix> Open(const std::string& path);

  /// True when the payload is served by an actual file mapping (false on
  /// the heap fallback path).
  bool is_mapped() const { return map_base_ != nullptr; }

  int64_t resident_bytes() const override;
  int64_t mapped_bytes() const override {
    return static_cast<int64_t>(map_len_);
  }

 private:
  void Release();

  void* map_base_ = nullptr;
  size_t map_len_ = 0;
  std::vector<double> heap_values_;  // fallback payload when not mapped
};

/// Writes `m` to `path` in the binary format described above.  NaNs are
/// stored verbatim; convert-time imputation is the supported way to clear
/// them (the miner rejects missing values in any store).
util::Status WriteBinaryMatrix(const MatrixStore& m, const std::string& path);

/// Reads a binary matrix fully into the heap.  Same validation as
/// MappedMatrix::Open; useful for tools and tests that want a mutable copy.
util::StatusOr<ExpressionMatrix> ReadBinaryMatrix(const std::string& path);

/// True when the file at `path` starts with the binary-matrix magic.  A
/// short or magic-less file is simply `false` (it may be a text matrix);
/// only an unreadable file is an error.
util::StatusOr<bool> IsBinaryMatrixFile(const std::string& path);

/// Appends conditions to the binary matrix at `path`: columns[k] is the new
/// column k (one value per gene), names[k] its label.  The widened matrix is
/// written to a scratch file and renamed over the original, so a reader (or
/// a crash) never observes a torn file -- it sees either the old matrix or
/// the new one.  Returns the new condition count on success.
util::StatusOr<int> AppendConditionsToBinaryMatrix(
    const std::string& path, const std::vector<std::string>& names,
    const std::vector<std::vector<double>>& columns);

}  // namespace matrix
}  // namespace regcluster

#endif  // REGCLUSTER_MATRIX_STORE_H_
