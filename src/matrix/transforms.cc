#include "matrix/transforms.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"
#include "util/string_util.h"

namespace regcluster {
namespace matrix {

util::StatusOr<ExpressionMatrix> LogTransform(const ExpressionMatrix& m) {
  ExpressionMatrix out = m;
  for (int i = 0; i < m.num_genes(); ++i) {
    for (int j = 0; j < m.num_conditions(); ++j) {
      const double v = m(i, j);
      if (std::isnan(v)) continue;
      if (v <= 0.0) {
        return util::Status::InvalidArgument(util::StrFormat(
            "LogTransform: non-positive value %g at (%d, %d)", v, i, j));
      }
      out(i, j) = std::log(v);
    }
  }
  return out;
}

util::StatusOr<ExpressionMatrix> ExpTransform(const ExpressionMatrix& m) {
  ExpressionMatrix out = m;
  for (int i = 0; i < m.num_genes(); ++i) {
    for (int j = 0; j < m.num_conditions(); ++j) {
      const double v = m(i, j);
      if (std::isnan(v)) continue;
      const double e = std::exp(v);
      if (std::isinf(e)) {
        return util::Status::OutOfRange(util::StrFormat(
            "ExpTransform: exp(%g) overflows at (%d, %d)", v, i, j));
      }
      out(i, j) = e;
    }
  }
  return out;
}

ExpressionMatrix Shift(const ExpressionMatrix& m, double offset) {
  ExpressionMatrix out = m;
  for (int i = 0; i < m.num_genes(); ++i) {
    for (int j = 0; j < m.num_conditions(); ++j) out(i, j) = m(i, j) + offset;
  }
  return out;
}

ExpressionMatrix Scale(const ExpressionMatrix& m, double factor) {
  ExpressionMatrix out = m;
  for (int i = 0; i < m.num_genes(); ++i) {
    for (int j = 0; j < m.num_conditions(); ++j) out(i, j) = m(i, j) * factor;
  }
  return out;
}

ExpressionMatrix ZScoreRows(const ExpressionMatrix& m) {
  ExpressionMatrix out = m;
  for (int i = 0; i < m.num_genes(); ++i) {
    std::vector<double> row;
    row.reserve(static_cast<size_t>(m.num_conditions()));
    for (int j = 0; j < m.num_conditions(); ++j) {
      if (!std::isnan(m(i, j))) row.push_back(m(i, j));
    }
    const double mean = util::Mean(row);
    const double sd = util::StdDev(row);
    for (int j = 0; j < m.num_conditions(); ++j) {
      if (std::isnan(m(i, j))) continue;
      out(i, j) = sd > 0.0 ? (m(i, j) - mean) / sd : 0.0;
    }
  }
  return out;
}

ExpressionMatrix ImputeRowMean(const ExpressionMatrix& m) {
  ExpressionMatrix out = m;
  for (int i = 0; i < m.num_genes(); ++i) {
    std::vector<double> present;
    present.reserve(static_cast<size_t>(m.num_conditions()));
    for (int j = 0; j < m.num_conditions(); ++j) {
      if (!std::isnan(m(i, j))) present.push_back(m(i, j));
    }
    const double mean = util::Mean(present);
    for (int j = 0; j < m.num_conditions(); ++j) {
      if (std::isnan(m(i, j))) out(i, j) = mean;
    }
  }
  return out;
}

util::StatusOr<ExpressionMatrix> ImputeKnn(const ExpressionMatrix& m, int k) {
  if (k < 1) return util::Status::InvalidArgument("k must be >= 1");
  const int rows = m.num_genes();
  const int cols = m.num_conditions();
  ExpressionMatrix out = m;

  // Genes that need imputation.
  std::vector<int> incomplete;
  for (int g = 0; g < rows; ++g) {
    for (int c = 0; c < cols; ++c) {
      if (std::isnan(m(g, c))) {
        incomplete.push_back(g);
        break;
      }
    }
  }
  if (incomplete.empty()) return out;

  struct Neighbor {
    double distance;
    int gene;
  };
  for (int g : incomplete) {
    // Mean-normalized Euclidean distance over co-observed conditions.
    std::vector<Neighbor> neighbors;
    neighbors.reserve(static_cast<size_t>(rows));
    for (int other = 0; other < rows; ++other) {
      if (other == g) continue;
      double ss = 0.0;
      int shared = 0;
      for (int c = 0; c < cols; ++c) {
        const double a = m(g, c);
        const double b = m(other, c);
        if (std::isnan(a) || std::isnan(b)) continue;
        ss += (a - b) * (a - b);
        ++shared;
      }
      if (shared == 0) continue;
      neighbors.push_back(
          Neighbor{std::sqrt(ss / shared), other});
    }
    std::sort(neighbors.begin(), neighbors.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.gene < b.gene;
              });

    for (int c = 0; c < cols; ++c) {
      if (!std::isnan(m(g, c))) continue;
      double weight_total = 0.0, value_total = 0.0;
      int used = 0;
      for (const Neighbor& nb : neighbors) {
        const double v = m(nb.gene, c);
        if (std::isnan(v)) continue;
        const double w = 1.0 / (nb.distance + 1e-9);
        weight_total += w;
        value_total += w * v;
        if (++used == k) break;
      }
      if (used > 0) {
        out(g, c) = value_total / weight_total;
      } else {
        // No neighbour observes this condition: row-mean fallback.
        std::vector<double> present;
        for (int cc = 0; cc < cols; ++cc) {
          if (!std::isnan(m(g, cc))) present.push_back(m(g, cc));
        }
        out(g, c) = util::Mean(present);
      }
    }
  }
  return out;
}

util::StatusOr<ExpressionMatrix> QuantileNormalizeColumns(
    const ExpressionMatrix& m) {
  if (m.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "quantile normalization requires a complete matrix; impute first");
  }
  const int rows = m.num_genes();
  const int cols = m.num_conditions();
  if (rows == 0 || cols == 0) return m;

  // Rank each column; the target distribution is the mean of the sorted
  // columns.
  std::vector<std::vector<int>> order(
      static_cast<size_t>(cols), std::vector<int>(static_cast<size_t>(rows)));
  std::vector<double> target(static_cast<size_t>(rows), 0.0);
  for (int c = 0; c < cols; ++c) {
    std::vector<int>& idx = order[static_cast<size_t>(c)];
    for (int g = 0; g < rows; ++g) idx[static_cast<size_t>(g)] = g;
    std::sort(idx.begin(), idx.end(), [&](int a, int b) {
      if (m(a, c) != m(b, c)) return m(a, c) < m(b, c);
      return a < b;
    });
    for (int r = 0; r < rows; ++r) {
      target[static_cast<size_t>(r)] += m(idx[static_cast<size_t>(r)], c);
    }
  }
  for (double& t : target) t /= static_cast<double>(cols);

  ExpressionMatrix out = m;
  for (int c = 0; c < cols; ++c) {
    const std::vector<int>& idx = order[static_cast<size_t>(c)];
    for (int r = 0; r < rows; ++r) {
      out(idx[static_cast<size_t>(r)], c) = target[static_cast<size_t>(r)];
    }
  }
  return out;
}

int64_t CountMissing(const ExpressionMatrix& m) {
  int64_t n = 0;
  for (int i = 0; i < m.num_genes(); ++i) {
    for (int j = 0; j < m.num_conditions(); ++j) {
      if (std::isnan(m(i, j))) ++n;
    }
  }
  return n;
}

}  // namespace matrix
}  // namespace regcluster
