// Per-gene regulation threshold policies (Section 3.1).
//
// The paper defines gamma_i as a fraction of the gene's expression range
// (Eq. 4) but notes that "other regulation thresholds, such as the average
// difference between every pair of conditions whose values are closest
// [OP-cluster], normalized threshold [Ji & Tan], average expression value
// [Chen et al.], etc., can be used where appropriate".  This module
// implements that menu; every policy maps (gene profile, gamma) to an
// absolute threshold gamma_i that the RWave model and the validity oracle
// consume.

#ifndef REGCLUSTER_CORE_THRESHOLD_H_
#define REGCLUSTER_CORE_THRESHOLD_H_

#include "matrix/store.h"

namespace regcluster {
namespace core {

/// How the per-gene regulation threshold gamma_i is derived.
enum class GammaPolicy : int {
  /// gamma_i = gamma * (row max - row min).  Equation 4, the default.
  kRangeFraction = 0,
  /// gamma_i = gamma * stddev(row) -- the normalized threshold of Ji & Tan.
  kStdDevFraction = 1,
  /// gamma_i = gamma * |mean(row)| -- threshold relative to the average
  /// expression level (Chen, Filkov & Skiena).
  kMeanFraction = 2,
  /// gamma_i = gamma * mean adjacent gap of the sorted profile -- the
  /// OP-cluster-style "closest pairs" threshold.  With gamma = 1 this is
  /// exactly their similarity-grouping width.
  kClosestGapFraction = 3,
  /// gamma_i = gamma, taken as an absolute expression difference.
  kAbsolute = 4,
};

/// Returns a stable name for logging / CLI parsing ("range", "stddev",
/// "mean", "closest-gap", "absolute").
const char* GammaPolicyName(GammaPolicy policy);

/// Parses the names accepted by GammaPolicyName; returns false on unknown.
bool ParseGammaPolicy(const std::string& name, GammaPolicy* policy);

/// A policy plus its scale parameter.
struct GammaSpec {
  GammaPolicy policy = GammaPolicy::kRangeFraction;
  /// Fraction in [0, 1] for the relative policies; an absolute expression
  /// difference (>= 0) for kAbsolute.
  double gamma = 0.1;
};

/// Absolute threshold gamma_i for one gene under the spec.  NaN cells are
/// ignored; an all-NaN or constant row yields 0 for the relative policies.
double AbsoluteGamma(const matrix::MatrixStore& data, int gene,
                     const GammaSpec& spec);

/// Same, over a raw value span.  Lets incremental callers recompute the
/// threshold a model *was* built under from a prefix of an appended row
/// (conditions only ever append at the end, so the first n values of the
/// new row are exactly the old row) without retaining the old matrix.
double AbsoluteGammaSpan(const double* row, int n, const GammaSpec& spec);

}  // namespace core
}  // namespace regcluster

#endif  // REGCLUSTER_CORE_THRESHOLD_H_
