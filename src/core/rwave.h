// The RWave^gamma model (Definition 3.1 of the paper).
//
// For one gene, the model is (a) the gene's conditions sorted in
// non-descending order of expression value, and (b) the set of *bordering
// regulation pointers*: non-embedded (tail, head) position pairs such that
// every condition at position <= tail is an up-regulation predecessor
// (difference > gamma_i) of every condition at position >= head.
//
// The model answers, in O(log P) where P is the number of pointers:
//   * is condition b a regulation successor of condition a? (Lemma 3.1)
//   * what is the nearest position reachable by one regulated step up/down?
//   * how long is the longest regulation chain starting at a position,
//     growing upward or downward?  (used by the MinC pruning)
//
// Ties in expression value are ordered by condition id (deterministic); tied
// conditions are never regulated against each other since regulation is a
// strict inequality, so the tie order does not affect which regulation
// chains exist.

#ifndef REGCLUSTER_CORE_RWAVE_H_
#define REGCLUSTER_CORE_RWAVE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "matrix/store.h"

namespace regcluster {
namespace util {
namespace simd {
struct SortScratch;
}  // namespace simd
}  // namespace util
namespace core {

/// One bordering regulation pointer, in *position* coordinates (indices into
/// the sorted order).  Certifies Reg(up) for every pair (q <= tail_pos,
/// p >= head_pos).  Pointers of a model are strictly increasing in both
/// coordinates (non-embedding, Definition 3.1(2)).
struct RegulationPointer {
  int tail_pos;  ///< position of the pointer's predecessor end (lower value)
  int head_pos;  ///< position of the pointer's successor end (higher value)

  bool operator==(const RegulationPointer& o) const {
    return tail_pos == o.tail_pos && head_pos == o.head_pos;
  }
};

/// RWave^gamma model of a single gene.
class RWaveModel {
 public:
  /// Builds the model for `n` expression values with an *absolute* regulation
  /// threshold: conditions a, b are regulated iff |values[a] - values[b]| >
  /// gamma_abs.  Values must be finite (impute missing values first).
  static RWaveModel Build(const double* values, int n, double gamma_abs);

  /// Same, reusing caller-owned sort buffers so bulk builders (RWaveSet,
  /// SharedGammaModel) do not allocate per gene.  `scratch` may be shared
  /// across calls but not across threads.
  static RWaveModel Build(const double* values, int n, double gamma_abs,
                          util::simd::SortScratch* scratch);

  /// Convenience overload for a whole matrix row with the paper's relative
  /// threshold gamma in [0, 1]: gamma_i = gamma * (row max - row min), Eq. 4.
  static RWaveModel BuildForGene(const matrix::MatrixStore& data, int gene,
                                 double gamma);

  /// Delta update for appended conditions.  `values` is the gene's *full*
  /// row after the append (the first num_conditions() entries must be the
  /// values this model was built from) and `n_new` its new length.  The
  /// appended conditions are merged into the sorted order and the pointer /
  /// chain tables are recomputed -- byte-identical to Build(values, n_new,
  /// gamma_abs()) at a fraction of the sort cost, because the old order is
  /// reused and only the appended items are sorted.
  ///
  /// Only valid while the absolute threshold is unchanged: when the append
  /// moves the row range (or any other policy input), the caller must
  /// rebuild from scratch with the new gamma_abs instead.
  void AppendConditions(const double* values, int n_new);

  int num_conditions() const { return static_cast<int>(order_.size()); }

  /// Absolute threshold the model was built with.
  double gamma_abs() const { return gamma_abs_; }

  /// Position (rank in sorted order) of condition `cond`.
  int position(int cond) const { return pos_[static_cast<size_t>(cond)]; }

  /// Condition id at sorted position `pos`.
  int condition_at(int pos) const { return order_[static_cast<size_t>(pos)]; }

  /// Expression value at sorted position `pos`.
  double value_at(int pos) const { return sorted_values_[static_cast<size_t>(pos)]; }

  /// The bordering regulation pointers, sorted (strictly increasing in both
  /// coordinates).
  const std::vector<RegulationPointer>& pointers() const { return pointers_; }

  /// True iff `cond_hi` is a regulation successor of `cond_lo` for this gene
  /// (equivalently the pair's expression difference exceeds gamma_abs with
  /// value(cond_hi) > value(cond_lo)).  Lemma 3.1 lookup.
  bool IsUpRegulated(int cond_lo, int cond_hi) const;

  /// Smallest position reachable from `pos` by one regulated step upward:
  /// the head of the first pointer with tail >= pos.  Returns -1 if no
  /// regulated step up exists.  Every position >= the returned value is a
  /// regulation successor of `pos`.
  int FirstSuccessorPos(int pos) const;

  /// Largest position reachable from `pos` by one regulated step downward:
  /// the tail of the last pointer with head <= pos.  Returns -1 if none.
  /// Every position <= the returned value is a regulation predecessor.
  int LastPredecessorPos(int pos) const;

  /// Length of the longest regulation chain starting at `pos` and growing
  /// upward (including `pos` itself); >= 1.
  int MaxChainUp(int pos) const { return max_up_[static_cast<size_t>(pos)]; }

  /// Length of the longest regulation chain starting at `pos` and growing
  /// downward (including `pos` itself); >= 1.
  int MaxChainDown(int pos) const { return max_down_[static_cast<size_t>(pos)]; }

  /// Heap bytes held by this model's tables (capacity, not size -- the
  /// figure the ModelCache budget charges per entry).
  size_t MemoryBytes() const {
    return (order_.capacity() + pos_.capacity() + max_up_.capacity() +
            max_down_.capacity()) *
               sizeof(int) +
           sorted_values_.capacity() * sizeof(double) +
           pointers_.capacity() * sizeof(RegulationPointer);
  }

 private:
  /// Rebuilds pointers_ / max_up_ / max_down_ from the already-populated
  /// order_ / pos_ / sorted_values_ tables (the phase of Build that follows
  /// the sort).  Factored out so AppendConditions can reuse it verbatim:
  /// identical code over identical sorted arrays is what makes the delta
  /// path byte-identical to a fresh Build.
  void FinishFromSortedOrder();

  double gamma_abs_ = 0.0;
  std::vector<int> order_;            // position -> condition id
  std::vector<int> pos_;              // condition id -> position
  std::vector<double> sorted_values_; // position -> value
  std::vector<RegulationPointer> pointers_;
  std::vector<int> max_up_;           // position -> longest chain upward
  std::vector<int> max_down_;         // position -> longest chain downward
};

/// RWave models for every gene of a matrix, built with the paper's relative
/// threshold (Eq. 4).
class RWaveSet {
 public:
  /// Builds all models.  `gamma` is the user parameter in [0, 1].
  /// `num_threads` > 1 builds gene stripes in parallel on a TaskPool; the
  /// models land in pre-assigned slots, so the result is byte-identical at
  /// any thread count (0 = hardware concurrency).
  explicit RWaveSet(const matrix::MatrixStore& data, double gamma,
                    int num_threads = 1);

  const RWaveModel& model(int gene) const {
    return models_[static_cast<size_t>(gene)];
  }
  int num_genes() const { return static_cast<int>(models_.size()); }
  double gamma() const { return gamma_; }

 private:
  double gamma_;
  std::vector<RWaveModel> models_;
};

/// Builds one RWave model per gene of `data`, with the absolute threshold
/// for gene g supplied by `gamma_abs_fn(g)`.  num_threads != 1 stripes gene
/// ranges over a TaskPool (0 = hardware concurrency); every model lands in
/// its pre-assigned slot, so the output is byte-identical at any thread
/// count.  This is the shared bulk builder behind RWaveSet and the miner's
/// SharedGammaModel.
std::vector<RWaveModel> BuildRWaveModels(
    const matrix::MatrixStore& data,
    const std::function<double(int)>& gamma_abs_fn, int num_threads);

}  // namespace core
}  // namespace regcluster

#endif  // REGCLUSTER_CORE_RWAVE_H_
