#include "core/rwave.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/simd/radix_sort.h"
#include "util/task_pool.h"

namespace regcluster {
namespace core {

RWaveModel RWaveModel::Build(const double* values, int n, double gamma_abs) {
  util::simd::SortScratch scratch;
  return Build(values, n, gamma_abs, &scratch);
}

RWaveModel RWaveModel::Build(const double* values, int n, double gamma_abs,
                             util::simd::SortScratch* scratch) {
  assert(n >= 0);
  assert(gamma_abs >= 0.0);
  RWaveModel m;
  m.gamma_abs_ = gamma_abs;
  m.order_.resize(static_cast<size_t>(n));
  m.pos_.resize(static_cast<size_t>(n));
  m.sorted_values_.resize(static_cast<size_t>(n));
  // Non-descending by value; ties broken by condition id for determinism.
  // The radix pipeline over order-preserving keys with an ascending-id base
  // order is exactly that comparator: stable passes keep the id order on
  // value ties (see util/simd/radix_sort.h).
  if (n > 0) {
    scratch->Reserve(n);
    uint64_t* keys = scratch->keys.data();
    int* idx = scratch->idx.data();
    for (int i = 0; i < n; ++i) {
      assert(std::isfinite(values[i]) && "RWave input must be imputed");
      keys[i] = util::simd::OrderKey(values[i]);
      idx[i] = i;
    }
    util::simd::SortPairsByKeyStable(n, scratch, m.order_.data(),
                                     m.sorted_values_.data());
  }
  for (int p = 0; p < n; ++p) {
    const int cond = m.order_[static_cast<size_t>(p)];
    m.pos_[static_cast<size_t>(cond)] = p;
    // Re-gather the raw bytes: the key round trip canonicalizes -0.0 to
    // +0.0, but value_at() promises the original matrix values.
    m.sorted_values_[static_cast<size_t>(p)] = values[cond];
  }
  m.FinishFromSortedOrder();
  return m;
}

void RWaveModel::FinishFromSortedOrder() {
  const int n = num_conditions();
  const double gamma_abs = gamma_abs_;

  // Pointer construction (Figure 5, model-construction phase): walk the
  // sorted order; for each position j locate the closest regulation
  // predecessor k (largest position with value < value[j] - gamma); insert a
  // bordering pointer (k, j) unless the previous pointer already certifies
  // the pair, i.e. its tail >= k (its head is always <= j since heads are
  // the positions at which pointers were inserted, in increasing order).
  //
  // The predecessor boundary -- the first position k with vj - vk <= gamma,
  // by the exact Eq. 3 comparison so that floating-point rounding cannot
  // disagree with direct pairwise checks -- is non-decreasing in j (vj is
  // non-descending), so one forward-only edge pointer replaces the per-j
  // binary search: O(n) total instead of O(n log n).
  pointers_.clear();
  const double* sv = sorted_values_.data();
  int k_edge = 0;  // first position in [0, j) whose value is NOT regulated
  for (int j = 1; j < n; ++j) {
    const double vj = sv[j];
    while (k_edge < j && vj - sv[k_edge] > gamma_abs) ++k_edge;
    if (k_edge == 0) continue;  // no predecessor
    const int k = k_edge - 1;
    if (!pointers_.empty() && pointers_.back().tail_pos >= k) continue;
    pointers_.push_back(RegulationPointer{k, j});
  }

  // Longest-chain tables.  A regulated step up from position p lands at any
  // position >= head of the first pointer with tail >= p; jumping to exactly
  // that head is optimal because the reachable-length function is
  // non-increasing in position (heads/tails are monotone).  Pointer tails
  // and heads are strictly increasing, so the "first pointer with tail >= p"
  // (resp. "last pointer with head <= p") index moves monotonically with p
  // and each sweep amortizes to O(n + P) -- same answers as the binary
  // searches in FirstSuccessorPos / LastPredecessorPos.
  const int num_ptrs = static_cast<int>(pointers_.size());
  max_up_.assign(static_cast<size_t>(n), 1);
  int j0 = num_ptrs;  // first pointer with tail_pos >= p (p descending)
  for (int p = n - 1; p >= 0; --p) {
    while (j0 > 0 && pointers_[static_cast<size_t>(j0 - 1)].tail_pos >= p) {
      --j0;
    }
    if (j0 < num_ptrs) {
      const int h = pointers_[static_cast<size_t>(j0)].head_pos;
      max_up_[static_cast<size_t>(p)] = 1 + max_up_[static_cast<size_t>(h)];
    }
  }
  max_down_.assign(static_cast<size_t>(n), 1);
  int j1 = -1;  // last pointer with head_pos <= p (p ascending)
  for (int p = 0; p < n; ++p) {
    while (j1 + 1 < num_ptrs &&
           pointers_[static_cast<size_t>(j1 + 1)].head_pos <= p) {
      ++j1;
    }
    if (j1 >= 0) {
      const int t = pointers_[static_cast<size_t>(j1)].tail_pos;
      max_down_[static_cast<size_t>(p)] =
          1 + max_down_[static_cast<size_t>(t)];
    }
  }
}

void RWaveModel::AppendConditions(const double* values, int n_new) {
  const int n_old = num_conditions();
  assert(n_new >= n_old);
  if (n_new == n_old) return;

  // Sort only the appended ids by (order key, id).  Build's stable radix
  // sort over ascending-id base order is exactly the (OrderKey, id)
  // comparator, so merging the old order (already in that order, and with
  // every old id smaller than every appended id) against this run -- old
  // side first on key ties -- reproduces the fresh sort byte for byte.
  std::vector<int> added(static_cast<size_t>(n_new - n_old));
  std::iota(added.begin(), added.end(), n_old);
  std::sort(added.begin(), added.end(), [values](int a, int b) {
    const uint64_t ka = util::simd::OrderKey(values[a]);
    const uint64_t kb = util::simd::OrderKey(values[b]);
    return ka != kb ? ka < kb : a < b;
  });

  std::vector<int> order(static_cast<size_t>(n_new));
  std::vector<double> sorted_values(static_cast<size_t>(n_new));
  size_t i = 0;  // next old position
  size_t j = 0;  // next appended item
  for (size_t out = 0; out < static_cast<size_t>(n_new); ++out) {
    const bool take_old =
        i < static_cast<size_t>(n_old) &&
        (j >= added.size() ||
         util::simd::OrderKey(sorted_values_[i]) <=
             util::simd::OrderKey(values[added[j]]));
    if (take_old) {
      order[out] = order_[i];
      sorted_values[out] = sorted_values_[i];
      ++i;
    } else {
      const int cond = added[j++];
      assert(std::isfinite(values[cond]) && "RWave input must be imputed");
      order[out] = cond;
      sorted_values[out] = values[cond];
    }
  }
  order_ = std::move(order);
  sorted_values_ = std::move(sorted_values);
  pos_.resize(static_cast<size_t>(n_new));
  for (int p = 0; p < n_new; ++p) {
    pos_[static_cast<size_t>(order_[static_cast<size_t>(p)])] = p;
  }
  FinishFromSortedOrder();
}

RWaveModel RWaveModel::BuildForGene(const matrix::MatrixStore& data, int gene,
                                    double gamma) {
  const auto [lo, hi] = data.RowRange(gene);
  const double gamma_abs = gamma * (hi - lo);
  return Build(data.row_data(gene), data.num_conditions(), gamma_abs);
}

bool RWaveModel::IsUpRegulated(int cond_lo, int cond_hi) const {
  const int a = position(cond_lo);
  const int b = position(cond_hi);
  if (a >= b) return false;
  const int h = FirstSuccessorPos(a);
  return h >= 0 && h <= b;
}

int RWaveModel::FirstSuccessorPos(int pos) const {
  // First pointer with tail >= pos; pointers sorted by tail.
  auto it = std::lower_bound(
      pointers_.begin(), pointers_.end(), pos,
      [](const RegulationPointer& ptr, int p) { return ptr.tail_pos < p; });
  if (it == pointers_.end()) return -1;
  return it->head_pos;
}

int RWaveModel::LastPredecessorPos(int pos) const {
  // Last pointer with head <= pos; pointers sorted by head.
  auto it = std::upper_bound(
      pointers_.begin(), pointers_.end(), pos,
      [](int p, const RegulationPointer& ptr) { return p < ptr.head_pos; });
  if (it == pointers_.begin()) return -1;
  return std::prev(it)->tail_pos;
}

RWaveSet::RWaveSet(const matrix::MatrixStore& data, double gamma,
                   int num_threads)
    : gamma_(gamma) {
  models_ = BuildRWaveModels(
      data,
      [&data, gamma](int g) {
        const auto [lo, hi] = data.RowRange(g);
        return gamma * (hi - lo);
      },
      num_threads);
}

std::vector<RWaveModel> BuildRWaveModels(
    const matrix::MatrixStore& data,
    const std::function<double(int)>& gamma_abs_fn, int num_threads) {
  const int num_genes = data.num_genes();
  const int num_conds = data.num_conditions();
  std::vector<RWaveModel> models(static_cast<size_t>(num_genes));
  const auto build_range = [&](int begin, int end,
                               util::simd::SortScratch* scratch) {
    for (int g = begin; g < end; ++g) {
      models[static_cast<size_t>(g)] = RWaveModel::Build(
          data.row_data(g), num_conds, gamma_abs_fn(g), scratch);
    }
  };
  if (num_threads == 1 || num_genes == 0) {
    util::simd::SortScratch scratch;  // shared: one allocation for all genes
    build_range(0, num_genes, &scratch);
    return models;
  }
  // Parallel path: contiguous gene stripes, one task per stripe, each with
  // its own sort scratch.  Slot-assigned writes keep the result
  // byte-identical to the serial loop at any thread count.
  util::TaskPool pool(num_threads);
  const int workers = pool.num_workers();
  int stripe = (num_genes + workers * 4 - 1) / (workers * 4);
  stripe = std::max(stripe, 64);
  std::vector<util::simd::SortScratch> scratches(
      static_cast<size_t>(workers));
  for (int begin = 0; begin < num_genes; begin += stripe) {
    const int end = std::min(begin + stripe, num_genes);
    pool.Submit([&, begin, end](int worker) {
      build_range(begin, end, &scratches[static_cast<size_t>(worker)]);
    });
  }
  pool.Wait();
  return models;
}

}  // namespace core
}  // namespace regcluster
