#include "core/rwave.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace regcluster {
namespace core {

RWaveModel RWaveModel::Build(const double* values, int n, double gamma_abs) {
  assert(n >= 0);
  assert(gamma_abs >= 0.0);
  RWaveModel m;
  m.gamma_abs_ = gamma_abs;
  m.order_.resize(static_cast<size_t>(n));
  std::iota(m.order_.begin(), m.order_.end(), 0);
  // Non-descending by value; ties broken by condition id for determinism.
  std::sort(m.order_.begin(), m.order_.end(), [&](int a, int b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });
  m.pos_.resize(static_cast<size_t>(n));
  m.sorted_values_.resize(static_cast<size_t>(n));
  for (int p = 0; p < n; ++p) {
    const int cond = m.order_[static_cast<size_t>(p)];
    assert(std::isfinite(values[cond]) && "RWave input must be imputed");
    m.pos_[static_cast<size_t>(cond)] = p;
    m.sorted_values_[static_cast<size_t>(p)] = values[cond];
  }

  // Pointer construction (Figure 5, model-construction phase): walk the
  // sorted order; for each position j locate the closest regulation
  // predecessor k (largest position with value < value[j] - gamma); insert a
  // bordering pointer (k, j) unless the previous pointer already certifies
  // the pair, i.e. its tail >= k (its head is always <= j since heads are
  // the positions at which pointers were inserted, in increasing order).
  for (int j = 1; j < n; ++j) {
    const double vj = m.sorted_values_[static_cast<size_t>(j)];
    // Largest k < j whose value is regulated against vj, using the exact
    // Eq. 3 comparison (vj - vk > gamma) so that floating-point rounding
    // cannot disagree with direct pairwise checks.
    auto it = std::partition_point(
        m.sorted_values_.begin(), m.sorted_values_.begin() + j,
        [&](double vk) { return vj - vk > gamma_abs; });
    if (it == m.sorted_values_.begin()) continue;  // no predecessor
    const int k = static_cast<int>(it - m.sorted_values_.begin()) - 1;
    if (!m.pointers_.empty() && m.pointers_.back().tail_pos >= k) continue;
    m.pointers_.push_back(RegulationPointer{k, j});
  }

  // Longest-chain tables.  A regulated step up from position p lands at any
  // position >= head of the first pointer with tail >= p; jumping to exactly
  // that head is optimal because the reachable-length function is
  // non-increasing in position (heads/tails are monotone).
  m.max_up_.assign(static_cast<size_t>(n), 1);
  for (int p = n - 1; p >= 0; --p) {
    const int h = m.FirstSuccessorPos(p);
    if (h >= 0) {
      m.max_up_[static_cast<size_t>(p)] = 1 + m.max_up_[static_cast<size_t>(h)];
    }
  }
  m.max_down_.assign(static_cast<size_t>(n), 1);
  for (int p = 0; p < n; ++p) {
    const int t = m.LastPredecessorPos(p);
    if (t >= 0) {
      m.max_down_[static_cast<size_t>(p)] =
          1 + m.max_down_[static_cast<size_t>(t)];
    }
  }
  return m;
}

RWaveModel RWaveModel::BuildForGene(const matrix::ExpressionMatrix& data,
                                    int gene, double gamma) {
  const auto [lo, hi] = data.RowRange(gene);
  const double gamma_abs = gamma * (hi - lo);
  return Build(data.row_data(gene), data.num_conditions(), gamma_abs);
}

bool RWaveModel::IsUpRegulated(int cond_lo, int cond_hi) const {
  const int a = position(cond_lo);
  const int b = position(cond_hi);
  if (a >= b) return false;
  const int h = FirstSuccessorPos(a);
  return h >= 0 && h <= b;
}

int RWaveModel::FirstSuccessorPos(int pos) const {
  // First pointer with tail >= pos; pointers sorted by tail.
  auto it = std::lower_bound(
      pointers_.begin(), pointers_.end(), pos,
      [](const RegulationPointer& ptr, int p) { return ptr.tail_pos < p; });
  if (it == pointers_.end()) return -1;
  return it->head_pos;
}

int RWaveModel::LastPredecessorPos(int pos) const {
  // Last pointer with head <= pos; pointers sorted by head.
  auto it = std::upper_bound(
      pointers_.begin(), pointers_.end(), pos,
      [](int p, const RegulationPointer& ptr) { return p < ptr.head_pos; });
  if (it == pointers_.begin()) return -1;
  return std::prev(it)->tail_pos;
}

RWaveSet::RWaveSet(const matrix::ExpressionMatrix& data, double gamma)
    : gamma_(gamma) {
  models_.reserve(static_cast<size_t>(data.num_genes()));
  for (int g = 0; g < data.num_genes(); ++g) {
    models_.push_back(RWaveModel::BuildForGene(data, g, gamma));
  }
}

}  // namespace core
}  // namespace regcluster
