#include "core/bicluster.h"

#include <algorithm>

#include "util/string_util.h"

namespace regcluster {
namespace core {

std::vector<int> RegCluster::AllGenes() const {
  std::vector<int> out;
  out.reserve(p_genes.size() + n_genes.size());
  std::merge(p_genes.begin(), p_genes.end(), n_genes.begin(), n_genes.end(),
             std::back_inserter(out));
  return out;
}

std::vector<int> RegCluster::SortedConditions() const {
  std::vector<int> out = chain;
  std::sort(out.begin(), out.end());
  return out;
}

std::string RegCluster::Key() const {
  std::string key;
  key.reserve((chain.size() + p_genes.size() + n_genes.size()) * 6);
  for (int c : chain) key += util::StrFormat("%d,", c);
  key += '|';
  for (int g : AllGenes()) key += util::StrFormat("%d,", g);
  return key;
}

Bicluster ToBicluster(const RegCluster& c) {
  Bicluster b;
  b.genes = c.AllGenes();
  b.conditions = c.SortedConditions();
  return b;
}

namespace {

/// Size of the intersection of two sorted int vectors.
int64_t IntersectionSize(const std::vector<int>& a, const std::vector<int>& b) {
  int64_t n = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

/// True iff sorted `a` is a subset of sorted `b`.
bool IsSubset(const std::vector<int>& a, const std::vector<int>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// True iff `sub` occurs as a contiguous run inside `seq`.
bool IsContiguousSubsequence(const std::vector<int>& sub,
                             const std::vector<int>& seq) {
  if (sub.empty()) return true;
  if (sub.size() > seq.size()) return false;
  return std::search(seq.begin(), seq.end(), sub.begin(), sub.end()) !=
         seq.end();
}

}  // namespace

int64_t SharedCells(const Bicluster& a, const Bicluster& b) {
  return IntersectionSize(a.genes, b.genes) *
         IntersectionSize(a.conditions, b.conditions);
}

double OverlapFraction(const Bicluster& a, const Bicluster& b) {
  const int64_t cells_a = a.NumCells();
  const int64_t cells_b = b.NumCells();
  const int64_t smaller = std::min(cells_a, cells_b);
  if (smaller == 0) return 0.0;
  return static_cast<double>(SharedCells(a, b)) /
         static_cast<double>(smaller);
}

bool IsSubcluster(const Bicluster& inner, const Bicluster& outer) {
  return IsSubset(inner.genes, outer.genes) &&
         IsSubset(inner.conditions, outer.conditions);
}

bool IsDominated(const RegCluster& a, const RegCluster& b) {
  if (!IsSubset(a.AllGenes(), b.AllGenes())) return false;
  if (IsContiguousSubsequence(a.chain, b.chain)) return true;
  std::vector<int> reversed(b.chain.rbegin(), b.chain.rend());
  return IsContiguousSubsequence(a.chain, reversed);
}

std::vector<RegCluster> RemoveDominated(std::vector<RegCluster> clusters) {
  std::vector<bool> dead(clusters.size(), false);
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < clusters.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (clusters[i] == clusters[j]) {
        // Exact duplicate: keep the earlier one.
        if (j > i) dead[j] = true;
        continue;
      }
      if (IsDominated(clusters[j], clusters[i])) dead[j] = true;
    }
  }
  std::vector<RegCluster> out;
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (!dead[i]) out.push_back(std::move(clusters[i]));
  }
  return out;
}

}  // namespace core
}  // namespace regcluster
