// Batch parameter-sweep engine: many Mine() calls over one matrix, sharing
// everything that is semantically shareable.
//
// The paper's entire Section 5 evaluation is parameter sweeps -- sensitivity
// of cluster counts and runtime to gamma, epsilon, MinG and MinC -- and a
// production deployment serves many such requests against one loaded matrix.
// Running each point as an independent mine repeats three costs that do not
// depend on the point: loading the matrix, building the per-gene RWave^gamma
// models, and baking the successor-bitmap index.  The engine amortizes them:
//
//   * the matrix is borrowed once for the whole sweep;
//   * points with the same (gamma_policy, gamma) share one immutable
//     SharedGammaModel, built with the *largest* MinC of the group -- index
//     eligibility queries clamp, so the shared index answers every smaller
//     MinC bit-identically (see rwave_index.h);
//   * all runs' phase-A root/subtree tasks interleave on one work-stealing
//     TaskPool (inter-run parallelism composing with intra-run tasks), via
//     the miner's staged Prepare / SubmitParallelWork / Finalize API.
//
// Determinism contract: every executed run's clusters are byte-identical to
// an independent RegClusterMiner::Mine() at that point's options, at any
// thread count (sweep_test verifies at 1/2/4).  Sweep-level count budgets
// are enforced at *run boundaries* from each run's deterministic totals, so
// a budget-truncated sweep covers the same canonical prefix of points at any
// thread count; SweepReport::first_unfinished is the resume point (re-run
// the remaining points, mirroring the miner's ResumeToken contract).
//
// Budget composition ("one guard spanning the sweep, per-run sub-budgets"):
// each run keeps its own BudgetGuard built from its point's limits; the
// engine overlays the sweep-level limits around it --
//   * sweep max_nodes / max_clusters: checked after each run finalizes,
//     against the run's deterministic totals.  The first run that does not
//     fit is excluded whole (its partial work is discarded) and the sweep
//     truncates at that boundary.  Runs already in flight on the pool when
//     the budget runs out are wasted speculation, never wrong output.
//   * sweep deadline / cancel token: injected into every run that does not
//     carry its own, so a hard stop interrupts mid-run; the interrupted run
//     is excluded and the sweep truncates at its boundary.  (Hard-stop cut
//     points are machine-dependent, exactly as for a single mine.)

#ifndef REGCLUSTER_CORE_SWEEP_H_
#define REGCLUSTER_CORE_SWEEP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/miner.h"
#include "matrix/store.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace regcluster {
namespace core {

/// Sweep-level execution knobs.  The per-point mining semantics live in each
/// point's MinerOptions; everything here is an execution overlay.
struct SweepOptions {
  /// Worker threads for the shared pool; 1 = fully serial, 0 = hardware
  /// concurrency.  Per-point MinerOptions::num_threads is ignored -- the
  /// engine owns scheduling (the output is thread-count-invariant anyway).
  int num_threads = 1;

  /// Share one model/index per distinct (gamma_policy, gamma).  Off builds
  /// per-run models exactly like independent mines (for A/B measurement).
  bool share_models = true;

  /// Sweep-level budgets; -1 / null disables each.  See the file comment
  /// for how they compose with per-point budgets.
  int64_t max_nodes = -1;
  int64_t max_clusters = -1;
  double deadline_ms = -1.0;
  std::shared_ptr<util::CancellationToken> cancel_token;
};

/// One grid point's result.  `executed` is the authoritative flag: when
/// false (sweep truncated before or at this run, or `status` holds a
/// per-point validation error) the clusters/stats/outcome fields are empty.
struct SweepRun {
  /// The options as executed: the point's options plus the engine-injected
  /// shared model / cancel token / deadline overlay.
  MinerOptions options;
  /// Per-point validation result (e.g. a gamma out of range fails that
  /// point, not the sweep).
  util::Status status;
  bool executed = false;
  /// True when this run reused an engine-built SharedGammaModel (its stats
  /// then report index_builds == 0).
  bool used_shared_model = false;
  std::vector<RegCluster> clusters;
  MinerStats stats;
  MineOutcome outcome;
};

/// Aggregated result of SweepEngine::Run().
struct SweepReport {
  /// Same length and order as the input points.
  std::vector<SweepRun> runs;
  /// kTruncated iff a sweep-level budget/deadline/cancel cut the sweep; a
  /// per-point soft failure (bad options) does not truncate.
  MineStatus status = MineStatus::kComplete;
  util::StopReason stop_reason = util::StopReason::kNone;
  /// Runs with executed == true.
  int runs_executed = 0;
  /// First point not covered by the output (the resume boundary); -1 when
  /// the sweep attempted every point.
  int first_unfinished = -1;
  /// Distinct gamma groups the engine built a SharedGammaModel for (0 when
  /// share_models is off); runs add their own stats.index_builds on top.
  int index_builds = 0;
  /// Heap bytes of the engine-built shared models.
  int64_t shared_model_bytes = 0;
  double wall_seconds = 0.0;
  /// Sums over executed runs (deterministic, like the per-run stats).
  /// clusters_total counts the clusters present in the report (after any
  /// dominance removal), not the raw stats.clusters_emitted counter.
  int64_t nodes_total = 0;
  int64_t clusters_total = 0;
};

/// Executes a batch of mining runs over one matrix.  Construction is cheap;
/// all work happens in Run().  The matrix must outlive the engine.
class SweepEngine {
 public:
  SweepEngine(const matrix::MatrixStore& data, SweepOptions options);

  /// Runs every point.  Fails only on an empty point list or an invalid
  /// engine configuration; per-point option errors are recorded in the
  /// corresponding SweepRun::status and do not abort the sweep.  See the
  /// file comment for the determinism and truncation contracts.
  util::StatusOr<SweepReport> Run(const std::vector<MinerOptions>& points);

 private:
  const matrix::MatrixStore& data_;
  SweepOptions options_;
};

}  // namespace core
}  // namespace regcluster

#endif  // REGCLUSTER_CORE_SWEEP_H_
