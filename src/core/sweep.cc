#include "core/sweep.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/threshold.h"
#include "util/task_pool.h"
#include "util/timer.h"

namespace regcluster {
namespace core {

namespace {

// A gamma group shares one immutable model across all its points.  Keyed by
// the exact bit pattern of gamma (any numeric difference is a different
// per-gene threshold, hence a different model).
using GammaKey = std::pair<int, uint64_t>;

GammaKey KeyOf(const MinerOptions& opts) {
  return {static_cast<int>(opts.gamma_policy),
          std::bit_cast<uint64_t>(opts.gamma)};
}

// Mirrors the miner's own gamma validation.  Points failing this are left to
// Prepare() to reject (recorded per-run); they must not join a group, since
// SharedGammaModel::Build asserts a valid spec.
bool GammaLooksValid(const MinerOptions& opts) {
  if (opts.gamma < 0.0) return false;
  if (opts.gamma_policy != GammaPolicy::kAbsolute && opts.gamma > 1.0) {
    return false;
  }
  return true;
}

}  // namespace

SweepEngine::SweepEngine(const matrix::MatrixStore& data,
                         SweepOptions options)
    : data_(data), options_(std::move(options)) {}

util::StatusOr<SweepReport> SweepEngine::Run(
    const std::vector<MinerOptions>& points) {
  util::WallTimer wall;
  if (points.empty()) {
    return util::Status::InvalidArgument("sweep has no points");
  }
  if (options_.num_threads < 0) {
    return util::Status::InvalidArgument("num_threads must be >= 0");
  }
  if (data_.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix has missing values; impute before mining");
  }
  int threads = options_.num_threads;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }

  SweepReport report;
  report.runs.resize(points.size());

  // --- Group points by gamma and build the shared models (serially, so the
  // build cost and report.index_builds are deterministic). ---
  struct Group {
    GammaSpec spec;
    int max_minc = 2;
    std::shared_ptr<const SharedGammaModel> model;
  };
  std::vector<Group> groups;                 // first-appearance order
  std::map<GammaKey, size_t> group_of;
  std::vector<int> point_group(points.size(), -1);
  for (size_t i = 0; i < points.size(); ++i) {
    report.runs[i].options = points[i];
    // The engine owns scheduling; a run must never spin up its own pool.
    report.runs[i].options.num_threads = 1;
    if (!options_.share_models || !GammaLooksValid(points[i])) continue;
    auto [it, inserted] = group_of.try_emplace(KeyOf(points[i]), groups.size());
    if (inserted) {
      groups.push_back(
          Group{GammaSpec{points[i].gamma_policy, points[i].gamma}, 2, nullptr});
    }
    Group& grp = groups[it->second];
    grp.max_minc = std::max(grp.max_minc, points[i].min_conditions);
    point_group[i] = static_cast<int>(it->second);
  }
  for (Group& grp : groups) {
    grp.model = SharedGammaModel::Build(data_, grp.spec, grp.max_minc);
    report.shared_model_bytes +=
        static_cast<int64_t>(grp.model->MemoryBytes());
  }
  report.index_builds = static_cast<int>(groups.size());

  // --- Per-run overlay bookkeeping.  The sweep's hard-stop sources are
  // injected only into runs that do not carry their own; the flags record
  // which source is the *binding* one, so a truncated run can be classified
  // as "sweep cut it" (exclude, stop) vs "its own budget cut it" (the output
  // is byte-identical to the independent run: include, continue). ---
  std::vector<char> token_injected(points.size(), 0);
  std::vector<char> deadline_injected(points.size(), 0);
  util::DeadlineSource sweep_deadline;
  if (options_.deadline_ms >= 0) {
    sweep_deadline = util::DeadlineSource::AfterMillis(options_.deadline_ms);
  }

  std::vector<std::unique_ptr<RegClusterMiner>> miners(points.size());
  auto prepare_run = [&](size_t i) -> const util::Status& {
    SweepRun& run = report.runs[i];
    if (point_group[i] >= 0) {
      run.options.shared_model = groups[point_group[i]].model;
      run.used_shared_model = true;
    }
    if (options_.cancel_token != nullptr && run.options.cancel_token == nullptr) {
      run.options.cancel_token = options_.cancel_token;
      token_injected[i] = 1;
    }
    if (sweep_deadline.active()) {
      const double remaining = sweep_deadline.RemainingMillis();
      if (run.options.deadline_ms < 0 || run.options.deadline_ms > remaining) {
        run.options.deadline_ms = remaining;
        deadline_injected[i] = 1;
      }
    }
    miners[i] = std::make_unique<RegClusterMiner>(data_, run.options);
    run.status = miners[i]->Prepare();
    return run.status;
  };

  // --- Phase A: with a pool, every run's root/subtree tasks interleave on
  // it; one Wait() covers the whole sweep.  (Serial sweeps prepare lazily in
  // the canonical walk below, so a sweep deadline is measured against the
  // time each run actually starts.) ---
  std::unique_ptr<util::TaskPool> pool;
  if (threads > 1) {
    pool = std::make_unique<util::TaskPool>(threads);
    for (size_t i = 0; i < points.size(); ++i) {
      if (prepare_run(i).ok()) miners[i]->SubmitParallelWork(pool.get());
    }
    pool->Wait();
  }

  // --- Phase B: canonical serial walk.  Finalization order, budget
  // accounting and truncation decisions are independent of the pool. ---
  constexpr int64_t kUnlimited = std::numeric_limits<int64_t>::max();
  int64_t node_rem = options_.max_nodes >= 0 ? options_.max_nodes : kUnlimited;
  int64_t cluster_rem =
      options_.max_clusters >= 0 ? options_.max_clusters : kUnlimited;
  for (size_t i = 0; i < points.size(); ++i) {
    SweepRun& run = report.runs[i];
    // A sweep-level hard stop observed between runs truncates at the
    // boundary before touching this run.
    util::StopReason hard = util::StopReason::kNone;
    if (options_.cancel_token != nullptr && options_.cancel_token->cancelled()) {
      hard = options_.cancel_token->reason();
    } else if (sweep_deadline.Expired()) {
      hard = util::StopReason::kDeadline;
    }
    if (hard != util::StopReason::kNone) {
      report.stop_reason = hard;
      report.first_unfinished = static_cast<int>(i);
      break;
    }

    if (pool == nullptr) {
      if (!prepare_run(i).ok()) continue;  // soft per-point failure
    } else if (!run.status.ok()) {
      continue;
    }
    auto clusters = miners[i]->Finalize();
    if (!clusters.ok()) {
      run.status = clusters.status();
      miners[i].reset();
      continue;
    }
    run.clusters = std::move(clusters).value();
    run.stats = miners[i]->stats();
    run.outcome = miners[i]->outcome();
    miners[i].reset();

    // An injected hard-stop source interrupted this run mid-flight: its
    // partial output is not the independent-run answer, so the run is
    // excluded whole and the sweep stops at its boundary.
    const bool sweep_interrupted =
        run.outcome.status == MineStatus::kTruncated &&
        ((run.outcome.stop_reason == util::StopReason::kCancelled &&
          token_injected[i] != 0) ||
         (run.outcome.stop_reason == util::StopReason::kDeadline &&
          deadline_injected[i] != 0));
    // Run-boundary enforcement of the sweep count budgets, against the
    // run's deterministic totals: the first run that does not fit is
    // excluded whole.  Same decision at any thread count.
    util::StopReason cut = util::StopReason::kNone;
    if (sweep_interrupted) {
      cut = run.outcome.stop_reason;
    } else if (run.stats.nodes_expanded > node_rem) {
      cut = util::StopReason::kNodeBudget;
    } else if (run.stats.clusters_emitted > cluster_rem) {
      cut = util::StopReason::kClusterBudget;
    }
    if (cut != util::StopReason::kNone) {
      run.clusters.clear();
      run.stats = MinerStats{};
      run.outcome = MineOutcome{};
      report.stop_reason = cut;
      report.first_unfinished = static_cast<int>(i);
      break;
    }

    node_rem -= run.stats.nodes_expanded;
    cluster_rem -= run.stats.clusters_emitted;
    run.executed = true;
    ++report.runs_executed;
    report.nodes_total += run.stats.nodes_expanded;
    // Count the clusters actually present in the report: with dominance
    // removal on, fewer than stats.clusters_emitted (which stays the budget
    // accounting unit above because it is the deterministic search-side
    // counter).
    report.clusters_total += static_cast<int64_t>(run.clusters.size());
  }

  if (report.stop_reason != util::StopReason::kNone) {
    report.status = MineStatus::kTruncated;
  }
  report.wall_seconds = wall.ElapsedSeconds();
  return report;
}

}  // namespace core
}  // namespace regcluster
