#include "core/rwave_index.h"

#include <cstring>

#include "util/simd/dispatch.h"

namespace regcluster {
namespace core {

void RWaveBitmapIndex::Build(const std::vector<RWaveModel>& models,
                             int num_conditions, int max_chain_need) {
  BeginBuild(static_cast<int>(models.size()), num_conditions, max_chain_need);
  BuildScratch scratch;
  for (int g = 0; g < num_genes_; ++g) {
    BuildGene(g, models[static_cast<size_t>(g)], &scratch);
  }
}

void RWaveBitmapIndex::AppendConditions(const std::vector<RWaveModel>& models,
                                        int num_conditions,
                                        int max_chain_need) {
  // The re-layout is a full bake (see the header for why); routing through
  // Build keeps one definition of the table contents, and the assign()s in
  // BeginBuild reuse whatever capacity the old layout already holds.
  Build(models, num_conditions, max_chain_need);
}

void RWaveBitmapIndex::BeginBuild(int num_genes, int num_conditions,
                                  int max_chain_need) {
  num_genes_ = num_genes;
  num_conditions_ = num_conditions;
  words_ = util::WordsForBits(num_conditions);
  max_chain_need_ = max_chain_need < 1 ? 1 : max_chain_need;
  // No chain exceeds num_conditions, so every eligibility row past
  // num_conditions + 1 would be all-zero anyway; ceilings above that clamp
  // to num_conditions + 1 (its row stays all-zero, and queries with a
  // larger need clamp onto it) instead of sizing the tables O(need).  An
  // unchecked request-supplied MinC must not become a giant allocation.
  if (max_chain_need_ > num_conditions_ + 1) {
    max_chain_need_ = num_conditions_ + 1;
  }

  const size_t g_count = static_cast<size_t>(num_genes_);
  const size_t c_count = static_cast<size_t>(num_conditions_);
  const size_t w_count = static_cast<size_t>(words_);
  const size_t need_rows = static_cast<size_t>(max_chain_need_) + 1;

  pos_.assign(g_count * c_count, 0);
  up_cand_.assign(g_count * c_count * w_count, 0);
  down_cand_.assign(g_count * c_count * w_count, 0);
  up_elig_.assign(g_count * need_rows * w_count, 0);
  down_elig_.assign(g_count * need_rows * w_count, 0);
  ones_.assign(w_count, 0);
  if (num_conditions_ == 0) return;
  util::FillOnes(ones_.data(), num_conditions_);
}

void RWaveBitmapIndex::BuildGene(int gene, const RWaveModel& m,
                                 BuildScratch* scratch) {
  if (num_conditions_ == 0) return;
  const size_t c_count = static_cast<size_t>(num_conditions_);
  const size_t w_count = static_cast<size_t>(words_);
  const size_t need_rows = static_cast<size_t>(max_chain_need_) + 1;
  const int g = gene;
  // Row copies below go through the dispatched word-copy kernel: baking
  // moves one full bitmap row per (gene, position), which is the index
  // construction's memory-bound inner loop.
  const util::simd::SimdOps& ops = util::simd::Ops();

  // Per-gene scratch: bitmap of conditions at sorted positions >= p
  // (suffix) and <= p (prefix).  suffix has C+1 rows so row C is empty.
  std::vector<uint64_t>& suffix = scratch->suffix;
  std::vector<uint64_t>& prefix = scratch->prefix;
  suffix.resize((c_count + 1) * w_count);
  prefix.resize(c_count * w_count);

  int32_t* pos_row = pos_.data() + static_cast<size_t>(g) * c_count;
  for (int c = 0; c < num_conditions_; ++c) {
    pos_row[c] = static_cast<int32_t>(m.position(c));
  }

  std::memset(suffix.data() + c_count * w_count, 0,
              w_count * sizeof(uint64_t));
  for (int p = num_conditions_ - 1; p >= 0; --p) {
    uint64_t* row = suffix.data() + static_cast<size_t>(p) * w_count;
    util::simd::CopyWordsAuto(ops, row, row + w_count, words_);
    util::SetBit(row, m.condition_at(p));
  }
  for (int p = 0; p < num_conditions_; ++p) {
    uint64_t* row = prefix.data() + static_cast<size_t>(p) * w_count;
    if (p > 0) util::simd::CopyWordsAuto(ops, row, row - w_count, words_);
    else std::memset(row, 0, w_count * sizeof(uint64_t));
    util::SetBit(row, m.condition_at(p));
  }

  // Successor / predecessor rows: every position >= FirstSuccessorPos is
  // a regulation successor (Lemma 3.1), so the row is one suffix copy;
  // no successor leaves the row all-zero (already cleared by BeginBuild).
  uint64_t* up_base =
      up_cand_.data() + static_cast<size_t>(g) * c_count * w_count;
  uint64_t* down_base =
      down_cand_.data() + static_cast<size_t>(g) * c_count * w_count;
  for (int p = 0; p < num_conditions_; ++p) {
    const int h = m.FirstSuccessorPos(p);
    if (h >= 0) {
      util::simd::CopyWordsAuto(ops, up_base + static_cast<size_t>(p) * w_count,
                     suffix.data() + static_cast<size_t>(h) * w_count,
                     words_);
    }
    const int t = m.LastPredecessorPos(p);
    if (t >= 0) {
      util::simd::CopyWordsAuto(ops, down_base + static_cast<size_t>(p) * w_count,
                     prefix.data() + static_cast<size_t>(t) * w_count,
                     words_);
    }
  }

  // Eligibility rows.  need <= 1 is the all-ones row (MaxChain* >= 1 for
  // every position); larger needs test the longest-chain tables.
  uint64_t* up_e = up_elig_.data() +
                   static_cast<size_t>(g) * need_rows * w_count;
  uint64_t* down_e = down_elig_.data() +
                     static_cast<size_t>(g) * need_rows * w_count;
  util::FillOnes(up_e, num_conditions_);
  util::FillOnes(down_e, num_conditions_);
  if (max_chain_need_ >= 1) {
    util::simd::CopyWordsAuto(ops, up_e + w_count, up_e, words_);
    util::simd::CopyWordsAuto(ops, down_e + w_count, down_e, words_);
  }
  for (int need = 2; need <= max_chain_need_; ++need) {
    uint64_t* up_row = up_e + static_cast<size_t>(need) * w_count;
    uint64_t* down_row = down_e + static_cast<size_t>(need) * w_count;
    for (int p = 0; p < num_conditions_; ++p) {
      const int c = m.condition_at(p);
      if (m.MaxChainUp(p) >= need) util::SetBit(up_row, c);
      if (m.MaxChainDown(p) >= need) util::SetBit(down_row, c);
    }
  }
}

}  // namespace core
}  // namespace regcluster
