#include "core/miner.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <numeric>
#include <thread>

#include "core/coherence.h"
#include "obs/metrics.h"
#include "util/bitset.h"
#include "util/simd/radix_sort.h"
#include "util/task_pool.h"
#include "util/timer.h"

namespace regcluster {
namespace core {
namespace {

/// True iff the chain is lexicographically smaller than its reversal
/// (condition ids).  Used for the tie-break of the representative rule.
bool LexSmallerThanReversed(const std::vector<int>& chain) {
  const size_t n = chain.size();
  for (size_t i = 0; i < n; ++i) {
    const int fwd = chain[i];
    const int rev = chain[n - 1 - i];
    if (fwd != rev) return fwd < rev;
  }
  return false;  // palindromic (only possible for length 1)
}

void AccumulateStats(const MinerStats& from, MinerStats* to) {
  to->nodes_expanded += from.nodes_expanded;
  to->extensions_tested += from.extensions_tested;
  to->pruned_min_genes += from.pruned_min_genes;
  to->pruned_p_majority += from.pruned_p_majority;
  to->pruned_duplicate += from.pruned_duplicate;
  to->pruned_coherence += from.pruned_coherence;
  to->genes_dropped_min_conds += from.genes_dropped_min_conds;
  to->clusters_emitted += from.clusters_emitted;
  to->index_word_ops += from.index_word_ops;
  to->coherence_divide_calls += from.coherence_divide_calls;
  to->coherence_scores += from.coherence_scores;
  to->dedup_probes += from.dedup_probes;
  to->filter_ns += from.filter_ns;
  to->score_ns += from.score_ns;
  to->sort_ns += from.sort_ns;
  to->emit_ns += from.emit_ns;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Approximate heap footprint of a vector (capacity, not size: the arenas
/// hold their high-water mark).
template <typename T>
int64_t VecBytes(const std::vector<T>& v) {
  return static_cast<int64_t>(v.capacity() * sizeof(T));
}

}  // namespace

/// One DFS node's reusable state.  The member columns are struct-of-arrays
/// (MemberCols), and the per-node caches below are parallel to them:
///
///   *_comb   per member, the W-word bitmap of conditions the member can
///            extend to (successor/predecessor row AND MinC-eligibility
///            row);
///   *_trans  the transpose of *_comb restricted to the node's candidate
///            set: per candidate condition, a bitmap over *member indices*.
///            The per-candidate filter then walks only the set bits
///            (surviving members) instead of probing every member;
///   *_off    per member, the gene's flat row offset (gene * C).  One int64
///            offset serves both the expression matrix and the index's
///            position table, which share the gene-major stride -- and it is
///            what the SIMD gather kernels consume;
///   *_base   per member, the row value at the chain head ckm, so a
///            candidate's coherence numerator is row[cand] - base.
///
/// The scored columns (sc_*) hold one filtered extension: entries
/// [0, sc_split) are p-members, the rest n-members; both halves inherit the
/// member order and are therefore gene-ascending.  `order` index-sorts the
/// score column without moving the rows.
struct RegClusterMiner::NodeFrame {
  MemberCols p, n;

  std::vector<uint64_t> p_comb, n_comb;
  std::vector<uint64_t> p_trans, n_trans;
  int p_words = 0;  ///< words per p_trans row (= WordsForBits(p.size()))
  int n_words = 0;
  std::vector<int64_t> p_off, n_off;
  std::vector<double> p_base, n_base;

  std::vector<uint64_t> cand_words;  ///< the node's candidate bitmap
  std::vector<int> cands;            ///< its set bits, ascending

  std::vector<double> sc_h, sc_denom;
  std::vector<double> sc_hs;  ///< sorted score column (sort kernel output)
  std::vector<int> sc_gene;
  std::vector<int> filt;  ///< surviving member indices of one filter half
  std::vector<int> order;
  std::vector<int> win_p, win_n;  ///< window index buffers (child build)

  void ClearScored() {
    sc_h.clear();
    sc_denom.clear();
    sc_gene.clear();
  }

  int64_t ApproxBytes() const {
    return VecBytes(p.gene) + VecBytes(p.head_pos) + VecBytes(p.denom) +
           VecBytes(n.gene) + VecBytes(n.head_pos) + VecBytes(n.denom) +
           VecBytes(p_comb) + VecBytes(n_comb) + VecBytes(p_trans) +
           VecBytes(n_trans) + VecBytes(p_off) + VecBytes(n_off) +
           VecBytes(p_base) + VecBytes(n_base) + VecBytes(cand_words) +
           VecBytes(cands) + VecBytes(sc_h) + VecBytes(sc_hs) +
           VecBytes(sc_denom) +
           VecBytes(sc_gene) + VecBytes(filt) +
           VecBytes(order) + VecBytes(win_p) + VecBytes(win_n);
  }
};

/// Per-worker scratch arena.  Every container is reused across the whole
/// search, so after a short warm-up (first visit of each DFS depth) the hot
/// loop performs zero heap allocations.  Frames live in a deque: references
/// into it stay valid while deeper frames are appended during recursion.
struct RegClusterMiner::MinerScratch {
  std::vector<int> chain;       ///< the DFS chain stack
  std::deque<NodeFrame> frames; ///< frames[d] holds the node of chain length d+2
  NodeFrame root_frame;         ///< the level-1 node (SeedRoot only)
  std::vector<uint64_t> gene_epoch;  ///< gene id -> last-marked epoch
  uint64_t epoch = 0;
  util::simd::SortScratch sort_scratch;  ///< radix-sort key/index buffers

  void Init(int num_conds, int num_genes) {
    chain.reserve(static_cast<size_t>(num_conds) + 1);
    gene_epoch.assign(static_cast<size_t>(num_genes), 0);
    epoch = 0;
  }

  NodeFrame& frame(int depth) {
    while (frames.size() <= static_cast<size_t>(depth)) frames.emplace_back();
    return frames[static_cast<size_t>(depth)];
  }

  /// Approximate live bytes of this arena -- the quantity the soft memory
  /// limit bounds.  Capacity-based, so it tracks the high-water mark.
  int64_t ApproxBytes() const {
    int64_t total = VecBytes(chain) + VecBytes(gene_epoch) +
                    root_frame.ApproxBytes() + sort_scratch.ApproxBytes();
    for (const NodeFrame& f : frames) {
      total += f.ApproxBytes() + static_cast<int64_t>(sizeof(NodeFrame));
    }
    return total;
  }
};

/// Per-task budget bookkeeping.  One instance lives on the stack of each
/// task body (or of the serial finalize pass) and is reached through
/// SearchContext::ctl.  It separates the two costs of budget enforcement:
///
///   * every DFS node pays OnNode() -- two local increments, two local
///     compares and (when a BudgetGuard exists) one relaxed atomic load;
///   * every `interval` nodes the task additionally flushes its local node
///     count to the guard and runs BudgetGuard::Poll() (token poll, deadline
///     read, memory report, global counter compare).
///
/// The local node/cluster quotas implement the *deterministic* cut of the
/// serial finalize pass: a repair task stops as soon as its root alone
/// exceeds what is left of the count budget.  Parallel phase-A tasks run
/// with unlimited quotas and react only to the shared guard; a task that
/// observes a trip abandons its slot (never marks itself complete) and drops
/// the pool's queued tasks so the batch drains quickly.
struct RegClusterMiner::TaskControl {
  util::BudgetGuard* guard = nullptr;  ///< shared stop sources; may be null
  util::TaskPool* pool = nullptr;      ///< drained on first observed trip
  MinerScratch* scratch = nullptr;     ///< for the memory reports
  int slot = 0;                        ///< this task's BudgetGuard byte slot
  int interval = 32;
  int countdown = 32;
  /// Serial-repair mode: exhausted *count* quotas on the shared guard are
  /// stale phase-A state and must not gate the repair; only hard stops do.
  bool hard_only = false;
  int64_t node_quota = std::numeric_limits<int64_t>::max();
  int64_t cluster_quota = std::numeric_limits<int64_t>::max();
  int64_t nodes = 0;
  int64_t clusters = 0;
  int64_t unflushed_nodes = 0;
  int64_t output_bytes = 0;
  bool stopped = false;
  util::StopReason stop_reason = util::StopReason::kNone;

  void Stop(util::StopReason reason) {
    stopped = true;
    stop_reason = reason;
    if (pool != nullptr) pool->CancelPending();
  }

  /// The cheap per-check-site probe: local flag plus one relaxed load.
  bool CheckAbort() {
    if (stopped) return true;
    if (guard != nullptr) {
      const util::StopReason r =
          hard_only ? guard->hard_reason() : guard->reason();
      if (r != util::StopReason::kNone) {
        Stop(r);
        return true;
      }
    }
    return false;
  }

  /// Accounts one DFS node.  Returns true when the node must not be
  /// expanded (the task is abandoning its work unit).
  bool OnNode() {
    if (stopped) return true;
    ++nodes;
    if (nodes > node_quota) {
      Stop(util::StopReason::kNodeBudget);
      return true;
    }
    if (guard == nullptr) return false;
    ++unflushed_nodes;
    if (--countdown <= 0) {
      countdown = interval;
      guard->AddNodes(unflushed_nodes);
      unflushed_nodes = 0;
      guard->Poll(slot, (scratch != nullptr ? scratch->ApproxBytes() : 0) +
                            output_bytes);
    }
    return CheckAbort();
  }

  /// Accounts one emitted cluster of ~`bytes` bytes.  Returns true when the
  /// emission exhausted the local cluster quota.
  bool OnEmit(int64_t bytes) {
    output_bytes += bytes;
    ++clusters;
    if (clusters > cluster_quota) {
      Stop(util::StopReason::kClusterBudget);
      return true;
    }
    if (guard != nullptr) guard->AddClusters(1);
    return stopped;
  }

  /// Flushes the residual local node count to the guard (task epilogue).
  void Finish() {
    if (guard != nullptr && unflushed_nodes > 0) {
      guard->AddNodes(unflushed_nodes);
      unflushed_nodes = 0;
    }
  }
};

void RegClusterMiner::RootWork::Reset() {
  ctx = SearchContext();
  seeds.clear();
  subtree_ctx.clear();
  seeded.store(false, std::memory_order_relaxed);
  subtrees_done.store(0, std::memory_order_relaxed);
}

/// Execution state of one staged run, created by Prepare() and consumed by
/// Finalize().  Living on the miner (not on a Mine() stack frame) is what
/// lets a batch driver keep many runs in flight on one pool between the two
/// calls.
struct RegClusterMiner::RunState {
  util::WallTimer total_timer;  ///< Prepare() entry -> Finalize() exit
  util::WallTimer mine_timer;   ///< model ready -> Finalize() exit
  std::vector<RootWork> work;   ///< one slot per level-1 condition
  std::vector<MinerScratch> scratches;  ///< phase-A per-worker arenas
  int first_root = 0;
  int threads = 1;
  int fin_slot = 0;  ///< guard byte-report slot of the finalize pass

  /// Phase-A tasks of *this run* still queued or running on a shared pool.
  /// Incremented before each Submit, decremented as the last action of the
  /// task body, so a transient zero cannot be observed while a root still
  /// has subtrees to submit (the root's own count covers the submission
  /// window).  Only the shared-pool path maintains it: an exclusive pool
  /// may drop queued tasks via CancelPending, which would strand the count.
  std::atomic<int64_t> outstanding{0};
  std::mutex wait_mu;
  std::condition_variable wait_cv;

  /// Marks one phase-A task finished and wakes WaitParallelWork().
  void TaskDone() {
    if (outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(wait_mu);
      wait_cv.notify_all();
    }
  }
};

namespace {

/// Gene-striped index bake shared by both model builders: each stripe task
/// fetches its genes' models via `model_of` and writes their (disjoint)
/// index slices.  Byte-identical at any thread count because a gene's slice
/// depends only on its own model.
template <typename ModelOf>
void BakeIndexStriped(RWaveBitmapIndex* index, int num_genes, int num_conds,
                      int max_chain_need, int num_threads,
                      const ModelOf& model_of) {
  index->BeginBuild(num_genes, num_conds, max_chain_need);
  if (num_threads == 1 || num_genes == 0) {
    RWaveBitmapIndex::BuildScratch scratch;
    for (int g = 0; g < num_genes; ++g) {
      index->BuildGene(g, *model_of(g), &scratch);
    }
    return;
  }
  util::TaskPool pool(num_threads);
  const int workers = pool.num_workers();
  int stripe = (num_genes + workers * 4 - 1) / (workers * 4);
  stripe = std::max(stripe, 64);
  std::vector<RWaveBitmapIndex::BuildScratch> scratches(
      static_cast<size_t>(workers));
  for (int begin = 0; begin < num_genes; begin += stripe) {
    const int end = std::min(begin + stripe, num_genes);
    pool.Submit([&, begin, end](int worker) {
      auto& scratch = scratches[static_cast<size_t>(worker)];
      for (int g = begin; g < end; ++g) {
        index->BuildGene(g, *model_of(g), &scratch);
      }
    });
  }
  pool.Wait();
}

}  // namespace

std::shared_ptr<const SharedGammaModel> SharedGammaModel::Build(
    const matrix::MatrixStore& data, const GammaSpec& spec,
    int max_chain_need, int num_threads) {
  auto model = std::make_shared<SharedGammaModel>();
  model->spec = spec;
  model->max_chain_need = max_chain_need;
  util::WallTimer timer;
  model->rwaves = BuildRWaveModels(
      data, [&data, &spec](int g) { return AbsoluteGamma(data, g, spec); },
      num_threads);
  model->rwave_build_seconds = timer.ElapsedSeconds();
  timer.Reset();
  BakeIndexStriped(&model->index, data.num_genes(), data.num_conditions(),
                   max_chain_need, num_threads,
                   [&model](int g) { return &model->rwaves[static_cast<size_t>(g)]; });
  model->index_build_seconds = timer.ElapsedSeconds();
  return model;
}

std::shared_ptr<const SharedGammaModel> SharedGammaModel::BuildOutOfCore(
    const matrix::MatrixStore& data, const GammaSpec& spec,
    int max_chain_need, int64_t cache_bytes, int cache_shards,
    int num_threads) {
  auto model = std::make_shared<SharedGammaModel>();
  model->spec = spec;
  model->max_chain_need = max_chain_need;
  ModelCache::Options copts;
  copts.byte_budget = cache_bytes;
  copts.num_shards = cache_shards;
  const int num_conds = data.num_conditions();
  model->cache = std::make_shared<ModelCache>(
      data.num_genes(),
      [&data, spec, num_conds](int g) {
        thread_local util::simd::SortScratch scratch;
        return RWaveModel::Build(data.row_data(g), num_conds,
                                 AbsoluteGamma(data, g, spec), &scratch);
      },
      copts);
  // The index bake *is* the model-build pass here: every gene streams
  // through the cache exactly where its index slice needs it, so no
  // separate rwave phase exists and its time reports as 0.
  util::WallTimer timer;
  BakeIndexStriped(&model->index, data.num_genes(), num_conds, max_chain_need,
                   num_threads,
                   [&model](int g) { return model->cache->Get(g); });
  model->index_build_seconds = timer.ElapsedSeconds();
  return model;
}

std::shared_ptr<const SharedGammaModel> SharedGammaModel::UpdateAppend(
    const SharedGammaModel& prev, const matrix::MatrixStore& new_data,
    int first_new, int num_threads) {
  const int num_genes = new_data.num_genes();
  const int num_conds = new_data.num_conditions();
  assert(prev.index.num_conditions() == first_new);
  (void)first_new;
  if (prev.cache != nullptr ||
      static_cast<int>(prev.rwaves.size()) != num_genes) {
    // An out-of-core model keeps no resident per-gene models to delta-update;
    // rebuild from scratch (byte-identical by the builders' contracts).
    return Build(new_data, prev.spec, prev.max_chain_need, num_threads);
  }
  auto model = std::make_shared<SharedGammaModel>();
  model->spec = prev.spec;
  model->max_chain_need = prev.max_chain_need;
  model->rwaves.resize(static_cast<size_t>(num_genes));
  util::WallTimer timer;
  // Per gene: when the append leaves the absolute threshold bitwise
  // unchanged (e.g. the new values stay inside the row range under
  // kRangeFraction), the old sorted order is reusable and
  // RWaveModel::AppendConditions merges just the appended columns; a moved
  // threshold (or a policy whose statistic shifted) invalidates every
  // pointer, so those genes rebuild from scratch.  Either path is
  // byte-identical to a fresh Build at the new width.
  const auto update_range = [&](int begin, int end,
                                util::simd::SortScratch* scratch) {
    for (int g = begin; g < end; ++g) {
      const double gamma_abs = AbsoluteGamma(new_data, g, model->spec);
      const RWaveModel& old = prev.rwaves[static_cast<size_t>(g)];
      if (std::bit_cast<uint64_t>(gamma_abs) ==
          std::bit_cast<uint64_t>(old.gamma_abs())) {
        RWaveModel m = old;
        m.AppendConditions(new_data.row_data(g), num_conds);
        model->rwaves[static_cast<size_t>(g)] = std::move(m);
      } else {
        model->rwaves[static_cast<size_t>(g)] = RWaveModel::Build(
            new_data.row_data(g), num_conds, gamma_abs, scratch);
      }
    }
  };
  if (num_threads == 1 || num_genes == 0) {
    util::simd::SortScratch scratch;
    update_range(0, num_genes, &scratch);
  } else {
    // Same striping as BuildRWaveModels: slot-assigned writes keep the
    // result byte-identical at any thread count.
    util::TaskPool pool(num_threads);
    const int workers = pool.num_workers();
    int stripe = (num_genes + workers * 4 - 1) / (workers * 4);
    stripe = std::max(stripe, 64);
    std::vector<util::simd::SortScratch> scratches(
        static_cast<size_t>(workers));
    for (int begin = 0; begin < num_genes; begin += stripe) {
      const int end = std::min(begin + stripe, num_genes);
      pool.Submit([&, begin, end](int worker) {
        update_range(begin, end, &scratches[static_cast<size_t>(worker)]);
      });
    }
    pool.Wait();
  }
  model->rwave_build_seconds = timer.ElapsedSeconds();
  timer.Reset();
  // The bitmap tables are position-indexed with a word stride of
  // WordsForBits(num_conditions), so the index re-bakes at the new width
  // regardless of how many models took the delta path.
  BakeIndexStriped(
      &model->index, num_genes, num_conds, model->max_chain_need, num_threads,
      [&model](int g) { return &model->rwaves[static_cast<size_t>(g)]; });
  model->index_build_seconds = timer.ElapsedSeconds();
  return model;
}

size_t SharedGammaModel::MemoryBytes() const {
  // Index tables exactly; resident per-gene models by their table capacities
  // (the same figure the ModelCache charges per entry); plus whatever the
  // cache currently retains on the out-of-core path.
  size_t total = index.MemoryBytes();
  for (const RWaveModel& m : rwaves) {
    total += m.MemoryBytes();
  }
  if (cache != nullptr) {
    total += static_cast<size_t>(cache->resident_bytes());
  }
  return total;
}

RegClusterMiner::RegClusterMiner(const matrix::MatrixStore& data,
                                 MinerOptions options)
    : data_(data), options_(options) {}

RegClusterMiner::~RegClusterMiner() = default;

util::StatusOr<std::vector<RegCluster>> RegClusterMiner::Mine() {
  util::Status prep = Prepare();
  if (!prep.ok()) return prep;
  if (run_->threads > 1) {
    obs::PhaseSpan phase_a(&outcome_.phase_a_seconds);
    util::TaskPool pool(run_->threads);
    SubmitRoots(&pool, /*exclusive_pool=*/true);
    pool.Wait();
    outcome_.pool_steals = pool.total_steals();
    outcome_.pool_queue_high_water = pool.queue_depth_high_water();
  }
  return Finalize();
}

util::Status RegClusterMiner::Prepare() {
  if (options_.min_genes < 1) {
    return util::Status::InvalidArgument("MinG must be >= 1");
  }
  if (options_.min_conditions < 2) {
    return util::Status::InvalidArgument(
        "MinC must be >= 2 (a chain needs at least one regulation step)");
  }
  const bool relative_gamma =
      options_.gamma_policy != GammaPolicy::kAbsolute;
  if (options_.gamma < 0.0 || (relative_gamma && options_.gamma > 1.0)) {
    return util::Status::InvalidArgument(
        relative_gamma ? "gamma must be in [0, 1] for relative policies"
                       : "absolute gamma must be >= 0");
  }
  if (options_.epsilon < 0.0) {
    return util::Status::InvalidArgument("epsilon must be >= 0");
  }
  if (options_.num_threads < 0) {
    return util::Status::InvalidArgument("num_threads must be >= 0");
  }
  if (data_.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix contains missing values; impute first "
        "(matrix::ImputeRowMean)");
  }
  for (int g : options_.required_genes) {
    if (g < 0 || g >= data_.num_genes()) {
      return util::Status::OutOfRange("required gene outside the matrix");
    }
  }
  for (int c : options_.allowed_conditions) {
    if (c < 0 || c >= data_.num_conditions()) {
      return util::Status::OutOfRange("allowed condition outside the matrix");
    }
  }
  if (options_.budget_check_interval < 1) {
    return util::Status::InvalidArgument("budget_check_interval must be >= 1");
  }
  if (options_.model_cache_shards < 1) {
    return util::Status::InvalidArgument("model_cache_shards must be >= 1");
  }
  if (options_.resume.can_resume()) {
    if (options_.resume.options_hash != SemanticOptionsHash(options_)) {
      return util::Status::InvalidArgument(
          "resume token was issued under different mining options");
    }
    if (options_.resume.next_root > data_.num_conditions()) {
      return util::Status::OutOfRange("resume token root outside the matrix");
    }
    if (options_.remove_dominated) {
      return util::Status::InvalidArgument(
          "resume cannot be combined with remove_dominated: dominance is a "
          "global post-pass, so spliced partial outputs would not match an "
          "unbudgeted run");
    }
  }
  if (!options_.root_set.empty()) {
    if (options_.resume.can_resume()) {
      return util::Status::InvalidArgument(
          "root_set cannot be combined with resume: both select the roots "
          "to search");
    }
    int prev_root = -1;
    for (int c : options_.root_set) {
      if (c < 0 || c >= data_.num_conditions()) {
        return util::Status::OutOfRange(
            "root_set condition outside the matrix");
      }
      if (c <= prev_root) {
        return util::Status::InvalidArgument(
            "root_set must be sorted strictly ascending");
      }
      prev_root = c;
    }
  }
  allowed_cond_.assign(static_cast<size_t>(data_.num_conditions()),
                       options_.allowed_conditions.empty() ? 1 : 0);
  for (int c : options_.allowed_conditions) {
    allowed_cond_[static_cast<size_t>(c)] = 1;
  }
  allowed_words_.assign(
      static_cast<size_t>(util::WordsForBits(data_.num_conditions())), 0);
  for (int c = 0; c < data_.num_conditions(); ++c) {
    if (allowed_cond_[static_cast<size_t>(c)]) {
      util::SetBit(allowed_words_.data(), c);
    }
  }
  required_gene_.assign(static_cast<size_t>(data_.num_genes()), 0);
  num_required_ = 0;
  for (int g : options_.required_genes) {
    if (!required_gene_[static_cast<size_t>(g)]) {
      required_gene_[static_cast<size_t>(g)] = 1;
      ++num_required_;
    }
  }

  stats_ = MinerStats();
  outcome_ = MineOutcome();
  root_results_.clear();
  // Resolve the kernel dispatch once per run: the hot loops then pay a plain
  // indirect call, and the outcome records which kernel set actually ran.
  ops_ = &util::simd::Ops();
  outcome_.simd_level = ops_->level;
  guard_.reset();
  run_.reset();
  index_ = nullptr;
  model_.reset();

  auto run = std::make_unique<RunState>();
  // Resolve the worker count before the model build so the build itself can
  // run striped on the same number of threads as the search.
  run->threads = options_.num_threads;
  if (run->threads == 0) {
    run->threads = static_cast<int>(std::thread::hardware_concurrency());
    if (run->threads < 1) run->threads = 1;
  }

  const GammaSpec spec{options_.gamma_policy, options_.gamma};
  if (options_.shared_model != nullptr) {
    // Adopt a pre-built model.  Reuse is only sound when the model answers
    // exactly the queries this run would bake itself: same matrix shape,
    // bitwise-equal gamma spec, and an eligibility ceiling covering MinC
    // (queries clamp into [0, max_chain_need], so a *larger* ceiling is
    // exact, a smaller one is not).
    const SharedGammaModel& m = *options_.shared_model;
    if (m.spec.policy != spec.policy ||
        std::bit_cast<uint64_t>(m.spec.gamma) !=
            std::bit_cast<uint64_t>(spec.gamma)) {
      return util::Status::InvalidArgument(
          "shared_model was built under a different gamma spec");
    }
    if (m.index.num_genes() != data_.num_genes() ||
        m.index.num_conditions() != data_.num_conditions()) {
      return util::Status::FailedPrecondition(
          "shared_model dimensions do not match this matrix");
    }
    if (m.max_chain_need < options_.min_conditions) {
      return util::Status::InvalidArgument(
          "shared_model max_chain_need is below MinC; build the model with "
          "the largest MinC it will serve");
    }
    model_ = options_.shared_model;
  } else if (options_.model_cache_bytes >= 0) {
    model_ = SharedGammaModel::BuildOutOfCore(
        data_, spec, options_.min_conditions, options_.model_cache_bytes,
        options_.model_cache_shards, run->threads);
    stats_.index_builds = 1;
    stats_.index_build_seconds = model_->index_build_seconds;
  } else {
    model_ = SharedGammaModel::Build(data_, spec, options_.min_conditions,
                                     run->threads);
    stats_.index_builds = 1;
    stats_.rwave_build_seconds = model_->rwave_build_seconds;
    stats_.index_build_seconds = model_->index_build_seconds;
  }
  index_ = &model_->index;

  run->work = std::vector<RootWork>(
      static_cast<size_t>(data_.num_conditions()));
  run->first_root =
      options_.resume.can_resume() ? options_.resume.next_root : 0;
  run->mine_timer.Reset();
  run_ = std::move(run);
  return util::Status::OK();
}

void RegClusterMiner::EnsureGuard(int num_slots) {
  if (guard_ != nullptr) return;
  util::BudgetGuard::Limits limits;
  limits.max_nodes = options_.max_nodes;
  limits.max_clusters = options_.max_clusters;
  limits.deadline_ms = options_.deadline_ms;
  limits.soft_memory_limit_bytes = options_.soft_memory_limit_bytes;
  limits.token = options_.cancel_token;
  if (!limits.any()) return;
  // One byte-report slot per pool worker plus one for the finalize pass.
  guard_ = std::make_unique<util::BudgetGuard>(limits, num_slots);
  if (options_.model_cache_bytes >= 0 && options_.shared_model == nullptr) {
    // Out-of-core: the memory stop bounds what the process actually holds
    // live, so the mapped matrix + resident model/index/cache bytes enter
    // the summed total exactly once as a fixed base (never per slot).
    guard_->set_base_bytes(
        data_.mapped_bytes() +
        static_cast<int64_t>(model_->MemoryBytes()));
  }
  run_->fin_slot = num_slots - 1;
}

RegClusterMiner::TaskControl RegClusterMiner::MakeControl(
    MinerScratch* scratch, int slot, util::TaskPool* pool) {
  TaskControl ctl;
  ctl.guard = guard_.get();
  ctl.pool = pool;
  ctl.scratch = scratch;
  ctl.slot = slot;
  ctl.interval = options_.budget_check_interval;
  ctl.countdown = ctl.interval;
  return ctl;
}

void RegClusterMiner::SubmitParallelWork(util::TaskPool* pool) {
  SubmitRoots(pool, /*exclusive_pool=*/false);
}

// Phase A: optimistic mining.  Every root / subtree task runs under the
// shared guard with unlimited local quotas; on a trip, in-flight tasks
// abandon their slot atomically (they simply never mark themselves
// complete), and -- when the pool is exclusively this run's -- its queued
// tasks are dropped so the batch drains quickly.  On a shared pool the
// queued tasks may belong to other runs, so a tripped task only abandons
// its own work; the stale tasks of this run then observe the trip on entry
// and return immediately.  Which roots finish here is scheduling-dependent
// -- phase B makes the *output* deterministic.
void RegClusterMiner::SubmitRoots(util::TaskPool* pool, bool exclusive_pool) {
  if (run_ == nullptr) return;
  EnsureGuard(pool->num_workers() + 1);
  const int num_conds = data_.num_conditions();
  const int num_genes = data_.num_genes();
  run_->scratches =
      std::vector<MinerScratch>(static_cast<size_t>(pool->num_workers()));
  for (MinerScratch& s : run_->scratches) s.Init(num_conds, num_genes);
  MinerScratch* scratches = run_->scratches.data();
  RootWork* work = run_->work.data();
  util::TaskPool* ctl_pool = exclusive_pool ? pool : nullptr;
  // Shared pools track per-run completion so WaitParallelWork() can drain
  // this run without the pool's global barrier; `track` stays null on the
  // exclusive path, where CancelPending may drop queued tasks unrun.
  RunState* track = exclusive_pool ? nullptr : run_.get();
  // Targeted execution searches only the root_set (each root is an
  // independent search, so skipping the rest changes nothing about the
  // selected roots' slices); otherwise every root from first_root on.
  const bool targeted = !options_.root_set.empty();
  const int num_roots = targeted ? static_cast<int>(options_.root_set.size())
                                 : num_conds - run_->first_root;
  if (track != nullptr) {
    track->outstanding.fetch_add(num_roots, std::memory_order_relaxed);
  }
  // Each root task seeds its level-2 subtrees and immediately re-submits
  // them: large subtrees become stealable instead of serializing behind
  // their root, which is what makes imbalanced trees scale.
  for (int ri = 0; ri < num_roots; ++ri) {
    const int c = targeted ? options_.root_set[static_cast<size_t>(ri)]
                           : run_->first_root + ri;
    RootWork* rw = &work[c];
    pool->Submit([this, c, rw, pool, scratches, ctl_pool, track](int worker) {
      MinerScratch* scratch = &scratches[worker];
      TaskControl ctl = MakeControl(scratch, worker, ctl_pool);
      rw->ctx.ctl = &ctl;
      const bool seed_ok = !ctl.CheckAbort() && SeedRoot(c, rw, scratch);
      ctl.Finish();
      rw->ctx.ctl = nullptr;
      if (!seed_ok) {  // abandoned: the root stays incomplete
        if (track != nullptr) track->TaskDone();
        return;
      }
      rw->subtree_ctx.resize(rw->seeds.size());
      rw->seeded.store(true, std::memory_order_release);
      if (track != nullptr) {
        track->outstanding.fetch_add(static_cast<int64_t>(rw->seeds.size()),
                                     std::memory_order_relaxed);
      }
      for (size_t i = 0; i < rw->seeds.size(); ++i) {
        pool->Submit([this, c, rw, i, scratches, ctl_pool, track](int w) {
          MinerScratch* s = &scratches[w];
          TaskControl sub_ctl = MakeControl(s, w, ctl_pool);
          SearchContext* ctx = &rw->subtree_ctx[i];
          ctx->ctl = &sub_ctl;
          if (!sub_ctl.CheckAbort()) {
            MineSubtree(c, &rw->seeds[i], s, ctx);
          }
          sub_ctl.Finish();
          ctx->ctl = nullptr;
          if (!sub_ctl.stopped) {
            rw->subtrees_done.fetch_add(1, std::memory_order_acq_rel);
          }
          if (track != nullptr) track->TaskDone();
        });
      }
      if (track != nullptr) track->TaskDone();
    });
  }
}

void RegClusterMiner::WaitParallelWork() {
  if (run_ == nullptr) return;
  RunState* run = run_.get();
  if (run->outstanding.load(std::memory_order_acquire) == 0) return;
  std::unique_lock<std::mutex> lock(run->wait_mu);
  run->wait_cv.wait(lock, [run] {
    return run->outstanding.load(std::memory_order_acquire) == 0;
  });
}

util::StatusOr<std::vector<RegCluster>> RegClusterMiner::Finalize() {
  if (run_ == nullptr) {
    return util::Status::FailedPrecondition(
        "Finalize() requires a successful Prepare()");
  }
  const int num_conds = data_.num_conditions();
  const int num_genes = data_.num_genes();
  const int threads = run_->threads;
  const int first_root = run_->first_root;
  std::vector<RootWork>& work = run_->work;
  // Serial staged runs reach here without a phase A; the guard (and with it
  // the deadline clock) then starts now.
  EnsureGuard(threads + 1);
  int64_t parallel_scratch_bytes = 0;
  for (const MinerScratch& s : run_->scratches) {
    parallel_scratch_bytes += s.ApproxBytes();
  }

  // Phase B: canonical finalize -- the whole mining pass when threads <= 1.
  // Walk the roots in canonical order; re-run any incomplete root serially
  // under the *remaining* count budget; include a root iff its own
  // deterministic node/cluster totals fit what is left.  The totals are
  // per-root DFS invariants, so the cut root -- and hence the output -- is
  // identical for every thread count; only the scheduling-dependent question
  // "was this root mined in phase A or re-run here?" varies, and it is
  // unobservable in the result.  Hard stops (cancel / deadline / memory)
  // forbid repair work, so they cut at the first root that is not already
  // complete: still a valid canonical prefix, but its length legitimately
  // depends on machine speed.
  obs::PhaseSpan phase_b(&outcome_.phase_b_seconds);
  MinerScratch fin_scratch;
  fin_scratch.Init(num_conds, num_genes);
  const int64_t kUnlimited = std::numeric_limits<int64_t>::max();
  int64_t node_rem = options_.max_nodes >= 0 ? options_.max_nodes : kUnlimited;
  int64_t cluster_rem =
      options_.max_clusters >= 0 ? options_.max_clusters : kUnlimited;
  util::StopReason stop = util::StopReason::kNone;
  int cut_root = num_conds;
  int roots_included = 0;
  std::vector<RegCluster> out;
  const bool targeted = !options_.root_set.empty();
  const int num_roots = targeted ? static_cast<int>(options_.root_set.size())
                                 : num_conds - first_root;
  for (int ri = 0; ri < num_roots; ++ri) {
    const int c = targeted ? options_.root_set[static_cast<size_t>(ri)]
                           : first_root + ri;
    RootWork& rw = work[static_cast<size_t>(c)];
    if (!rw.Complete()) {
      if (guard_ != nullptr &&
          guard_->hard_reason() != util::StopReason::kNone) {
        stop = guard_->hard_reason();
        cut_root = c;
        break;
      }
      rw.Reset();
      TaskControl ctl = MakeControl(&fin_scratch, run_->fin_slot, nullptr);
      ctl.hard_only = true;
      ctl.node_quota = node_rem;
      ctl.cluster_quota = cluster_rem;
      rw.ctx.ctl = &ctl;
      bool ok = SeedRoot(c, &rw, &fin_scratch);
      rw.ctx.ctl = nullptr;
      if (ok) {
        rw.subtree_ctx.resize(rw.seeds.size());
        for (size_t i = 0; i < rw.seeds.size() && ok; ++i) {
          rw.subtree_ctx[i].ctl = &ctl;
          MineSubtree(c, &rw.seeds[i], &fin_scratch, &rw.subtree_ctx[i]);
          rw.subtree_ctx[i].ctl = nullptr;
          ok = !ctl.stopped;
        }
      }
      ctl.Finish();
      if (!ok) {
        stop = ctl.stop_reason;
        cut_root = c;
        break;
      }
    }
    // Deterministic inclusion test, from the root's recorded totals.
    int64_t root_nodes = rw.ctx.stats.nodes_expanded;
    int64_t root_clusters = rw.ctx.stats.clusters_emitted;
    for (const SearchContext& ctx : rw.subtree_ctx) {
      root_nodes += ctx.stats.nodes_expanded;
      root_clusters += ctx.stats.clusters_emitted;
    }
    if (root_nodes > node_rem) {
      stop = util::StopReason::kNodeBudget;
      cut_root = c;
      break;
    }
    if (root_clusters > cluster_rem) {
      stop = util::StopReason::kClusterBudget;
      cut_root = c;
      break;
    }
    node_rem -= root_nodes;
    cluster_rem -= root_clusters;
    ++roots_included;
    if (options_.capture_root_results) {
      // Copy the slice before the canonical merge moves the clusters out.
      RootMineResult rr;
      rr.root = c;
      rr.stats = rw.ctx.stats;
      for (const SearchContext& ctx : rw.subtree_ctx) {
        AccumulateStats(ctx.stats, &rr.stats);
        rr.clusters.insert(rr.clusters.end(), ctx.out.begin(), ctx.out.end());
      }
      root_results_.push_back(std::move(rr));
    }
    // Canonical (root, second-condition) merge: deterministic regardless of
    // thread count and of which worker ran which task.
    AccumulateStats(rw.ctx.stats, &stats_);
    for (SearchContext& ctx : rw.subtree_ctx) {
      AccumulateStats(ctx.stats, &stats_);
      out.insert(out.end(), std::make_move_iterator(ctx.out.begin()),
                 std::make_move_iterator(ctx.out.end()));
    }
  }
  phase_b.Stop();
  if (options_.remove_dominated) out = RemoveDominated(std::move(out));
  stats_.mine_seconds = run_->mine_timer.ElapsedSeconds();

  const bool truncated = stop != util::StopReason::kNone;
  outcome_.status = truncated ? MineStatus::kTruncated : MineStatus::kComplete;
  outcome_.stop_reason = stop;
  outcome_.nodes_visited =
      guard_ != nullptr ? guard_->total_nodes() : stats_.nodes_expanded;
  outcome_.roots_completed = roots_included;
  outcome_.roots_total = num_roots;
  outcome_.wall_seconds = run_->total_timer.ElapsedSeconds();
  outcome_.peak_scratch_bytes =
      std::max<int64_t>(guard_ != nullptr ? guard_->peak_bytes() : 0,
                        parallel_scratch_bytes + fin_scratch.ApproxBytes());
  outcome_.budget_polls = guard_ != nullptr ? guard_->total_polls() : 0;
  outcome_.model_bytes = static_cast<int64_t>(model_->MemoryBytes());
  outcome_.mapped_bytes = data_.mapped_bytes();
  if (model_->cache != nullptr) {
    const ModelCache::Stats cs = model_->cache->stats();
    outcome_.model_cache_hits = cs.hits;
    outcome_.model_cache_misses = cs.misses;
    outcome_.model_cache_evictions = cs.evictions;
    outcome_.model_cache_resident_bytes = cs.resident_bytes;
  }
  if (truncated && !targeted) {
    // A targeted run's cut point is an index into root_set, not a canonical
    // prefix boundary, and resume + root_set is rejected anyway -- so no
    // token is issued for truncated targeted runs.
    outcome_.resume.next_root = cut_root;
    outcome_.resume.options_hash = SemanticOptionsHash(options_);
  }
  run_.reset();
  return out;
}

uint64_t RegClusterMiner::SemanticOptionsHash(const MinerOptions& options) {
  util::Fnv128 h;
  h.MixInt(options.min_genes).MixInt(options.min_conditions);
  h.Mix64(std::bit_cast<uint64_t>(options.gamma));
  h.MixInt(static_cast<int>(options.gamma_policy));
  h.Mix64(std::bit_cast<uint64_t>(options.epsilon));
  h.MixInt(options.prune_min_genes ? 1 : 0);
  h.MixInt(options.prune_min_conds ? 1 : 0);
  h.MixInt(options.prune_p_majority ? 1 : 0);
  h.MixInt(options.prune_duplicates ? 1 : 0);
  h.MixInt(options.remove_dominated ? 1 : 0);
  h.MixInt(options.closed_chains_only ? 1 : 0);
  h.MixInt(-1);  // domain separators around the variable-length lists
  for (int g : options.required_genes) h.MixInt(g);
  h.MixInt(-1);
  for (int c : options.allowed_conditions) h.MixInt(c);
  h.MixInt(-1);
  return h.Digest().lo;
}

bool RegClusterMiner::HasAllRequired(const MemberCols& p, const MemberCols& n,
                                     MinerScratch* scratch) const {
  if (num_required_ == 0) return true;
  // Epoch-stamped distinct count: at level 1 a required gene can sit in both
  // lists, so presence is deduplicated via the per-gene stamp -- one pass,
  // no allocation.
  const uint64_t epoch = ++scratch->epoch;
  int distinct = 0;
  for (const int gene : p.gene) {
    const size_t g = static_cast<size_t>(gene);
    if (required_gene_[g] && scratch->gene_epoch[g] != epoch) {
      scratch->gene_epoch[g] = epoch;
      ++distinct;
    }
  }
  for (const int gene : n.gene) {
    const size_t g = static_cast<size_t>(gene);
    if (required_gene_[g] && scratch->gene_epoch[g] != epoch) {
      scratch->gene_epoch[g] = epoch;
      ++distinct;
    }
  }
  return distinct == num_required_;
}

template <bool kCollect>
void RegClusterMiner::PrepareNode(int m, int ckm, NodeFrame* node,
                                  MinerStats* stats) {
  const int words = index_->num_words();
  const int need = options_.min_conditions - m;
  const bool prune2 = options_.prune_min_conds;
  const uint64_t* ones = index_->ones_row();
  const int num_conds = index_->num_conditions();

  const auto cache = [&](const MemberCols& mem, bool up,
                         std::vector<uint64_t>& comb,
                         std::vector<int64_t>& off,
                         std::vector<double>& base) {
    const size_t count = static_cast<size_t>(mem.size());
    comb.resize(count * static_cast<size_t>(words));
    off.resize(count);
    base.resize(count);
    for (size_t i = 0; i < count; ++i) {
      const int g = mem.gene[i];
      const int pos = mem.head_pos[i];
      const uint64_t* cand_row =
          up ? index_->UpCandidates(g, pos) : index_->DownCandidates(g, pos);
      const uint64_t* elig =
          prune2 ? (up ? index_->UpEligible(g, need)
                       : index_->DownEligible(g, need))
                 : ones;
      uint64_t* dst = comb.data() + i * static_cast<size_t>(words);
      util::simd::AndWordsAuto(*ops_, dst, cand_row, elig, words);
      off[i] = static_cast<int64_t>(g) * num_conds;
      base[i] = data_.row_data(g)[ckm];
    }
    // One AND per word per member; a bulk add outside the loop keeps the
    // accounting off the hot path entirely.
    if constexpr (kCollect) {
      stats->index_word_ops += static_cast<int64_t>(count) * words;
    }
  };
  cache(node->p, /*up=*/true, node->p_comb, node->p_off, node->p_base);
  cache(node->n, /*up=*/false, node->n_comb, node->n_off, node->n_base);

  // Candidate generation: OR over the p-member rows only (licensed by
  // pruning 3a), intersected with the allowed set; then snapshot the set
  // bits in ascending condition order.
  node->cand_words.assign(static_cast<size_t>(words), 0);
  const size_t np = static_cast<size_t>(node->p.size());
  for (size_t i = 0; i < np; ++i) {
    const uint64_t* src = node->p_comb.data() + i * static_cast<size_t>(words);
    util::simd::OrWordsIntoAuto(*ops_, node->cand_words.data(), src, words);
  }
  util::simd::AndWordsAuto(*ops_, node->cand_words.data(),
                           node->cand_words.data(), allowed_words_.data(),
                           words);
  if constexpr (kCollect) {
    stats->index_word_ops += static_cast<int64_t>(np + 1) * words;
  }
  node->cands.clear();
  util::ForEachSetBit(node->cand_words.data(), words,
                      [&](int c) { node->cands.push_back(c); });

  // Transpose each member's candidate row (restricted to the node's
  // candidate set) into per-candidate bitmaps over member indices, so the
  // per-extension filter touches only surviving members.  Alongside, the
  // pruning-2 drop counter -- members that are regulation-linked to a
  // candidate but cut by the MinC bound -- is a popcount over
  // successor & ~combined & candidates, accumulated for the whole node
  // here rather than per candidate (identical totals; with an active
  // max_nodes / max_clusters cap a mid-node budget stop no longer leaves
  // the counter at a scheduling-dependent prefix).
  const auto transpose = [&](const MemberCols& mem, bool up,
                             const std::vector<uint64_t>& comb,
                             std::vector<uint64_t>& trans, int* trans_words) {
    const size_t count = static_cast<size_t>(mem.size());
    const int mw = util::WordsForBits(static_cast<int>(count));
    *trans_words = mw;
    trans.assign(static_cast<size_t>(num_conds) * mw, 0);
    int64_t drops = 0;
    for (size_t i = 0; i < count; ++i) {
      const uint64_t* comb_row = comb.data() + i * static_cast<size_t>(words);
      const size_t member_word = i >> 6;
      const uint64_t member_bit = uint64_t{1} << (i & 63);
      if (prune2) {
        const uint64_t* succ_row =
            up ? index_->UpCandidates(mem.gene[i], mem.head_pos[i])
               : index_->DownCandidates(mem.gene[i], mem.head_pos[i]);
        drops += util::simd::AndNotMaskPopcountAuto(
            *ops_, succ_row, comb_row, node->cand_words.data(), words);
      }
      for (int w = 0; w < words; ++w) {
        uint64_t live = comb_row[w] & node->cand_words[w];
        while (live) {
          const int c = w * util::kBitsPerWord + std::countr_zero(live);
          live &= live - 1;
          trans[static_cast<size_t>(c) * mw + member_word] |= member_bit;
        }
      }
    }
    stats->genes_dropped_min_conds += drops;
    if constexpr (kCollect) {
      stats->index_word_ops += static_cast<int64_t>(count) * words;
    }
  };
  transpose(node->p, /*up=*/true, node->p_comb, node->p_trans,
            &node->p_words);
  transpose(node->n, /*up=*/false, node->n_comb, node->n_trans,
            &node->n_words);
}

int RegClusterMiner::FilterCandidate(int cand, NodeFrame* node) const {
  node->ClearScored();

  // Walk only the members whose candidate row holds `cand` (the set bits of
  // the transposed bitmap); member indices ascend, so each scored half
  // inherits the gene-ascending member order.  The survivor indices are
  // decoded into `filt`, then one dispatched gather kernel pulls each
  // survivor's gene, head position, denominator and coherence *numerator*
  // (row[cand] - base; the caller divides) into the scored columns.
  const double* matrix = data_.row_data(0);
  const auto filter = [&](const MemberCols& mem,
                          const std::vector<uint64_t>& trans, int trans_words,
                          const std::vector<int64_t>& off,
                          const std::vector<double>& base) {
    const uint64_t* member_bits =
        trans.data() + static_cast<size_t>(cand) * trans_words;
    node->filt.clear();
    util::ForEachSetBit(member_bits, trans_words,
                        [&](int i) { node->filt.push_back(i); });
    const int count = static_cast<int>(node->filt.size());
    const size_t old = node->sc_gene.size();
    const size_t grown = old + static_cast<size_t>(count);
    node->sc_gene.resize(grown);
    node->sc_denom.resize(grown);
    node->sc_h.resize(grown);
    const util::simd::GatherScoredArgs args{mem.gene.data(), mem.denom.data(),
                                            base.data(), off.data(), matrix,
                                            cand};
    ops_->gather_scored(args, count, node->filt.data(),
                        node->sc_gene.data() + old,
                        node->sc_denom.data() + old, node->sc_h.data() + old);
  };
  filter(node->p, node->p_trans, node->p_words, node->p_off, node->p_base);
  const int split = static_cast<int>(node->sc_gene.size());
  filter(node->n, node->n_trans, node->n_words, node->n_off, node->n_base);
  return split;
}

bool RegClusterMiner::SeedRoot(int root_condition, RootWork* work,
                               MinerScratch* scratch) {
  return options_.collect_stats
             ? SeedRootImpl<true>(root_condition, work, scratch)
             : SeedRootImpl<false>(root_condition, work, scratch);
}

template <bool kCollect>
bool RegClusterMiner::SeedRootImpl(int root_condition, RootWork* work,
                                   MinerScratch* scratch) {
  SearchContext* ctx = &work->ctx;
  if (!allowed_cond_[static_cast<size_t>(root_condition)]) return true;
  // Level-1 chain: the root condition, with the genes that can still grow a
  // chain of length MinC through it upward (p) or downward (n).
  NodeFrame& node = scratch->root_frame;
  node.p.clear();
  node.n.clear();
  const int num_genes = data_.num_genes();
  const int min_c = options_.min_conditions;
  const bool prune2 = options_.prune_min_conds;
  for (int g = 0; g < num_genes; ++g) {
    const int pos = index_->position(g, root_condition);
    const bool up_ok =
        !prune2 || index_->ChainEligibleUp(g, root_condition, min_c);
    const bool down_ok =
        !prune2 || index_->ChainEligibleDown(g, root_condition, min_c);
    if (up_ok) node.p.push_back(g, pos, 0.0);
    if (down_ok) node.n.push_back(g, pos, 0.0);
    ctx->stats.genes_dropped_min_conds += (up_ok ? 0 : 1) + (down_ok ? 0 : 1);
  }

  // The level-1 body of the search (the m == 1 specialization of Extend):
  // no emission is possible (MinC >= 2) and every coherence score of the
  // first extension is identically 1 (Eq. 7), so each candidate yields a
  // single all-inclusive window -- one SubtreeSeed.
  if (!HasAllRequired(node.p, node.n, scratch)) return true;
  if (ctx->ctl->OnNode()) return false;
  ++ctx->stats.nodes_expanded;

  const int min_g = options_.min_genes;
  // Pruning (1): at level 1 a gene may appear in both member lists; the sum
  // is then an over-estimate of the union, which is safe (prunes less).
  const int total_members = node.p.size() + node.n.size();
  if (options_.prune_min_genes && total_members < min_g) {
    ++ctx->stats.pruned_min_genes;
    return true;
  }
  // Pruning (3a): fewer than MinG/2 p-members can never be a majority.
  if (options_.prune_p_majority && 2 * node.p.size() < min_g) {
    ++ctx->stats.pruned_p_majority;
    return true;
  }

  PrepareNode<kCollect>(/*m=*/1, /*ckm=*/root_condition, &node, &ctx->stats);
  for (const int cand : node.cands) {
    if (ctx->ctl->CheckAbort()) return false;
    ++ctx->stats.extensions_tested;

    const int split = FilterCandidate(cand, &node);
    const int total = static_cast<int>(node.sc_gene.size());
    if (options_.prune_min_genes && total < min_g) {
      ++ctx->stats.pruned_min_genes;
      continue;
    }

    // Materialize the subtree seed.  The baseline pair (root, cand) is now
    // fixed for the entire branch, and the filter's numerator column
    // row[cand] - row[root] *is* each member's coherence denominator.
    SubtreeSeed seed;
    seed.second_condition = cand;
    const int seed_total = static_cast<int>(node.sc_gene.size());
    seed.p_members.gene.assign(node.sc_gene.begin(),
                               node.sc_gene.begin() + split);
    seed.p_members.denom.assign(node.sc_h.begin(), node.sc_h.begin() + split);
    seed.p_members.head_pos.resize(static_cast<size_t>(split));
    seed.n_members.gene.assign(node.sc_gene.begin() + split,
                               node.sc_gene.end());
    seed.n_members.denom.assign(node.sc_h.begin() + split, node.sc_h.end());
    seed.n_members.head_pos.resize(static_cast<size_t>(seed_total - split));
    // Head positions are looked up here, not gathered by the filter kernel:
    // level-1 survivors all get materialized, so the cost is identical, and
    // the deep-search filter (where ~97% of extensions die) skips them.
    for (int i = 0; i < split; ++i) {
      seed.p_members.head_pos[static_cast<size_t>(i)] =
          index_->position(seed.p_members.gene[static_cast<size_t>(i)], cand);
    }
    for (int i = 0; i < seed_total - split; ++i) {
      seed.n_members.head_pos[static_cast<size_t>(i)] =
          index_->position(seed.n_members.gene[static_cast<size_t>(i)], cand);
    }
    work->seeds.push_back(std::move(seed));
  }
  return true;
}

void RegClusterMiner::MineSubtree(int root_condition, SubtreeSeed* seed,
                                  MinerScratch* scratch, SearchContext* ctx) {
  if (options_.collect_stats) {
    MineSubtreeImpl<true>(root_condition, seed, scratch, ctx);
  } else {
    MineSubtreeImpl<false>(root_condition, seed, scratch, ctx);
  }
}

template <bool kCollect>
void RegClusterMiner::MineSubtreeImpl(int root_condition, SubtreeSeed* seed,
                                      MinerScratch* scratch,
                                      SearchContext* ctx) {
  scratch->chain.clear();
  scratch->chain.push_back(root_condition);
  scratch->chain.push_back(seed->second_condition);
  NodeFrame& node = scratch->frame(0);
  node.p = std::move(seed->p_members);
  node.n = std::move(seed->n_members);
  Extend<kCollect>(0, scratch, ctx);
}

template <bool kCollect>
void RegClusterMiner::Extend(int depth, MinerScratch* scratch,
                             SearchContext* ctx) {
  NodeFrame& node = scratch->frame(depth);
  if (!HasAllRequired(node.p, node.n, scratch)) return;
  if (ctx->ctl->OnNode()) return;
  ++ctx->stats.nodes_expanded;

  const int min_g = options_.min_genes;
  const int m = static_cast<int>(scratch->chain.size());

  // Pruning (1): not enough genes overall.  For m >= 2 the member lists are
  // disjoint, so the sum is the exact union size.
  const int total_members = node.p.size() + node.n.size();
  if (options_.prune_min_genes && total_members < min_g) {
    ++ctx->stats.pruned_min_genes;
    return;
  }
  // Pruning (3a): fewer than MinG/2 p-members can never be a majority.
  if (options_.prune_p_majority && 2 * node.p.size() < min_g) {
    ++ctx->stats.pruned_p_majority;
    return;
  }

  // Step 3: emit if validated and representative; a duplicate prunes the
  // whole branch (pruning 3b).  Under closed_chains_only the emission is
  // deferred until we know whether some extension keeps the entire member
  // set (in which case this node is subsumed and stays silent).
  const bool emit_candidate =
      m >= options_.min_conditions && total_members >= min_g;
  if (emit_candidate && !options_.closed_chains_only) {
    if (!MaybeEmit<kCollect>(scratch->chain, node.p, node.n, ctx)) {
      return;
    }
    if (ctx->ctl->stopped) return;  // the emission exhausted a quota
  }
  bool child_kept_all = false;

  // Step 4: candidate generation and per-member row caching (bitmap ORs and
  // bit probes against the RWaveBitmapIndex replace the per-gene model
  // walks; the sets produced are identical by construction).
  const bool profile = options_.profile_phases;
  int64_t t0 = profile ? NowNs() : 0;
  const int ckm = scratch->chain[static_cast<size_t>(m) - 1];
  PrepareNode<kCollect>(m, ckm, &node, &ctx->stats);
  if (profile) ctx->stats.filter_ns += NowNs() - t0;

  for (const int cand : node.cands) {
    if (ctx->ctl->CheckAbort()) return;
    ++ctx->stats.extensions_tested;

    // Filter: genes of X^cand -- p-members stepping up to cand, n-members
    // stepping down, both still able to reach MinC (pruning 2) -- with the
    // coherence numerator row[cand] - row[ckm] collected alongside.
    if (profile) t0 = NowNs();
    const int split = FilterCandidate(cand, &node);
    const int total = static_cast<int>(node.sc_gene.size());
    if (profile) ctx->stats.filter_ns += NowNs() - t0;

    if (options_.prune_min_genes && total < min_g) {
      ++ctx->stats.pruned_min_genes;
      continue;
    }

    // Score: one contiguous divide pass turns numerators into coherence
    // scores H (Eq. 7); the member's cached baseline denominator makes the
    // formula identical for p- and n-members (both flip sign, Lemma 3.2).
    if (profile) t0 = NowNs();
    double* h = node.sc_h.data();
    const double* denom = node.sc_denom.data();
    ops_->divide_columns(h, denom, total);
    if constexpr (kCollect) {
      ++ctx->stats.coherence_divide_calls;
      ctx->stats.coherence_scores += total;
    }
    if (profile) ctx->stats.score_ns += NowNs() - t0;

    // Sort: index-sort over the score column; rows never move.  The
    // dispatched kernel reproduces the (score asc, gene asc) comparator
    // order byte for byte, and also emits the sorted score column so the
    // window scan below runs over contiguous memory instead of chasing
    // order[] indirections (see util/simd/radix_sort.h).
    if (profile) t0 = NowNs();
    node.order.resize(static_cast<size_t>(total));
    node.sc_hs.resize(static_cast<size_t>(total));
    ops_->sort_scored(h, node.sc_gene.data(), split, total, node.order.data(),
                      node.sc_hs.data(), &scratch->sort_scratch);
    if (profile) ctx->stats.sort_ns += NowNs() - t0;

    // Sliding window (step 5): maximal intervals of score span <= epsilon
    // with at least MinG genes; each spawns a child node.
    const double eps = options_.epsilon;
    bool any_window = false;
    const size_t n_scored = static_cast<size_t>(total);
    const double* hs = node.sc_hs.data();
    size_t hi = 0;
    size_t prev_hi = 0;  // hi of the previous lo, for the maximality test
    for (size_t lo = 0; lo < n_scored; ++lo) {
      if (hi < lo + 1) hi = lo + 1;
      while (hi < n_scored && hs[hi] - hs[lo] <= eps) {
        ++hi;
      }
      // [lo, hi) is the widest window starting at lo; hi is non-decreasing
      // in lo, so the window is maximal (not contained in the previous
      // window) iff hi advanced.
      const bool maximal = lo == 0 || hi > prev_hi;
      prev_hi = hi;
      if (!maximal || static_cast<int>(hi - lo) < min_g) continue;
      any_window = true;
      if (lo == 0 && hi == n_scored && total == total_members) {
        child_kept_all = true;
      }
      // Child build: window indices below the split are p-members.  Each
      // scored half is gene-ascending, so sorting the index subsets
      // restores the deterministic by-gene member order.
      node.win_p.clear();
      node.win_n.clear();
      for (size_t i = lo; i < hi; ++i) {
        const int idx = node.order[i];
        (idx < split ? node.win_p : node.win_n).push_back(idx);
      }
      std::sort(node.win_p.begin(), node.win_p.end());
      std::sort(node.win_n.begin(), node.win_n.end());
      NodeFrame& child = scratch->frame(depth + 1);
      child.p.clear();
      child.n.clear();
      // Lazy head lookup: only members of a window that actually spawns a
      // child ever need their position at `cand` (see GatherScoredArgs).
      for (const int idx : node.win_p) {
        const int g = node.sc_gene[static_cast<size_t>(idx)];
        child.p.push_back(g, index_->position(g, cand),
                          node.sc_denom[static_cast<size_t>(idx)]);
      }
      for (const int idx : node.win_n) {
        const int g = node.sc_gene[static_cast<size_t>(idx)];
        child.n.push_back(g, index_->position(g, cand),
                          node.sc_denom[static_cast<size_t>(idx)]);
      }
      scratch->chain.push_back(cand);
      Extend<kCollect>(depth + 1, scratch, ctx);
      scratch->chain.pop_back();
      if (ctx->ctl->stopped) return;
    }
    if (!any_window) ++ctx->stats.pruned_coherence;
  }

  if (emit_candidate && options_.closed_chains_only && !child_kept_all) {
    (void)MaybeEmit<kCollect>(scratch->chain, node.p, node.n, ctx);
  }
}

template <bool kCollect>
bool RegClusterMiner::MaybeEmit(const std::vector<int>& chain,
                                const MemberCols& p, const MemberCols& n,
                                SearchContext* ctx) {
  const size_t np = static_cast<size_t>(p.size());
  const size_t nn = static_cast<size_t>(n.size());
  const bool representative =
      np > nn || (np == nn && LexSmallerThanReversed(chain));
  if (!representative) return true;  // keep searching; no output here

  const bool profile = options_.profile_phases;
  const int64_t t0 = profile ? NowNs() : 0;
  if (options_.prune_duplicates) {
    // 128-bit key over (ordered chain | sorted gene union) -- the same
    // identity as RegCluster::Key(), without building any string.  Emission
    // requires m >= MinC >= 2, where the member lists are disjoint and
    // gene-sorted, so the union is a plain merge walk.
    util::Fnv128 key;
    for (int c : chain) key.MixInt(c);
    key.MixInt(-1);  // domain separator between chain and gene ids
    size_t i = 0;
    size_t j = 0;
    while (i < np || j < nn) {
      if (j >= nn || (i < np && p.gene[i] < n.gene[j])) {
        key.MixInt(p.gene[i++]);
      } else {
        key.MixInt(n.gene[j++]);
      }
    }
    if constexpr (kCollect) ++ctx->stats.dedup_probes;
    auto [it, inserted] = ctx->seen_keys.insert(key.Digest());
    (void)it;
    if (!inserted) {
      ++ctx->stats.pruned_duplicate;
      if (profile) ctx->stats.emit_ns += NowNs() - t0;
      return false;  // prune the branch rooted at this duplicate
    }
  }

  RegCluster cluster;
  cluster.chain = chain;
  cluster.p_genes = p.gene;
  cluster.n_genes = n.gene;
  ctx->out.push_back(std::move(cluster));
  ++ctx->stats.clusters_emitted;
  ctx->ctl->OnEmit(static_cast<int64_t>(
      (chain.size() + np + nn) * sizeof(int) + sizeof(RegCluster)));
  if (profile) ctx->stats.emit_ns += NowNs() - t0;
  return true;
}

}  // namespace core
}  // namespace regcluster
