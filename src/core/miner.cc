#include "core/miner.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "core/coherence.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace regcluster {
namespace core {
namespace {

/// One (gene, coherence score) entry for the sliding window.
struct Scored {
  double h;
  int gene;
  int head_pos;  // position of the candidate condition in the gene's model
  bool positive;
};

/// True iff the chain is lexicographically smaller than its reversal
/// (condition ids).  Used for the tie-break of the representative rule.
bool LexSmallerThanReversed(const std::vector<int>& chain) {
  const size_t n = chain.size();
  for (size_t i = 0; i < n; ++i) {
    const int fwd = chain[i];
    const int rev = chain[n - 1 - i];
    if (fwd != rev) return fwd < rev;
  }
  return false;  // palindromic (only possible for length 1)
}

void AccumulateStats(const MinerStats& from, MinerStats* to) {
  to->nodes_expanded += from.nodes_expanded;
  to->extensions_tested += from.extensions_tested;
  to->pruned_min_genes += from.pruned_min_genes;
  to->pruned_p_majority += from.pruned_p_majority;
  to->pruned_duplicate += from.pruned_duplicate;
  to->pruned_coherence += from.pruned_coherence;
  to->genes_dropped_min_conds += from.genes_dropped_min_conds;
  to->clusters_emitted += from.clusters_emitted;
}

}  // namespace

RegClusterMiner::RegClusterMiner(const matrix::ExpressionMatrix& data,
                                 MinerOptions options)
    : data_(data), options_(options) {}

util::StatusOr<std::vector<RegCluster>> RegClusterMiner::Mine() {
  if (options_.min_genes < 1) {
    return util::Status::InvalidArgument("MinG must be >= 1");
  }
  if (options_.min_conditions < 2) {
    return util::Status::InvalidArgument(
        "MinC must be >= 2 (a chain needs at least one regulation step)");
  }
  const bool relative_gamma =
      options_.gamma_policy != GammaPolicy::kAbsolute;
  if (options_.gamma < 0.0 || (relative_gamma && options_.gamma > 1.0)) {
    return util::Status::InvalidArgument(
        relative_gamma ? "gamma must be in [0, 1] for relative policies"
                       : "absolute gamma must be >= 0");
  }
  if (options_.epsilon < 0.0) {
    return util::Status::InvalidArgument("epsilon must be >= 0");
  }
  if (options_.num_threads < 0) {
    return util::Status::InvalidArgument("num_threads must be >= 0");
  }
  if (data_.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix contains missing values; impute first "
        "(matrix::ImputeRowMean)");
  }
  for (int g : options_.required_genes) {
    if (g < 0 || g >= data_.num_genes()) {
      return util::Status::OutOfRange("required gene outside the matrix");
    }
  }
  for (int c : options_.allowed_conditions) {
    if (c < 0 || c >= data_.num_conditions()) {
      return util::Status::OutOfRange("allowed condition outside the matrix");
    }
  }
  allowed_cond_.assign(static_cast<size_t>(data_.num_conditions()),
                       options_.allowed_conditions.empty() ? 1 : 0);
  for (int c : options_.allowed_conditions) {
    allowed_cond_[static_cast<size_t>(c)] = 1;
  }
  required_gene_.assign(static_cast<size_t>(data_.num_genes()), 0);
  num_required_ = 0;
  for (int g : options_.required_genes) {
    if (!required_gene_[static_cast<size_t>(g)]) {
      required_gene_[static_cast<size_t>(g)] = 1;
      ++num_required_;
    }
  }

  stats_ = MinerStats();
  nodes_guard_.store(0, std::memory_order_relaxed);
  clusters_guard_.store(0, std::memory_order_relaxed);

  util::WallTimer timer;
  const GammaSpec spec{options_.gamma_policy, options_.gamma};
  rwaves_.clear();
  rwaves_.reserve(static_cast<size_t>(data_.num_genes()));
  for (int g = 0; g < data_.num_genes(); ++g) {
    rwaves_.push_back(RWaveModel::Build(data_.row_data(g),
                                        data_.num_conditions(),
                                        AbsoluteGamma(data_, g, spec)));
  }
  stats_.rwave_build_seconds = timer.ElapsedSeconds();

  timer.Reset();
  const int num_conds = data_.num_conditions();
  std::vector<SearchContext> contexts(static_cast<size_t>(num_conds));

  int threads = options_.num_threads;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }
  threads = std::min(threads, std::max(num_conds, 1));

  if (threads <= 1) {
    for (int c = 0; c < num_conds; ++c) {
      MineRoot(c, &contexts[static_cast<size_t>(c)]);
    }
  } else {
    std::atomic<int> next_root{0};
    auto worker = [&]() {
      while (true) {
        const int c = next_root.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_conds) return;
        MineRoot(c, &contexts[static_cast<size_t>(c)]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Merge in root order: deterministic regardless of thread count.
  std::vector<RegCluster> out;
  for (SearchContext& ctx : contexts) {
    AccumulateStats(ctx.stats, &stats_);
    out.insert(out.end(), std::make_move_iterator(ctx.out.begin()),
               std::make_move_iterator(ctx.out.end()));
  }
  if (options_.remove_dominated) out = RemoveDominated(std::move(out));
  stats_.mine_seconds = timer.ElapsedSeconds();
  return out;
}

bool RegClusterMiner::BudgetExceeded() const {
  return (options_.max_nodes >= 0 &&
          nodes_guard_.load(std::memory_order_relaxed) >=
              options_.max_nodes) ||
         (options_.max_clusters >= 0 &&
          clusters_guard_.load(std::memory_order_relaxed) >=
              options_.max_clusters);
}

bool RegClusterMiner::HasAllRequired(const std::vector<Member>& p,
                                     const std::vector<Member>& n) const {
  if (num_required_ == 0) return true;
  int found = 0;
  for (const Member& m : p) {
    found += required_gene_[static_cast<size_t>(m.gene)];
  }
  for (const Member& m : n) {
    found += required_gene_[static_cast<size_t>(m.gene)];
  }
  // At level 1 a required gene can sit in both lists; count distinct genes.
  if (found >= num_required_) {
    std::vector<char> seen(required_gene_);
    int distinct = 0;
    for (const Member& m : p) {
      if (seen[static_cast<size_t>(m.gene)]) {
        seen[static_cast<size_t>(m.gene)] = 0;
        ++distinct;
      }
    }
    for (const Member& m : n) {
      if (seen[static_cast<size_t>(m.gene)]) {
        seen[static_cast<size_t>(m.gene)] = 0;
        ++distinct;
      }
    }
    return distinct == num_required_;
  }
  return false;
}

void RegClusterMiner::MineRoot(int root_condition, SearchContext* ctx) {
  if (BudgetExceeded()) return;
  if (!allowed_cond_[static_cast<size_t>(root_condition)]) return;
  // Level-1 chain: the root condition, with the genes that can still grow a
  // chain of length MinC through it upward (p) or downward (n).
  Node node;
  node.chain.push_back(root_condition);
  const int num_genes = data_.num_genes();
  for (int g = 0; g < num_genes; ++g) {
    const RWaveModel& w = rwaves_[static_cast<size_t>(g)];
    const int pos = w.position(root_condition);
    const bool up_ok = !options_.prune_min_conds ||
                       w.MaxChainUp(pos) >= options_.min_conditions;
    const bool down_ok = !options_.prune_min_conds ||
                         w.MaxChainDown(pos) >= options_.min_conditions;
    if (up_ok) node.p_members.push_back(Member{g, pos});
    if (down_ok) node.n_members.push_back(Member{g, pos});
    ctx->stats.genes_dropped_min_conds += (up_ok ? 0 : 1) + (down_ok ? 0 : 1);
  }
  Extend(&node, ctx);
}

void RegClusterMiner::Extend(Node* node, SearchContext* ctx) {
  if (BudgetExceeded()) return;
  if (!HasAllRequired(node->p_members, node->n_members)) return;
  ++ctx->stats.nodes_expanded;
  nodes_guard_.fetch_add(1, std::memory_order_relaxed);

  const int min_g = options_.min_genes;
  const int min_c = options_.min_conditions;
  const int m = static_cast<int>(node->chain.size());

  // Pruning (1): not enough genes overall.  At level 1 a gene may appear in
  // both member lists; the sum is then an over-estimate of the union, which
  // is safe (prunes less), and it is exact for m >= 2 where the lists are
  // disjoint.
  const int total_members =
      static_cast<int>(node->p_members.size() + node->n_members.size());
  if (options_.prune_min_genes && total_members < min_g) {
    ++ctx->stats.pruned_min_genes;
    return;
  }
  // Pruning (3a): fewer than MinG/2 p-members can never be a majority.
  if (options_.prune_p_majority &&
      2 * static_cast<int>(node->p_members.size()) < min_g) {
    ++ctx->stats.pruned_p_majority;
    return;
  }

  // Step 3: emit if validated and representative; a duplicate prunes the
  // whole branch (pruning 3b).  Under closed_chains_only the emission is
  // deferred until we know whether some extension keeps the full member
  // set (in which case this node is subsumed and stays silent).
  const bool emit_candidate = m >= min_c && total_members >= min_g;
  if (emit_candidate && !options_.closed_chains_only) {
    if (!MaybeEmit(*node, ctx)) return;
  }
  bool child_kept_all = false;

  // Step 4: candidate generation.  Scan p-members only (licensed by pruning
  // 3a): collect every condition reachable by one regulated step up from
  // the chain head that can still complete a MinC chain.
  const int num_conds = data_.num_conditions();
  std::vector<char> is_candidate(static_cast<size_t>(num_conds), 0);
  std::vector<int> first_succ(node->p_members.size());
  for (size_t i = 0; i < node->p_members.size(); ++i) {
    const Member& mem = node->p_members[i];
    const RWaveModel& w = rwaves_[static_cast<size_t>(mem.gene)];
    const int h = w.FirstSuccessorPos(mem.head_pos);
    first_succ[i] = h;
    if (h < 0) continue;
    for (int q = h; q < num_conds; ++q) {
      if (options_.prune_min_conds && m + w.MaxChainUp(q) < min_c) {
        // Chains through this position cannot reach MinC conditions.
        continue;
      }
      is_candidate[static_cast<size_t>(w.condition_at(q))] = 1;
    }
  }
  // Cache each n-member's one-step-down frontier.
  std::vector<int> last_pred(node->n_members.size());
  for (size_t i = 0; i < node->n_members.size(); ++i) {
    const Member& mem = node->n_members[i];
    last_pred[i] =
        rwaves_[static_cast<size_t>(mem.gene)].LastPredecessorPos(mem.head_pos);
  }

  std::vector<Scored> scored;
  for (int cand = 0; cand < num_conds; ++cand) {
    if (!is_candidate[static_cast<size_t>(cand)]) continue;
    if (!allowed_cond_[static_cast<size_t>(cand)]) continue;
    if (BudgetExceeded()) return;
    ++ctx->stats.extensions_tested;

    // Genes of X^cand: p-members stepping up to cand, n-members stepping
    // down to cand, both still able to reach MinC (pruning 2).
    scored.clear();
    for (size_t i = 0; i < node->p_members.size(); ++i) {
      const Member& mem = node->p_members[i];
      if (first_succ[i] < 0) continue;
      const RWaveModel& w = rwaves_[static_cast<size_t>(mem.gene)];
      const int q = w.position(cand);
      if (q < first_succ[i]) continue;  // not a regulation successor
      if (options_.prune_min_conds && m + w.MaxChainUp(q) < min_c) {
        ++ctx->stats.genes_dropped_min_conds;
        continue;
      }
      scored.push_back(Scored{0.0, mem.gene, q, true});
    }
    for (size_t i = 0; i < node->n_members.size(); ++i) {
      const Member& mem = node->n_members[i];
      if (last_pred[i] < 0) continue;
      const RWaveModel& w = rwaves_[static_cast<size_t>(mem.gene)];
      const int q = w.position(cand);
      if (q > last_pred[i]) continue;  // not a regulation predecessor
      if (options_.prune_min_conds && m + w.MaxChainDown(q) < min_c) {
        ++ctx->stats.genes_dropped_min_conds;
        continue;
      }
      scored.push_back(Scored{0.0, mem.gene, q, false});
    }

    if (options_.prune_min_genes && static_cast<int>(scored.size()) < min_g) {
      ++ctx->stats.pruned_min_genes;
      continue;
    }

    if (m == 1) {
      // First extension: the new pair *is* the baseline, every gene's score
      // is identically 1 (Eq. 7), so there is a single all-inclusive window.
      if (static_cast<int>(scored.size()) == total_members) {
        child_kept_all = true;
      }
      Node child;
      child.chain = node->chain;
      child.chain.push_back(cand);
      for (const Scored& s : scored) {
        (s.positive ? child.p_members : child.n_members)
            .push_back(Member{s.gene, s.head_pos});
      }
      Extend(&child, ctx);
      continue;
    }

    // Coherence scores H(j, ck1, ck2, ckm, cand) -- identical formula for p-
    // and n-members (numerator and denominator of an n-member both flip
    // sign, Lemma 3.2).
    const int ck1 = node->chain[0];
    const int ck2 = node->chain[1];
    const int ckm = node->chain[static_cast<size_t>(m) - 1];
    for (Scored& s : scored) {
      s.h = CoherenceScore(data_.row_data(s.gene), ck1, ck2, ckm, cand);
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                if (a.h != b.h) return a.h < b.h;
                return a.gene < b.gene;
              });

    // Sliding window (step 5): maximal intervals of score span <= epsilon
    // with at least MinG genes; each spawns a child node.
    const double eps = options_.epsilon;
    bool any_window = false;
    const size_t n_scored = scored.size();
    size_t hi = 0;
    size_t prev_hi = 0;  // hi of the previous lo, for the maximality test
    for (size_t lo = 0; lo < n_scored; ++lo) {
      if (hi < lo + 1) hi = lo + 1;
      while (hi < n_scored && scored[hi].h - scored[lo].h <= eps) ++hi;
      // [lo, hi) is the widest window starting at lo; hi is non-decreasing
      // in lo, so the window is maximal (not contained in the previous
      // window) iff hi advanced.
      const bool maximal = lo == 0 || hi > prev_hi;
      prev_hi = hi;
      if (!maximal || static_cast<int>(hi - lo) < min_g) continue;
      any_window = true;
      if (lo == 0 && hi == n_scored &&
          static_cast<int>(n_scored) == total_members) {
        child_kept_all = true;
      }
      Node child;
      child.chain = node->chain;
      child.chain.push_back(cand);
      for (size_t i = lo; i < hi; ++i) {
        (scored[i].positive ? child.p_members : child.n_members)
            .push_back(Member{scored[i].gene, scored[i].head_pos});
      }
      // Keep member lists sorted by gene id for deterministic output.
      auto by_gene = [](const Member& a, const Member& b) {
        return a.gene < b.gene;
      };
      std::sort(child.p_members.begin(), child.p_members.end(), by_gene);
      std::sort(child.n_members.begin(), child.n_members.end(), by_gene);
      Extend(&child, ctx);
      if (BudgetExceeded()) return;
    }
    if (!any_window) ++ctx->stats.pruned_coherence;
  }

  if (emit_candidate && options_.closed_chains_only && !child_kept_all) {
    (void)MaybeEmit(*node, ctx);
  }
}

bool RegClusterMiner::MaybeEmit(const Node& node, SearchContext* ctx) {
  const size_t np = node.p_members.size();
  const size_t nn = node.n_members.size();
  const bool representative =
      np > nn || (np == nn && LexSmallerThanReversed(node.chain));
  if (!representative) return true;  // keep searching; no output here

  RegCluster cluster;
  cluster.chain = node.chain;
  cluster.p_genes.reserve(np);
  for (const Member& mem : node.p_members) cluster.p_genes.push_back(mem.gene);
  cluster.n_genes.reserve(nn);
  for (const Member& mem : node.n_members) cluster.n_genes.push_back(mem.gene);

  if (options_.prune_duplicates) {
    auto [it, inserted] = ctx->seen_keys.insert(cluster.Key());
    (void)it;
    if (!inserted) {
      ++ctx->stats.pruned_duplicate;
      return false;  // prune the branch rooted at this duplicate
    }
  }
  ctx->out.push_back(std::move(cluster));
  ++ctx->stats.clusters_emitted;
  clusters_guard_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace core
}  // namespace regcluster
