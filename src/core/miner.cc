#include "core/miner.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <thread>

#include "core/coherence.h"
#include "util/task_pool.h"
#include "util/timer.h"

namespace regcluster {
namespace core {
namespace {

/// True iff the chain is lexicographically smaller than its reversal
/// (condition ids).  Used for the tie-break of the representative rule.
bool LexSmallerThanReversed(const std::vector<int>& chain) {
  const size_t n = chain.size();
  for (size_t i = 0; i < n; ++i) {
    const int fwd = chain[i];
    const int rev = chain[n - 1 - i];
    if (fwd != rev) return fwd < rev;
  }
  return false;  // palindromic (only possible for length 1)
}

void AccumulateStats(const MinerStats& from, MinerStats* to) {
  to->nodes_expanded += from.nodes_expanded;
  to->extensions_tested += from.extensions_tested;
  to->pruned_min_genes += from.pruned_min_genes;
  to->pruned_p_majority += from.pruned_p_majority;
  to->pruned_duplicate += from.pruned_duplicate;
  to->pruned_coherence += from.pruned_coherence;
  to->genes_dropped_min_conds += from.genes_dropped_min_conds;
  to->clusters_emitted += from.clusters_emitted;
}

}  // namespace

/// Per-worker scratch arena.  Every container is reused across the whole
/// search, so after a short warm-up (first visit of each DFS depth) the hot
/// loop performs zero heap allocations.  Frames live in a deque: references
/// into it stay valid while deeper frames are appended during recursion.
struct RegClusterMiner::MinerScratch {
  /// One (gene, coherence score) entry for the sliding window.
  struct Scored {
    double h;
    int gene;
    int head_pos;  // position of the candidate condition in the gene's model
    double denom;  // the member's cached baseline denominator (propagated)
    bool positive;
  };

  struct Frame {
    std::vector<Member> p_members;
    std::vector<Member> n_members;
    std::vector<int> first_succ;  // per p-member one-step-up frontier
    std::vector<int> last_pred;   // per n-member one-step-down frontier
    std::vector<int> cands;       // candidate conditions, ascending
    std::vector<Scored> scored;
  };

  std::vector<int> chain;      ///< the DFS chain stack
  std::deque<Frame> frames;    ///< frames[d] holds the node of chain length d+2
  Frame root_frame;            ///< the level-1 node (SeedRoot only)
  std::vector<uint64_t> cond_epoch;  ///< condition id -> last-marked epoch
  std::vector<uint64_t> gene_epoch;  ///< gene id -> last-marked epoch
  uint64_t epoch = 0;

  void Init(int num_conds, int num_genes) {
    chain.reserve(static_cast<size_t>(num_conds) + 1);
    cond_epoch.assign(static_cast<size_t>(num_conds), 0);
    gene_epoch.assign(static_cast<size_t>(num_genes), 0);
    epoch = 0;
  }

  Frame& frame(int depth) {
    while (frames.size() <= static_cast<size_t>(depth)) frames.emplace_back();
    return frames[static_cast<size_t>(depth)];
  }
};

RegClusterMiner::RegClusterMiner(const matrix::ExpressionMatrix& data,
                                 MinerOptions options)
    : data_(data), options_(options) {}

util::StatusOr<std::vector<RegCluster>> RegClusterMiner::Mine() {
  if (options_.min_genes < 1) {
    return util::Status::InvalidArgument("MinG must be >= 1");
  }
  if (options_.min_conditions < 2) {
    return util::Status::InvalidArgument(
        "MinC must be >= 2 (a chain needs at least one regulation step)");
  }
  const bool relative_gamma =
      options_.gamma_policy != GammaPolicy::kAbsolute;
  if (options_.gamma < 0.0 || (relative_gamma && options_.gamma > 1.0)) {
    return util::Status::InvalidArgument(
        relative_gamma ? "gamma must be in [0, 1] for relative policies"
                       : "absolute gamma must be >= 0");
  }
  if (options_.epsilon < 0.0) {
    return util::Status::InvalidArgument("epsilon must be >= 0");
  }
  if (options_.num_threads < 0) {
    return util::Status::InvalidArgument("num_threads must be >= 0");
  }
  if (data_.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix contains missing values; impute first "
        "(matrix::ImputeRowMean)");
  }
  for (int g : options_.required_genes) {
    if (g < 0 || g >= data_.num_genes()) {
      return util::Status::OutOfRange("required gene outside the matrix");
    }
  }
  for (int c : options_.allowed_conditions) {
    if (c < 0 || c >= data_.num_conditions()) {
      return util::Status::OutOfRange("allowed condition outside the matrix");
    }
  }
  allowed_cond_.assign(static_cast<size_t>(data_.num_conditions()),
                       options_.allowed_conditions.empty() ? 1 : 0);
  for (int c : options_.allowed_conditions) {
    allowed_cond_[static_cast<size_t>(c)] = 1;
  }
  required_gene_.assign(static_cast<size_t>(data_.num_genes()), 0);
  num_required_ = 0;
  for (int g : options_.required_genes) {
    if (!required_gene_[static_cast<size_t>(g)]) {
      required_gene_[static_cast<size_t>(g)] = 1;
      ++num_required_;
    }
  }

  stats_ = MinerStats();
  nodes_guard_.store(0, std::memory_order_relaxed);
  clusters_guard_.store(0, std::memory_order_relaxed);

  util::WallTimer timer;
  const GammaSpec spec{options_.gamma_policy, options_.gamma};
  rwaves_.clear();
  rwaves_.reserve(static_cast<size_t>(data_.num_genes()));
  for (int g = 0; g < data_.num_genes(); ++g) {
    rwaves_.push_back(RWaveModel::Build(data_.row_data(g),
                                        data_.num_conditions(),
                                        AbsoluteGamma(data_, g, spec)));
  }
  stats_.rwave_build_seconds = timer.ElapsedSeconds();

  timer.Reset();
  const int num_conds = data_.num_conditions();
  const int num_genes = data_.num_genes();
  std::vector<RootWork> work(static_cast<size_t>(num_conds));

  int threads = options_.num_threads;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }

  if (threads <= 1) {
    MinerScratch scratch;
    scratch.Init(num_conds, num_genes);
    for (int c = 0; c < num_conds; ++c) {
      RootWork& rw = work[static_cast<size_t>(c)];
      SeedRoot(c, &rw, &scratch);
      rw.subtree_ctx.resize(rw.seeds.size());
      for (size_t i = 0; i < rw.seeds.size(); ++i) {
        MineSubtree(c, &rw.seeds[i], &scratch, &rw.subtree_ctx[i]);
      }
    }
  } else {
    util::TaskPool pool(threads);
    std::vector<MinerScratch> scratches(
        static_cast<size_t>(pool.num_workers()));
    for (MinerScratch& s : scratches) s.Init(num_conds, num_genes);
    // Each root task seeds its level-2 subtrees and immediately re-submits
    // them: large subtrees become stealable instead of serializing behind
    // their root, which is what makes imbalanced trees scale.
    for (int c = 0; c < num_conds; ++c) {
      RootWork* rw = &work[static_cast<size_t>(c)];
      pool.Submit([this, c, rw, &pool, &scratches](int worker) {
        SeedRoot(c, rw, &scratches[static_cast<size_t>(worker)]);
        rw->subtree_ctx.resize(rw->seeds.size());
        for (size_t i = 0; i < rw->seeds.size(); ++i) {
          SubtreeSeed* seed = &rw->seeds[i];
          SearchContext* ctx = &rw->subtree_ctx[i];
          pool.Submit([this, c, seed, ctx, &scratches](int w) {
            MineSubtree(c, seed, &scratches[static_cast<size_t>(w)], ctx);
          });
        }
      });
    }
    pool.Wait();
  }

  // Merge in canonical (root, second-condition) order: deterministic
  // regardless of thread count and of which worker ran which task.
  std::vector<RegCluster> out;
  for (RootWork& rw : work) {
    AccumulateStats(rw.ctx.stats, &stats_);
    for (SearchContext& ctx : rw.subtree_ctx) {
      AccumulateStats(ctx.stats, &stats_);
      out.insert(out.end(), std::make_move_iterator(ctx.out.begin()),
                 std::make_move_iterator(ctx.out.end()));
    }
  }
  if (options_.remove_dominated) out = RemoveDominated(std::move(out));
  stats_.mine_seconds = timer.ElapsedSeconds();
  return out;
}

bool RegClusterMiner::BudgetExceeded() const {
  return (options_.max_nodes >= 0 &&
          nodes_guard_.load(std::memory_order_relaxed) >=
              options_.max_nodes) ||
         (options_.max_clusters >= 0 &&
          clusters_guard_.load(std::memory_order_relaxed) >=
              options_.max_clusters);
}

bool RegClusterMiner::HasAllRequired(const std::vector<Member>& p,
                                     const std::vector<Member>& n,
                                     MinerScratch* scratch) const {
  if (num_required_ == 0) return true;
  // Epoch-stamped distinct count: at level 1 a required gene can sit in both
  // lists, so presence is deduplicated via the per-gene stamp -- one pass,
  // no allocation.
  const uint64_t epoch = ++scratch->epoch;
  int distinct = 0;
  for (const Member& m : p) {
    const size_t g = static_cast<size_t>(m.gene);
    if (required_gene_[g] && scratch->gene_epoch[g] != epoch) {
      scratch->gene_epoch[g] = epoch;
      ++distinct;
    }
  }
  for (const Member& m : n) {
    const size_t g = static_cast<size_t>(m.gene);
    if (required_gene_[g] && scratch->gene_epoch[g] != epoch) {
      scratch->gene_epoch[g] = epoch;
      ++distinct;
    }
  }
  return distinct == num_required_;
}

void RegClusterMiner::SeedRoot(int root_condition, RootWork* work,
                               MinerScratch* scratch) {
  SearchContext* ctx = &work->ctx;
  if (BudgetExceeded()) return;
  if (!allowed_cond_[static_cast<size_t>(root_condition)]) return;
  // Level-1 chain: the root condition, with the genes that can still grow a
  // chain of length MinC through it upward (p) or downward (n).
  MinerScratch::Frame& node = scratch->root_frame;
  node.p_members.clear();
  node.n_members.clear();
  const int num_genes = data_.num_genes();
  for (int g = 0; g < num_genes; ++g) {
    const RWaveModel& w = rwaves_[static_cast<size_t>(g)];
    const int pos = w.position(root_condition);
    const bool up_ok = !options_.prune_min_conds ||
                       w.MaxChainUp(pos) >= options_.min_conditions;
    const bool down_ok = !options_.prune_min_conds ||
                         w.MaxChainDown(pos) >= options_.min_conditions;
    if (up_ok) node.p_members.push_back(Member{g, pos, 0.0});
    if (down_ok) node.n_members.push_back(Member{g, pos, 0.0});
    ctx->stats.genes_dropped_min_conds += (up_ok ? 0 : 1) + (down_ok ? 0 : 1);
  }

  // The level-1 body of the search (the m == 1 specialization of Extend):
  // no emission is possible (MinC >= 2) and every coherence score of the
  // first extension is identically 1 (Eq. 7), so each candidate yields a
  // single all-inclusive window -- one SubtreeSeed.
  if (!HasAllRequired(node.p_members, node.n_members, scratch)) return;
  ++ctx->stats.nodes_expanded;
  nodes_guard_.fetch_add(1, std::memory_order_relaxed);

  const int min_g = options_.min_genes;
  const int min_c = options_.min_conditions;
  // Pruning (1): at level 1 a gene may appear in both member lists; the sum
  // is then an over-estimate of the union, which is safe (prunes less).
  const int total_members =
      static_cast<int>(node.p_members.size() + node.n_members.size());
  if (options_.prune_min_genes && total_members < min_g) {
    ++ctx->stats.pruned_min_genes;
    return;
  }
  // Pruning (3a): fewer than MinG/2 p-members can never be a majority.
  if (options_.prune_p_majority &&
      2 * static_cast<int>(node.p_members.size()) < min_g) {
    ++ctx->stats.pruned_p_majority;
    return;
  }

  // Candidate generation: scan p-members only (licensed by pruning 3a).
  const int num_conds = data_.num_conditions();
  const uint64_t epoch = ++scratch->epoch;
  node.first_succ.resize(node.p_members.size());
  for (size_t i = 0; i < node.p_members.size(); ++i) {
    const Member& mem = node.p_members[i];
    const RWaveModel& w = rwaves_[static_cast<size_t>(mem.gene)];
    const int h = w.FirstSuccessorPos(mem.head_pos);
    node.first_succ[i] = h;
    if (h < 0) continue;
    for (int q = h; q < num_conds; ++q) {
      if (options_.prune_min_conds && 1 + w.MaxChainUp(q) < min_c) {
        continue;
      }
      scratch->cond_epoch[static_cast<size_t>(w.condition_at(q))] = epoch;
    }
  }
  node.last_pred.resize(node.n_members.size());
  for (size_t i = 0; i < node.n_members.size(); ++i) {
    const Member& mem = node.n_members[i];
    node.last_pred[i] =
        rwaves_[static_cast<size_t>(mem.gene)].LastPredecessorPos(mem.head_pos);
  }

  std::vector<MinerScratch::Scored>& scored = node.scored;
  for (int cand = 0; cand < num_conds; ++cand) {
    if (scratch->cond_epoch[static_cast<size_t>(cand)] != epoch) continue;
    if (!allowed_cond_[static_cast<size_t>(cand)]) continue;
    if (BudgetExceeded()) return;
    ++ctx->stats.extensions_tested;

    scored.clear();
    for (size_t i = 0; i < node.p_members.size(); ++i) {
      const Member& mem = node.p_members[i];
      if (node.first_succ[i] < 0) continue;
      const RWaveModel& w = rwaves_[static_cast<size_t>(mem.gene)];
      const int q = w.position(cand);
      if (q < node.first_succ[i]) continue;  // not a regulation successor
      if (options_.prune_min_conds && 1 + w.MaxChainUp(q) < min_c) {
        ++ctx->stats.genes_dropped_min_conds;
        continue;
      }
      scored.push_back(MinerScratch::Scored{0.0, mem.gene, q, 0.0, true});
    }
    for (size_t i = 0; i < node.n_members.size(); ++i) {
      const Member& mem = node.n_members[i];
      if (node.last_pred[i] < 0) continue;
      const RWaveModel& w = rwaves_[static_cast<size_t>(mem.gene)];
      const int q = w.position(cand);
      if (q > node.last_pred[i]) continue;  // not a regulation predecessor
      if (options_.prune_min_conds && 1 + w.MaxChainDown(q) < min_c) {
        ++ctx->stats.genes_dropped_min_conds;
        continue;
      }
      scored.push_back(MinerScratch::Scored{0.0, mem.gene, q, 0.0, false});
    }

    if (options_.prune_min_genes && static_cast<int>(scored.size()) < min_g) {
      ++ctx->stats.pruned_min_genes;
      continue;
    }

    // Materialize the subtree seed.  The baseline pair (root, cand) is now
    // fixed for the entire branch: cache each member's coherence denominator
    // d[cand] - d[root] here, once.
    SubtreeSeed seed;
    seed.second_condition = cand;
    for (const MinerScratch::Scored& s : scored) {
      const double* row = data_.row_data(s.gene);
      const double denom = row[cand] - row[root_condition];
      (s.positive ? seed.p_members : seed.n_members)
          .push_back(Member{s.gene, s.head_pos, denom});
    }
    work->seeds.push_back(std::move(seed));
  }
}

void RegClusterMiner::MineSubtree(int root_condition, SubtreeSeed* seed,
                                  MinerScratch* scratch, SearchContext* ctx) {
  scratch->chain.clear();
  scratch->chain.push_back(root_condition);
  scratch->chain.push_back(seed->second_condition);
  MinerScratch::Frame& node = scratch->frame(0);
  node.p_members = std::move(seed->p_members);
  node.n_members = std::move(seed->n_members);
  Extend(0, scratch, ctx);
}

void RegClusterMiner::Extend(int depth, MinerScratch* scratch,
                             SearchContext* ctx) {
  if (BudgetExceeded()) return;
  MinerScratch::Frame& node = scratch->frame(depth);
  if (!HasAllRequired(node.p_members, node.n_members, scratch)) return;
  ++ctx->stats.nodes_expanded;
  nodes_guard_.fetch_add(1, std::memory_order_relaxed);

  const int min_g = options_.min_genes;
  const int min_c = options_.min_conditions;
  const int m = static_cast<int>(scratch->chain.size());

  // Pruning (1): not enough genes overall.  For m >= 2 the member lists are
  // disjoint, so the sum is the exact union size.
  const int total_members =
      static_cast<int>(node.p_members.size() + node.n_members.size());
  if (options_.prune_min_genes && total_members < min_g) {
    ++ctx->stats.pruned_min_genes;
    return;
  }
  // Pruning (3a): fewer than MinG/2 p-members can never be a majority.
  if (options_.prune_p_majority &&
      2 * static_cast<int>(node.p_members.size()) < min_g) {
    ++ctx->stats.pruned_p_majority;
    return;
  }

  // Step 3: emit if validated and representative; a duplicate prunes the
  // whole branch (pruning 3b).  Under closed_chains_only the emission is
  // deferred until we know whether some extension keeps the full member
  // set (in which case this node is subsumed and stays silent).
  const bool emit_candidate = m >= min_c && total_members >= min_g;
  if (emit_candidate && !options_.closed_chains_only) {
    if (!MaybeEmit(scratch->chain, node.p_members, node.n_members, ctx)) {
      return;
    }
  }
  bool child_kept_all = false;

  // Step 4: candidate generation.  Scan p-members only (licensed by pruning
  // 3a): collect every condition reachable by one regulated step up from
  // the chain head that can still complete a MinC chain.  The candidate set
  // is an epoch-stamped bitmap: marking replaces clearing.
  const int num_conds = data_.num_conditions();
  const uint64_t epoch = ++scratch->epoch;
  node.first_succ.resize(node.p_members.size());
  for (size_t i = 0; i < node.p_members.size(); ++i) {
    const Member& mem = node.p_members[i];
    const RWaveModel& w = rwaves_[static_cast<size_t>(mem.gene)];
    const int h = w.FirstSuccessorPos(mem.head_pos);
    node.first_succ[i] = h;
    if (h < 0) continue;
    for (int q = h; q < num_conds; ++q) {
      if (options_.prune_min_conds && m + w.MaxChainUp(q) < min_c) {
        // Chains through this position cannot reach MinC conditions.
        continue;
      }
      scratch->cond_epoch[static_cast<size_t>(w.condition_at(q))] = epoch;
    }
  }
  // Cache each n-member's one-step-down frontier.
  node.last_pred.resize(node.n_members.size());
  for (size_t i = 0; i < node.n_members.size(); ++i) {
    const Member& mem = node.n_members[i];
    node.last_pred[i] =
        rwaves_[static_cast<size_t>(mem.gene)].LastPredecessorPos(mem.head_pos);
  }

  // Snapshot the marked candidates: the shared bitmap is re-stamped by the
  // recursive calls below, so the iteration order must not depend on it.
  node.cands.clear();
  for (int cand = 0; cand < num_conds; ++cand) {
    if (scratch->cond_epoch[static_cast<size_t>(cand)] == epoch &&
        allowed_cond_[static_cast<size_t>(cand)]) {
      node.cands.push_back(cand);
    }
  }

  const int ckm = scratch->chain[static_cast<size_t>(m) - 1];
  std::vector<MinerScratch::Scored>& scored = node.scored;
  for (const int cand : node.cands) {
    if (BudgetExceeded()) return;
    ++ctx->stats.extensions_tested;

    // Genes of X^cand: p-members stepping up to cand, n-members stepping
    // down to cand, both still able to reach MinC (pruning 2).  The
    // coherence score H(j, ck1, ck2, ckm, cand) uses the member's cached
    // baseline denominator -- identical formula for p- and n-members
    // (numerator and denominator of an n-member both flip sign, Lemma 3.2).
    scored.clear();
    for (size_t i = 0; i < node.p_members.size(); ++i) {
      const Member& mem = node.p_members[i];
      if (node.first_succ[i] < 0) continue;
      const RWaveModel& w = rwaves_[static_cast<size_t>(mem.gene)];
      const int q = w.position(cand);
      if (q < node.first_succ[i]) continue;  // not a regulation successor
      if (options_.prune_min_conds && m + w.MaxChainUp(q) < min_c) {
        ++ctx->stats.genes_dropped_min_conds;
        continue;
      }
      const double h =
          CoherenceScoreCached(data_.row_data(mem.gene), ckm, cand, mem.denom);
      scored.push_back(MinerScratch::Scored{h, mem.gene, q, mem.denom, true});
    }
    for (size_t i = 0; i < node.n_members.size(); ++i) {
      const Member& mem = node.n_members[i];
      if (node.last_pred[i] < 0) continue;
      const RWaveModel& w = rwaves_[static_cast<size_t>(mem.gene)];
      const int q = w.position(cand);
      if (q > node.last_pred[i]) continue;  // not a regulation predecessor
      if (options_.prune_min_conds && m + w.MaxChainDown(q) < min_c) {
        ++ctx->stats.genes_dropped_min_conds;
        continue;
      }
      const double h =
          CoherenceScoreCached(data_.row_data(mem.gene), ckm, cand, mem.denom);
      scored.push_back(MinerScratch::Scored{h, mem.gene, q, mem.denom, false});
    }

    if (options_.prune_min_genes && static_cast<int>(scored.size()) < min_g) {
      ++ctx->stats.pruned_min_genes;
      continue;
    }

    std::sort(scored.begin(), scored.end(),
              [](const MinerScratch::Scored& a, const MinerScratch::Scored& b) {
                if (a.h != b.h) return a.h < b.h;
                return a.gene < b.gene;
              });

    // Sliding window (step 5): maximal intervals of score span <= epsilon
    // with at least MinG genes; each spawns a child node.
    const double eps = options_.epsilon;
    bool any_window = false;
    const size_t n_scored = scored.size();
    size_t hi = 0;
    size_t prev_hi = 0;  // hi of the previous lo, for the maximality test
    for (size_t lo = 0; lo < n_scored; ++lo) {
      if (hi < lo + 1) hi = lo + 1;
      while (hi < n_scored && scored[hi].h - scored[lo].h <= eps) ++hi;
      // [lo, hi) is the widest window starting at lo; hi is non-decreasing
      // in lo, so the window is maximal (not contained in the previous
      // window) iff hi advanced.
      const bool maximal = lo == 0 || hi > prev_hi;
      prev_hi = hi;
      if (!maximal || static_cast<int>(hi - lo) < min_g) continue;
      any_window = true;
      if (lo == 0 && hi == n_scored &&
          static_cast<int>(n_scored) == total_members) {
        child_kept_all = true;
      }
      MinerScratch::Frame& child = scratch->frame(depth + 1);
      child.p_members.clear();
      child.n_members.clear();
      for (size_t i = lo; i < hi; ++i) {
        (scored[i].positive ? child.p_members : child.n_members)
            .push_back(
                Member{scored[i].gene, scored[i].head_pos, scored[i].denom});
      }
      // Keep member lists sorted by gene id for deterministic output.
      auto by_gene = [](const Member& a, const Member& b) {
        return a.gene < b.gene;
      };
      std::sort(child.p_members.begin(), child.p_members.end(), by_gene);
      std::sort(child.n_members.begin(), child.n_members.end(), by_gene);
      scratch->chain.push_back(cand);
      Extend(depth + 1, scratch, ctx);
      scratch->chain.pop_back();
      if (BudgetExceeded()) return;
    }
    if (!any_window) ++ctx->stats.pruned_coherence;
  }

  if (emit_candidate && options_.closed_chains_only && !child_kept_all) {
    (void)MaybeEmit(scratch->chain, node.p_members, node.n_members, ctx);
  }
}

bool RegClusterMiner::MaybeEmit(const std::vector<int>& chain,
                                const std::vector<Member>& p,
                                const std::vector<Member>& n,
                                SearchContext* ctx) {
  const size_t np = p.size();
  const size_t nn = n.size();
  const bool representative =
      np > nn || (np == nn && LexSmallerThanReversed(chain));
  if (!representative) return true;  // keep searching; no output here

  if (options_.prune_duplicates) {
    // 128-bit key over (ordered chain | sorted gene union) -- the same
    // identity as RegCluster::Key(), without building any string.  Emission
    // requires m >= MinC >= 2, where the member lists are disjoint and
    // gene-sorted, so the union is a plain merge walk.
    util::Fnv128 key;
    for (int c : chain) key.MixInt(c);
    key.MixInt(-1);  // domain separator between chain and gene ids
    size_t i = 0;
    size_t j = 0;
    while (i < np || j < nn) {
      if (j >= nn || (i < np && p[i].gene < n[j].gene)) {
        key.MixInt(p[i++].gene);
      } else {
        key.MixInt(n[j++].gene);
      }
    }
    auto [it, inserted] = ctx->seen_keys.insert(key.Digest());
    (void)it;
    if (!inserted) {
      ++ctx->stats.pruned_duplicate;
      return false;  // prune the branch rooted at this duplicate
    }
  }

  RegCluster cluster;
  cluster.chain = chain;
  cluster.p_genes.reserve(np);
  for (const Member& mem : p) cluster.p_genes.push_back(mem.gene);
  cluster.n_genes.reserve(nn);
  for (const Member& mem : n) cluster.n_genes.push_back(mem.gene);
  ctx->out.push_back(std::move(cluster));
  ++ctx->stats.clusters_emitted;
  clusters_guard_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace core
}  // namespace regcluster
