// Sharded, byte-budgeted LRU cache of per-gene RWave models, backing the
// miner's out-of-core execution path.
//
// Eager mining materializes every gene's RWaveModel up front -- ~1.3 KB per
// gene at 40 conditions, which is the largest resident structure after the
// bitmap index at genome scale.  The index build (and any other bulk
// consumer) only ever needs one gene's model at a time, so the out-of-core
// path builds models on first use through this cache and lets cold ones be
// evicted once the byte budget is exceeded.
//
// Correctness rests on deterministic construction: RWaveModel::Build is a
// pure function of (profile bytes, gamma_abs), so a model rebuilt after
// eviction is byte-identical to the evicted one, and a cached result is
// byte-identical to what the eager path would have produced.  Eviction
// order can therefore affect *when* work is redone, never *what* any query
// answers.
//
// Sharding: gene g lives in shard g % num_shards, each shard with its own
// mutex, LRU list and bytes/num_shards budget slice.  Concurrent Get()s of
// different genes in different shards never contend.  Each shard always
// retains at least its most recently used entry regardless of budget (the
// "one model per shard" floor), so a Get() result is always usable and a
// degenerate budget degrades to rebuild-per-stripe, not a failure.
//
// Handles are shared_ptr<const RWaveModel>: eviction drops the cache's
// reference, but a holder's pin keeps the model alive until released, so a
// caller can never observe a model disappearing mid-use.
//
// Stats: hit/miss/eviction totals are exact under any schedule, but their
// split is schedule-dependent when several threads miss the same gene at
// once (each builds; one insert wins).  With construction forced serial the
// totals are a pure function of the access sequence -- the property the obs
// export tests pin down.

#ifndef REGCLUSTER_CORE_MODEL_CACHE_H_
#define REGCLUSTER_CORE_MODEL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/rwave.h"

namespace regcluster {
namespace core {

class ModelCache {
 public:
  struct Options {
    /// Total byte budget across all shards; < 0 = unbounded.  Each shard
    /// keeps its most recently used entry even when over budget.
    int64_t byte_budget = -1;
    /// Number of independent LRU shards (>= 1; clamped).
    int num_shards = 8;
  };

  /// Monotone counters plus the current resident footprint.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    /// Entries dropped because their generation tag predated the current
    /// cache generation (see Invalidate); each is followed by the rebuild's
    /// miss, so stale_drops never exceeds misses.
    int64_t stale_drops = 0;
    int64_t resident_bytes = 0;
  };

  /// Builds gene `gene`'s model; must be deterministic (pure function of
  /// the gene id) -- see the file comment.  Called outside any shard lock,
  /// possibly concurrently from several threads.
  using Builder = std::function<RWaveModel(int gene)>;

  ModelCache(int num_genes, Builder builder, const Options& options);

  ModelCache(const ModelCache&) = delete;
  ModelCache& operator=(const ModelCache&) = delete;

  /// Returns gene `gene`'s model, building it on a miss.  The returned
  /// handle pins the model independently of the cache's own retention.
  std::shared_ptr<const RWaveModel> Get(int gene);

  /// Installs a new builder and bumps the cache generation, invalidating
  /// every cached model without an eager flush: entries carry the
  /// generation they were built under, and a stale entry is dropped the
  /// next time its gene is touched (a stale_drop plus the rebuild's miss)
  /// or when eviction reaches it.  Used after a condition append widens
  /// the backing matrix -- an old-width model must never serve new-width
  /// queries -- while leaving the cache object (and any handles pinned by
  /// in-flight readers) intact.
  void Invalidate(Builder builder);

  /// Monotone generation tag, bumped by Invalidate().
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  Stats stats() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int64_t byte_budget() const { return byte_budget_; }

  /// Bytes currently held by cached models (same figure as
  /// stats().resident_bytes; callable concurrently with Get()).
  int64_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    int gene = -1;
    uint64_t gen = 0;  ///< cache generation this model was built under
    std::shared_ptr<const RWaveModel> model;
  };

  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<int, decltype(lru)::iterator> index;
    int64_t bytes = 0;
  };

  static int64_t EntryBytes(const RWaveModel& m) {
    return static_cast<int64_t>(sizeof(RWaveModel) + m.MemoryBytes());
  }

  /// Guards builder_ only; shared_ptr-held so a Get() that is mid-build
  /// keeps its snapshot alive across a concurrent Invalidate().
  mutable std::mutex builder_mu_;
  std::shared_ptr<const Builder> builder_;
  std::atomic<uint64_t> generation_{0};
  int64_t byte_budget_;
  int64_t shard_budget_;  // byte_budget_ / shards, <0 = unbounded
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> stale_drops_{0};
  std::atomic<int64_t> resident_bytes_{0};
};

}  // namespace core
}  // namespace regcluster

#endif  // REGCLUSTER_CORE_MODEL_CACHE_H_
