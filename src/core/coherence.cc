#include "core/coherence.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/math_util.h"
#include "util/string_util.h"

namespace regcluster {
namespace core {

std::vector<double> ChainCoherenceScores(const double* row,
                                         const std::vector<int>& chain) {
  std::vector<double> out;
  if (chain.size() < 2) return out;
  out.reserve(chain.size() - 1);
  for (size_t k = 0; k + 1 < chain.size(); ++k) {
    out.push_back(
        CoherenceScore(row, chain[0], chain[1], chain[k], chain[k + 1]));
  }
  return out;
}

bool FitPairShiftScale(const matrix::MatrixStore& data, int gene_i,
                       int gene_j, const std::vector<int>& conds, double* s1,
                       double* s2) {
  const std::vector<double> x = data.RowOnConditions(gene_i, conds);
  const std::vector<double> y = data.RowOnConditions(gene_j, conds);
  return util::FitShiftScale(x, y, s1, s2);
}

namespace {

/// Checks constraint (1) for one gene: expression strictly monotone along
/// the chain in the given direction, with all pairwise gaps > gamma_abs.
/// Since values are monotone along the chain, the minimum pairwise gap is
/// attained by an adjacent pair, so adjacent checks suffice.
bool CheckRegulation(const double* row, const std::vector<int>& chain,
                     double gamma_abs, bool increasing, std::string* why,
                     int gene) {
  for (size_t k = 0; k + 1 < chain.size(); ++k) {
    const double delta = row[chain[k + 1]] - row[chain[k]];
    const double step = increasing ? delta : -delta;
    if (!(step > gamma_abs)) {
      if (why != nullptr) {
        *why = util::StrFormat(
            "gene %d: step %zu->%zu (%g) not %s-regulated beyond gamma=%g",
            gene, k, k + 1, delta, increasing ? "up" : "down", gamma_abs);
      }
      return false;
    }
  }
  return true;
}

}  // namespace

bool ValidateRegCluster(const matrix::MatrixStore& data,
                        const RegCluster& cluster, double gamma,
                        double epsilon, std::string* why, double slack) {
  return ValidateRegCluster(data, cluster,
                            GammaSpec{GammaPolicy::kRangeFraction, gamma},
                            epsilon, why, slack);
}

bool ValidateRegCluster(const matrix::MatrixStore& data,
                        const RegCluster& cluster, const GammaSpec& spec,
                        double epsilon, std::string* why, double slack) {
  if (cluster.chain.size() < 2) {
    if (why != nullptr) *why = "chain shorter than 2 conditions";
    return false;
  }
  for (int c : cluster.chain) {
    if (c < 0 || c >= data.num_conditions()) {
      if (why != nullptr) *why = util::StrFormat("condition %d out of range", c);
      return false;
    }
  }

  // (1) Regulation constraint.
  for (int g : cluster.p_genes) {
    if (!CheckRegulation(data.row_data(g), cluster.chain,
                         AbsoluteGamma(data, g, spec),
                         /*increasing=*/true, why, g)) {
      return false;
    }
  }
  for (int g : cluster.n_genes) {
    if (!CheckRegulation(data.row_data(g), cluster.chain,
                         AbsoluteGamma(data, g, spec),
                         /*increasing=*/false, why, g)) {
      return false;
    }
  }

  // (2) Coherence constraint: per adjacent pair, the spread of scores over
  // all member genes must be within epsilon.
  const std::vector<int> genes = cluster.AllGenes();
  for (size_t k = 0; k + 1 < cluster.chain.size(); ++k) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (int g : genes) {
      const double h =
          CoherenceScore(data.row_data(g), cluster.chain[0], cluster.chain[1],
                         cluster.chain[k], cluster.chain[k + 1]);
      lo = std::min(lo, h);
      hi = std::max(hi, h);
    }
    if (hi - lo > epsilon + slack) {
      if (why != nullptr) {
        *why = util::StrFormat(
            "coherence spread %g > epsilon %g at adjacent pair %zu", hi - lo,
            epsilon, k);
      }
      return false;
    }
  }
  return true;
}

}  // namespace core
}  // namespace regcluster
