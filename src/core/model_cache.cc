#include "core/model_cache.h"

#include <algorithm>

namespace regcluster {
namespace core {

ModelCache::ModelCache(int num_genes, Builder builder, const Options& options)
    : builder_(std::make_shared<const Builder>(std::move(builder))),
      byte_budget_(options.byte_budget) {
  int shards = std::max(1, options.num_shards);
  // More shards than genes would leave some permanently empty while
  // shrinking every other shard's budget slice.
  if (num_genes > 0) shards = std::min(shards, num_genes);
  shard_budget_ = byte_budget_ < 0 ? -1 : byte_budget_ / shards;
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const RWaveModel> ModelCache::Get(int gene) {
  Shard& shard = *shards_[static_cast<size_t>(gene) % shards_.size()];
  // Snapshot the builder and the generation it serves *before* probing: a
  // model built from this snapshot is tagged with this generation, so if an
  // Invalidate() lands mid-build the entry is already stale on insert and
  // gets dropped on its next touch.
  std::shared_ptr<const Builder> builder;
  uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(builder_mu_);
    builder = builder_;
    gen = generation_.load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(gene);
    if (it != shard.index.end()) {
      if (it->second->gen == gen) {
        // Refresh recency and serve the pinned handle.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second->model;
      }
      // Built under an older generation: drop it and rebuild below.
      const int64_t stale_cost = EntryBytes(*it->second->model);
      shard.lru.erase(it->second);
      shard.index.erase(it);
      shard.bytes -= stale_cost;
      resident_bytes_.fetch_sub(stale_cost, std::memory_order_relaxed);
      stale_drops_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Miss: build outside the lock so one shard's construction never blocks
  // hits on its other genes.  Two threads may race to build the same gene;
  // construction is deterministic, so the loser adopts the winner's entry.
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto model = std::make_shared<const RWaveModel>((*builder)(gene));
  const int64_t cost = EntryBytes(*model);

  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(gene);
  if (it != shard.index.end() && it->second->gen == gen) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->model;
  }
  if (it != shard.index.end()) {
    const int64_t stale_cost = EntryBytes(*it->second->model);
    shard.lru.erase(it->second);
    shard.index.erase(it);
    shard.bytes -= stale_cost;
    resident_bytes_.fetch_sub(stale_cost, std::memory_order_relaxed);
    stale_drops_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{gene, gen, std::move(model)});
  shard.index.emplace(gene, shard.lru.begin());
  shard.bytes += cost;
  resident_bytes_.fetch_add(cost, std::memory_order_relaxed);
  // Evict cold entries past the shard's budget slice, but always keep the
  // entry just inserted (the one-model-per-shard floor).
  while (shard_budget_ >= 0 && shard.bytes > shard_budget_ &&
         shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    const int64_t victim_cost = EntryBytes(*victim.model);
    shard.index.erase(victim.gene);
    shard.lru.pop_back();
    shard.bytes -= victim_cost;
    resident_bytes_.fetch_sub(victim_cost, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return shard.lru.front().model;
}

void ModelCache::Invalidate(Builder builder) {
  std::lock_guard<std::mutex> lock(builder_mu_);
  builder_ = std::make_shared<const Builder>(std::move(builder));
  generation_.fetch_add(1, std::memory_order_release);
}

ModelCache::Stats ModelCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.stale_drops = stale_drops_.load(std::memory_order_relaxed);
  s.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace core
}  // namespace regcluster
