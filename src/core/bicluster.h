// The reg-cluster result type (Definition 3.2) and generic bicluster helpers
// shared with the baseline miners.

#ifndef REGCLUSTER_CORE_BICLUSTER_H_
#define REGCLUSTER_CORE_BICLUSTER_H_

#include <string>
#include <vector>

namespace regcluster {
namespace core {

/// A mined reg-cluster: an ordered representative regulation chain of
/// condition ids plus the genes following it (p-members) and the genes
/// following its inversion (n-members).
struct RegCluster {
  /// Representative regulation chain c_k1 <- c_k2 <- ... <- c_km: condition
  /// ids ordered so that every p-member's expression strictly increases and
  /// every n-member's strictly decreases along it.
  std::vector<int> chain;
  /// Positively co-regulated genes (sorted ascending).
  std::vector<int> p_genes;
  /// Negatively co-regulated genes (sorted ascending).
  std::vector<int> n_genes;

  int num_genes() const {
    return static_cast<int>(p_genes.size() + n_genes.size());
  }
  int num_conditions() const { return static_cast<int>(chain.size()); }

  /// Sorted union of p- and n-members.
  std::vector<int> AllGenes() const;

  /// Condition ids of the chain in sorted (unordered-set) form.
  std::vector<int> SortedConditions() const;

  /// Canonical duplicate-detection key: the ordered chain plus the sorted
  /// gene set.  Two clusters with equal keys are the same output.
  std::string Key() const;

  bool operator==(const RegCluster& o) const {
    return chain == o.chain && p_genes == o.p_genes && n_genes == o.n_genes;
  }
};

/// A plain (unordered) bicluster: the output type of the baseline miners and
/// the input type of the evaluation module.
struct Bicluster {
  std::vector<int> genes;       ///< sorted ascending
  std::vector<int> conditions;  ///< sorted ascending

  int num_genes() const { return static_cast<int>(genes.size()); }
  int num_conditions() const { return static_cast<int>(conditions.size()); }
  int64_t NumCells() const {
    return static_cast<int64_t>(genes.size()) *
           static_cast<int64_t>(conditions.size());
  }

  bool operator==(const Bicluster& o) const {
    return genes == o.genes && conditions == o.conditions;
  }
};

/// Drops ordering information: converts a reg-cluster to a plain bicluster.
Bicluster ToBicluster(const RegCluster& c);

/// Number of shared cells |(Xa n Xb) x (Ya n Yb)| of two biclusters.
int64_t SharedCells(const Bicluster& a, const Bicluster& b);

/// Shared cells divided by the cell count of the *smaller* cluster -- the
/// "percentage of overlapping cells" statistic quoted in Section 5.2.
/// Returns 0 when either cluster is empty.
double OverlapFraction(const Bicluster& a, const Bicluster& b);

/// True iff `inner.genes` is a subset of `outer.genes` and
/// `inner.conditions` a subset of `outer.conditions` (both sorted).
bool IsSubcluster(const Bicluster& inner, const Bicluster& outer);

/// True iff `a` is dominated by `b`: a's genes are a subset of b's genes and
/// a's chain is a contiguous subsequence of b's chain or of b's chain
/// reversed.  Used by the optional maximal-only output filter.
bool IsDominated(const RegCluster& a, const RegCluster& b);

/// Removes clusters dominated by another cluster in the set (keeps the first
/// of exact duplicates).  Stable order.
std::vector<RegCluster> RemoveDominated(std::vector<RegCluster> clusters);

}  // namespace core
}  // namespace regcluster

#endif  // REGCLUSTER_CORE_BICLUSTER_H_
