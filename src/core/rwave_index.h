// Vertical successor-bitmap index over a set of RWave^gamma models.
//
// The miner's inner loop asks three questions for a (gene, condition,
// candidate) triple:
//   * is the candidate a regulation successor (predecessor) of the chain
//     head in this gene's model?                      (Lemma 3.1)
//   * can a chain through the candidate still reach MinC conditions?
//     (MaxChainUp / MaxChainDown bound, pruning 2)
//   * which conditions are reachable at all from the current members?
//     (candidate generation)
// Answering them through RWaveModel costs a pointer binary search plus
// several dependent loads per triple.  This index bakes the answers into
// per-gene bitmaps over *condition ids* (one uint64 word per 64
// conditions, util/bitset.h):
//
//   UpCandidates(g, pos)   bit c set  <=>  condition c is a regulation
//                                          successor of the condition at
//                                          sorted position `pos` in gene
//                                          g's model
//   DownCandidates(g, pos) the mirror (regulation predecessors)
//   UpEligible(g, need)    bit c set  <=>  MaxChainUp(position of c) >= need
//   DownEligible(g, need)  the mirror (MaxChainDown)
//
// so candidate generation is a word-wise OR of member rows, the successor
// test is one bit probe, and the MinC test is another.  The rows are pure
// re-encodings of RWaveModel answers -- every bit is defined by the model
// query it replaces -- which is why the miner's output stays bit-identical
// (tests/core/rwave_index_test.cc proves the equivalence exhaustively).
//
// Memory: per gene, 2*C rows of W = ceil(C/64) words for the successor /
// predecessor tables plus 2*(max_need+1) eligibility rows, i.e. about
// C^2/4 bytes per gene per direction -- ~0.4 KB/gene at the paper's 40
// conditions, ~4 KB/gene at 130.  Build is one O(C) suffix/prefix sweep
// per gene over queries the model answers in O(log P).

#ifndef REGCLUSTER_CORE_RWAVE_INDEX_H_
#define REGCLUSTER_CORE_RWAVE_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/rwave.h"
#include "util/bitset.h"

namespace regcluster {
namespace core {

class RWaveBitmapIndex {
 public:
  /// Reusable per-builder scratch for BuildGene(): the suffix/prefix
  /// position bitmaps of the gene being baked.  One instance per thread;
  /// sized lazily on first use.
  struct BuildScratch {
    std::vector<uint64_t> suffix;
    std::vector<uint64_t> prefix;
  };

  /// Builds the index for all `models` (one per gene, each over
  /// `num_conditions` conditions).  Eligibility rows are materialized for
  /// chain requirements 0..max_chain_need; queries clamp into that range,
  /// so pass the largest MinC the caller will ask about.  The ceiling
  /// itself clamps to num_conditions + 1 (rows past it are provably
  /// all-zero), so an oversized MinC cannot inflate the tables.
  void Build(const std::vector<RWaveModel>& models, int num_conditions,
             int max_chain_need);

  /// Striped build, for callers that materialize models lazily or bake
  /// genes in parallel: BeginBuild() sizes every table (all rows zero,
  /// shared ones row filled), then each gene is baked independently with
  /// BuildGene().  BuildGene() writes only gene `gene`'s disjoint slices,
  /// so distinct genes may be baked concurrently from different threads
  /// (each with its own scratch); the result is byte-identical to Build()
  /// regardless of order or interleaving.  Every gene must be baked exactly
  /// once before the index is queried.
  void BeginBuild(int num_genes, int num_conditions, int max_chain_need);
  void BuildGene(int gene, const RWaveModel& model, BuildScratch* scratch);

  /// Widens the index to `num_conditions` columns after a condition append,
  /// given the (delta-updated) per-gene models at the new width.  Appended
  /// conditions insert anywhere in a gene's sorted order, shifting every
  /// position at or above the insertion point, and the bitmap tables are
  /// position-indexed with a row stride of WordsForBits(num_conditions) --
  /// so the tables are re-laid out at the new word count and every gene's
  /// slice is re-baked from its model (existing rows are widened in place
  /// within the new layout; the delta saving of an append lives in the
  /// model update, not here).  Byte-identical to Build() at the new width
  /// -- the widening property test pins this across word boundaries
  /// (63/64/65 conditions).
  void AppendConditions(const std::vector<RWaveModel>& models,
                        int num_conditions, int max_chain_need);

  int num_genes() const { return num_genes_; }
  int num_conditions() const { return num_conditions_; }
  /// Words per bitmap row.
  int num_words() const { return words_; }
  int max_chain_need() const { return max_chain_need_; }

  /// Position of condition `cond` in gene `gene`'s sorted order (the same
  /// value as RWaveModel::position, served from one flat array).
  int position(int gene, int cond) const {
    return pos_[static_cast<size_t>(gene) * num_conditions_ + cond];
  }

  /// The flat gene-major position table (stride num_conditions()), for the
  /// SIMD gather kernels: position(g, c) == position_data()[g * C + c].
  const int32_t* position_data() const { return pos_.data(); }

  /// Bitmap of the regulation successors of the condition at sorted
  /// position `pos` of gene `gene`; the all-zero row when there are none.
  const uint64_t* UpCandidates(int gene, int pos) const {
    return up_cand_.data() +
           (static_cast<size_t>(gene) * num_conditions_ + pos) * words_;
  }

  /// Bitmap of the regulation predecessors of the condition at `pos`.
  const uint64_t* DownCandidates(int gene, int pos) const {
    return down_cand_.data() +
           (static_cast<size_t>(gene) * num_conditions_ + pos) * words_;
  }

  /// Bitmap of conditions from which an upward regulation chain of length
  /// >= `need` exists in gene `gene`.  `need` <= 1 yields the all-ones row
  /// (every condition starts a chain of length 1); `need` is clamped to
  /// [0, max_chain_need].
  const uint64_t* UpEligible(int gene, int need) const {
    return up_elig_.data() +
           (static_cast<size_t>(gene) * (max_chain_need_ + 1) + Clamp(need)) *
               words_;
  }

  /// The downward mirror of UpEligible.
  const uint64_t* DownEligible(int gene, int need) const {
    return down_elig_.data() +
           (static_cast<size_t>(gene) * (max_chain_need_ + 1) + Clamp(need)) *
               words_;
  }

  /// Row with the first num_conditions() bits set (identity for AND).
  const uint64_t* ones_row() const { return ones_.data(); }

  /// Bit-probe equivalents of the RWaveModel queries, for tests and
  /// non-hot-path callers.
  bool IsUpRegulated(int gene, int cond_lo, int cond_hi) const {
    return util::TestBit(UpCandidates(gene, position(gene, cond_lo)), cond_hi);
  }
  bool ChainEligibleUp(int gene, int cond, int need) const {
    return util::TestBit(UpEligible(gene, need), cond);
  }
  bool ChainEligibleDown(int gene, int cond, int need) const {
    return util::TestBit(DownEligible(gene, need), cond);
  }

  /// Total heap footprint of the baked tables, for reporting.
  size_t MemoryBytes() const {
    return (pos_.capacity()) * sizeof(int32_t) +
           (up_cand_.capacity() + down_cand_.capacity() +
            up_elig_.capacity() + down_elig_.capacity() + ones_.capacity()) *
               sizeof(uint64_t);
  }

 private:
  int Clamp(int need) const {
    if (need < 0) return 0;
    return need > max_chain_need_ ? max_chain_need_ : need;
  }

  int num_genes_ = 0;
  int num_conditions_ = 0;
  int words_ = 0;
  int max_chain_need_ = 0;
  std::vector<int32_t> pos_;        // gene-major condition -> position
  std::vector<uint64_t> up_cand_;   // (gene, pos) -> successor-cond bitmap
  std::vector<uint64_t> down_cand_; // (gene, pos) -> predecessor-cond bitmap
  std::vector<uint64_t> up_elig_;   // (gene, need) -> MaxChainUp >= need
  std::vector<uint64_t> down_elig_; // (gene, need) -> MaxChainDown >= need
  std::vector<uint64_t> ones_;
};

}  // namespace core
}  // namespace regcluster

#endif  // REGCLUSTER_CORE_RWAVE_INDEX_H_
