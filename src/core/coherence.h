// Shifting-and-scaling coherence scoring (Section 3.2) and an independent
// reg-cluster validity oracle used by the tests.

#ifndef REGCLUSTER_CORE_COHERENCE_H_
#define REGCLUSTER_CORE_COHERENCE_H_

#include <string>
#include <vector>

#include "core/bicluster.h"
#include "core/threshold.h"
#include "matrix/store.h"

namespace regcluster {
namespace core {

/// The coherence score of Equation 7 with a precomputed baseline
/// denominator `denom = d_i,c2 - d_i,c1`.  Once a chain reaches length 2
/// its baseline pair (c1, c2) is fixed for the whole branch, so the miner
/// computes each member's denominator once and scores every later
/// (gene, candidate) pair with a single subtract and divide.  The division
/// is kept (rather than multiplying by a cached reciprocal) so the result
/// is bit-identical to the uncached form -- the completeness tests compare
/// miner output against an oracle that recomputes scores from scratch.
inline double CoherenceScoreCached(const double* row, int ck, int ck1,
                                   double denom) {
  return (row[ck1] - row[ck]) / denom;
}

/// The coherence score of Equation 7:
///
///   H(i, c1, c2, ck, ck1) = (d_i,ck1 - d_i,ck) / (d_i,c2 - d_i,c1)
///
/// where (c1, c2) is the baseline condition pair of the chain and
/// (ck, ck1) the adjacent pair being scored.  `row` is the gene's profile
/// indexed by condition id.  By Lemma 3.2, two genes are in a
/// shifting-and-scaling relationship on the chain iff all their adjacent
/// scores agree; n-members produce the same positive scores as p-members
/// because numerator and denominator flip sign together.
inline double CoherenceScore(const double* row, int c1, int c2, int ck,
                             int ck1) {
  return CoherenceScoreCached(row, ck, ck1, row[c2] - row[c1]);
}

/// All adjacent coherence scores of `row` along `chain` (size chain-1, the
/// first entry is always exactly 1 by construction).
std::vector<double> ChainCoherenceScores(const double* row,
                                         const std::vector<int>& chain);

/// Fits d_j = s1 * d_i + s2 between two gene profiles restricted to `conds`
/// and reports the scaling/shifting factors.  Returns false if degenerate.
bool FitPairShiftScale(const matrix::MatrixStore& data, int gene_i,
                       int gene_j, const std::vector<int>& conds, double* s1,
                       double* s2);

/// Independent oracle for Definition 3.2: checks that `cluster` is a valid
/// reg-cluster of `data` under thresholds (gamma, epsilon), using only
/// first-principles pairwise checks (no RWave machinery):
///
///  (1) every p-member's expression strictly increases along the chain and
///      every pairwise difference exceeds gamma_i = gamma * row-range
///      (equivalent to the chain being pointer-linked in RWave^gamma);
///      n-members symmetric, decreasing;
///  (2) for every adjacent chain pair, the coherence scores of all member
///      genes lie within a window of width epsilon (+ tolerance `slack` for
///      floating-point robustness).
///
/// On failure returns false and, if `why` is non-null, stores a description.
bool ValidateRegCluster(const matrix::MatrixStore& data,
                        const RegCluster& cluster, double gamma,
                        double epsilon, std::string* why = nullptr,
                        double slack = 1e-9);

/// As above, but with an explicit regulation-threshold policy (the plain
/// overload uses the paper's default range-fraction policy, Eq. 4).
bool ValidateRegCluster(const matrix::MatrixStore& data,
                        const RegCluster& cluster, const GammaSpec& spec,
                        double epsilon, std::string* why = nullptr,
                        double slack = 1e-9);

}  // namespace core
}  // namespace regcluster

#endif  // REGCLUSTER_CORE_COHERENCE_H_
