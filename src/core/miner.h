// The reg-cluster mining algorithm (Figure 5 of the paper).
//
// The miner performs a bi-directional depth-first search over representative
// regulation chains.  A chain C.Y = c_k1 <- c_k2 <- ... <- c_km grows one
// condition at a time; at each node the algorithm tracks
//   * p-members: genes whose RWave^gamma model links the chain upward
//     (expression strictly increasing, every step crossing >= 1 pointer),
//   * n-members: genes linking the *inverted* chain (strictly decreasing).
//
// Pruning strategies (paper numbering, all individually toggleable for the
// ablation benchmarks):
//   (1)  MinG: prune when |pX| + |nX| < MinG.
//   (2)  MinC: drop a gene when its longest remaining chain cannot reach
//        MinC conditions (RWaveModel::MaxChainUp / MaxChainDown bound).
//   (3a) p-majority: prune when 2*|pX| < MinG -- a representative chain
//        needs at least as many p- as n-members, so fewer than MinG/2
//        p-members can never validate; this also licenses scanning only
//        p-members for extension candidates.
//   (3b) duplicate: stop a branch whose validated cluster was already
//        emitted (identical chain + gene set), which happens when sliding
//        windows overlap.
//   (4)  coherence: candidate extensions whose sorted coherence scores admit
//        no window of width <= epsilon holding >= MinG genes are dropped.
//
// Representative rule: a validated cluster is emitted only from the chain
// direction with |pX| > |nX|; on a tie, from the direction whose condition
// id sequence is lexicographically smaller than its reversal.  (The paper's
// pseudocode breaks ties with "k1 < k2", which can select both or neither
// direction for some chains; the lexicographic rule keeps the same intent --
// a deterministic choice between the two directions -- while guaranteeing
// exactly-once emission.  See DESIGN.md.)

#ifndef REGCLUSTER_CORE_MINER_H_
#define REGCLUSTER_CORE_MINER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/bicluster.h"
#include "core/model_cache.h"
#include "core/rwave.h"
#include "core/rwave_index.h"
#include "core/threshold.h"
#include "matrix/store.h"
#include "util/cancellation.h"
#include "util/hash128.h"
#include "util/simd/dispatch.h"
#include "util/status.h"

namespace regcluster {
namespace util {
class TaskPool;
}  // namespace util
namespace core {

/// Continuation handle for a truncated Mine() call.  A truncated run covers
/// the canonical roots (level-1 conditions) [first, next_root); a follow-up
/// run with MinerOptions::resume set to this token covers [next_root, end),
/// and because roots are searched independently the concatenation of the two
/// cluster lists is bit-identical to a single unbudgeted run.
struct ResumeToken {
  /// First canonical root *not* covered by the output; -1 when complete.
  int next_root = -1;
  /// Fingerprint of the semantic mining options the token was issued under
  /// (see RegClusterMiner::SemanticOptionsHash); resuming under different
  /// semantics would splice incompatible outputs, so Mine() rejects it.
  uint64_t options_hash = 0;

  bool can_resume() const { return next_root >= 0; }
};

enum class MineStatus {
  kComplete,   ///< every root searched; the output is the full answer
  kTruncated,  ///< a budget/cancel stop cut the search; output is a prefix
};

/// What a Mine() call actually did -- the partial-result contract.  Always
/// populated (also for complete runs); read it via RegClusterMiner::outcome().
struct MineOutcome {
  MineStatus status = MineStatus::kComplete;
  /// Why the run stopped (kNone when complete).
  util::StopReason stop_reason = util::StopReason::kNone;
  /// Total DFS nodes visited, *including* work on roots that were abandoned
  /// or re-run and do not contribute to the output (stats().nodes_expanded
  /// counts only the deterministic included prefix).
  int64_t nodes_visited = 0;
  /// Canonical roots whose clusters are in the output, vs. roots this call
  /// was asked to search (after any resume offset).
  int roots_completed = 0;
  int roots_total = 0;
  double wall_seconds = 0.0;
  /// Peak of the approximate per-worker scratch + pending-output bytes
  /// (the quantity soft_memory_limit_bytes bounds).
  int64_t peak_scratch_bytes = 0;
  /// Set (can_resume() true) iff status == kTruncated.
  ResumeToken resume;

  /// Execution telemetry.  Everything below describes *how* the run was
  /// scheduled, not *what* was mined: the values legitimately vary with
  /// thread count, machine speed and stealing luck, which is why they live
  /// here and not in the deterministic MinerStats.
  double phase_a_seconds = 0.0;  ///< parallel optimistic phase (0 if serial)
  double phase_b_seconds = 0.0;  ///< canonical finalize / serial mining phase
  int64_t pool_steals = 0;       ///< TaskPool cross-worker task transfers
  int64_t pool_queue_high_water = 0;  ///< deepest single worker deque seen
  int64_t budget_polls = 0;      ///< BudgetGuard::Poll() calls, all workers
  /// Which SIMD kernel set the run's hot loops dispatched to (resolved once
  /// in Prepare(); see util/simd/dispatch.h).  Execution telemetry: the
  /// mined output is byte-identical across levels by contract.
  util::simd::Level simd_level = util::simd::Level::kScalar;

  /// Out-of-core telemetry (all 0 on the eager path).  The hit/miss split is
  /// schedule-dependent when the model build runs parallel -- racing misses
  /// on one gene each count a miss -- but totals are exact, and with a
  /// serial build they are a pure function of the access sequence.
  int64_t model_cache_hits = 0;
  int64_t model_cache_misses = 0;
  int64_t model_cache_evictions = 0;
  /// Bytes of RWave models resident in the cache when the run finished.
  int64_t model_cache_resident_bytes = 0;
  /// Heap bytes of the gamma model (index + resident models + cache).
  int64_t model_bytes = 0;
  /// Bytes of the input matrix served by a file mapping (matrix::MappedMatrix)
  /// rather than heap; 0 for resident matrices.
  int64_t mapped_bytes = 0;
};

/// Immutable per-gamma model state: the per-gene RWave^gamma models plus the
/// successor-bitmap index baked from them.  Everything the miner derives from
/// (matrix, gamma spec) alone -- independent of MinG / MinC / epsilon / budget
/// knobs -- lives here, so one instance can back any number of concurrent
/// Mine() calls that agree on the gamma spec (see MinerOptions::shared_model).
/// The index is built with eligibility rows for chain requirements up to
/// `max_chain_need`; index queries clamp into that range, so a model built
/// with the *largest* MinC of a batch answers every smaller MinC with
/// bit-identical results.
struct SharedGammaModel {
  GammaSpec spec;
  int max_chain_need = 0;
  /// Every gene's model, resident (eager Build); empty on the out-of-core
  /// path, where models live in `cache` instead.
  std::vector<RWaveModel> rwaves;
  /// Lazily built models (BuildOutOfCore); null on the eager path.  The
  /// index bakes eagerly either way -- it is the structure the search
  /// actually probes -- so post-build the cache only serves explicit
  /// model lookups and may shrink to its floor untouched.
  std::shared_ptr<ModelCache> cache;
  RWaveBitmapIndex index;
  double rwave_build_seconds = 0.0;
  double index_build_seconds = 0.0;

  /// Builds the models and the index for `data` under `spec`.  The matrix
  /// must outlive the returned model.  `max_chain_need` must be >= the
  /// largest MinC any sharing run will use (Mine() rejects a model whose
  /// ceiling is below its MinC).  `num_threads` != 1 builds gene stripes on
  /// a TaskPool (0 = hardware concurrency); models land in pre-assigned
  /// slots and each gene's index slice is disjoint, so the result is
  /// byte-identical at any thread count.
  static std::shared_ptr<const SharedGammaModel> Build(
      const matrix::MatrixStore& data, const GammaSpec& spec,
      int max_chain_need, int num_threads = 1);

  /// Out-of-core variant: never materializes the full model vector.  Genes
  /// stream through a ModelCache bounded by `cache_bytes` (< 0 = unbounded)
  /// split over `cache_shards` LRU shards while the index builds in gene
  /// stripes; afterwards only the index plus at most `cache_bytes` of hot
  /// models stay resident.  Model construction is deterministic, so the
  /// baked index -- and hence the mined output -- is byte-identical to the
  /// eager path at any thread count and any budget (>= the one-model-per-
  /// shard floor).
  static std::shared_ptr<const SharedGammaModel> BuildOutOfCore(
      const matrix::MatrixStore& data, const GammaSpec& spec,
      int max_chain_need, int64_t cache_bytes, int cache_shards,
      int num_threads);

  /// Delta update after a condition append.  `prev` must have been built
  /// over exactly the first `first_new` columns of `new_data` (same genes,
  /// same values, same spec); the returned model covers all of `new_data`
  /// and is byte-identical to Build(new_data, prev.spec, ...).  Genes whose
  /// absolute threshold is unchanged by the append reuse their old sorted
  /// order via RWaveModel::AppendConditions; genes whose threshold moved
  /// (e.g. the append widened the row range under kRangeFraction) rebuild
  /// from scratch.  The bitmap index is re-baked at the new width either
  /// way (positions shift; see RWaveBitmapIndex::AppendConditions).  A
  /// `prev` from BuildOutOfCore has no resident models to delta-update and
  /// falls back to a full Build.
  static std::shared_ptr<const SharedGammaModel> UpdateAppend(
      const SharedGammaModel& prev, const matrix::MatrixStore& new_data,
      int first_new, int num_threads = 1);

  /// Heap footprint of the baked tables (models + index + cache residents),
  /// for reporting.
  size_t MemoryBytes() const;
};

/// Mining parameters (paper notation in comments).
struct MinerOptions {
  /// MinG: minimum number of genes (p-members + n-members) per cluster.
  int min_genes = 2;
  /// MinC: minimum number of conditions (chain length) per cluster.
  int min_conditions = 2;
  /// Regulation threshold scale.  Under the default kRangeFraction policy
  /// this is the paper's gamma in [0, 1]: a fraction of each gene's
  /// expression range (Eq. 4).  Other policies (Section 3.1's menu) are
  /// selected via gamma_policy; for GammaPolicy::kAbsolute this is an
  /// absolute expression difference.
  double gamma = 0.1;
  /// How gamma maps to the per-gene absolute threshold gamma_i.
  GammaPolicy gamma_policy = GammaPolicy::kRangeFraction;
  /// epsilon >= 0: maximum spread of coherence scores within a cluster.
  double epsilon = 0.1;
  /// Worker threads for the search.  1 = serial; 0 = hardware concurrency.
  /// The parallel engine runs on a work-stealing pool (util::TaskPool):
  /// every level-1 condition *and* every level-2 subtree is an independently
  /// schedulable task writing into its own pre-assigned result slot, and the
  /// slots are merged in canonical (root, second-condition) order -- so the
  /// output is deterministic and bit-identical for any thread count, with or
  /// without budget truncation (see max_nodes below and DESIGN.md).
  int num_threads = 1;

  /// Ablation toggles -- leave on for the paper's algorithm.
  bool prune_min_genes = true;   ///< pruning (1)
  bool prune_min_conds = true;   ///< pruning (2)
  bool prune_p_majority = true;  ///< pruning (3a)
  bool prune_duplicates = true;  ///< pruning (3b)

  /// Post-pass removing clusters dominated by another output (subset genes,
  /// chain contained in the other chain).  Off by default: the paper reports
  /// raw overlapping output.
  bool remove_dominated = false;

  /// Emit only *chain-closed* clusters: suppress a node's output when some
  /// single-condition extension keeps the entire member set (the extended
  /// cluster strictly subsumes it cell-wise).  A lighter, online variant of
  /// remove_dominated that never buffers the raw output.  Off by default
  /// (the paper reports all validated chains).
  bool closed_chains_only = false;

  /// Targeted mining: when non-empty, only clusters containing *all* of
  /// these genes are produced, and every branch that has lost one of them
  /// is cut immediately (member sets only shrink along a branch, so the cut
  /// is lossless).  Typical use: "which modules contain my gene of
  /// interest?".
  std::vector<int> required_genes;
  /// Targeted mining: when non-empty, chains may only use these conditions.
  std::vector<int> allowed_conditions;

  /// Resource budgets; -1 disables each.  Truncation is *deterministic and
  /// root-granular*: the output is the clusters of the longest canonical
  /// prefix of roots whose cumulative node / cluster counts fit the budget --
  /// the same prefix (hence byte-identical output) for any thread count --
  /// and outcome().resume lets a follow-up call continue where it stopped.
  int64_t max_clusters = -1;
  int64_t max_nodes = -1;

  /// Wall-clock budget in milliseconds; < 0 disables.  A deadline is a
  /// *hard* stop: the run ends at a root boundary as soon as the expiry is
  /// observed, so the output is still a valid canonical prefix, but (unlike
  /// the count budgets above) its length depends on machine speed and
  /// thread count.
  double deadline_ms = -1.0;

  /// Approximate ceiling on live mining memory (per-worker scratch arenas +
  /// buffered output clusters).  On the eager path the fixed model/index
  /// allocations are not counted; on the out-of-core path
  /// (model_cache_bytes >= 0) the mapped matrix + model/index/cache
  /// resident bytes enter the sum once as a fixed base, so the limit bounds
  /// what the process actually holds live.  Hard stop like deadline_ms;
  /// < 0 disables.
  int64_t soft_memory_limit_bytes = -1;

  /// Out-of-core execution: >= 0 builds the gamma model lazily through a
  /// byte-budgeted ModelCache (that many bytes across all shards; 0 =
  /// degenerate one-model-per-shard floor) instead of materializing every
  /// gene's RWave model.  Purely an execution knob -- excluded from
  /// SemanticOptionsHash, so resume tokens splice across paths -- and the
  /// mined output is byte-identical to the resident path at any thread
  /// count.  Ignored when shared_model is set.  < 0 = eager (default).
  int64_t model_cache_bytes = -1;
  /// LRU shards of the out-of-core model cache (clamped to [1, num_genes]).
  int model_cache_shards = 8;

  /// Optional external cancel signal (SIGINT handlers, RPC contexts).  Hard
  /// stop like deadline_ms.  Shared: many miners may watch one token.
  std::shared_ptr<util::CancellationToken> cancel_token;

  /// Every worker re-evaluates the expensive stop sources (token, deadline,
  /// memory, global counters) once per this many DFS nodes; in between it
  /// only performs one relaxed atomic load per node.  Smaller = faster stop
  /// response, more overhead.  Must be >= 1.  Fault-injection tests use 1
  /// to make every node a potential trip point.
  int budget_check_interval = 32;

  /// Continue a truncated run: search only roots [resume.next_root, end).
  /// The token must come from outcome().resume of a run with semantically
  /// identical options (enforced via resume.options_hash); budgets and
  /// thread counts may differ freely between the calls.
  ResumeToken resume;

  /// Collect per-phase nanosecond counters (MinerStats::*_ns) for the DFS
  /// hot path.  Costs two clock reads per phase per extension, so it is off
  /// by default and enabled only by profiling harnesses (bench_threads).
  /// Never changes the mined output.
  bool profile_phases = false;

  /// Collect the detailed work counters of MinerStats (index_word_ops,
  /// coherence_divide_calls, dedup_probes, ...).  The search hot path is
  /// compiled twice behind a template parameter, so with collect_stats off
  /// the instrumentation compiles to nothing -- those counters then read 0.
  /// The structural counters (nodes_expanded, pruned_*, clusters_emitted)
  /// are *always* maintained: the deterministic budget-truncation contract
  /// depends on them.  Never changes the mined output.
  bool collect_stats = true;

  /// Pre-built model state to reuse instead of building per run (batch
  /// drivers: core::SweepEngine).  Must have been built for the same matrix
  /// under the same (gamma_policy, gamma) with max_chain_need >=
  /// min_conditions; Mine() rejects mismatches.  Purely an execution knob:
  /// the mined output is bit-identical with or without sharing (index
  /// queries clamp, so a larger eligibility ceiling answers exactly).  When
  /// set, MinerStats reports index_builds == 0 and zero build seconds.
  std::shared_ptr<const SharedGammaModel> shared_model;

  /// Root-targeted execution: when non-empty, only these level-1 conditions
  /// are searched (must be sorted strictly ascending and in range).  Roots
  /// are independent searches, so each selected root's clusters and
  /// counters are byte-identical to the same root's slice of a full run --
  /// the contract the incremental miner (io::MineIncremental) splices on.
  /// Purely an execution knob, excluded from SemanticOptionsHash; rejected
  /// in combination with resume (both select the roots to search).
  std::vector<int> root_set;

  /// Record each included root's own (stats, clusters) slice alongside the
  /// merged output; read via RegClusterMiner::root_results().  The slices
  /// are exact: summing the per-root stats reproduces every deterministic
  /// counter of stats(), and concatenating the cluster lists in root order
  /// reproduces the pre-dominance output.  Costs one copy of the output
  /// clusters, so it is off by default.
  bool capture_root_results = false;
};

/// Search-effort and pruning counters, populated by Mine().
struct MinerStats {
  int64_t nodes_expanded = 0;       ///< chain nodes visited (incl. level 1)
  int64_t extensions_tested = 0;    ///< (node, candidate) pairs examined
  int64_t pruned_min_genes = 0;     ///< branches cut by pruning (1)
  int64_t pruned_p_majority = 0;    ///< branches cut by pruning (3a)
  int64_t pruned_duplicate = 0;     ///< branches cut by pruning (3b)
  int64_t pruned_coherence = 0;     ///< candidates with no valid window (4)
  int64_t genes_dropped_min_conds = 0;  ///< gene drops by pruning (2)
  int64_t clusters_emitted = 0;     ///< outputs before any post-pass
  /// Model builds performed by this run: 1 when Mine() built its own
  /// RWave models + index, 0 when MinerOptions::shared_model was reused.
  /// This is how index sharing is observable (sweep_test asserts it).
  int64_t index_builds = 0;
  double rwave_build_seconds = 0.0;  ///< 0 when the model was shared
  double index_build_seconds = 0.0;  ///< RWaveBitmapIndex bake time (0 if shared)
  double mine_seconds = 0.0;

  /// Detailed work counters, collected only when
  /// MinerOptions::collect_stats is set (all zero otherwise -- the
  /// instrumentation is compiled out).  Like every counter above they are
  /// deterministic: the same data + options give the same values at any
  /// thread count, because each task counts into its own shard and the
  /// shards are merged in canonical root order.
  int64_t index_word_ops = 0;  ///< 64-bit bitmap words touched building and
                               ///< transposing candidate rows (PrepareNode)
  int64_t coherence_divide_calls = 0;  ///< divide passes over a scored column
  int64_t coherence_scores = 0;        ///< individual H scores computed
  int64_t dedup_probes = 0;            ///< duplicate-key set probes (MaybeEmit)

  /// Hot-path phase breakdown, populated only when
  /// MinerOptions::profile_phases is set (all zero otherwise):
  int64_t filter_ns = 0;  ///< bitmap candidate generation + member filtering
  int64_t score_ns = 0;   ///< coherence numerator/denominator divide pass
  int64_t sort_ns = 0;    ///< index-sort of the score column
  int64_t emit_ns = 0;    ///< dedup keying + cluster materialization
};

/// One root's slice of a mining run, captured when
/// MinerOptions::capture_root_results is set: the root id, the root's own
/// deterministic counters, and the clusters emitted under it in canonical
/// (second-condition, DFS) order -- before any remove_dominated post-pass,
/// which is global and cannot be attributed to single roots.
struct RootMineResult {
  int root = -1;
  MinerStats stats;
  std::vector<RegCluster> clusters;
};

/// Mines all validated reg-clusters of `data` under `options`.
class RegClusterMiner {
 public:
  /// The matrix must outlive the miner.  Any MatrixStore works: a resident
  /// ExpressionMatrix or an mmap-backed matrix::MappedMatrix.
  RegClusterMiner(const matrix::MatrixStore& data, MinerOptions options);
  ~RegClusterMiner();  // out-of-line: RunState is incomplete here

  /// Runs the search.  Fails (InvalidArgument / FailedPrecondition) on bad
  /// parameters or a matrix with missing values.  Deterministic: output
  /// order depends only on the input, including under budget truncation
  /// (count budgets cut at a root boundary computed from per-root totals,
  /// not from scheduling).  A budgeted or cancelled run still returns OK
  /// with the partial clusters; consult outcome() for what was covered.
  util::StatusOr<std::vector<RegCluster>> Mine();

  /// Staged execution for batch drivers (core::SweepEngine).  The sequence
  ///
  ///   Prepare();  SubmitParallelWork(&pool);  pool.Wait();  Finalize();
  ///
  /// is equivalent to one Mine() call, except that the optimistic phase-A
  /// tasks run on a caller-owned pool that may be shared with *other*
  /// miners: inter-run parallelism composes with intra-run root/subtree
  /// tasks, and work stealing balances across runs.  Skipping
  /// SubmitParallelWork yields a serial run.  Differences from Mine():
  ///   * a task that observes a budget trip abandons its slot but does not
  ///     drop the pool's queued tasks (they may belong to other runs); the
  ///     abandoned roots are repaired or excluded by Finalize() exactly as
  ///     in the single-run path, so the output contract is unchanged;
  ///   * the pool telemetry of MineOutcome (phase_a_seconds, pool_steals,
  ///     pool_queue_high_water) stays 0 -- a shared pool's scheduling is not
  ///     attributable to one run -- and wall-clock figures (mine_seconds,
  ///     wall_seconds) span Prepare() to Finalize(), overlapping whatever
  ///     else ran on the pool in between.
  /// Prepare() validates options and builds (or adopts) the gamma model;
  /// calling it again restarts the staged run.  Finalize() runs the
  /// canonical serial merge/repair phase and returns the clusters; it fails
  /// (FailedPrecondition) without a preceding successful Prepare().
  util::Status Prepare();
  void SubmitParallelWork(util::TaskPool* pool);
  util::StatusOr<std::vector<RegCluster>> Finalize();

  /// Blocks until every phase-A task submitted by the last
  /// SubmitParallelWork() call has finished.  util::TaskPool::Wait() is a
  /// *global* barrier -- it waits for every task in the pool, including
  /// other runs' -- so a request/session driver sharing one pool across
  /// concurrent mines must use this instead: each session drains only its
  /// own tasks and proceeds to Finalize() while the others keep mining.
  /// Returns immediately when no parallel work was submitted (serial
  /// staged run, or a pool exclusively owned by this run via Mine()).
  void WaitParallelWork();

  /// Counters from the last Mine() call.  Under truncation these describe
  /// exactly the included canonical prefix (deterministic); total effort
  /// including abandoned work is outcome().nodes_visited.
  const MinerStats& stats() const { return stats_; }

  /// Completion status, stop reason, coverage and resume token of the last
  /// Mine() call.
  const MineOutcome& outcome() const { return outcome_; }

  /// Per-root (stats, clusters) slices of the last Mine() call, in ascending
  /// root order; empty unless MinerOptions::capture_root_results was set.
  /// Slices are captured before the remove_dominated post-pass (which is
  /// global and cannot be attributed to single roots).
  const std::vector<RootMineResult>& root_results() const {
    return root_results_;
  }

  /// Fingerprint of the options fields that define *what* is mined (MinG,
  /// MinC, gamma, epsilon, prunings, targeting, ...), excluding execution
  /// knobs (threads, budgets, profiling, resume).  Two runs with equal
  /// hashes produce outputs that can be spliced via ResumeToken.
  static uint64_t SemanticOptionsHash(const MinerOptions& options);

 private:
  /// Hot-path member state, struct-of-arrays: parallel columns (gene id,
  /// chain-head position in the gene's RWave order -- for n-members the
  /// low-value end -- and the cached baseline denominator d[ck2] - d[ck1],
  /// fixed once the chain reaches length 2).  Contiguous columns make the
  /// per-candidate filter and the coherence divide pass linear sweeps.
  struct MemberCols {
    std::vector<int> gene;
    std::vector<int> head_pos;
    std::vector<double> denom;

    int size() const { return static_cast<int>(gene.size()); }
    void clear() {
      gene.clear();
      head_pos.clear();
      denom.clear();
    }
    void push_back(int g, int pos, double d) {
      gene.push_back(g);
      head_pos.push_back(pos);
      denom.push_back(d);
    }
  };

  /// One DFS node's reusable state (member columns, cached bitmap rows,
  /// scored columns).  Defined in miner.cc.
  struct NodeFrame;

  /// Per-worker reusable DFS state (frame stack, epoch-stamped gene bitmap).
  /// Defined in miner.cc; one instance per pool worker keeps the Extend()
  /// hot loop free of heap allocation.
  struct MinerScratch;

  /// The level-2 root of an independently schedulable search subtree: the
  /// chain (root, second_condition) plus its surviving members.  Built by
  /// the root task, consumed by exactly one subtree task.
  struct SubtreeSeed {
    int second_condition = -1;
    MemberCols p_members;
    MemberCols n_members;
  };

  /// Per-task budget bookkeeping: amortizes BudgetGuard polls over a check
  /// interval and enforces the local node/cluster quotas of a serial repair
  /// pass.  Defined in miner.cc.
  struct TaskControl;

  /// Per-task search state.  Tasks are independent: a chain is enumerated
  /// exactly once, from its first two conditions, and duplicate keys cannot
  /// collide across tasks (the key begins with the chain, and all chains of
  /// one subtree share the same two-condition prefix, distinct from every
  /// other subtree's).
  struct SearchContext {
    MinerStats stats;
    std::unordered_set<util::Hash128, util::Hash128Hasher> seen_keys;
    std::vector<RegCluster> out;
    /// Budget hook for the task currently driving this context; owned by the
    /// task body (stack), valid only while the task runs.
    TaskControl* ctl = nullptr;
  };

  /// Everything produced under one level-1 condition: the root node's own
  /// counters plus one (seed, context) pair per level-2 subtree, kept in
  /// ascending second-condition order for the canonical merge.  The two
  /// completion fields make "did every task of this root finish?" a
  /// race-free question after TaskPool::Wait(): a task that abandons its
  /// slot on a budget trip simply never counts itself done, and the merge
  /// re-runs or excludes the root.
  struct RootWork {
    SearchContext ctx;
    std::vector<SubtreeSeed> seeds;
    std::vector<SearchContext> subtree_ctx;
    std::atomic<bool> seeded{false};
    std::atomic<int> subtrees_done{0};

    bool Complete() const {
      return seeded.load(std::memory_order_acquire) &&
             subtrees_done.load(std::memory_order_acquire) ==
                 static_cast<int>(seeds.size());
    }
    void Reset();
  };

  /// Expands the level-1 node of `root_condition`: builds the member lists,
  /// applies the level-1 prunings, and materializes one SubtreeSeed per
  /// surviving second condition (ascending).  Returns false when a budget
  /// stop abandoned the node mid-expansion (the RootWork is then incomplete
  /// and must not be merged).
  ///
  /// The search body (SeedRoot / MineSubtree / Extend / PrepareNode /
  /// MaybeEmit) is compiled twice behind `kCollect`: the <false>
  /// instantiation contains no detail-counter instrumentation at all
  /// (if constexpr), which is how MinerOptions::collect_stats=false costs
  /// nothing.  The non-template wrappers dispatch on that option once.
  template <bool kCollect>
  bool SeedRootImpl(int root_condition, RootWork* work, MinerScratch* scratch);
  bool SeedRoot(int root_condition, RootWork* work, MinerScratch* scratch);

  /// Runs the full DFS below one level-2 seed.
  template <bool kCollect>
  void MineSubtreeImpl(int root_condition, SubtreeSeed* seed,
                       MinerScratch* scratch, SearchContext* ctx);
  void MineSubtree(int root_condition, SubtreeSeed* seed,
                   MinerScratch* scratch, SearchContext* ctx);

  /// Recursive extension of the node in scratch->frame(depth); the chain
  /// lives in scratch->chain (length depth + 2).
  template <bool kCollect>
  void Extend(int depth, MinerScratch* scratch, SearchContext* ctx);

  /// Caches the node's per-member bitmap rows (successor/predecessor x
  /// MinC-eligibility) and expression baselines for a chain of length `m`
  /// ending at condition `ckm`, then lists the node's candidate conditions
  /// (OR over the p-member rows, intersected with the allowed set).
  /// Also accumulates the pruning-2 drop counter for the whole node
  /// (see the transpose comment in miner.cc).
  template <bool kCollect>
  void PrepareNode(int m, int ckm, NodeFrame* node, MinerStats* stats);

  /// Filters the node's members against extension candidate `cand` with
  /// single bit probes, appending survivors to the frame's scored columns;
  /// the score column receives the coherence *numerator* (the caller runs
  /// one divide pass over it).  Returns the number of surviving p-members
  /// (the p/n split point of the scored columns).
  int FilterCandidate(int cand, NodeFrame* node) const;

  /// Emits the node's cluster if it validates and is representative.
  /// Returns false when the branch should be pruned (duplicate).
  template <bool kCollect>
  bool MaybeEmit(const std::vector<int>& chain, const MemberCols& p,
                 const MemberCols& n, SearchContext* ctx);

  /// True iff the node (or a scored window) retains every required gene.
  /// Uses the scratch's epoch-stamped per-gene bitmap: no allocation.
  bool HasAllRequired(const MemberCols& p, const MemberCols& n,
                      MinerScratch* scratch) const;

  /// Per-staged-run execution state (root slots, phase-A scratches, timers,
  /// budget remainder bookkeeping).  Defined in miner.cc; created by
  /// Prepare(), consumed by Finalize().
  struct RunState;

  /// Phase-A submission body shared by Mine() (exclusive internal pool) and
  /// SubmitParallelWork() (shared external pool).  Only an exclusive pool
  /// may be drained via CancelPending() when a task observes a trip.
  void SubmitRoots(util::TaskPool* pool, bool exclusive_pool);

  /// Creates guard_ from the options' limits with `num_slots` byte-report
  /// slots (workers + 1 for the finalize pass) unless already created or no
  /// limit is configured.  The deadline starts ticking here.
  void EnsureGuard(int num_slots);

  TaskControl MakeControl(MinerScratch* scratch, int slot,
                          util::TaskPool* pool);

  const matrix::MatrixStore& data_;
  MinerOptions options_;
  MinerStats stats_;
  MineOutcome outcome_;
  std::vector<RootMineResult> root_results_;
  /// The dispatched kernel table, resolved once per run in Prepare() so the
  /// hot loops pay one indirect call, never a dispatch lookup.
  const util::simd::SimdOps* ops_ = &util::simd::Ops();
  /// Model state of the current run: either adopted from
  /// options_.shared_model or built (and owned) by Prepare().
  std::shared_ptr<const SharedGammaModel> model_;
  const RWaveBitmapIndex* index_ = nullptr;  // = &model_->index (hot path)
  std::unique_ptr<RunState> run_;
  std::vector<char> allowed_cond_;    // condition id -> allowed in chains
  std::vector<uint64_t> allowed_words_;  // allowed_cond_ as a bitmap row
  std::vector<char> required_gene_;   // gene id -> must stay in the branch
  int num_required_ = 0;
  /// Shared stop sources of the current Mine() call; null when no budget,
  /// deadline or token is configured (the common case pays nothing).
  std::unique_ptr<util::BudgetGuard> guard_;
};

}  // namespace core
}  // namespace regcluster

#endif  // REGCLUSTER_CORE_MINER_H_
