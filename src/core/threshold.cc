#include "core/threshold.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/math_util.h"

namespace regcluster {
namespace core {

const char* GammaPolicyName(GammaPolicy policy) {
  switch (policy) {
    case GammaPolicy::kRangeFraction:
      return "range";
    case GammaPolicy::kStdDevFraction:
      return "stddev";
    case GammaPolicy::kMeanFraction:
      return "mean";
    case GammaPolicy::kClosestGapFraction:
      return "closest-gap";
    case GammaPolicy::kAbsolute:
      return "absolute";
  }
  return "?";
}

bool ParseGammaPolicy(const std::string& name, GammaPolicy* policy) {
  if (name == "range") {
    *policy = GammaPolicy::kRangeFraction;
  } else if (name == "stddev") {
    *policy = GammaPolicy::kStdDevFraction;
  } else if (name == "mean") {
    *policy = GammaPolicy::kMeanFraction;
  } else if (name == "closest-gap") {
    *policy = GammaPolicy::kClosestGapFraction;
  } else if (name == "absolute") {
    *policy = GammaPolicy::kAbsolute;
  } else {
    return false;
  }
  return true;
}

double AbsoluteGamma(const matrix::MatrixStore& data, int gene,
                     const GammaSpec& spec) {
  return AbsoluteGammaSpan(data.row_data(gene), data.num_conditions(), spec);
}

double AbsoluteGammaSpan(const double* values, int n, const GammaSpec& spec) {
  if (spec.policy == GammaPolicy::kAbsolute) return spec.gamma;

  std::vector<double> row;
  row.reserve(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    const double v = values[c];
    if (!std::isnan(v)) row.push_back(v);
  }
  if (row.size() < 2) return 0.0;

  switch (spec.policy) {
    case GammaPolicy::kRangeFraction: {
      const auto [lo, hi] = std::minmax_element(row.begin(), row.end());
      return spec.gamma * (*hi - *lo);
    }
    case GammaPolicy::kStdDevFraction:
      return spec.gamma * util::StdDev(row);
    case GammaPolicy::kMeanFraction:
      return spec.gamma * std::fabs(util::Mean(row));
    case GammaPolicy::kClosestGapFraction: {
      std::sort(row.begin(), row.end());
      double total = 0.0;
      for (size_t i = 1; i < row.size(); ++i) total += row[i] - row[i - 1];
      return spec.gamma * total / static_cast<double>(row.size() - 1);
    }
    case GammaPolicy::kAbsolute:
      break;  // handled above
  }
  return spec.gamma;
}

}  // namespace core
}  // namespace regcluster
