// Cluster-quality scoring: how well does a mined cluster set recover a
// ground-truth (implanted) cluster set?
//
// We use the standard Prelic-style gene match score plus a cell-level
// variant; both are symmetric building blocks:
//   Relevance  = S(found, truth): are found clusters real?
//   Recovery   = S(truth, found): are real clusters found?
// with S(A, B) = avg over a in A of max over b in B of Jaccard(a, b).

#ifndef REGCLUSTER_EVAL_MATCH_H_
#define REGCLUSTER_EVAL_MATCH_H_

#include <vector>

#include "core/bicluster.h"

namespace regcluster {
namespace eval {

/// Jaccard index of two sorted int sets.
double Jaccard(const std::vector<int>& a, const std::vector<int>& b);

/// Gene-dimension Jaccard of two biclusters.
double GeneJaccard(const core::Bicluster& a, const core::Bicluster& b);

/// Cell-level Jaccard: |cells(a) n cells(b)| / |cells(a) u cells(b)|.
double CellJaccard(const core::Bicluster& a, const core::Bicluster& b);

/// Average over `from` of the best gene-Jaccard against `against`.
/// Returns 1.0 when `from` is empty (vacuous truth), 0.0 when only
/// `against` is empty.
double GeneMatchScore(const std::vector<core::Bicluster>& from,
                      const std::vector<core::Bicluster>& against);

/// Average over `from` of the best cell-Jaccard against `against`.
double CellMatchScore(const std::vector<core::Bicluster>& from,
                      const std::vector<core::Bicluster>& against);

/// Both directions at once.
struct MatchReport {
  double gene_relevance = 0.0;  ///< GeneMatchScore(found, truth)
  double gene_recovery = 0.0;   ///< GeneMatchScore(truth, found)
  double cell_relevance = 0.0;
  double cell_recovery = 0.0;
};

MatchReport ScoreAgainstTruth(const std::vector<core::Bicluster>& found,
                              const std::vector<core::Bicluster>& truth);

}  // namespace eval
}  // namespace regcluster

#endif  // REGCLUSTER_EVAL_MATCH_H_
