#include "eval/cluster_index.h"

#include <algorithm>
#include <set>

namespace regcluster {
namespace eval {

ClusterIndex::ClusterIndex(const std::vector<core::RegCluster>& clusters,
                           int num_genes, int num_conditions)
    : num_clusters_(static_cast<int>(clusters.size())),
      gene_to_clusters_(static_cast<size_t>(std::max(num_genes, 0))),
      cond_to_clusters_(static_cast<size_t>(std::max(num_conditions, 0))),
      cluster_to_genes_(clusters.size()) {
  for (size_t k = 0; k < clusters.size(); ++k) {
    const auto genes = clusters[k].AllGenes();
    cluster_to_genes_[k] = genes;
    for (int g : genes) {
      if (g >= 0 && g < num_genes) {
        gene_to_clusters_[static_cast<size_t>(g)].push_back(
            static_cast<int>(k));
      }
    }
    for (int c : clusters[k].chain) {
      if (c >= 0 && c < num_conditions) {
        cond_to_clusters_[static_cast<size_t>(c)].push_back(
            static_cast<int>(k));
      }
    }
  }
}

const std::vector<int>& ClusterIndex::ClustersWithGene(int gene) const {
  if (gene < 0 || gene >= static_cast<int>(gene_to_clusters_.size())) {
    return empty_;
  }
  return gene_to_clusters_[static_cast<size_t>(gene)];
}

const std::vector<int>& ClusterIndex::ClustersWithCondition(int cond) const {
  if (cond < 0 || cond >= static_cast<int>(cond_to_clusters_.size())) {
    return empty_;
  }
  return cond_to_clusters_[static_cast<size_t>(cond)];
}

int ClusterIndex::CoClusterCount(int gene_a, int gene_b) const {
  const std::vector<int>& a = ClustersWithGene(gene_a);
  const std::vector<int>& b = ClustersWithGene(gene_b);
  int n = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

std::vector<int> ClusterIndex::CoClusteredGenes(int gene) const {
  std::set<int> out;
  for (int k : ClustersWithGene(gene)) {
    for (int g : cluster_to_genes_[static_cast<size_t>(k)]) {
      if (g != gene) out.insert(g);
    }
  }
  return std::vector<int>(out.begin(), out.end());
}

}  // namespace eval
}  // namespace regcluster
