// Intrinsic quality metrics for mined reg-clusters and summaries over whole
// cluster sets.  Used for ranking output (the paper reports its three "best"
// clusters), for regression-style assertions in tests, and by the CLI's
// `evaluate` subcommand.

#ifndef REGCLUSTER_EVAL_QUALITY_H_
#define REGCLUSTER_EVAL_QUALITY_H_

#include <vector>

#include "core/bicluster.h"
#include "core/threshold.h"
#include "matrix/store.h"

namespace regcluster {
namespace eval {

/// Intrinsic scores of one cluster.
struct ClusterQuality {
  /// Max over adjacent chain pairs of the spread of coherence scores across
  /// members.  A valid reg-cluster has spread <= epsilon; smaller = tighter.
  double coherence_spread = 0.0;
  /// Min over members and adjacent chain steps of |step| / gamma_i -- how
  /// comfortably the cluster clears the regulation threshold (> 1 iff
  /// valid; infinite when gamma_i == 0).
  double regulation_margin = 0.0;
  /// Mean over member pairs of the max |residual| of the least-squares
  /// shifting-and-scaling fit, normalized by the pair's value range on the
  /// chain.  0 for perfect patterns.
  double mean_fit_residual = 0.0;
  /// Mean absolute pairwise Pearson correlation on the chain (1 for perfect
  /// patterns of either sign).
  double mean_abs_correlation = 0.0;
};

/// Computes the intrinsic scores.  `spec` supplies the regulation-threshold
/// policy used for the margin.
ClusterQuality ScoreCluster(const matrix::MatrixStore& data,
                            const core::RegCluster& cluster,
                            const core::GammaSpec& spec = {});

/// Aggregate statistics over a mined cluster set.
struct ClusterSetSummary {
  int num_clusters = 0;
  int min_genes = 0, max_genes = 0;
  double mean_genes = 0.0;
  int min_conditions = 0, max_conditions = 0;
  double mean_conditions = 0.0;
  /// Fraction of clusters with at least one n-member.
  double negative_fraction = 0.0;
  /// Min / max pairwise cell-overlap fraction (relative to the smaller
  /// cluster), the Section 5.2 statistic.  0/0 for fewer than two clusters.
  double min_overlap = 0.0, max_overlap = 0.0;
};

ClusterSetSummary Summarize(const std::vector<core::RegCluster>& clusters);

/// Returns indices of `clusters` sorted best-first by a composite quality
/// rank: primarily more genes x conditions, ties broken by tighter
/// coherence spread.
std::vector<int> RankClusters(const matrix::MatrixStore& data,
                              const std::vector<core::RegCluster>& clusters);

}  // namespace eval
}  // namespace regcluster

#endif  // REGCLUSTER_EVAL_QUALITY_H_
