#include "eval/consensus.h"

#include <algorithm>

#include "core/coherence.h"

namespace regcluster {
namespace eval {
namespace {

/// +1 / -1 / 0 direction of gene g along the chain at the given thresholds.
int Direction(const matrix::MatrixStore& data, int g,
              const std::vector<int>& chain,
              const core::GammaSpec& gamma_spec) {
  const double gabs = core::AbsoluteGamma(data, g, gamma_spec);
  bool up = true, down = true;
  for (size_t k = 0; k + 1 < chain.size(); ++k) {
    const double delta = data(g, chain[k + 1]) - data(g, chain[k]);
    if (!(delta > gabs)) up = false;
    if (!(-delta > gabs)) down = false;
  }
  return up ? 1 : (down ? -1 : 0);
}

void InsertSorted(std::vector<int>* v, int x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it == v->end() || *it != x) v->insert(it, x);
}

bool Contains(const std::vector<int>& v, int x) {
  return std::binary_search(v.begin(), v.end(), x);
}

}  // namespace

bool TryMerge(const matrix::MatrixStore& data,
              const core::RegCluster& a, const core::RegCluster& b,
              const core::GammaSpec& gamma_spec, double epsilon,
              core::RegCluster* merged) {
  // Keep the chain of the larger-conditions cluster (a's by convention: the
  // caller passes them ordered).
  core::RegCluster candidate = a;
  for (int g : b.AllGenes()) {
    if (Contains(candidate.p_genes, g) || Contains(candidate.n_genes, g)) {
      continue;
    }
    const int dir = Direction(data, g, candidate.chain, gamma_spec);
    if (dir > 0) {
      InsertSorted(&candidate.p_genes, g);
    } else if (dir < 0) {
      InsertSorted(&candidate.n_genes, g);
    } else {
      return false;  // a member of b cannot follow a's chain
    }
  }
  if (!core::ValidateRegCluster(data, candidate, gamma_spec, epsilon)) {
    return false;
  }
  *merged = std::move(candidate);
  return true;
}

std::vector<core::RegCluster> MergeOverlapping(
    const matrix::MatrixStore& data,
    std::vector<core::RegCluster> clusters, const ConsensusOptions& options) {
  bool changed = true;
  std::vector<bool> dead(clusters.size(), false);
  while (changed) {
    changed = false;
    // Pick the highest-overlap mergeable pair.
    double best = options.min_overlap;
    int bi = -1, bj = -1;
    core::RegCluster best_merged;
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (dead[i]) continue;
      const core::Bicluster fi = core::ToBicluster(clusters[i]);
      for (size_t j = 0; j < clusters.size(); ++j) {
        if (i == j || dead[j]) continue;
        // Only fold the shorter-or-equal chain into the longer one.
        if (clusters[j].chain.size() > clusters[i].chain.size()) continue;
        const double o =
            core::OverlapFraction(fi, core::ToBicluster(clusters[j]));
        if (o < best) continue;
        core::RegCluster merged;
        if (!TryMerge(data, clusters[i], clusters[j], options.gamma_spec,
                      options.epsilon, &merged)) {
          continue;
        }
        // Prefer strictly higher overlap; ties keep the first found.
        if (o > best || bi < 0) {
          best = o;
          bi = static_cast<int>(i);
          bj = static_cast<int>(j);
          best_merged = std::move(merged);
        }
      }
    }
    if (bi >= 0) {
      clusters[static_cast<size_t>(bi)] = std::move(best_merged);
      dead[static_cast<size_t>(bj)] = true;
      changed = true;
    }
  }
  std::vector<core::RegCluster> out;
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (!dead[i]) out.push_back(std::move(clusters[i]));
  }
  return out;
}

}  // namespace eval
}  // namespace regcluster
