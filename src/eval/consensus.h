// Post-processing of overlapping cluster output: merging and filtering.
//
// The paper reports raw output ("we did not perform any splitting and
// merging of clusters", Section 5.2) with pairwise overlaps up to 85%.
// Production users usually want a smaller consensus set; this module
// provides the standard greedy merge: repeatedly union the pair of clusters
// with the highest cell overlap, re-validating the merged candidate against
// the reg-cluster model so merging never produces an invalid cluster, until
// no pair exceeds the threshold.

#ifndef REGCLUSTER_EVAL_CONSENSUS_H_
#define REGCLUSTER_EVAL_CONSENSUS_H_

#include <vector>

#include "core/bicluster.h"
#include "core/threshold.h"
#include "matrix/store.h"

namespace regcluster {
namespace eval {

struct ConsensusOptions {
  /// Merge a pair when its cell overlap (relative to the smaller cluster)
  /// is at least this.
  double min_overlap = 0.5;
  /// Validation thresholds the merged cluster must satisfy (it inherits the
  /// longer chain of the pair, with the other's genes folded in when they
  /// comply with it).
  core::GammaSpec gamma_spec{};
  double epsilon = 1.0;
};

/// Greedy overlap merging.  Clusters whose union does not validate stay
/// separate.  Output order: survivors in their original order.
std::vector<core::RegCluster> MergeOverlapping(
    const matrix::MatrixStore& data,
    std::vector<core::RegCluster> clusters, const ConsensusOptions& options);

/// Attempts to fold cluster `b` into cluster `a`: keeps a's chain and adds
/// every gene of b (deduplicated) whose profile complies with a's chain in
/// either direction, then validates the result.  Returns true and writes
/// *merged on success.
bool TryMerge(const matrix::MatrixStore& data,
              const core::RegCluster& a, const core::RegCluster& b,
              const core::GammaSpec& gamma_spec, double epsilon,
              core::RegCluster* merged);

}  // namespace eval
}  // namespace regcluster

#endif  // REGCLUSTER_EVAL_CONSENSUS_H_
