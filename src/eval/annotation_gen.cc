#include "eval/annotation_gen.h"

#include <array>
#include <cmath>

#include "util/prng.h"
#include "util/string_util.h"

namespace regcluster {
namespace eval {
namespace {

const char* kCategorySuffix[3] = {"process", "function", "component"};

}  // namespace

GoAnnotationDb GenerateAnnotations(
    int population_size, const std::vector<std::vector<int>>& modules,
    const AnnotationGenConfig& config) {
  util::Prng prng(config.seed);
  GoAnnotationDb db(population_size);

  // Background terms with Zipf-ish population frequencies.
  std::vector<int> background_terms;
  std::vector<double> background_rates;
  for (int cat = 0; cat < 3; ++cat) {
    for (int i = 0; i < config.background_terms_per_category; ++i) {
      GoTerm term;
      term.id = util::StrFormat("GO:9%02d%04d", cat, i);
      term.name = util::StrFormat("background %s term %d",
                                  kCategorySuffix[cat], i);
      term.category = static_cast<GoCategory>(cat);
      background_terms.push_back(db.AddTerm(std::move(term)));
      // Frequencies from ~20% (rank 1) down, heavy-tailed.
      background_rates.push_back(0.2 / (1.0 + i));
    }
  }

  // Characteristic module terms.
  std::vector<std::array<int, 3>> module_terms;
  for (size_t m = 0; m < modules.size(); ++m) {
    std::array<int, 3> per_cat{};
    for (int cat = 0; cat < 3; ++cat) {
      GoTerm term;
      term.id = util::StrFormat("GO:1%02d%04d", cat, static_cast<int>(m));
      term.name = util::StrFormat("module%d %s", static_cast<int>(m),
                                  kCategorySuffix[cat]);
      term.category = static_cast<GoCategory>(cat);
      per_cat[static_cast<size_t>(cat)] = db.AddTerm(std::move(term));
    }
    module_terms.push_back(per_cat);
  }

  // Random background annotations: expected avg_annotations_per_gene per
  // gene, drawn proportionally to the term rates.
  double rate_sum = 0.0;
  for (double r : background_rates) rate_sum += r;
  const double scale =
      rate_sum > 0.0 ? config.avg_annotations_per_gene / rate_sum : 0.0;
  for (int g = 0; g < population_size; ++g) {
    for (size_t t = 0; t < background_terms.size(); ++t) {
      if (prng.Bernoulli(std::min(1.0, background_rates[t] * scale))) {
        (void)db.Annotate(g, background_terms[t]);
      }
    }
  }

  // Module annotations: members with high coverage, plus a thin background.
  for (size_t m = 0; m < modules.size(); ++m) {
    for (int cat = 0; cat < 3; ++cat) {
      const int term = module_terms[m][static_cast<size_t>(cat)];
      for (int g : modules[m]) {
        if (prng.Bernoulli(config.module_term_coverage)) {
          (void)db.Annotate(g, term);
        }
      }
      const int extra = static_cast<int>(
          std::lround(config.module_term_background_rate * population_size));
      for (int i = 0; i < extra; ++i) {
        (void)db.Annotate(
            static_cast<int>(prng.UniformInt(0, population_size - 1)), term);
      }
    }
  }
  return db;
}

int ModuleTermIndex(const AnnotationGenConfig& config, int module_id,
                    GoCategory category) {
  return 3 * config.background_terms_per_category + 3 * module_id +
         static_cast<int>(category);
}

}  // namespace eval
}  // namespace regcluster
