// Permutation-based statistical significance of a mined reg-cluster.
//
// A cluster discovered by an exhaustive search over many chains needs a
// null model before calling it "significant".  The standard empirical test
// for biclusters: repeatedly shuffle each gene's profile independently
// (destroying condition structure while preserving each gene's value
// distribution) and ask how often a random gene matches the cluster's chain
// as well as its real members do.  From the per-gene match probability p0
// the expected number of matching genes in the population is N * p0; the
// binomial tail gives the probability of seeing >= |X| matches by chance.

#ifndef REGCLUSTER_EVAL_SIGNIFICANCE_H_
#define REGCLUSTER_EVAL_SIGNIFICANCE_H_

#include <cstdint>

#include "core/bicluster.h"
#include "core/threshold.h"
#include "matrix/store.h"
#include "util/status.h"

namespace regcluster {
namespace eval {

struct SignificanceOptions {
  /// Number of shuffled gene profiles sampled for the null distribution.
  int permutations = 2000;
  /// Mining thresholds the null profiles are tested against.
  core::GammaSpec gamma_spec{};
  double epsilon = 0.1;
  uint64_t seed = 101;
};

struct SignificanceResult {
  /// Fraction of shuffled profiles that comply with the cluster's chain
  /// (either direction, regulation only).
  double null_chain_rate = 0.0;
  /// Fraction that additionally stay epsilon-coherent with the cluster's
  /// member consensus.
  double null_full_rate = 0.0;
  /// Binomial upper-tail probability of >= num_genes matches among the
  /// population under null_full_rate.
  double p_value = 1.0;
};

/// Runs the permutation test for one cluster.  Fails on invalid clusters
/// (empty chain / genes) or matrices with missing values.
util::StatusOr<SignificanceResult> PermutationSignificance(
    const matrix::MatrixStore& data, const core::RegCluster& cluster,
    const SignificanceOptions& options = {});

}  // namespace eval
}  // namespace regcluster

#endif  // REGCLUSTER_EVAL_SIGNIFICANCE_H_
