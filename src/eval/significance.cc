#include "eval/significance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/coherence.h"
#include "util/math_util.h"
#include "util/prng.h"

namespace regcluster {
namespace eval {
namespace {

/// Binomial upper tail P(X >= m), n trials with success probability p,
/// summed in log space.
double BinomialUpperTail(int m, int n, double p) {
  if (m <= 0) return 1.0;
  if (m > n) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double total = 0.0;
  for (int i = m; i <= n; ++i) {
    const double log_term =
        util::LogBinomial(n, i) + i * log_p + (n - i) * log_q;
    const double term = std::exp(log_term);
    total += term;
    // Terms decay geometrically once past the mode; stop when negligible.
    if (i > static_cast<int>(p * n) + 1 && term < total * 1e-15) break;
  }
  return std::min(1.0, total);
}

/// Chain compliance (either direction) of an arbitrary profile.
bool FollowsChain(const std::vector<double>& profile,
                  const std::vector<int>& chain, double gamma_abs) {
  bool up = true, down = true;
  for (size_t k = 0; k + 1 < chain.size(); ++k) {
    const double delta = profile[static_cast<size_t>(chain[k + 1])] -
                         profile[static_cast<size_t>(chain[k])];
    if (!(delta > gamma_abs)) up = false;
    if (!(-delta > gamma_abs)) down = false;
    if (!up && !down) return false;
  }
  return up || down;
}

}  // namespace

util::StatusOr<SignificanceResult> PermutationSignificance(
    const matrix::MatrixStore& data, const core::RegCluster& cluster,
    const SignificanceOptions& options) {
  if (cluster.chain.size() < 2 || cluster.num_genes() < 1) {
    return util::Status::InvalidArgument("degenerate cluster");
  }
  if (options.permutations < 1) {
    return util::Status::InvalidArgument("permutations must be >= 1");
  }
  if (data.HasMissingValues()) {
    return util::Status::FailedPrecondition(
        "matrix contains missing values; impute first");
  }
  for (int c : cluster.chain) {
    if (c < 0 || c >= data.num_conditions()) {
      return util::Status::OutOfRange("chain condition outside the matrix");
    }
  }
  for (int g : cluster.AllGenes()) {
    if (g < 0 || g >= data.num_genes()) {
      return util::Status::OutOfRange("cluster gene outside the matrix");
    }
  }

  // Member coherence envelope per adjacent pair.
  const size_t steps = cluster.chain.size() - 1;
  std::vector<double> lo(steps, std::numeric_limits<double>::infinity());
  std::vector<double> hi(steps, -std::numeric_limits<double>::infinity());
  for (int g : cluster.AllGenes()) {
    const auto scores =
        core::ChainCoherenceScores(data.row_data(g), cluster.chain);
    for (size_t k = 0; k < steps; ++k) {
      lo[k] = std::min(lo[k], scores[k]);
      hi[k] = std::max(hi[k], scores[k]);
    }
  }

  util::Prng prng(options.seed);
  int chain_hits = 0, full_hits = 0;
  std::vector<double> profile(static_cast<size_t>(data.num_conditions()));
  for (int trial = 0; trial < options.permutations; ++trial) {
    const int g =
        static_cast<int>(prng.UniformInt(0, data.num_genes() - 1));
    for (int c = 0; c < data.num_conditions(); ++c) {
      profile[static_cast<size_t>(c)] = data(g, c);
    }
    prng.Shuffle(&profile);
    const double gamma_abs = core::AbsoluteGamma(data, g, options.gamma_spec);

    if (!FollowsChain(profile, cluster.chain, gamma_abs)) continue;
    ++chain_hits;
    // Coherence against the member envelope (both directions share the
    // same positive H-scores, Lemma 3.2).
    bool coherent = true;
    const auto scores =
        core::ChainCoherenceScores(profile.data(), cluster.chain);
    for (size_t k = 0; k < steps; ++k) {
      const double new_lo = std::min(lo[k], scores[k]);
      const double new_hi = std::max(hi[k], scores[k]);
      if (new_hi - new_lo > options.epsilon + 1e-12) {
        coherent = false;
        break;
      }
    }
    if (coherent) ++full_hits;
  }

  SignificanceResult result;
  result.null_chain_rate =
      static_cast<double>(chain_hits) / options.permutations;
  result.null_full_rate =
      static_cast<double>(full_hits) / options.permutations;
  // Zero observed null matches: use the standard (hits + 1) / (n + 1)
  // pseudo-count upper bound so the p-value is never optimistically 0.
  const double p0 = (full_hits + 1.0) / (options.permutations + 1.0);
  result.p_value =
      BinomialUpperTail(cluster.num_genes(), data.num_genes(), p0);
  return result;
}

}  // namespace eval
}  // namespace regcluster
