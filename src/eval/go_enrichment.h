// Gene Ontology term-enrichment substrate (the Table 2 experiment).
//
// The paper scores its yeast clusters with the SGD "GO Term Finder" web
// service, which computes, for each GO term, the hypergeometric upper-tail
// probability of observing at least k annotated genes in a cluster of n
// genes drawn from a population of N genes of which K carry the term.  This
// module implements the same statistic (with optional Bonferroni
// correction) over an in-memory annotation database, so the enrichment
// pipeline runs offline.

#ifndef REGCLUSTER_EVAL_GO_ENRICHMENT_H_
#define REGCLUSTER_EVAL_GO_ENRICHMENT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace regcluster {
namespace eval {

/// The three GO namespaces reported in Table 2.
enum class GoCategory : int {
  kBiologicalProcess = 0,
  kMolecularFunction = 1,
  kCellularComponent = 2,
};

const char* GoCategoryName(GoCategory c);

/// One ontology term.
struct GoTerm {
  std::string id;        ///< e.g. "GO:0006260"
  std::string name;      ///< e.g. "DNA replication"
  GoCategory category = GoCategory::kBiologicalProcess;
};

/// Gene -> term annotation database over a fixed gene population [0, N).
class GoAnnotationDb {
 public:
  /// Creates a database over `population_size` genes.
  explicit GoAnnotationDb(int population_size);

  /// Registers a term; returns its dense term index.
  int AddTerm(GoTerm term);

  /// Annotates `gene` with term index `term`.  Duplicate annotations are
  /// ignored.  Fails on out-of-range ids.
  util::Status Annotate(int gene, int term);

  int population_size() const { return population_size_; }
  int num_terms() const { return static_cast<int>(terms_.size()); }
  const GoTerm& term(int t) const { return terms_[static_cast<size_t>(t)]; }

  /// Number of genes in the population annotated with `term`.
  int TermPopulationCount(int term) const {
    return term_counts_[static_cast<size_t>(term)];
  }

  /// Term indices annotated to `gene` (sorted).
  const std::vector<int>& GeneTerms(int gene) const {
    return gene_terms_[static_cast<size_t>(gene)];
  }

 private:
  int population_size_;
  std::vector<GoTerm> terms_;
  std::vector<int> term_counts_;
  std::vector<std::vector<int>> gene_terms_;
};

/// One enrichment result row.
struct EnrichmentResult {
  int term = -1;            ///< index into the database
  int cluster_count = 0;    ///< annotated genes inside the cluster (k)
  int population_count = 0; ///< annotated genes in the population (K)
  double p_value = 1.0;           ///< raw hypergeometric upper tail
  double corrected_p_value = 1.0; ///< Bonferroni over tested terms
};

/// Options for FindEnrichedTerms.
struct EnrichmentOptions {
  /// Report only terms whose (corrected, if enabled) p-value is below this.
  double max_p_value = 0.05;
  /// Apply Bonferroni correction over the number of candidate terms (terms
  /// with at least one annotated gene in the cluster), like GO Term Finder.
  bool bonferroni = true;
  /// Ignore terms annotating fewer than this many cluster genes.
  int min_cluster_count = 2;
};

/// Computes enriched terms for a gene set.  Results sorted by ascending
/// p-value (raw), ties by term index.  Genes outside [0, population) fail.
util::StatusOr<std::vector<EnrichmentResult>> FindEnrichedTerms(
    const GoAnnotationDb& db, const std::vector<int>& genes,
    const EnrichmentOptions& options = {});

/// Convenience: the single most enriched term of a category, or term == -1
/// if none passes the filter.  (The "top GO term" columns of Table 2.)
EnrichmentResult TopTermOfCategory(
    const GoAnnotationDb& db, const std::vector<EnrichmentResult>& results,
    GoCategory category);

}  // namespace eval
}  // namespace regcluster

#endif  // REGCLUSTER_EVAL_GO_ENRICHMENT_H_
