// Synthetic GO annotation generator.
//
// The real SGD annotation files cannot be fetched offline, so the Table-2
// experiment runs against a synthetic annotation database constructed to
// mirror the relevant structure: each implanted co-regulation module is
// assigned one characteristic term per GO category which most of its member
// genes carry, on top of a background of randomly assigned terms with
// realistic (skewed) population frequencies.  A functionally coherent
// cluster therefore scores an extremely low hypergeometric p-value, while a
// random gene set does not -- the property Table 2 demonstrates.

#ifndef REGCLUSTER_EVAL_ANNOTATION_GEN_H_
#define REGCLUSTER_EVAL_ANNOTATION_GEN_H_

#include <cstdint>
#include <vector>

#include "eval/go_enrichment.h"

namespace regcluster {
namespace eval {

struct AnnotationGenConfig {
  /// Number of generic background terms per GO category.
  int background_terms_per_category = 40;
  /// Each gene receives this many random background annotations on average.
  double avg_annotations_per_gene = 3.0;
  /// Probability that a module member carries its module's characteristic
  /// term (annotation coverage is never perfect in real ontologies).
  double module_term_coverage = 0.85;
  /// Characteristic terms also annotate this many random outside genes
  /// (fraction of the population), making the test non-trivial.
  double module_term_background_rate = 0.005;
  uint64_t seed = 7;
};

/// Builds a synthetic annotation database over `population_size` genes.
/// `modules` lists the ground-truth gene modules (e.g. the implanted
/// clusters' gene sets); module i receives characteristic terms named
/// "module<i> process/function/component".  Pass an empty vector for a
/// purely random database.
GoAnnotationDb GenerateAnnotations(int population_size,
                                   const std::vector<std::vector<int>>& modules,
                                   const AnnotationGenConfig& config = {});

/// Term index of module `module_id`'s characteristic term in `category`,
/// given the construction order of GenerateAnnotations: background terms
/// first (3 * background_terms_per_category), then 3 per module.
int ModuleTermIndex(const AnnotationGenConfig& config, int module_id,
                    GoCategory category);

}  // namespace eval
}  // namespace regcluster

#endif  // REGCLUSTER_EVAL_ANNOTATION_GEN_H_
