#include "eval/go_enrichment.h"

#include <algorithm>

#include "util/math_util.h"
#include "util/string_util.h"

namespace regcluster {
namespace eval {

const char* GoCategoryName(GoCategory c) {
  switch (c) {
    case GoCategory::kBiologicalProcess:
      return "Process";
    case GoCategory::kMolecularFunction:
      return "Function";
    case GoCategory::kCellularComponent:
      return "Cellular Component";
  }
  return "?";
}

GoAnnotationDb::GoAnnotationDb(int population_size)
    : population_size_(population_size),
      gene_terms_(static_cast<size_t>(population_size)) {}

int GoAnnotationDb::AddTerm(GoTerm term) {
  terms_.push_back(std::move(term));
  term_counts_.push_back(0);
  return static_cast<int>(terms_.size()) - 1;
}

util::Status GoAnnotationDb::Annotate(int gene, int term) {
  if (gene < 0 || gene >= population_size_) {
    return util::Status::OutOfRange(
        util::StrFormat("gene %d outside population", gene));
  }
  if (term < 0 || term >= num_terms()) {
    return util::Status::OutOfRange(util::StrFormat("unknown term %d", term));
  }
  std::vector<int>& terms = gene_terms_[static_cast<size_t>(gene)];
  auto it = std::lower_bound(terms.begin(), terms.end(), term);
  if (it != terms.end() && *it == term) return util::Status::OK();
  terms.insert(it, term);
  ++term_counts_[static_cast<size_t>(term)];
  return util::Status::OK();
}

util::StatusOr<std::vector<EnrichmentResult>> FindEnrichedTerms(
    const GoAnnotationDb& db, const std::vector<int>& genes,
    const EnrichmentOptions& options) {
  // Count, per term, the annotated genes inside the cluster.
  std::unordered_map<int, int> counts;
  for (int g : genes) {
    if (g < 0 || g >= db.population_size()) {
      return util::Status::OutOfRange(
          util::StrFormat("gene %d outside population", g));
    }
    for (int t : db.GeneTerms(g)) ++counts[t];
  }

  const int num_candidates = static_cast<int>(counts.size());
  std::vector<EnrichmentResult> out;
  for (const auto& [term, k] : counts) {
    if (k < options.min_cluster_count) continue;
    EnrichmentResult r;
    r.term = term;
    r.cluster_count = k;
    r.population_count = db.TermPopulationCount(term);
    r.p_value = util::HypergeomUpperTail(
        k, db.population_size(), r.population_count,
        static_cast<int64_t>(genes.size()));
    r.corrected_p_value =
        options.bonferroni
            ? std::min(1.0, r.p_value * std::max(1, num_candidates))
            : r.p_value;
    const double effective =
        options.bonferroni ? r.corrected_p_value : r.p_value;
    if (effective <= options.max_p_value) out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const EnrichmentResult& a, const EnrichmentResult& b) {
              if (a.p_value != b.p_value) return a.p_value < b.p_value;
              return a.term < b.term;
            });
  return out;
}

EnrichmentResult TopTermOfCategory(
    const GoAnnotationDb& db, const std::vector<EnrichmentResult>& results,
    GoCategory category) {
  for (const EnrichmentResult& r : results) {
    if (db.term(r.term).category == category) return r;
  }
  return EnrichmentResult();
}

}  // namespace eval
}  // namespace regcluster
