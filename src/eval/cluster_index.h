// Post-mining query index over a cluster set.
//
// Downstream analyses ask membership questions constantly ("which clusters
// contain YAL005C?", "how often do these two genes co-cluster?", "which
// genes does gene g share modules with?").  This index answers them in
// O(log) / O(result) after one O(total membership) build.

#ifndef REGCLUSTER_EVAL_CLUSTER_INDEX_H_
#define REGCLUSTER_EVAL_CLUSTER_INDEX_H_

#include <vector>

#include "core/bicluster.h"

namespace regcluster {
namespace eval {

class ClusterIndex {
 public:
  /// Builds the index; `num_genes` / `num_conditions` size the lookup
  /// tables (ids outside the range are rejected by the queries).
  ClusterIndex(const std::vector<core::RegCluster>& clusters, int num_genes,
               int num_conditions);

  int num_clusters() const { return num_clusters_; }

  /// Cluster ids containing the gene (sorted ascending); empty for unknown
  /// or out-of-range genes.
  const std::vector<int>& ClustersWithGene(int gene) const;

  /// Cluster ids whose chain uses the condition (sorted ascending).
  const std::vector<int>& ClustersWithCondition(int cond) const;

  /// Number of clusters containing both genes.
  int CoClusterCount(int gene_a, int gene_b) const;

  /// Genes sharing at least one cluster with `gene` (sorted, excluding the
  /// gene itself).
  std::vector<int> CoClusteredGenes(int gene) const;

  /// Number of clusters the gene belongs to (its "pathway multiplicity" --
  /// the overlap property motivating biclustering over partitioning).
  int MembershipDegree(int gene) const {
    return static_cast<int>(ClustersWithGene(gene).size());
  }

 private:
  int num_clusters_;
  std::vector<std::vector<int>> gene_to_clusters_;
  std::vector<std::vector<int>> cond_to_clusters_;
  std::vector<std::vector<int>> cluster_to_genes_;  // sorted
  std::vector<int> empty_;
};

}  // namespace eval
}  // namespace regcluster

#endif  // REGCLUSTER_EVAL_CLUSTER_INDEX_H_
