#include "eval/quality.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/coherence.h"
#include "util/math_util.h"

namespace regcluster {
namespace eval {

ClusterQuality ScoreCluster(const matrix::MatrixStore& data,
                            const core::RegCluster& cluster,
                            const core::GammaSpec& spec) {
  ClusterQuality q;
  const std::vector<int>& chain = cluster.chain;
  const std::vector<int> genes = cluster.AllGenes();
  if (chain.size() < 2 || genes.empty()) return q;

  // Coherence spread.
  for (size_t k = 0; k + 1 < chain.size(); ++k) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (int g : genes) {
      const double h = core::CoherenceScore(data.row_data(g), chain[0],
                                            chain[1], chain[k], chain[k + 1]);
      lo = std::min(lo, h);
      hi = std::max(hi, h);
    }
    q.coherence_spread = std::max(q.coherence_spread, hi - lo);
  }

  // Regulation margin.
  q.regulation_margin = std::numeric_limits<double>::infinity();
  for (int g : genes) {
    const double gamma_i = core::AbsoluteGamma(data, g, spec);
    for (size_t k = 0; k + 1 < chain.size(); ++k) {
      const double step = std::fabs(data(g, chain[k + 1]) - data(g, chain[k]));
      const double margin = gamma_i > 0.0
                                ? step / gamma_i
                                : std::numeric_limits<double>::infinity();
      q.regulation_margin = std::min(q.regulation_margin, margin);
    }
  }

  // Pairwise fit residual and correlation.
  double residual_total = 0.0, corr_total = 0.0;
  int pairs = 0;
  for (size_t i = 0; i < genes.size(); ++i) {
    const std::vector<double> x = data.RowOnConditions(genes[i], chain);
    for (size_t j = i + 1; j < genes.size(); ++j) {
      const std::vector<double> y = data.RowOnConditions(genes[j], chain);
      double s1 = 0, s2 = 0;
      if (util::FitShiftScale(x, y, &s1, &s2)) {
        const double range =
            *std::max_element(y.begin(), y.end()) -
            *std::min_element(y.begin(), y.end());
        const double denom = range > 0 ? range : 1.0;
        residual_total += util::MaxAbsResidual(x, y, s1, s2) / denom;
      }
      corr_total += std::fabs(util::PearsonCorrelation(x, y));
      ++pairs;
    }
  }
  if (pairs > 0) {
    q.mean_fit_residual = residual_total / pairs;
    q.mean_abs_correlation = corr_total / pairs;
  }
  return q;
}

ClusterSetSummary Summarize(const std::vector<core::RegCluster>& clusters) {
  ClusterSetSummary s;
  s.num_clusters = static_cast<int>(clusters.size());
  if (clusters.empty()) return s;

  s.min_genes = s.max_genes = clusters[0].num_genes();
  s.min_conditions = s.max_conditions = clusters[0].num_conditions();
  double gene_total = 0.0, cond_total = 0.0;
  int with_negative = 0;
  for (const core::RegCluster& c : clusters) {
    s.min_genes = std::min(s.min_genes, c.num_genes());
    s.max_genes = std::max(s.max_genes, c.num_genes());
    s.min_conditions = std::min(s.min_conditions, c.num_conditions());
    s.max_conditions = std::max(s.max_conditions, c.num_conditions());
    gene_total += c.num_genes();
    cond_total += c.num_conditions();
    with_negative += !c.n_genes.empty();
  }
  s.mean_genes = gene_total / static_cast<double>(clusters.size());
  s.mean_conditions = cond_total / static_cast<double>(clusters.size());
  s.negative_fraction =
      static_cast<double>(with_negative) / static_cast<double>(clusters.size());

  if (clusters.size() > 1) {
    s.min_overlap = 1.0;
    s.max_overlap = 0.0;
    std::vector<core::Bicluster> feet;
    feet.reserve(clusters.size());
    for (const auto& c : clusters) feet.push_back(core::ToBicluster(c));
    for (size_t i = 0; i < feet.size(); ++i) {
      for (size_t j = i + 1; j < feet.size(); ++j) {
        const double o = core::OverlapFraction(feet[i], feet[j]);
        s.min_overlap = std::min(s.min_overlap, o);
        s.max_overlap = std::max(s.max_overlap, o);
      }
    }
  }
  return s;
}

std::vector<int> RankClusters(const matrix::MatrixStore& data,
                              const std::vector<core::RegCluster>& clusters) {
  struct Entry {
    int index;
    int64_t cells;
    double spread;
  };
  std::vector<Entry> entries;
  entries.reserve(clusters.size());
  for (size_t i = 0; i < clusters.size(); ++i) {
    const ClusterQuality q = ScoreCluster(data, clusters[i]);
    entries.push_back(Entry{static_cast<int>(i),
                            static_cast<int64_t>(clusters[i].num_genes()) *
                                clusters[i].num_conditions(),
                            q.coherence_spread});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.cells != b.cells) return a.cells > b.cells;
    if (a.spread != b.spread) return a.spread < b.spread;
    return a.index < b.index;
  });
  std::vector<int> out;
  out.reserve(entries.size());
  for (const Entry& e : entries) out.push_back(e.index);
  return out;
}

}  // namespace eval
}  // namespace regcluster
