#include "eval/match.h"

#include <algorithm>

namespace regcluster {
namespace eval {
namespace {

int64_t IntersectionSize(const std::vector<int>& a, const std::vector<int>& b) {
  int64_t n = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

}  // namespace

double Jaccard(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const int64_t inter = IntersectionSize(a, b);
  const int64_t uni =
      static_cast<int64_t>(a.size()) + static_cast<int64_t>(b.size()) - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double GeneJaccard(const core::Bicluster& a, const core::Bicluster& b) {
  return Jaccard(a.genes, b.genes);
}

double CellJaccard(const core::Bicluster& a, const core::Bicluster& b) {
  const int64_t inter = core::SharedCells(a, b);
  const int64_t uni = a.NumCells() + b.NumCells() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

namespace {

template <typename ScoreFn>
double MatchScore(const std::vector<core::Bicluster>& from,
                  const std::vector<core::Bicluster>& against,
                  ScoreFn score) {
  if (from.empty()) return 1.0;
  if (against.empty()) return 0.0;
  double total = 0.0;
  for (const core::Bicluster& a : from) {
    double best = 0.0;
    for (const core::Bicluster& b : against) {
      best = std::max(best, score(a, b));
    }
    total += best;
  }
  return total / static_cast<double>(from.size());
}

}  // namespace

double GeneMatchScore(const std::vector<core::Bicluster>& from,
                      const std::vector<core::Bicluster>& against) {
  return MatchScore(from, against, GeneJaccard);
}

double CellMatchScore(const std::vector<core::Bicluster>& from,
                      const std::vector<core::Bicluster>& against) {
  return MatchScore(from, against, CellJaccard);
}

MatchReport ScoreAgainstTruth(const std::vector<core::Bicluster>& found,
                              const std::vector<core::Bicluster>& truth) {
  MatchReport r;
  r.gene_relevance = GeneMatchScore(found, truth);
  r.gene_recovery = GeneMatchScore(truth, found);
  r.cell_relevance = CellMatchScore(found, truth);
  r.cell_recovery = CellMatchScore(truth, found);
  return r;
}

}  // namespace eval
}  // namespace regcluster
