#include "synth/generator.h"

#include <algorithm>
#include <cmath>

#include "util/prng.h"
#include "util/string_util.h"

namespace regcluster {
namespace synth {

core::Bicluster ImplantedCluster::Footprint() const {
  core::Bicluster b;
  b.genes.reserve(p_genes.size() + n_genes.size());
  std::merge(p_genes.begin(), p_genes.end(), n_genes.begin(), n_genes.end(),
             std::back_inserter(b.genes));
  b.conditions = chain;
  std::sort(b.conditions.begin(), b.conditions.end());
  return b;
}

core::RegCluster ImplantedCluster::ToRegCluster() const {
  core::RegCluster c;
  c.chain = chain;
  c.p_genes = p_genes;
  c.n_genes = n_genes;
  return c;
}

namespace {

/// Step fractions for a chain with `steps` steps: each fraction >= min_ratio,
/// fractions sum to 1, remainder spread by uniform weights.
std::vector<double> SampleStepFractions(util::Prng* prng, int steps,
                                        double min_ratio) {
  std::vector<double> w(static_cast<size_t>(steps));
  double wsum = 0.0;
  for (double& x : w) {
    x = prng->Uniform(0.05, 1.0);
    wsum += x;
  }
  const double spare = 1.0 - min_ratio * steps;
  std::vector<double> out(static_cast<size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    out[static_cast<size_t>(i)] =
        min_ratio + spare * w[static_cast<size_t>(i)] / wsum;
  }
  return out;
}

}  // namespace

util::StatusOr<SyntheticDataset> GenerateSynthetic(
    const SyntheticConfig& config) {
  if (config.num_genes < 1 || config.num_conditions < 2) {
    return util::Status::InvalidArgument("dataset too small");
  }
  if (config.num_clusters < 0) {
    return util::Status::InvalidArgument("num_clusters must be >= 0");
  }
  if (config.min_step_ratio <= 0.0 || config.min_step_ratio >= 0.5) {
    return util::Status::InvalidArgument(
        "min_step_ratio must be in (0, 0.5)");
  }
  if (config.negative_fraction < 0.0 || config.negative_fraction > 1.0) {
    return util::Status::InvalidArgument("negative_fraction must be in [0,1]");
  }
  if (config.gene_reuse_fraction < 0.0 || config.gene_reuse_fraction > 1.0) {
    return util::Status::InvalidArgument(
        "gene_reuse_fraction must be in [0,1]");
  }
  if (config.background_lo >= config.background_hi) {
    return util::Status::InvalidArgument("empty background range");
  }

  // Longest chain whose steps can all exceed min_step_ratio of the range.
  const int max_steps =
      static_cast<int>(std::floor(0.95 / config.min_step_ratio));
  const int max_chain = std::min(max_steps + 1, config.num_conditions);
  if (config.avg_cluster_conditions < 2) {
    return util::Status::InvalidArgument("avg_cluster_conditions must be >= 2");
  }

  util::Prng prng(config.seed);
  SyntheticDataset ds;
  ds.data = matrix::ExpressionMatrix(config.num_genes, config.num_conditions);
  for (int g = 0; g < config.num_genes; ++g) {
    for (int c = 0; c < config.num_conditions; ++c) {
      ds.data(g, c) = prng.Uniform(config.background_lo, config.background_hi);
    }
  }

  // Fresh genes are dealt from a shuffled pool; with gene_reuse_fraction > 0
  // some members are drawn from already-implanted genes whose existing
  // implant conditions do not collide with the new cluster's.
  std::vector<int> gene_pool(static_cast<size_t>(config.num_genes));
  for (int g = 0; g < config.num_genes; ++g) {
    gene_pool[static_cast<size_t>(g)] = g;
  }
  prng.Shuffle(&gene_pool);
  size_t next_gene = 0;
  // Per-gene mask of conditions already owned by an implant.
  std::vector<std::vector<char>> used_conditions(
      static_cast<size_t>(config.num_genes),
      std::vector<char>(static_cast<size_t>(config.num_conditions), 0));
  std::vector<int> reusable;  // genes used by at least one implant

  const double avg_genes =
      config.avg_cluster_genes_fraction * config.num_genes;
  for (int k = 0; k < config.num_clusters; ++k) {
    // Cluster shape.
    int n_conds = static_cast<int>(prng.UniformInt(
        config.avg_cluster_conditions - 1, config.avg_cluster_conditions + 1));
    n_conds = std::clamp(n_conds, 2, max_chain);
    int n_genes = static_cast<int>(std::lround(
        prng.Uniform(0.75 * avg_genes, 1.25 * avg_genes)));
    n_genes = std::max(n_genes, 2);

    ImplantedCluster implant;
    // Conditions: a random subset, in random chain order.
    std::vector<int> conds = prng.SampleWithoutReplacement(
        config.num_conditions, n_conds);
    prng.Shuffle(&conds);
    implant.chain = conds;

    // Member selection: reused genes first (condition-compatible), then
    // fresh genes from the pool.
    std::vector<int> member_genes;
    std::vector<char> is_reused;
    if (config.gene_reuse_fraction > 0.0 && !reusable.empty()) {
      const int want_reused = static_cast<int>(
          std::lround(config.gene_reuse_fraction * n_genes));
      for (int g : reusable) {
        if (static_cast<int>(member_genes.size()) >= want_reused) break;
        bool clash = false;
        for (int c : implant.chain) {
          if (used_conditions[static_cast<size_t>(g)][static_cast<size_t>(c)]) {
            clash = true;
            break;
          }
        }
        if (!clash) {
          member_genes.push_back(g);
          is_reused.push_back(1);
        }
      }
    }
    while (static_cast<int>(member_genes.size()) < n_genes) {
      if (next_gene >= gene_pool.size()) {
        return util::Status::InvalidArgument(util::StrFormat(
            "implants need more than %d genes; lower num_clusters or "
            "avg_cluster_genes_fraction",
            config.num_genes));
      }
      member_genes.push_back(gene_pool[next_gene++]);
      is_reused.push_back(0);
    }

    // Shared relative step pattern; cumulative fractions in [0, 1].
    const std::vector<double> steps =
        SampleStepFractions(&prng, n_conds - 1, config.min_step_ratio);
    std::vector<double> cum(static_cast<size_t>(n_conds), 0.0);
    for (int i = 1; i < n_conds; ++i) {
      cum[static_cast<size_t>(i)] =
          cum[static_cast<size_t>(i) - 1] + steps[static_cast<size_t>(i) - 1];
    }

    const int n_negative = static_cast<int>(
        std::lround(config.negative_fraction * n_genes));
    std::vector<char> in_chain(static_cast<size_t>(config.num_conditions), 0);
    for (int c : implant.chain) in_chain[static_cast<size_t>(c)] = 1;
    for (size_t gi = 0; gi < member_genes.size(); ++gi) {
      const int gene = member_genes[gi];
      const bool negative = static_cast<int>(gi) < n_negative;
      (negative ? implant.n_genes : implant.p_genes).push_back(gene);

      double lo, span;
      if (is_reused[gi]) {
        // Reuse the gene's existing expression range exactly so the earlier
        // implant's gamma_i guarantee is untouched.
        const auto [row_lo, row_hi] = ds.data.RowRange(gene);
        lo = row_lo;
        span = std::max(row_hi - row_lo, 1e-6);
      } else {
        // The implant must dominate the gene's final expression range so
        // that gamma_i = gamma * range is measured against the implant
        // span.  Find the background extremes on the untouched cells.
        double bg_lo = config.background_hi, bg_hi = config.background_lo;
        for (int c = 0; c < config.num_conditions; ++c) {
          if (in_chain[static_cast<size_t>(c)]) continue;
          bg_lo = std::min(bg_lo, ds.data(gene, c));
          bg_hi = std::max(bg_hi, ds.data(gene, c));
        }
        const double bg_span = std::max(bg_hi - bg_lo, 1e-6);
        lo = bg_lo - prng.Uniform(0.05, 0.3) * bg_span;
        span = bg_span * prng.Uniform(1.5, 3.0);
      }
      const double min_step = span * config.min_step_ratio;
      for (int i = 0; i < n_conds; ++i) {
        const double frac = cum[static_cast<size_t>(i)];
        double v = negative ? (lo + span) - span * frac : lo + span * frac;
        if (config.noise_fraction > 0.0 && !is_reused[gi]) {
          v += prng.Gaussian(0.0, config.noise_fraction * min_step);
        }
        ds.data(gene, implant.chain[static_cast<size_t>(i)]) = v;
      }
      for (int c : implant.chain) {
        used_conditions[static_cast<size_t>(gene)][static_cast<size_t>(c)] = 1;
      }
      if (!is_reused[gi]) reusable.push_back(gene);
    }
    std::sort(implant.p_genes.begin(), implant.p_genes.end());
    std::sort(implant.n_genes.begin(), implant.n_genes.end());
    ds.implants.push_back(std::move(implant));
  }
  return ds;
}

}  // namespace synth
}  // namespace regcluster
