// Surrogate for the benchmark yeast dataset of Section 5.2.
//
// The paper evaluates on the Tavazoie/Church 2884-gene x 17-condition yeast
// cell-cycle matrix (arep.med.harvard.edu/biclustering).  That file cannot
// be fetched in this offline reproduction, so this module generates a
// surrogate with the same shape and a comparable structure: a heavy-tailed
// (log-normal) background resembling raw expression intensities, plus a set
// of implanted noisy shifting-and-scaling co-regulation modules (most with
// negatively correlated members, mirroring Figure 8).  The substitution is
// documented in DESIGN.md; every code path exercised by the paper's yeast
// experiment (real-scaled values, mixed p/n clusters, overlapping output) is
// exercised here as well.

#ifndef REGCLUSTER_SYNTH_YEAST_SURROGATE_H_
#define REGCLUSTER_SYNTH_YEAST_SURROGATE_H_

#include <cstdint>

#include "synth/generator.h"

namespace regcluster {
namespace synth {

/// Parameters of the yeast-shaped surrogate.
/// Background process for the surrogate's non-implant cells.
enum class YeastBackground : int {
  /// Independent log-normal intensities per cell (raw hybridization-like).
  kLogNormal = 0,
  /// Cell-cycle-like time series: per gene a baseline plus a sinusoid with
  /// random amplitude, period and phase over the condition axis, plus
  /// noise.  Mirrors the temporal structure of the cdc15 experiment the
  /// paper's dataset comes from.
  kCellCycle = 1,
};

struct YeastSurrogateConfig {
  int num_genes = 2884;
  int num_conditions = 17;
  YeastBackground background = YeastBackground::kLogNormal;
  /// Number of implanted co-regulation modules.
  int num_modules = 25;
  /// Genes per module (approximately; +-25%).
  int avg_module_genes = 24;
  /// Conditions per module (the paper's reported clusters have 6).
  int avg_module_conditions = 6;
  /// Fraction of negatively correlated genes per module.
  double negative_fraction = 0.35;
  /// Relative per-cell noise on implants (fraction of the smallest step).
  double noise_fraction = 0.05;
  uint64_t seed = 1999;  ///< Tavazoie et al. publication year.
};

/// Generates the surrogate dataset with ground truth.  The background is
/// log-normal per cell: exp(N(mu, sigma)) with mu = 4, sigma = 0.6, clipped
/// to [1, 600], roughly matching raw hybridization intensities.
util::StatusOr<SyntheticDataset> MakeYeastSurrogate(
    const YeastSurrogateConfig& config = {});

}  // namespace synth
}  // namespace regcluster

#endif  // REGCLUSTER_SYNTH_YEAST_SURROGATE_H_
