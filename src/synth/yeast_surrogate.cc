#include "synth/yeast_surrogate.h"

#include <algorithm>
#include <cmath>

#include "util/prng.h"
#include "util/string_util.h"

namespace regcluster {
namespace synth {

util::StatusOr<SyntheticDataset> MakeYeastSurrogate(
    const YeastSurrogateConfig& config) {
  if (config.num_genes < 1 || config.num_conditions < 2) {
    return util::Status::InvalidArgument("dataset too small");
  }
  if (config.avg_module_conditions < 2 ||
      config.avg_module_conditions > config.num_conditions) {
    return util::Status::InvalidArgument("bad avg_module_conditions");
  }

  util::Prng prng(config.seed);
  SyntheticDataset ds;
  ds.data =
      matrix::ExpressionMatrix(config.num_genes, config.num_conditions);
  if (config.background == YeastBackground::kLogNormal) {
    for (int g = 0; g < config.num_genes; ++g) {
      for (int c = 0; c < config.num_conditions; ++c) {
        const double v = std::exp(prng.Gaussian(4.0, 0.6));
        ds.data(g, c) = std::clamp(v, 1.0, 600.0);
      }
    }
  } else {
    // Cell-cycle-like series: baseline + amplitude * sin(2*pi*t/period +
    // phase) + noise, all positive.
    for (int g = 0; g < config.num_genes; ++g) {
      const double baseline = std::exp(prng.Gaussian(4.0, 0.5));
      const double amplitude = baseline * prng.Uniform(0.1, 0.6);
      const double period = prng.Uniform(6.0, 12.0);  // conditions per cycle
      const double phase = prng.Uniform(0.0, 2.0 * M_PI);
      for (int c = 0; c < config.num_conditions; ++c) {
        const double wave =
            amplitude * std::sin(2.0 * M_PI * c / period + phase);
        const double noise = prng.Gaussian(0.0, 0.05 * baseline);
        ds.data(g, c) = std::clamp(baseline + wave + noise, 1.0, 600.0);
      }
    }
  }
  std::vector<std::string> gene_names;
  gene_names.reserve(static_cast<size_t>(config.num_genes));
  for (int g = 0; g < config.num_genes; ++g) {
    gene_names.push_back(util::StrFormat("ORF%04d", g));
  }
  REGCLUSTER_RETURN_IF_ERROR(ds.data.SetGeneNames(std::move(gene_names)));
  std::vector<std::string> cond_names;
  cond_names.reserve(static_cast<size_t>(config.num_conditions));
  for (int c = 0; c < config.num_conditions; ++c) {
    cond_names.push_back(util::StrFormat("cdc15_%d", 10 * (c + 1)));
  }
  REGCLUSTER_RETURN_IF_ERROR(ds.data.SetConditionNames(std::move(cond_names)));

  // Implant modules with the generator's machinery, re-done locally because
  // the background here is per-row heavy-tailed rather than uniform.
  std::vector<int> gene_pool(static_cast<size_t>(config.num_genes));
  for (int g = 0; g < config.num_genes; ++g) {
    gene_pool[static_cast<size_t>(g)] = g;
  }
  prng.Shuffle(&gene_pool);
  size_t next_gene = 0;

  const double min_step_ratio = 0.12;
  for (int k = 0; k < config.num_modules; ++k) {
    int n_conds = static_cast<int>(
        prng.UniformInt(config.avg_module_conditions - 1,
                        config.avg_module_conditions + 1));
    n_conds = std::clamp(n_conds, 2, config.num_conditions);
    n_conds = std::min(
        n_conds, 1 + static_cast<int>(std::floor(0.95 / min_step_ratio)));
    int n_genes = static_cast<int>(std::lround(prng.Uniform(
        0.75 * config.avg_module_genes, 1.25 * config.avg_module_genes)));
    n_genes = std::max(n_genes, 2);
    if (next_gene + static_cast<size_t>(n_genes) > gene_pool.size()) {
      return util::Status::InvalidArgument(
          "yeast surrogate: module gene demand exceeds gene count");
    }

    ImplantedCluster implant;
    std::vector<int> conds =
        prng.SampleWithoutReplacement(config.num_conditions, n_conds);
    prng.Shuffle(&conds);
    implant.chain = conds;

    // Shared step pattern.
    std::vector<double> steps(static_cast<size_t>(n_conds - 1));
    {
      double wsum = 0.0;
      for (double& x : steps) {
        x = prng.Uniform(0.05, 1.0);
        wsum += x;
      }
      const double spare = 1.0 - min_step_ratio * (n_conds - 1);
      for (double& x : steps) x = min_step_ratio + spare * x / wsum;
    }
    std::vector<double> cum(static_cast<size_t>(n_conds), 0.0);
    for (int i = 1; i < n_conds; ++i) {
      cum[static_cast<size_t>(i)] =
          cum[static_cast<size_t>(i - 1)] + steps[static_cast<size_t>(i - 1)];
    }

    const int n_negative = static_cast<int>(
        std::lround(config.negative_fraction * n_genes));
    std::vector<char> in_chain(static_cast<size_t>(config.num_conditions), 0);
    for (int c : implant.chain) in_chain[static_cast<size_t>(c)] = 1;
    for (int gi = 0; gi < n_genes; ++gi) {
      const int gene = gene_pool[next_gene++];
      const bool negative = gi < n_negative;
      (negative ? implant.n_genes : implant.p_genes).push_back(gene);

      double bg_lo = 600.0, bg_hi = 1.0;
      for (int c = 0; c < config.num_conditions; ++c) {
        if (in_chain[static_cast<size_t>(c)]) continue;
        bg_lo = std::min(bg_lo, ds.data(gene, c));
        bg_hi = std::max(bg_hi, ds.data(gene, c));
      }
      const double bg_span = std::max(bg_hi - bg_lo, 1.0);
      const double lo = bg_lo - prng.Uniform(0.05, 0.3) * bg_span;
      const double span = bg_span * prng.Uniform(1.5, 3.0);
      const double min_step = span * min_step_ratio;
      for (int i = 0; i < n_conds; ++i) {
        const double frac = cum[static_cast<size_t>(i)];
        double v = negative ? (lo + span) - span * frac : lo + span * frac;
        if (config.noise_fraction > 0.0) {
          v += prng.Gaussian(0.0, config.noise_fraction * min_step);
        }
        ds.data(gene, implant.chain[static_cast<size_t>(i)]) = v;
      }
    }
    std::sort(implant.p_genes.begin(), implant.p_genes.end());
    std::sort(implant.n_genes.begin(), implant.n_genes.end());
    ds.implants.push_back(std::move(implant));
  }
  return ds;
}

}  // namespace synth
}  // namespace regcluster
