// Synthetic dataset generator (Section 5 of the paper).
//
// "The synthetic dataset is initialized with random values ranging from 0 to
//  10.  Then a number of #clus perfect shifting-and-scaling clusters of
//  average dimensionality 6 and average number of genes (including both
//  p-member genes and n-member genes) equal to 0.01 * #g are embedded into
//  the data, which are reg-clusters with parameter settings epsilon = 0 and
//  gamma = 0.15."
//
// Implanted clusters are perfect by construction: all member genes of a
// cluster are affine transforms (positive scaling for p-members, negative
// for n-members) of a shared step pattern whose smallest relative step
// exceeds `min_step_ratio` of the gene's final expression range, so every
// adjacent chain pair is regulated at any gamma < min_step_ratio and the
// coherence spread is exactly zero.  Optional Gaussian noise can be added on
// implant cells for recovery experiments.

#ifndef REGCLUSTER_SYNTH_GENERATOR_H_
#define REGCLUSTER_SYNTH_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/bicluster.h"
#include "matrix/expression_matrix.h"
#include "util/status.h"

namespace regcluster {
namespace synth {

/// Parameters of the Section-5 data generator.
struct SyntheticConfig {
  int num_genes = 3000;       ///< #g
  int num_conditions = 30;    ///< #cond
  int num_clusters = 30;      ///< #clus
  /// Average number of conditions per implanted cluster ("dimensionality").
  /// Actual sizes are uniform in [avg-1, avg+1], clamped to what
  /// min_step_ratio allows (see below).
  int avg_cluster_conditions = 6;
  /// Average genes per implanted cluster as a fraction of num_genes
  /// (p-members + n-members); actual sizes uniform within +-25%.
  double avg_cluster_genes_fraction = 0.01;
  /// Fraction of each cluster's genes that are negatively correlated.
  double negative_fraction = 0.3;
  /// Background cells are uniform in [background_lo, background_hi].
  double background_lo = 0.0;
  double background_hi = 10.0;
  /// Every adjacent step of an implanted chain exceeds this fraction of the
  /// owning gene's expression range, i.e. implants are valid reg-clusters
  /// for any gamma < min_step_ratio (the paper embeds at gamma = 0.15).
  /// Chains are capped at floor(0.95 / min_step_ratio) steps so the
  /// guarantee is satisfiable.
  double min_step_ratio = 0.15;
  /// Standard deviation of additive Gaussian noise on implant cells,
  /// expressed as a fraction of the gene's smallest chain step (0 = the
  /// paper's perfect clusters).
  double noise_fraction = 0.0;
  /// Fraction of each cluster's genes drawn from genes already used by
  /// earlier implants (producing overlapping ground-truth clusters, like
  /// the 0-85% overlaps of Section 5.2).  A gene is only reused when the
  /// new cluster's condition set is disjoint from its existing implant
  /// conditions, and the reused gene's new implant reuses its existing
  /// expression range so earlier implants stay valid.  0 = disjoint genes.
  double gene_reuse_fraction = 0.0;
  /// PRNG seed; every run with the same config is identical.
  uint64_t seed = 42;
};

/// Ground-truth record of one implanted cluster.
struct ImplantedCluster {
  /// Conditions ordered as the regulation chain (p-members increase).
  std::vector<int> chain;
  std::vector<int> p_genes;  ///< sorted
  std::vector<int> n_genes;  ///< sorted

  /// The unordered footprint, for match-scoring against mined output.
  core::Bicluster Footprint() const;
  /// As a ground-truth RegCluster.
  core::RegCluster ToRegCluster() const;
};

/// A generated dataset plus its ground truth.
struct SyntheticDataset {
  matrix::ExpressionMatrix data;
  std::vector<ImplantedCluster> implants;
};

/// Generates a dataset per `config`.  Fails (InvalidArgument) when the
/// requested implants cannot fit (gene demand exceeds num_genes, cluster
/// dimensionality exceeds num_conditions, or parameters are out of range).
/// Implant gene sets are pairwise disjoint; condition sets may overlap.
util::StatusOr<SyntheticDataset> GenerateSynthetic(
    const SyntheticConfig& config);

}  // namespace synth
}  // namespace regcluster

#endif  // REGCLUSTER_SYNTH_GENERATOR_H_
