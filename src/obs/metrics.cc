#include "obs/metrics.h"

#include <bit>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace regcluster {
namespace obs {
namespace {

/// Shortest double representation that round-trips (%.17g is lossless for
/// IEEE doubles; %.9g would already be ambiguous for long mining runs).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Escapes a metric help string for a JSON string literal (the Prometheus
/// writer needs only backslash/newline handling, done inline there).
std::string JsonEscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus HELP text: backslash and line feed must be escaped.
std::string PromEscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    const char c = name[i];
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Relaxed atomic max/min update (no ordering needed: the fields are
/// monotone summaries read only after recording quiesces or approximately).
void AtomicMax(std::atomic<int64_t>* target, int64_t v) {
  int64_t cur = target->load(std::memory_order_relaxed);
  while (v > cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<int64_t>* target, int64_t v) {
  int64_t cur = target->load(std::memory_order_relaxed);
  while (v < cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Counter::Add(int64_t delta) {
  assert(delta >= 0 && "Counter is monotone; negative deltas are a bug");
  if (delta <= 0) return;
  value_.fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Histogram::Record(int64_t value) {
  assert(value >= 0 && "Histogram samples must be non-negative");
  if (value < 0) value = 0;
  const int bucket = std::bit_width(static_cast<uint64_t>(value));
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

int64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

int64_t Histogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

int64_t Histogram::BucketUpperBound(int i) {
  assert(i >= 0 && i < kNumBuckets);
  if (i >= 63) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << i) - 1;
}

int Histogram::HighestBucket() const {
  for (int i = kNumBuckets - 1; i >= 0; --i) {
    if (bucket_count(i) > 0) return i;
  }
  return -1;
}

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

util::StatusOr<size_t> MetricsRegistry::AddEntry(const std::string& name,
                                                 const std::string& help,
                                                 MetricKind kind) {
  if (!ValidMetricName(name)) {
    return util::Status::InvalidArgument(
        "metric name must match [a-zA-Z_:][a-zA-Z0-9_:]*: \"" + name + "\"");
  }
  if (index_.count(name) > 0) {
    return util::Status::InvalidArgument("duplicate metric name: \"" + name +
                                         "\"");
  }
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = kind;
  metrics_.push_back(std::move(entry));
  index_[name] = metrics_.size() - 1;
  return metrics_.size() - 1;
}

util::StatusOr<Counter*> MetricsRegistry::AddCounter(const std::string& name,
                                                     const std::string& help) {
  auto idx = AddEntry(name, help, MetricKind::kCounter);
  if (!idx.ok()) return idx.status();
  metrics_[*idx].counter = std::make_unique<Counter>();
  return metrics_[*idx].counter.get();
}

util::StatusOr<Gauge*> MetricsRegistry::AddGauge(const std::string& name,
                                                 const std::string& help) {
  auto idx = AddEntry(name, help, MetricKind::kGauge);
  if (!idx.ok()) return idx.status();
  metrics_[*idx].gauge = std::make_unique<Gauge>();
  return metrics_[*idx].gauge.get();
}

util::StatusOr<Histogram*> MetricsRegistry::AddHistogram(
    const std::string& name, const std::string& help) {
  auto idx = AddEntry(name, help, MetricKind::kHistogram);
  if (!idx.ok()) return idx.status();
  metrics_[*idx].histogram = std::make_unique<Histogram>();
  return metrics_[*idx].histogram.get();
}

const MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name,
                                                    MetricKind kind) const {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  const Entry& entry = metrics_[it->second];
  return entry.kind == kind ? &entry : nullptr;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  const Entry* e = Find(name, MetricKind::kCounter);
  return e != nullptr ? e->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  const Entry* e = Find(name, MetricKind::kGauge);
  return e != nullptr ? e->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  const Entry* e = Find(name, MetricKind::kHistogram);
  return e != nullptr ? e->histogram.get() : nullptr;
}

util::Status MetricsRegistry::WriteJson(std::ostream& out) const {
  out << "{\n  \"metrics\": [";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    const Entry& m = metrics_[i];
    out << (i > 0 ? ",\n    {" : "\n    {");
    out << "\"name\": \"" << m.name << "\", \"type\": \""
        << MetricKindName(m.kind) << "\", \"help\": \""
        << JsonEscapeHelp(m.help) << "\"";
    switch (m.kind) {
      case MetricKind::kCounter:
        out << ", \"value\": " << m.counter->value();
        break;
      case MetricKind::kGauge:
        out << ", \"value\": " << FormatDouble(m.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *m.histogram;
        out << ", \"count\": " << h.count() << ", \"sum\": " << h.sum()
            << ", \"min\": " << h.min() << ", \"max\": " << h.max()
            << ", \"buckets\": [";
        const int top = h.HighestBucket();
        int64_t cumulative = 0;
        for (int b = 0; b <= top; ++b) {
          cumulative += h.bucket_count(b);
          if (b > 0) out << ", ";
          out << "{\"le\": " << Histogram::BucketUpperBound(b)
              << ", \"count\": " << cumulative << "}";
        }
        out << "]";
        break;
      }
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  if (!out) return util::Status::IoError("stream write failed");
  return util::Status::OK();
}

util::Status MetricsRegistry::WritePrometheus(std::ostream& out) const {
  for (const Entry& m : metrics_) {
    out << "# HELP " << m.name << ' ' << PromEscapeHelp(m.help) << '\n';
    out << "# TYPE " << m.name << ' ' << MetricKindName(m.kind) << '\n';
    switch (m.kind) {
      case MetricKind::kCounter:
        out << m.name << ' ' << m.counter->value() << '\n';
        break;
      case MetricKind::kGauge:
        out << m.name << ' ' << FormatDouble(m.gauge->value()) << '\n';
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *m.histogram;
        const int top = h.HighestBucket();
        int64_t cumulative = 0;
        for (int b = 0; b <= top; ++b) {
          cumulative += h.bucket_count(b);
          out << m.name << "_bucket{le=\"" << Histogram::BucketUpperBound(b)
              << "\"} " << cumulative << '\n';
        }
        out << m.name << "_bucket{le=\"+Inf\"} " << h.count() << '\n';
        out << m.name << "_sum " << h.sum() << '\n';
        out << m.name << "_count " << h.count() << '\n';
        break;
      }
    }
  }
  if (!out) return util::Status::IoError("stream write failed");
  return util::Status::OK();
}

double PhaseSpan::Stop() {
  if (stopped_) return 0.0;
  stopped_ = true;
  const double seconds = timer_.ElapsedSeconds();
  if (gauge_ != nullptr) gauge_->Add(seconds);
  if (counter_ != nullptr) {
    counter_->Add(static_cast<int64_t>(seconds * 1e9));
  }
  if (accum_ != nullptr) *accum_ += seconds;
  return seconds;
}

}  // namespace obs
}  // namespace regcluster
