// Low-overhead observability primitives for the mining engine.
//
// The paper's Section 5 evaluation reasons about *search behavior* -- nodes
// expanded, branches cut per pruning rule, where the runtime goes -- so every
// mine should leave behind an experiment record instead of requiring an
// ad-hoc re-run.  This header provides the export surface for that record:
//
//   * Counter   -- monotone int64 (events, work units).
//   * Gauge     -- last-written double (durations, ratios, high-water marks).
//   * Histogram -- power-of-two bucketed int64 distribution (bucket i holds
//     values v with bit_width(v) == i, i.e. upper bounds 0, 1, 3, 7, ...,
//     2^i - 1), tracking count / sum / min / max alongside the buckets.
//   * MetricsRegistry -- owns named metrics in *stable registration order*
//     (exports are diffable byte-for-byte across runs) and rejects duplicate
//     or malformed names with a util::Status error.
//   * PhaseSpan -- RAII wall-clock span that adds its elapsed time to a
//     Gauge, Counter (nanoseconds) or plain double (seconds) on destruction.
//
// Threading contract: Counter / Gauge / Histogram recording is thread-safe
// (relaxed atomics) so a live registry can be scraped while workers record.
// The *miner* does not record into a registry from its hot path at all: it
// counts into per-task plain-int64 shards (core::MinerStats) that are merged
// deterministically after the search (see DESIGN.md "Observability"), and
// the merged struct is registered here only for export.  Registration and
// export are not synchronized against each other; register everything before
// sharing the registry.
//
// The registry serializes to the two formats operators actually consume:
// a JSON document (stable field order) and the Prometheus text exposition
// format (HELP/TYPE comments plus sample lines).

#ifndef REGCLUSTER_OBS_METRICS_H_
#define REGCLUSTER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/timer.h"

namespace regcluster {
namespace obs {

/// Monotone event counter.  Add() with a negative delta is a programming
/// error (debug-asserted, clamped to 0 in release builds).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment() { Add(1); }
  void Add(int64_t delta);

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written double value (durations, ratios, high-water marks).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two bucketed distribution of non-negative int64 samples.
///
/// Bucket i counts samples v with std::bit_width(v) == i: bucket 0 holds
/// exactly {0}, bucket i >= 1 holds [2^(i-1), 2^i - 1].  The cumulative
/// upper bound of bucket i is therefore 2^i - 1, which is what the
/// Prometheus `le` labels report.  Negative samples are clamped to 0
/// (debug-asserted).
class Histogram {
 public:
  /// One bucket per possible bit_width of a non-negative int64 (0..63).
  static constexpr int kNumBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded sample; 0 when count() == 0.
  int64_t min() const;
  int64_t max() const;
  int64_t bucket_count(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i (0, 1, 3, 7, ..., 2^i - 1).
  static int64_t BucketUpperBound(int i);
  /// Index of the highest non-empty bucket, or -1 when empty.  Exports only
  /// go this far (plus the +Inf catch-all), keeping documents compact.
  int HighestBucket() const;

 private:
  std::atomic<int64_t> buckets_[kNumBuckets]{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{std::numeric_limits<int64_t>::max()};
  std::atomic<int64_t> max_{std::numeric_limits<int64_t>::min()};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Stable lower-case name ("counter", "gauge", "histogram").
const char* MetricKindName(MetricKind kind);

/// Owns named metrics in registration order.  Names must match the
/// Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]* and be unique within the
/// registry; violations are reported as InvalidArgument, never asserted,
/// so dynamically-named metrics (per-dataset, per-shard) fail soft.
///
/// Returned metric pointers are owned by the registry and remain valid for
/// its lifetime (metrics are never removed).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  util::StatusOr<Counter*> AddCounter(const std::string& name,
                                      const std::string& help);
  util::StatusOr<Gauge*> AddGauge(const std::string& name,
                                  const std::string& help);
  util::StatusOr<Histogram*> AddHistogram(const std::string& name,
                                          const std::string& help);

  int num_metrics() const { return static_cast<int>(metrics_.size()); }

  /// Lookup by exact name; nullptr / wrong-kind lookups return nullptr.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// JSON document: {"metrics": [{"name", "type", "help", ...}, ...]} in
  /// registration order.  Counter values are integers, gauge values doubles;
  /// histograms carry count/sum/min/max plus a bucket array of
  /// {"le": bound, "count": cumulative}.
  util::Status WriteJson(std::ostream& out) const;

  /// Prometheus text exposition format, version 0.0.4: per metric a
  /// "# HELP", a "# TYPE" and the sample line(s); histograms emit
  /// cumulative _bucket{le="..."} samples, _sum and _count.
  util::Status WritePrometheus(std::ostream& out) const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Validates the name and claims it; on success appends the new entry and
  /// returns its index.
  util::StatusOr<size_t> AddEntry(const std::string& name,
                                  const std::string& help, MetricKind kind);
  const Entry* Find(const std::string& name, MetricKind kind) const;

  std::vector<Entry> metrics_;
  std::unordered_map<std::string, size_t> index_;
};

/// RAII wall-clock span.  On destruction (or an explicit Stop()) the elapsed
/// time is *added* to the target: seconds into a Gauge or a plain double,
/// nanoseconds into a Counter.  Construction with a null target is a no-op
/// span, so call sites can stay unconditional while collection is disabled.
class PhaseSpan {
 public:
  explicit PhaseSpan(Gauge* seconds_gauge) : gauge_(seconds_gauge) {}
  explicit PhaseSpan(Counter* ns_counter) : counter_(ns_counter) {}
  explicit PhaseSpan(double* seconds_accum) : accum_(seconds_accum) {}

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  ~PhaseSpan() { Stop(); }

  /// Ends the span early; returns the elapsed seconds (0 if already
  /// stopped).  Idempotent.
  double Stop();

 private:
  Gauge* gauge_ = nullptr;
  Counter* counter_ = nullptr;
  double* accum_ = nullptr;
  bool stopped_ = false;
  util::WallTimer timer_;
};

}  // namespace obs
}  // namespace regcluster

#endif  // REGCLUSTER_OBS_METRICS_H_
