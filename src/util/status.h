// Status / StatusOr error propagation for fallible operations.
//
// Library code in this project does not throw exceptions for recoverable
// errors (RocksDB-style).  Functions that can fail return a `Status` or a
// `StatusOr<T>`; callers are expected to check `ok()` before using a result.

#ifndef REGCLUSTER_UTIL_STATUS_H_
#define REGCLUSTER_UTIL_STATUS_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace regcluster {
namespace util {

/// Canonical error codes, a small subset of the usual gRPC/absl set that is
/// sufficient for a data-mining library.
enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kIoError = 5,
  kCorruption = 6,
  kUnimplemented = 7,
  kInternal = 8,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Value type describing the outcome of an operation.  Cheap to copy in the
/// OK case (no message allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.  `code` should not
  /// be kOk when a message is supplied; use `OK()` for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.  A default-constructed
/// StatusOr holds an Internal error ("uninitialized").
template <typename T>
class StatusOr {
 public:
  StatusOr() : status_(Status::Internal("uninitialized StatusOr")) {}

  /// Implicit construction from a value (success).
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (failure).
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accesses the contained value.  Must not be called unless `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace util
}  // namespace regcluster

/// Propagates a non-OK status to the caller.  Usable in any function that
/// returns Status.
#define REGCLUSTER_RETURN_IF_ERROR(expr)                  \
  do {                                                    \
    ::regcluster::util::Status _st = (expr);              \
    if (!_st.ok()) return _st;                            \
  } while (0)

#endif  // REGCLUSTER_UTIL_STATUS_H_
