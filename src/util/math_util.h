// Numerics shared across modules: descriptive statistics, correlation, and
// log-space combinatorics for the hypergeometric enrichment test.

#ifndef REGCLUSTER_UTIL_MATH_UTIL_H_
#define REGCLUSTER_UTIL_MATH_UTIL_H_

#include <cstdint>
#include <vector>

namespace regcluster {
namespace util {

/// Arithmetic mean of `v`.  Returns 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Unbiased sample variance (n-1 denominator).  Returns 0 for n < 2.
double Variance(const std::vector<double>& v);

/// Sample standard deviation.
double StdDev(const std::vector<double>& v);

/// Pearson correlation of two equal-length vectors; 0 if either is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// log(n!) via lgamma.  Requires n >= 0.
double LogFactorial(int64_t n);

/// log(C(n, k)).  Returns -inf when k < 0 or k > n.
double LogBinomial(int64_t n, int64_t k);

/// Hypergeometric point probability P(X = k) of drawing k annotated items in
/// a sample of size `draws` from a population of size `population` containing
/// `successes` annotated items.
double HypergeomPmf(int64_t k, int64_t population, int64_t successes,
                    int64_t draws);

/// Upper-tail hypergeometric p-value P(X >= k) -- the enrichment statistic
/// computed by GO term finders.  Computed by summing pmf terms in log space;
/// exact for the population sizes used in gene-expression analysis.
double HypergeomUpperTail(int64_t k, int64_t population, int64_t successes,
                          int64_t draws);

/// Least-squares fit of y = s1 * x + s2.  Writes the scaling factor to *s1
/// and the shifting factor to *s2; returns false when x is constant (fit is
/// degenerate) in which case outputs are untouched.
bool FitShiftScale(const std::vector<double>& x, const std::vector<double>& y,
                   double* s1, double* s2);

/// Maximum absolute residual of y against the fitted line s1*x + s2.
double MaxAbsResidual(const std::vector<double>& x,
                      const std::vector<double>& y, double s1, double s2);

}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_MATH_UTIL_H_
