// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (synthetic data generation,
// annotation sampling, Cheng-Church masking, ...) draw from this PRNG so that
// every experiment is reproducible from a single 64-bit seed.  The generator
// is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64; it is much
// faster than std::mt19937_64 and has no allocation or iostream baggage.

#ifndef REGCLUSTER_UTIL_PRNG_H_
#define REGCLUSTER_UTIL_PRNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace regcluster {
namespace util {

/// xoshiro256++ pseudo-random generator with convenience sampling helpers.
/// Not thread-safe; use one instance per thread.
class Prng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Prng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t Next64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box-Muller, cached second value).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `k` distinct integers from [0, n) in increasing order.
  /// Requires 0 <= k <= n.  O(n) time (selection sampling).
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_PRNG_H_
