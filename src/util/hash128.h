// 128-bit FNV-1a hashing for compact dedup keys.
//
// The miner's duplicate-output pruning needs a set membership test over
// (chain, gene set) identities.  Building the canonical string key for every
// candidate emission dominates MaybeEmit's cost, so the hot path hashes the
// integer sequence directly into a 128-bit digest and stores that instead.
// At 128 bits the collision probability across even billions of emissions is
// ~2^-64-scale -- far below the probability of a hardware fault -- so a
// false "duplicate" verdict is not a practical concern (and the canonical
// string key remains available via RegCluster::Key() for offline auditing).

#ifndef REGCLUSTER_UTIL_HASH128_H_
#define REGCLUSTER_UTIL_HASH128_H_

#include <cstddef>
#include <cstdint>

namespace regcluster {
namespace util {

/// A 128-bit digest, comparable and hashable (for unordered containers).
struct Hash128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Hash128& o) const { return hi == o.hi && lo == o.lo; }
  bool operator!=(const Hash128& o) const { return !(*this == o); }
};

/// std::hash-style functor: the low lane is already uniformly mixed.
struct Hash128Hasher {
  size_t operator()(const Hash128& h) const {
    return static_cast<size_t>(h.lo ^ (h.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Incremental FNV-1a over 64-bit words using the 128-bit FNV prime.
/// Feed values with Mix*(); read the digest at any point.
class Fnv128 {
 public:
  Fnv128() = default;

  /// Absorbs one 64-bit word (as 8 little-endian octets).
  Fnv128& Mix64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= static_cast<unsigned char>(v >> (8 * i));
      state_ *= kPrime;
    }
    return *this;
  }

  /// Absorbs a signed int (sign-extended; -1 works as a domain separator).
  Fnv128& MixInt(int v) {
    return Mix64(static_cast<uint64_t>(static_cast<int64_t>(v)));
  }

  /// Absorbs `size` raw bytes (octet-at-a-time FNV-1a, so the digest is
  /// independent of how the input was chunked across calls).
  Fnv128& MixBytes(const void* data, size_t size) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      state_ ^= p[i];
      state_ *= kPrime;
    }
    return *this;
  }

  Hash128 Digest() const {
    return Hash128{static_cast<uint64_t>(state_ >> 64),
                   static_cast<uint64_t>(state_)};
  }

 private:
  using U128 = unsigned __int128;
  /// FNV-1a 128-bit offset basis and prime (Fowler/Noll/Vo).
  static constexpr U128 kOffset =
      (static_cast<U128>(0x6c62272e07bb0142ULL) << 64) |
      0x62b821756295c58dULL;
  static constexpr U128 kPrime =
      (static_cast<U128>(0x0000000001000000ULL) << 64) | 0x000000000000013bULL;

  U128 state_ = kOffset;
};

}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_HASH128_H_
