// Wall-clock timing for the benchmark harnesses.

#ifndef REGCLUSTER_UTIL_TIMER_H_
#define REGCLUSTER_UTIL_TIMER_H_

#include <chrono>

namespace regcluster {
namespace util {

/// A simple stopwatch measuring wall time.  Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_TIMER_H_
