#include "util/logging.h"

#include <cstdio>

namespace regcluster {
namespace util {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(g_level)) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace util
}  // namespace regcluster
