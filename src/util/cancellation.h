// Cooperative cancellation and resource budgets for long-running searches.
//
// The miner's depth-first enumeration has worst-case exponential node counts,
// so every caller that feeds it untrusted parameters needs a way to bound the
// run: a wall-clock deadline, a node/cluster budget, an approximate memory
// ceiling, or an external interrupt (SIGINT, an RPC peer going away).  This
// header provides the three pieces, composable and cheap enough to consult at
// DFS-node granularity:
//
//   * CancellationToken -- a shared atomic "stop requested" flag carrying a
//     StopReason.  Safe to trip from any thread or from a signal handler
//     (Cancel() is lock-free and async-signal-safe).  For fault-injection
//     tests the token can be armed to self-trip on the k-th Poll().
//   * DeadlineSource -- a wall-clock deadline on top of util::WallTimer.
//   * BudgetGuard -- composes token + deadline + node / cluster / memory
//     limits behind one cheap ShouldStop() (a single relaxed atomic load).
//     Workers add their progress with amortized Poll() calls; the guard
//     latches the *first* reason that tripped.
//
// Reasons are split into two severities that truncating searches treat
// differently (see core::RegClusterMiner):
//
//   * hard stops (kCancelled, kDeadline, kMemoryBudget) -- the caller wants
//     the process to let go *now*; a truncating search may not start any
//     recovery work after one trips.
//   * soft stops (kNodeBudget, kClusterBudget) -- a deterministic work quota
//     ran out; the search may still spend bounded effort making the
//     truncation point deterministic (e.g. re-running a partial unit of work
//     serially under the remaining quota).

#ifndef REGCLUSTER_UTIL_CANCELLATION_H_
#define REGCLUSTER_UTIL_CANCELLATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/timer.h"

namespace regcluster {
namespace util {

/// Why a budgeted run stopped.  kNone means "ran to completion".
enum class StopReason : int32_t {
  kNone = 0,
  kCancelled = 1,      ///< external CancellationToken tripped (hard)
  kDeadline = 2,       ///< wall-clock deadline expired (hard)
  kMemoryBudget = 3,   ///< approximate scratch memory over the soft limit (hard)
  kNodeBudget = 4,     ///< DFS node budget exhausted (soft)
  kClusterBudget = 5,  ///< emitted-cluster budget exhausted (soft)
};

/// Stable lower_snake_case name for reports and JSON exports.
const char* StopReasonName(StopReason reason);

/// True for reasons that forbid any post-trip recovery work.
inline bool IsHardStop(StopReason reason) {
  return reason == StopReason::kCancelled || reason == StopReason::kDeadline ||
         reason == StopReason::kMemoryBudget;
}

/// A shared stop flag.  Typically owned via shared_ptr by the party that may
/// cancel (a signal handler, an RPC context) and observed by the workers.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation.  Idempotent; the first reason wins.  Lock-free
  /// and async-signal-safe (a single atomic compare-exchange).
  void Cancel(StopReason reason = StopReason::kCancelled);

  bool cancelled() const {
    return reason_.load(std::memory_order_relaxed) !=
           static_cast<int32_t>(StopReason::kNone);
  }

  StopReason reason() const {
    return static_cast<StopReason>(reason_.load(std::memory_order_relaxed));
  }

  /// Arms the token to self-cancel on the k-th Poll() (k >= 1), counted
  /// across all threads.  Fault-injection hook: lets a test trip the token at
  /// an exact, reproducible point in the search without timing races.
  void CancelAfterPolls(int64_t k);

  /// Counts one poll against an armed CancelAfterPolls() countdown (no-op
  /// when unarmed) and returns cancelled().
  bool Poll();

 private:
  std::atomic<int32_t> reason_{static_cast<int32_t>(StopReason::kNone)};
  /// Remaining polls before self-cancel; negative = unarmed.
  std::atomic<int64_t> polls_until_cancel_{-1};
};

/// A wall-clock deadline.  Default-constructed sources never expire.
class DeadlineSource {
 public:
  DeadlineSource() = default;

  /// A deadline `ms` milliseconds from now.  ms <= 0 expires immediately.
  static DeadlineSource AfterMillis(double ms);

  bool active() const { return active_; }

  bool Expired() const {
    return active_ && timer_.ElapsedMillis() >= limit_ms_;
  }

  /// Milliseconds until expiry (never negative); +inf when inactive.
  double RemainingMillis() const;

 private:
  bool active_ = false;
  double limit_ms_ = 0.0;
  WallTimer timer_;
};

/// Composes every stop source behind one cheap check.  Shared by all workers
/// of one run; each worker reports progress via Poll(slot, bytes) at an
/// amortized interval and consults ShouldStop() (one relaxed load) in between.
class BudgetGuard {
 public:
  struct Limits {
    int64_t max_nodes = -1;              ///< total DFS nodes; < 0 = unlimited
    int64_t max_clusters = -1;           ///< total emissions; < 0 = unlimited
    double deadline_ms = -1.0;           ///< wall clock; < 0 = none
    int64_t soft_memory_limit_bytes = -1;  ///< approx scratch; < 0 = none
    std::shared_ptr<CancellationToken> token;  ///< optional external token

    bool any() const {
      return max_nodes >= 0 || max_clusters >= 0 || deadline_ms >= 0 ||
             soft_memory_limit_bytes >= 0 || token != nullptr;
    }
  };

  /// `num_slots` is the number of independent progress reporters (workers);
  /// each owns one slot for its approximate-memory reports.
  BudgetGuard(const Limits& limits, int num_slots);

  BudgetGuard(const BudgetGuard&) = delete;
  BudgetGuard& operator=(const BudgetGuard&) = delete;

  /// The cheap check: true once any limit has tripped.  One relaxed load.
  bool ShouldStop() const { return reason() != StopReason::kNone; }

  /// First reason that tripped, hard reasons taking precedence; kNone if
  /// still running.
  StopReason reason() const;

  /// First *hard* reason that tripped (kCancelled / kDeadline /
  /// kMemoryBudget), ignoring exhausted work quotas.
  StopReason hard_reason() const {
    return static_cast<StopReason>(hard_.load(std::memory_order_relaxed));
  }

  /// Latches a stop reason directly.  Idempotent per severity; first wins.
  void Trip(StopReason reason);

  /// Adds finished DFS nodes / emitted clusters to the global totals.
  void AddNodes(int64_t n) { nodes_.fetch_add(n, std::memory_order_relaxed); }
  void AddClusters(int64_t n) {
    clusters_.fetch_add(n, std::memory_order_relaxed);
  }

  /// The amortized check: records this slot's approximate live bytes, then
  /// evaluates every limit (token poll, deadline, memory, node / cluster
  /// totals) and latches the first violation.  Returns reason().
  StopReason Poll(int slot, int64_t slot_bytes);

  /// Fixed byte component added to every Poll()'s summed slot total (and
  /// hence to peak_bytes()).  Out-of-core miners report their mapped matrix
  /// + resident model bytes here exactly once, instead of inflating every
  /// worker's slot.
  void set_base_bytes(int64_t bytes) {
    base_bytes_.store(bytes, std::memory_order_relaxed);
  }
  int64_t base_bytes() const {
    return base_bytes_.load(std::memory_order_relaxed);
  }

  int64_t total_nodes() const {
    return nodes_.load(std::memory_order_relaxed);
  }
  int64_t total_clusters() const {
    return clusters_.load(std::memory_order_relaxed);
  }

  /// Peak of the summed per-slot byte reports seen by any Poll().
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

  /// Number of Poll() calls across all slots (telemetry; depends on how
  /// workers amortize their polling, not on the data alone).
  int64_t total_polls() const {
    return polls_.load(std::memory_order_relaxed);
  }

  const Limits& limits() const { return limits_; }

 private:
  Limits limits_;
  DeadlineSource deadline_;
  std::atomic<int32_t> hard_{static_cast<int32_t>(StopReason::kNone)};
  std::atomic<int32_t> soft_{static_cast<int32_t>(StopReason::kNone)};
  std::atomic<int64_t> nodes_{0};
  std::atomic<int64_t> clusters_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<int64_t> polls_{0};
  std::atomic<int64_t> base_bytes_{0};
  std::vector<std::atomic<int64_t>> slot_bytes_;
};

}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_CANCELLATION_H_
