// Stable LSD radix sort of the miner's scored columns, replacing the
// comparator index-sort (std::sort over (score asc, gene asc)) with
// byte-for-byte identical output.
//
// Why a radix sort can reproduce a comparator sort exactly:
//
//   * Key order == value order.  OrderKey() maps an IEEE-754 double to a
//     uint64 whose unsigned order equals the double's numeric order: the
//     sign bit is flipped for non-negative values and the whole word is
//     complemented for negative ones (the standard order-preserving bijection
//     for two's-complement radix sorting of floats).  The flip predicate is
//     `d < 0.0`, which is false for -0.0, so both zeros share one key --
//     exactly the comparator's behaviour, where -0.0 != +0.0 is false and the
//     pair falls through to the gene tiebreak.  No quantization anywhere:
//     distinct finite values (including denormals) get distinct keys in the
//     same order, equal values get equal keys.
//
//   * Ties resolve by construction.  The sort runs over a *base order* that
//     is already gene-ascending: the scored columns are two gene-ascending
//     halves (p-members then n-members, each inheriting the by-gene member
//     order), so MergeByGene() produces the fully gene-ascending index
//     permutation in O(n).  An LSD radix pass is stable, so equal scores
//     keep that base order -- which is precisely the comparator's
//     `gene[a] < gene[b]` tiebreak.  The two halves hold disjoint gene sets
//     wherever the miner sorts (chains of length >= 2), so (score, gene) is
//     a strict total order and *any* correct sort yields the identical
//     permutation.
//
// Speed comes from the column shape: the average scored column is ~80
// entries (BENCH_miner.json: coherence_scores / coherence_divide_calls), so
// the sort is dominated by branch mispredictions in the comparator, not by
// O(n log n) work.  Small columns take a stable insertion sort on the packed
// (key, index) pairs; mid-size columns take a hybrid of one or two counting
// passes on the top varying bytes plus a stable full-key insertion sweep
// (full 8-pass LSD loses to its own 256-entry prefix sums at these sizes);
// large columns take 8-bit LSD passes that skip bytes on which all keys
// agree (detected with one OR-accumulated XOR sweep).
//
// Everything here is portable scalar code; util/simd/kernels_avx2.cc reuses
// MergeByGene + SortPairsByKeyStable and replaces only the key-building
// gather with vector intrinsics.

#ifndef REGCLUSTER_UTIL_SIMD_RADIX_SORT_H_
#define REGCLUSTER_UTIL_SIMD_RADIX_SORT_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace regcluster {
namespace util {
namespace simd {

/// Reusable buffers for one sorting worker (the miner keeps one per
/// MinerScratch so the hot loop never allocates after warm-up).
struct SortScratch {
  std::vector<uint64_t> keys;
  std::vector<uint64_t> keys_tmp;
  std::vector<int> idx;
  std::vector<int> idx_tmp;
  std::vector<uint16_t> digits;     ///< per-element 16-bit digits (hybrid)
  std::vector<int32_t> wide_hist;   ///< histogram for the 16-bit window

  void Reserve(int n) {
    if (static_cast<int>(keys.size()) < n) {
      keys.resize(static_cast<size_t>(n));
      keys_tmp.resize(static_cast<size_t>(n));
      idx.resize(static_cast<size_t>(n));
      idx_tmp.resize(static_cast<size_t>(n));
      digits.resize(static_cast<size_t>(n));
    }
  }

  int64_t ApproxBytes() const {
    return static_cast<int64_t>(keys.capacity() * sizeof(uint64_t) * 2 +
                                idx.capacity() * sizeof(int) * 2 +
                                digits.capacity() * sizeof(uint16_t) +
                                wide_hist.capacity() * sizeof(int32_t));
  }
};

/// Columns at or below this size take the stable insertion sort; above it,
/// LSD radix passes.  Tuned on the BENCH_miner.json synthetic workload
/// (average column ~80 entries).
inline constexpr int kRadixInsertionCutoff = 32;

/// Columns in (kRadixInsertionCutoff, kRadixHybridCutoff] run stable
/// counting passes anchored at the most significant varying byte, then
/// finish with a stable full-key insertion pass: at these sizes (the
/// miner's columns concentrate at n = 48..96) full 8-pass LSD loses to its
/// own 256-entry prefix sums.  Any stable partition by high key bits leaves
/// misorder only inside runs that agree on those bits, and a stable
/// insertion on the full keys then produces exactly the full-LSD result,
/// so the hybrid stays byte-identical.
inline constexpr int kRadixHybridCutoff = 320;

/// When the top byte leaves a tie-bucket larger than this, the hybrid
/// runs one extra counting pass on the next-lower varying byte before it
/// (LSD order) to keep the insertion pass short.
inline constexpr int kRadixSecondPassBucket = 48;

/// The hybrid first tries a single counting pass over the top *two*
/// varying bytes as one 16-bit digit, offset by the smallest digit seen so
/// the histogram spans only the occupied range.  The miner's score columns
/// are tightly clustered, so that range is usually a few dozen values --
/// one scatter pass replaces the two byte-wide passes and leaves near-sorted
/// runs for the insertion sweep.  When the spread exceeds this many
/// distinct digit values the per-sort memset stops paying and the byte-wide
/// path runs instead.
inline constexpr int kRadixWideDigitRange = 4096;

/// Order-preserving bijection double -> uint64: unsigned key order equals
/// numeric order, with -0.0 and +0.0 mapping to the same key (the comparator
/// treats them as a tie).  NaN never occurs in a scored column (the matrix
/// rejects missing values and denominators are nonzero by the strict
/// regulation-step contract); it would be comparator UB anyway.
inline uint64_t OrderKey(double d) {
  constexpr uint64_t kSign = uint64_t{1} << 63;
  const uint64_t u = std::bit_cast<uint64_t>(d);
  return d < 0.0 ? ~u : (u | kSign);
}

/// Inverse of OrderKey up to the deliberate -0.0 collapse: round-tripping
/// any double returns the same value bit for bit except -0.0, which comes
/// back as +0.0.  The sorted-column output below is defined through this
/// round trip at *every* level (the scalar reference applies it too), so the
/// sorted_h arrays are bit-identical across kernels, and the zero-sign
/// canonicalization is invisible to the miner's window test: a +-0.0 swap
/// can only flip the sign of a zero difference, which compares to the
/// non-negative epsilon identically.
inline double InverseOrderKey(uint64_t k) {
  constexpr uint64_t kSign = uint64_t{1} << 63;
  return (k & kSign) != 0 ? std::bit_cast<double>(k & ~kSign)
                          : std::bit_cast<double>(~k);
}

/// Merges the two gene-ascending halves [0, split) and [split, total) of a
/// scored column into the fully gene-ascending index permutation `out`.
/// Two-pointer merge; the halves are disjoint wherever the miner sorts, so
/// `<` vs `<=` cannot matter for the final order (stability of the radix
/// passes preserves whichever base order is produced here).
inline void MergeByGene(const int* gene, int split, int total, int* out) {
  int i = 0;
  int j = split;
  int k = 0;
  while (i < split && j < total) {
    out[k++] = gene[i] <= gene[j] ? i++ : j++;
  }
  while (i < split) out[k++] = i++;
  while (j < total) out[k++] = j++;
}

/// Stably sorts the n (scratch->keys[i], scratch->idx[i]) pairs by ascending
/// key, writes the resulting index permutation to `order_out` and the sorted
/// scores -- InverseOrderKey of the sorted keys -- to `sorted_h`.  The
/// scratch arrays are clobbered.  Equal keys keep their incoming order.
inline void SortPairsByKeyStable(int n, SortScratch* scratch, int* order_out,
                                 double* sorted_h) {
  uint64_t* keys = scratch->keys.data();
  int* idx = scratch->idx.data();
  const auto emit = [&](const uint64_t* k_final, const int* i_final) {
    for (int i = 0; i < n; ++i) sorted_h[i] = InverseOrderKey(k_final[i]);
    std::memcpy(order_out, i_final, static_cast<size_t>(n) * sizeof(int));
  };
  if (n <= 1) {
    if (n == 1) emit(keys, idx);
    return;
  }

  if (n <= kRadixInsertionCutoff) {
    for (int i = 1; i < n; ++i) {
      const uint64_t k = keys[i];
      const int v = idx[i];
      int j = i - 1;
      while (j >= 0 && keys[j] > k) {
        keys[j + 1] = keys[j];
        idx[j + 1] = idx[j];
        --j;
      }
      keys[j + 1] = k;
      idx[j + 1] = v;
    }
    emit(keys, idx);
    return;
  }

  // One XOR sweep finds the bytes on which any two keys differ; bytes where
  // all keys agree cannot change the order and their passes are skipped.
  uint64_t diff = 0;
  for (int i = 1; i < n; ++i) diff |= keys[i] ^ keys[0];
  int passes[8];
  int num_passes = 0;
  for (int b = 0; b < 8; ++b) {
    if ((diff >> (8 * b)) & 0xFF) passes[num_passes++] = b;
  }
  if (num_passes == 0) {  // all keys equal: the base order is the answer
    emit(keys, idx);
    return;
  }

  // Ping-pong scatter state shared by both paths below.
  uint64_t* ka = keys;
  uint64_t* kb = scratch->keys_tmp.data();
  int* ia = idx;
  int* ib = scratch->idx_tmp.data();
  const auto counting_pass = [&](int byte, const int32_t* h256) {
    int32_t offs[256];
    int32_t sum = 0;
    for (int d = 0; d < 256; ++d) {
      offs[d] = sum;
      sum += h256[d];
    }
    const int shift = 8 * byte;
    for (int i = 0; i < n; ++i) {
      const int32_t pos = offs[(ka[i] >> shift) & 0xFF]++;
      kb[pos] = ka[i];
      ib[pos] = ia[i];
    }
    std::swap(ka, kb);
    std::swap(ia, ib);
  };

  if (n <= kRadixHybridCutoff) {
    // Mid-size hybrid: one stable counting pass on the most significant
    // varying byte -- widened to a fused 16-bit digit over the top two
    // varying bytes when the top byte alone would leave big tie-buckets --
    // then a stable full-key insertion sweep.  After the counting pass,
    // elements can only be misordered inside runs that agree on every
    // processed byte -- all bytes above the top varying one agree globally --
    // so the insertion sweep moves each element only within its short run and
    // produces exactly the full-LSD permutation.  The prefix sums run over
    // the occupied digit range only: the miner's score columns are tightly
    // clustered, so a byte typically spans a handful of digit values and the
    // full 256-entry prefix would cost more than the n-element scatter.
    const auto counting_pass_range = [&](int byte, const int32_t* h256,
                                         int dmin, int dmax) {
      int32_t offs[256];
      int32_t sum = 0;
      for (int d = dmin; d <= dmax; ++d) {
        offs[d] = sum;
        sum += h256[d];
      }
      const int shift = 8 * byte;
      for (int i = 0; i < n; ++i) {
        const int32_t pos = offs[(ka[i] >> shift) & 0xFF]++;
        kb[pos] = ka[i];
        ib[pos] = ia[i];
      }
      std::swap(ka, kb);
      std::swap(ia, ib);
    };
    const int top = passes[num_passes - 1];
    int32_t hist_top[256];
    std::memset(hist_top, 0, sizeof(hist_top));
    int32_t max_bucket = 0;
    int dmin = 255;
    int dmax = 0;
    for (int i = 0; i < n; ++i) {
      const int d = static_cast<int>((ka[i] >> (8 * top)) & 0xFF);
      const int32_t c = ++hist_top[d];
      max_bucket = std::max(max_bucket, c);
      dmin = std::min(dmin, d);
      dmax = std::max(dmax, d);
    }
    bool partitioned = false;
    if (max_bucket > kRadixSecondPassBucket && num_passes >= 2) {
      // The top byte alone leaves big tie-buckets.  Before paying for two
      // byte-wide scatter passes, try one stable pass over the top two
      // *varying* bytes fused into a 16-bit digit (any byte between them is
      // globally equal, so ordering by the fused digit equals ordering by
      // the whole high prefix down to `second`).  One sweep computes the
      // digits and their span; when the span is small -- the clustered-
      // column common case -- a single scatter replaces both byte passes.
      // The span cap scales with n so the memset + prefix stay proportional
      // to the element work on small columns.
      const int second = passes[num_passes - 2];
      const int tshift = 8 * top;
      const int sshift = 8 * second;
      uint16_t* digits = scratch->digits.data();
      uint32_t dmin_w = 0xFFFF;
      uint32_t dmax_w = 0;
      for (int i = 0; i < n; ++i) {
        const uint32_t d =
            ((static_cast<uint32_t>(ka[i] >> tshift) & 0xFF) << 8) |
            (static_cast<uint32_t>(ka[i] >> sshift) & 0xFF);
        digits[i] = static_cast<uint16_t>(d);
        dmin_w = std::min(dmin_w, d);
        dmax_w = std::max(dmax_w, d);
      }
      const uint32_t span = dmax_w - dmin_w + 1;
      const uint32_t span_limit = std::min<uint32_t>(
          kRadixWideDigitRange, 16u * static_cast<uint32_t>(n));
      if (span <= span_limit) {
        auto& wh = scratch->wide_hist;
        if (wh.size() < span) {
          wh.resize(static_cast<size_t>(kRadixWideDigitRange));
        }
        int32_t* hist_w = wh.data();
        std::memset(hist_w, 0, span * sizeof(int32_t));
        for (int i = 0; i < n; ++i) ++hist_w[digits[i] - dmin_w];
        int32_t sum = 0;
        for (uint32_t d = 0; d < span; ++d) {
          const int32_t c = hist_w[d];
          hist_w[d] = sum;
          sum += c;
        }
        for (int i = 0; i < n; ++i) {
          const int32_t pos = hist_w[digits[i] - dmin_w]++;
          kb[pos] = ka[i];
          ib[pos] = ia[i];
        }
        std::swap(ka, kb);
        std::swap(ia, ib);
        partitioned = true;
      } else {
        int32_t hist2[256];
        std::memset(hist2, 0, sizeof(hist2));
        int dmin2 = 255;
        int dmax2 = 0;
        for (int i = 0; i < n; ++i) {
          const int d = static_cast<int>((ka[i] >> sshift) & 0xFF);
          ++hist2[d];
          dmin2 = std::min(dmin2, d);
          dmax2 = std::max(dmax2, d);
        }
        counting_pass_range(second, hist2, dmin2, dmax2);
      }
    }
    if (!partitioned) counting_pass_range(top, hist_top, dmin, dmax);
    for (int i = 1; i < n; ++i) {
      const uint64_t k = ka[i];
      const int v = ia[i];
      int j = i - 1;
      while (j >= 0 && ka[j] > k) {
        ka[j + 1] = ka[j];
        ia[j + 1] = ia[j];
        --j;
      }
      ka[j + 1] = k;
      ia[j + 1] = v;
    }
    emit(ka, ia);
    return;
  }

  // Full LSD: all active histograms in a single counting sweep, then
  // ping-pong scatter passes, least significant active byte first.
  int32_t hist[8][256];
  for (int j = 0; j < num_passes; ++j) {
    std::memset(hist[j], 0, sizeof(hist[j]));
  }
  for (int i = 0; i < n; ++i) {
    const uint64_t k = keys[i];
    for (int j = 0; j < num_passes; ++j) {
      ++hist[j][(k >> (8 * passes[j])) & 0xFF];
    }
  }
  for (int j = 0; j < num_passes; ++j) {
    counting_pass(passes[j], hist[j]);
  }
  emit(ka, ia);
}

/// The full portable sorted-column pipeline: gene-ascending base order,
/// order-preserving keys, stable sort; `order` receives the permutation the
/// legacy comparator sort would produce, byte for byte, and `sorted_h` the
/// score column in that order (zero-sign-canonicalized; see
/// InverseOrderKey).  Preconditions (the miner's invariants): each half of
/// `gene` is strictly ascending, and the halves are disjoint.
inline void RadixSortScored(const double* h, const int* gene, int split,
                            int total, int* order, double* sorted_h,
                            SortScratch* scratch) {
  if (total <= 0) return;
  scratch->Reserve(total);
  int* idx = scratch->idx.data();
  uint64_t* keys = scratch->keys.data();
  // Fused merge + key build: one pass produces the gene-ascending base
  // permutation and its keys together (a separate key pass re-reads idx and
  // h for nothing; this loop is the same MergeByGene order).
  int i = 0;
  int j = split;
  int k = 0;
  while (i < split && j < total) {
    const int t = gene[i] <= gene[j] ? i++ : j++;
    idx[k] = t;
    keys[k] = OrderKey(h[t]);
    ++k;
  }
  for (; i < split; ++i, ++k) {
    idx[k] = i;
    keys[k] = OrderKey(h[i]);
  }
  for (; j < total; ++j, ++k) {
    idx[k] = j;
    keys[k] = OrderKey(h[j]);
  }
  SortPairsByKeyStable(total, scratch, order, sorted_h);
}

}  // namespace simd
}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_SIMD_RADIX_SORT_H_
