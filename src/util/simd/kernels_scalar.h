// Portable scalar kernel set -- the reference implementations every
// accelerated level is differentially tested against.
//
// The word loops forward to util/bitset.h (the single scalar source of
// truth, shared with non-dispatched callers); the scored-column sort is the
// legacy comparator std::sort, deliberately *not* the radix pipeline, so the
// forced-scalar differential compares two genuinely independent sort
// algorithms (see DESIGN.md).

#ifndef REGCLUSTER_UTIL_SIMD_KERNELS_SCALAR_H_
#define REGCLUSTER_UTIL_SIMD_KERNELS_SCALAR_H_

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "util/bitset.h"
#include "util/simd/dispatch.h"

namespace regcluster {
namespace util {
namespace simd {
namespace scalar {

inline void DivideColumns(double* h, const double* denom, int n) {
  for (int i = 0; i < n; ++i) h[i] /= denom[i];
}

inline void GatherScored(const GatherScoredArgs& args, int n, const int* idx,
                         int* out_gene, double* out_denom, double* out_h) {
  for (int k = 0; k < n; ++k) {
    const int i = idx[k];
    out_gene[k] = args.genes[i];
    out_denom[k] = args.denoms[i];
    out_h[k] = args.matrix[args.row_off[i] + args.cand] - args.bases[i];
  }
}

inline void SortScored(const double* h, const int* gene, int split, int total,
                       int* order, double* sorted_h, SortScratch* scratch) {
  (void)split;
  (void)scratch;
  std::iota(order, order + total, 0);
  std::sort(order, order + total, [&](int a, int b) {
    if (h[a] != h[b]) return h[a] < h[b];
    return gene[a] < gene[b];
  });
  // The sorted column goes through the key round trip here too, so every
  // level's sorted_h is bit-identical (-0.0 canonicalized to +0.0).
  for (int i = 0; i < total; ++i) {
    sorted_h[i] = InverseOrderKey(OrderKey(h[order[i]]));
  }
}

}  // namespace scalar
}  // namespace simd
}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_SIMD_KERNELS_SCALAR_H_
