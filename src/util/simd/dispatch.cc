#include "util/simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/simd/kernels_avx2.h"
#include "util/simd/kernels_neon.h"
#include "util/simd/kernels_scalar.h"

namespace regcluster {
namespace util {
namespace simd {
namespace {

constexpr SimdOps kScalarOps = {
    Level::kScalar,
    &scalar::DivideColumns,
    &util::AndWords,
    &util::OrWordsInto,
    &util::CopyWords,
    &util::AndNotMaskPopcount,
    &scalar::GatherScored,
    &scalar::SortScored,
};

/// Table for an *available* level; null when the level is not compiled in.
const SimdOps* TableFor(Level level) {
  switch (level) {
    case Level::kScalar:
      return &kScalarOps;
    case Level::kAvx2:
#if defined(REGCLUSTER_HAVE_AVX2)
      return &GetAvx2Ops();
#else
      return nullptr;
#endif
    case Level::kNeon:
#if defined(REGCLUSTER_HAVE_NEON)
      return &GetNeonOps();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

/// The resolved table; null until the first Ops()/SetLevel() call.
std::atomic<const SimdOps*> g_ops{nullptr};

/// First-use resolution: honor REGCLUSTER_SIMD when it names an available
/// level, warn and fall back to auto-detection otherwise.  Two threads
/// racing here compute the same answer, so the benign double-store is fine.
const SimdOps* Resolve() {
  if (const char* env = std::getenv("REGCLUSTER_SIMD");
      env != nullptr && *env != '\0') {
    const auto parsed = ParseLevel(env);
    if (parsed.ok() && LevelAvailable(*parsed)) {
      return TableFor(*parsed);
    }
    std::fprintf(stderr,
                 "[regcluster] REGCLUSTER_SIMD=%s is not a usable kernel "
                 "level on this build/CPU; using auto-detection\n",
                 env);
  }
  return TableFor(DetectBestLevel());
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "unknown";
}

StatusOr<Level> ParseLevel(const std::string& name) {
  if (name == "auto") return DetectBestLevel();
  if (name == "scalar") return Level::kScalar;
  if (name == "avx2") return Level::kAvx2;
  if (name == "neon") return Level::kNeon;
  return Status::InvalidArgument("unknown SIMD level \"" + name +
                                 "\" (expected auto, scalar, avx2 or neon)");
}

Level DetectBestLevel() {
#if defined(REGCLUSTER_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
#if defined(REGCLUSTER_HAVE_NEON)
  return Level::kNeon;
#endif
  return Level::kScalar;
}

bool LevelAvailable(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
#if defined(REGCLUSTER_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kNeon:
#if defined(REGCLUSTER_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

const SimdOps& Ops() {
  const SimdOps* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    ops = Resolve();
    g_ops.store(ops, std::memory_order_release);
  }
  return *ops;
}

Level CurrentLevel() { return Ops().level; }

Status SetLevel(Level level) {
  if (!LevelAvailable(level)) {
    return Status::FailedPrecondition(
        std::string("SIMD level \"") + LevelName(level) +
        "\" is not available on this build/CPU");
  }
  g_ops.store(TableFor(level), std::memory_order_release);
  return Status::OK();
}

Status ApplySimdFlag(const std::string& name) {
  const auto level = ParseLevel(name);
  if (!level.ok()) return level.status();
  return SetLevel(*level);
}

}  // namespace simd
}  // namespace util
}  // namespace regcluster
