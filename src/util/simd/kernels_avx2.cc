// AVX2 implementations of the SimdOps kernels.  The ONLY translation unit
// compiled with -mavx2 (per-TU flag isolation; src/util/CMakeLists.txt), so
// every function here must be reached through the dispatch table and never
// from baseline code.
//
// Bit-identity contract: integer kernels are exact by construction;
// floating-point kernels use only IEEE-exact operations (vdivpd, vsubpd --
// correctly rounded, no FMA, no reassociation), so their results equal the
// scalar reference bit for bit.  The sort and the gather are the portable
// implementations (the fused radix pipeline and the scalar loop): measured
// head-to-head on this level's target cores, hardware gathers lose to
// scalar loads at the miner's column sizes, so "AVX2" for those entries
// means "the fastest kernel available when AVX2 is present".

#include "util/simd/kernels_avx2.h"

#if defined(REGCLUSTER_HAVE_AVX2)

#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "util/simd/radix_sort.h"

namespace regcluster {
namespace util {
namespace simd {
namespace {

void DivideColumnsAvx2(double* h, const double* denom, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(h + i, _mm256_div_pd(_mm256_loadu_pd(h + i),
                                          _mm256_loadu_pd(denom + i)));
  }
  for (; i < n; ++i) h[i] /= denom[i];
}

void AndWordsAvx2(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                  int words) {
  int w = 0;
  for (; w + 4 <= words; w += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + w),
        _mm256_and_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w))));
  }
  for (; w < words; ++w) dst[w] = a[w] & b[w];
}

void OrWordsIntoAvx2(uint64_t* dst, const uint64_t* src, int words) {
  int w = 0;
  for (; w + 4 <= words; w += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + w),
        _mm256_or_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w))));
  }
  for (; w < words; ++w) dst[w] |= src[w];
}

void CopyWordsAvx2(uint64_t* dst, const uint64_t* src, int words) {
  int w = 0;
  for (; w + 4 <= words; w += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + w),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w)));
  }
  for (; w < words; ++w) dst[w] = src[w];
}

int64_t AndNotMaskPopcountAvx2(const uint64_t* a, const uint64_t* b,
                               const uint64_t* mask, int words) {
  // AVX2 has no vector popcount; combine the row vector-wide, count with the
  // scalar popcnt unit (the combine is the memory-bound part for wide rows).
  int64_t count = 0;
  int w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_andnot_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w))),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + w)));
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
    count += std::popcount(lanes[0]) + std::popcount(lanes[1]) +
             std::popcount(lanes[2]) + std::popcount(lanes[3]);
  }
  for (; w < words; ++w) count += std::popcount(a[w] & ~b[w] & mask[w]);
  return count;
}

/// Deliberately the scalar loop: the vgatherdpd/vpgatherdq version lost to
/// it head-to-head on server Xeons (BM_FilterKernel, ~17% at the miner's
/// typical n=80) -- hardware gathers issue one load uop per lane plus index
/// shuffles, while the scalar loop's loads pipeline freely and the stores
/// autovectorize.  Kept as its own symbol so a future core where gathers
/// win can bring the intrinsics back without touching the table layout.
void GatherScoredAvx2(const GatherScoredArgs& args, int n, const int* idx,
                      int* out_gene, double* out_denom, double* out_h) {
  for (int k = 0; k < n; ++k) {
    const int i = idx[k];
    out_gene[k] = args.genes[i];
    out_denom[k] = args.denoms[i];
    out_h[k] = args.matrix[args.row_off[i] + args.cand] - args.bases[i];
  }
}

/// The sort is the fused-scalar radix pipeline: its single merge+key pass
/// reads each score exactly once, which beats a separate vector key-build
/// gather pass (hardware gathers on current x86 cores are no faster than
/// scalar loads; see DESIGN.md).
void SortScoredAvx2(const double* h, const int* gene, int split, int total,
                    int* order, double* sorted_h, SortScratch* scratch) {
  RadixSortScored(h, gene, split, total, order, sorted_h, scratch);
}

constexpr SimdOps kAvx2Ops = {
    Level::kAvx2,
    &DivideColumnsAvx2,
    &AndWordsAvx2,
    &OrWordsIntoAvx2,
    &CopyWordsAvx2,
    &AndNotMaskPopcountAvx2,
    &GatherScoredAvx2,
    &SortScoredAvx2,
};

}  // namespace

const SimdOps& GetAvx2Ops() { return kAvx2Ops; }

}  // namespace simd
}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_HAVE_AVX2
