// NEON implementations of the SimdOps kernels (AArch64).  Mirrors the AVX2
// TU at 128-bit width; NEON has no gather, so the scored-column gather stays
// a scalar loop and the sort vectorizes nothing but still runs the radix
// pipeline (its win over the comparator sort is algorithmic, not
// ISA-specific).  Bit-identity contract as in dispatch.h: integer ops exact,
// floating point restricted to IEEE-exact vdivq/vsubq.

#include "util/simd/kernels_neon.h"

#if defined(REGCLUSTER_HAVE_NEON)

#include <arm_neon.h>

#include <bit>
#include <cstdint>

#include "util/simd/radix_sort.h"

namespace regcluster {
namespace util {
namespace simd {
namespace {

void DivideColumnsNeon(double* h, const double* denom, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(h + i, vdivq_f64(vld1q_f64(h + i), vld1q_f64(denom + i)));
  }
  for (; i < n; ++i) h[i] /= denom[i];
}

void AndWordsNeon(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                  int words) {
  int w = 0;
  for (; w + 2 <= words; w += 2) {
    vst1q_u64(dst + w, vandq_u64(vld1q_u64(a + w), vld1q_u64(b + w)));
  }
  for (; w < words; ++w) dst[w] = a[w] & b[w];
}

void OrWordsIntoNeon(uint64_t* dst, const uint64_t* src, int words) {
  int w = 0;
  for (; w + 2 <= words; w += 2) {
    vst1q_u64(dst + w, vorrq_u64(vld1q_u64(dst + w), vld1q_u64(src + w)));
  }
  for (; w < words; ++w) dst[w] |= src[w];
}

void CopyWordsNeon(uint64_t* dst, const uint64_t* src, int words) {
  int w = 0;
  for (; w + 2 <= words; w += 2) {
    vst1q_u64(dst + w, vld1q_u64(src + w));
  }
  for (; w < words; ++w) dst[w] = src[w];
}

int64_t AndNotMaskPopcountNeon(const uint64_t* a, const uint64_t* b,
                               const uint64_t* mask, int words) {
  int64_t count = 0;
  int w = 0;
  for (; w + 2 <= words; w += 2) {
    const uint64x2_t v = vandq_u64(
        vbicq_u64(vld1q_u64(a + w), vld1q_u64(b + w)), vld1q_u64(mask + w));
    // vcntq counts per byte; pairwise-add up to per-lane totals.
    const uint8x16_t bits = vcntq_u8(vreinterpretq_u8_u64(v));
    count += vaddvq_u8(bits);
  }
  for (; w < words; ++w) count += std::popcount(a[w] & ~b[w] & mask[w]);
  return count;
}

void GatherScoredNeon(const GatherScoredArgs& args, int n, const int* idx,
                      int* out_gene, double* out_denom, double* out_h) {
  for (int k = 0; k < n; ++k) {
    const int i = idx[k];
    out_gene[k] = args.genes[i];
    out_denom[k] = args.denoms[i];
    out_h[k] = args.matrix[args.row_off[i] + args.cand] - args.bases[i];
  }
}

void SortScoredNeon(const double* h, const int* gene, int split, int total,
                    int* order, double* sorted_h, SortScratch* scratch) {
  RadixSortScored(h, gene, split, total, order, sorted_h, scratch);
}

constexpr SimdOps kNeonOps = {
    Level::kNeon,
    &DivideColumnsNeon,
    &AndWordsNeon,
    &OrWordsIntoNeon,
    &CopyWordsNeon,
    &AndNotMaskPopcountNeon,
    &GatherScoredNeon,
    &SortScoredNeon,
};

}  // namespace

const SimdOps& GetNeonOps() { return kNeonOps; }

}  // namespace simd
}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_HAVE_NEON
