// ARM NEON kernel set.  Implementation in kernels_neon.cc, compiled only on
// AArch64 targets (REGCLUSTER_HAVE_NEON, src/util/CMakeLists.txt).  NEON is
// baseline for AArch64, so no runtime CPU probe is needed -- compile-time
// presence is availability.

#ifndef REGCLUSTER_UTIL_SIMD_KERNELS_NEON_H_
#define REGCLUSTER_UTIL_SIMD_KERNELS_NEON_H_

#include "util/simd/dispatch.h"

namespace regcluster {
namespace util {
namespace simd {

#if defined(REGCLUSTER_HAVE_NEON)
/// The NEON SimdOps table.
const SimdOps& GetNeonOps();
#endif

}  // namespace simd
}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_SIMD_KERNELS_NEON_H_
