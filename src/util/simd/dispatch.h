// Runtime-dispatched SIMD kernel layer for the mining hot path.
//
// The miner's per-node cost is dominated by a handful of dense passes --
// the scored-column sort, the coherence divide, the candidate gather and the
// bitmap word loops -- and each has one entry in the SimdOps table below.
// The table is selected once per process (lazily, on first use):
//
//   * x86-64: AVX2 when the CPU reports it (cpuid via
//     __builtin_cpu_supports), else scalar;
//   * AArch64: NEON (baseline for the ISA);
//   * anything else: portable scalar.
//
// The choice can be pinned with the REGCLUSTER_SIMD environment variable or
// the `--simd=auto|scalar|avx2|neon` CLI flag (both route through
// SetLevel()).  Every kernel's contract is *bit-identical output* to the
// scalar reference -- integer ops exactly, floating point restricted to
// IEEE-exact operations (divide, subtract; never FMA or reassociation) --
// so the mined output is byte-for-byte the same at every level.  The
// forced-scalar differential tests and CI job hold the layer to that
// contract (see DESIGN.md section "SIMD kernel layer").
//
// Layering: this directory depends only on util/bitset.h (the scalar word
// loops are the reference implementations).  The AVX2 kernels live in their
// own translation unit compiled with -mavx2 (see src/util/CMakeLists.txt);
// nothing outside that TU is built with extended ISA flags, so the binary
// stays runnable on any x86-64 machine.

#ifndef REGCLUSTER_UTIL_SIMD_DISPATCH_H_
#define REGCLUSTER_UTIL_SIMD_DISPATCH_H_

#include <cstdint>
#include <string>

#include "util/bitset.h"
#include "util/simd/radix_sort.h"
#include "util/status.h"

namespace regcluster {
namespace util {
namespace simd {

/// Kernel sets, ordered by preference on their home ISA.  Values are stable
/// (exported as the regcluster_simd_level metric).
enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// "scalar" / "avx2" / "neon".
const char* LevelName(Level level);

/// Parses a level name as accepted by --simd / REGCLUSTER_SIMD.  "auto"
/// resolves to DetectBestLevel().  InvalidArgument on anything else.
StatusOr<Level> ParseLevel(const std::string& name);

/// Arguments of the scored-column gather (miner FilterCandidate): for each
/// surviving member index i in `idx`, the kernel emits the member's gene id,
/// its cached denominator, and the coherence numerator
/// matrix[row_off[i] + cand] - bases[i].  `row_off` carries each member's
/// precomputed gene-major row offset (gene * num_conditions).  Head
/// positions are deliberately NOT gathered here: ~97% of extensions are
/// coherence-pruned and never need them, so the miner looks positions up
/// lazily when a window actually spawns a child.
struct GatherScoredArgs {
  const int* genes = nullptr;      ///< per member: gene id
  const double* denoms = nullptr;  ///< per member: cached denominator
  const double* bases = nullptr;   ///< per member: row value at the chain head
  const int64_t* row_off = nullptr;  ///< per member: gene * num_conditions
  const double* matrix = nullptr;  ///< row-major expression values
  int cand = 0;                    ///< the candidate condition
};

/// One resolved kernel set.  All functions are non-null.
struct SimdOps {
  Level level;

  /// h[i] /= denom[i] for i in [0, n).  IEEE divide: bit-identical across
  /// levels.
  void (*divide_columns)(double* h, const double* denom, int n);

  /// dst[w] = a[w] & b[w]; dst may alias a or b.
  void (*and_words)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                    int words);

  /// dst[w] |= src[w].
  void (*or_words_into)(uint64_t* dst, const uint64_t* src, int words);

  /// dst[w] = src[w]; rows must not overlap.
  void (*copy_words)(uint64_t* dst, const uint64_t* src, int words);

  /// popcount of a & ~b & mask over the row.
  int64_t (*andnot_mask_popcount)(const uint64_t* a, const uint64_t* b,
                                  const uint64_t* mask, int words);

  /// Scored-column gather; appends nothing, writes exactly n entries of each
  /// output column.
  void (*gather_scored)(const GatherScoredArgs& args, int n, const int* idx,
                        int* out_gene, double* out_denom, double* out_h);

  /// Index-sort of a scored column: writes into `order` the permutation of
  /// [0, total) ordered by (h asc, gene asc) and into `sorted_h` the score
  /// column in that order, zero-sign-canonicalized through the key round
  /// trip (see InverseOrderKey; every level emits bit-identical sorted_h).
  /// Preconditions as documented at RadixSortScored.  The scalar level runs
  /// the reference comparator std::sort; accelerated levels run the stable
  /// LSD radix pipeline -- identical output either way, which is what the
  /// differential gate checks.
  void (*sort_scored)(const double* h, const int* gene, int split, int total,
                      int* order, double* sorted_h, SortScratch* scratch);
};

/// The process-wide kernel set.  First call resolves it: REGCLUSTER_SIMD if
/// set and valid (invalid values warn on stderr and fall back to auto), else
/// the best level the CPU supports.  The returned reference is stable until
/// the next SetLevel(); hot paths should cache the pointer per run (the
/// miner caches it in Prepare()).
const SimdOps& Ops();

/// The level Ops() currently resolves to.
Level CurrentLevel();

/// Best level compiled in *and* supported by this CPU.
Level DetectBestLevel();

/// True when `level` is compiled in and supported by this CPU.  kScalar is
/// always available.
bool LevelAvailable(Level level);

/// Pins the process-wide kernel set.  FailedPrecondition when the level is
/// not available on this build/CPU (the current set is left unchanged).
Status SetLevel(Level level);

/// ParseLevel + SetLevel: one call for CLI plumbing ("auto" re-detects).
Status ApplySimdFlag(const std::string& name);

/// Rows narrower than this many words run the inlined scalar word loop
/// instead of dispatching: an indirect call per one- or two-word row costs
/// more than it vectorizes (a 40-condition matrix has 1-word rows), and the
/// bitwise kernels are exact at every level, so the shortcut cannot change
/// output.  The Auto wrappers below apply it; hot paths with a cached
/// SimdOps pointer use them for the per-member row operations.
inline constexpr int kWideRowWords = 8;

inline void AndWordsAuto(const SimdOps& ops, uint64_t* dst, const uint64_t* a,
                         const uint64_t* b, int words) {
  if (words >= kWideRowWords) {
    ops.and_words(dst, a, b, words);
  } else {
    util::AndWords(dst, a, b, words);
  }
}

inline void OrWordsIntoAuto(const SimdOps& ops, uint64_t* dst,
                            const uint64_t* src, int words) {
  if (words >= kWideRowWords) {
    ops.or_words_into(dst, src, words);
  } else {
    util::OrWordsInto(dst, src, words);
  }
}

inline void CopyWordsAuto(const SimdOps& ops, uint64_t* dst,
                          const uint64_t* src, int words) {
  if (words >= kWideRowWords) {
    ops.copy_words(dst, src, words);
  } else {
    util::CopyWords(dst, src, words);
  }
}

inline int64_t AndNotMaskPopcountAuto(const SimdOps& ops, const uint64_t* a,
                                      const uint64_t* b, const uint64_t* mask,
                                      int words) {
  if (words >= kWideRowWords) {
    return ops.andnot_mask_popcount(a, b, mask, words);
  }
  return util::AndNotMaskPopcount(a, b, mask, words);
}

}  // namespace simd
}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_SIMD_DISPATCH_H_
