// AVX2 kernel set.  The implementation lives in kernels_avx2.cc, the only
// translation unit in the tree compiled with -mavx2 (per-TU flag isolation:
// src/util/CMakeLists.txt).  This header stays includable everywhere -- it
// declares the accessor and nothing else, so no AVX2 code can leak into TUs
// built for baseline x86-64.  REGCLUSTER_HAVE_AVX2 is defined by CMake iff
// the TU is part of the build (x86-64 target, compiler supports -mavx2);
// callers must still check __builtin_cpu_supports("avx2") at runtime, which
// dispatch.cc does via LevelAvailable().

#ifndef REGCLUSTER_UTIL_SIMD_KERNELS_AVX2_H_
#define REGCLUSTER_UTIL_SIMD_KERNELS_AVX2_H_

#include "util/simd/dispatch.h"

namespace regcluster {
namespace util {
namespace simd {

#if defined(REGCLUSTER_HAVE_AVX2)
/// The AVX2 SimdOps table.  Call only when LevelAvailable(Level::kAvx2).
const SimdOps& GetAvx2Ops();
#endif

}  // namespace simd
}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_SIMD_KERNELS_AVX2_H_
