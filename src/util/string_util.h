// Small string helpers used by the TSV/CSV readers and output formatters.

#ifndef REGCLUSTER_UTIL_STRING_UTIL_H_
#define REGCLUSTER_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace regcluster {
namespace util {

/// Splits `s` on `delim`, keeping empty fields.  "a,,b" -> {"a", "", "b"}.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a double, rejecting trailing garbage.  Accepts "NA", "NaN", "nan",
/// "?" and the empty string as missing values, returned as quiet NaN.
StatusOr<double> ParseDouble(std::string_view s);

/// Parses a non-negative integer.
StatusOr<int64_t> ParseInt(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_STRING_UTIL_H_
