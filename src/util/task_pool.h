// A reusable work-stealing thread pool for coarse-grained, dynamically
// discovered tasks (the miner's per-subtree search units).
//
// Design:
//   * Fixed set of worker threads, created once in the constructor.
//   * One deque per worker.  A worker pushes and pops at the *back* of its
//     own deque (LIFO: newly spawned subtasks run first, keeping caches
//     warm); idle workers steal from the *front* of a victim's deque (FIFO:
//     thieves take the oldest -- usually largest -- pending task).
//   * Victims are probed starting from a per-thief xorshift-random index so
//     thieves do not convoy on worker 0.
//   * Tasks may Submit() further tasks from inside a running task; this is
//     the normal way a search task exposes child subtrees for stealing.
//   * Wait() blocks until every task -- including tasks submitted by tasks
//     -- has completed; afterwards the pool is reusable for another batch.
//
// Determinism contract: the pool makes *no* ordering guarantees.  Callers
// that need deterministic results must write each task's output to its own
// pre-assigned slot and merge the slots in a canonical order after Wait()
// (see core::RegClusterMiner for the pattern).
//
// The implementation uses one mutex per deque plus a pool-wide mutex that is
// only touched when workers go idle or Wait() blocks, so the busy path is a
// single uncontended lock per task transfer.  It contains no lock-free
// cleverness on purpose: tasks here are milliseconds-coarse, and the simple
// scheme is easy to prove TSAN-clean (CI runs it under -fsanitize=thread).

#ifndef REGCLUSTER_UTIL_TASK_POOL_H_
#define REGCLUSTER_UTIL_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace regcluster {
namespace util {

class TaskPool {
 public:
  /// A task receives the index (in [0, num_workers())) of the worker that
  /// runs it, so callers can maintain per-worker scratch state.
  using Task = std::function<void(int worker)>;

  /// Starts `num_threads` workers; 0 selects std::thread::hardware_concurrency
  /// (at least 1).  The pool is usable immediately.
  explicit TaskPool(int num_threads);

  /// Drains outstanding tasks (equivalent to Wait()), then stops and joins
  /// all workers.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task.  Callable from any thread.  From inside a task running
  /// on this pool, the task lands at the back of the current worker's own
  /// deque; from outside, deques are fed round-robin.
  void Submit(Task task);

  /// Blocks until all submitted tasks (including transitively submitted
  /// ones) have finished.  Multiple threads may Wait() concurrently.
  void Wait();

  /// Drops every queued-but-not-yet-started task and returns how many were
  /// dropped.  Running tasks are unaffected; once they (and any tasks they
  /// submit afterwards) finish, Wait() returns and idle workers park on the
  /// work condition variable as usual.  Dropped tasks are destroyed without
  /// running, so this is only safe for tasks whose *absence* the caller can
  /// detect and tolerate (the miner records per-task completion and treats a
  /// missing task as abandoned work).  Callable from any thread, idempotent,
  /// and the pool stays reusable for a fresh batch afterwards.
  int64_t CancelPending();

  /// Index of the pool worker executing the calling thread, or -1 when the
  /// caller is not one of this pool's workers.
  int current_worker() const;

  /// Telemetry (relaxed atomics, monotone over the pool's lifetime).  These
  /// describe *scheduling*, not results: values depend on thread timing and
  /// are only comparable between runs statistically.  Read them after Wait()
  /// for a settled snapshot.
  int64_t total_steals() const {
    return steals_.load(std::memory_order_relaxed);
  }
  /// Largest single-deque depth observed at any Submit().
  int64_t queue_depth_high_water() const {
    return queue_high_water_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(int index);
  bool PopOwn(int index, Task* out);
  bool StealFrom(int thief, Task* out);
  void RunTask(Task* task, int worker);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  /// Tasks submitted but not yet finished.
  std::atomic<int64_t> pending_{0};
  /// Round-robin cursor for submissions from non-worker threads.
  std::atomic<uint64_t> external_cursor_{0};
  /// Successful StealFrom() transfers (telemetry only).
  std::atomic<int64_t> steals_{0};
  /// High-water mark of any single deque's depth (telemetry only).
  std::atomic<int64_t> queue_high_water_{0};

  /// Pool-wide state below is only touched on the idle/blocked paths.
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signalled on Submit
  std::condition_variable done_cv_;   ///< signalled when pending_ hits 0
  uint64_t work_epoch_ = 0;           ///< bumped (under mu_) on every Submit
  bool stop_ = false;
};

}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_TASK_POOL_H_
