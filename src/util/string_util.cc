#include "util/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace regcluster {
namespace util {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  const char* ws = " \t\r\n\v\f";
  const size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return std::string_view();
  const size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

StatusOr<double> ParseDouble(std::string_view s) {
  const std::string_view t = Trim(s);
  if (t.empty() || t == "NA" || t == "NaN" || t == "nan" || t == "?") {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const std::string buf(t);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of range: '" + buf + "'");
  }
  return v;
}

StatusOr<int64_t> ParseInt(std::string_view s) {
  const std::string_view t = Trim(s);
  if (t.empty()) return Status::InvalidArgument("empty integer field");
  const std::string buf(t);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace util
}  // namespace regcluster
