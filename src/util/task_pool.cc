#include "util/task_pool.h"

#include <algorithm>
#include <utility>

namespace regcluster {
namespace util {
namespace {

/// Identifies the pool (and worker slot) owning the current thread, so
/// Submit() can tell worker-local pushes from external ones.
thread_local const TaskPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

/// Cheap per-thief xorshift64 for victim selection.  Randomness here only
/// affects load balance, never results.
uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

}  // namespace

TaskPool::TaskPool(int num_threads) {
  int n = num_threads;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n < 1) n = 1;
  }
  queues_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int TaskPool::current_worker() const {
  return tls_pool == this ? tls_worker : -1;
}

void TaskPool::Submit(Task task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  const int self = current_worker();
  const size_t slot =
      self >= 0 ? static_cast<size_t>(self)
                : static_cast<size_t>(external_cursor_.fetch_add(
                      1, std::memory_order_relaxed)) %
                      queues_.size();
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mu);
    queues_[slot]->tasks.push_back(std::move(task));
    depth = queues_[slot]->tasks.size();
  }
  int64_t hw = queue_high_water_.load(std::memory_order_relaxed);
  while (static_cast<int64_t>(depth) > hw &&
         !queue_high_water_.compare_exchange_weak(
             hw, static_cast<int64_t>(depth), std::memory_order_relaxed)) {
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++work_epoch_;
  }
  work_cv_.notify_one();
}

bool TaskPool::PopOwn(int index, Task* out) {
  WorkerQueue& q = *queues_[static_cast<size_t>(index)];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  *out = std::move(q.tasks.back());
  q.tasks.pop_back();
  return true;
}

bool TaskPool::StealFrom(int thief, Task* out) {
  const size_t n = queues_.size();
  if (n <= 1) return false;
  thread_local uint64_t rng = 0;
  if (rng == 0) rng = 0x9e3779b97f4a7c15ULL ^ (static_cast<uint64_t>(thief) + 1);
  const size_t start = static_cast<size_t>(NextRandom(&rng) % n);
  for (size_t probe = 0; probe < n; ++probe) {
    const size_t victim = (start + probe) % n;
    if (victim == static_cast<size_t>(thief)) continue;
    WorkerQueue& q = *queues_[victim];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    *out = std::move(q.tasks.front());
    q.tasks.pop_front();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void TaskPool::RunTask(Task* task, int worker) {
  (*task)(worker);
  *task = nullptr;  // release captures before signalling completion
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the batch: wake Wait()ers.  Taking the lock (even empty)
    // orders this notify against a waiter that just evaluated its predicate.
    { std::lock_guard<std::mutex> lock(mu_); }
    done_cv_.notify_all();
  }
}

void TaskPool::WorkerLoop(int index) {
  tls_pool = this;
  tls_worker = index;
  Task task;
  for (;;) {
    if (PopOwn(index, &task) || StealFrom(index, &task)) {
      RunTask(&task, index);
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t seen_epoch = work_epoch_;
    lock.unlock();
    // One more sweep after recording the epoch: a task submitted after this
    // point bumps the epoch, so the wait predicate below cannot miss it.
    if (PopOwn(index, &task) || StealFrom(index, &task)) {
      RunTask(&task, index);
      continue;
    }
    lock.lock();
    work_cv_.wait(lock, [this, seen_epoch] {
      return stop_ || work_epoch_ != seen_epoch;
    });
    if (stop_) return;
  }
}

int64_t TaskPool::CancelPending() {
  // Move tasks out under each queue lock, destroy them outside it (a task's
  // captures may run nontrivial destructors), then settle the pending count
  // exactly as RunTask would have.
  std::vector<Task> dropped;
  for (auto& queue : queues_) {
    std::lock_guard<std::mutex> lock(queue->mu);
    while (!queue->tasks.empty()) {
      dropped.push_back(std::move(queue->tasks.back()));
      queue->tasks.pop_back();
    }
  }
  const int64_t count = static_cast<int64_t>(dropped.size());
  if (count == 0) return 0;
  dropped.clear();
  if (pending_.fetch_sub(count, std::memory_order_acq_rel) == count) {
    { std::lock_guard<std::mutex> lock(mu_); }
    done_cv_.notify_all();
  }
  return count;
}

void TaskPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace util
}  // namespace regcluster
