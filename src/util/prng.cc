#include "util/prng.h"

#include <cassert>
#include <cmath>

namespace regcluster {
namespace util {
namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Prng::Prng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Prng::Next64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Prng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Prng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Prng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t raw;
  do {
    raw = Next64();
  } while (raw >= limit);
  return lo + static_cast<int64_t>(raw % span);
}

double Prng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller on (0,1] uniforms.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Prng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Prng::Bernoulli(double p) { return NextDouble() < p; }

std::vector<int> Prng::SampleWithoutReplacement(int n, int k) {
  assert(0 <= k && k <= n);
  std::vector<int> out;
  out.reserve(static_cast<size_t>(k));
  // Knuth selection sampling: each i is selected with probability
  // (remaining needed) / (remaining available).
  int needed = k;
  for (int i = 0; i < n && needed > 0; ++i) {
    const int available = n - i;
    if (static_cast<double>(Next64() >> 11) * 0x1.0p-53 * available < needed) {
      out.push_back(i);
      --needed;
    }
  }
  return out;
}

}  // namespace util
}  // namespace regcluster
