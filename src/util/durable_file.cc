#include "util/durable_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace regcluster {
namespace util {

namespace {

// Software CRC32C table for the reflected Castagnoli polynomial, generated
// once at first use (thread-safe via static-local initialization).
const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

uint32_t LoadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

// Directory portion of `path` ("." when there is no separator), for the
// post-rename directory fsync.
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const uint32_t* table = Crc32cTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IoError("open failed for " + path + ": " +
                           std::strerror(errno));
  }
  std::string contents;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::IoError("read failed for " + path + ": " +
                             std::strerror(err));
    }
    if (n == 0) break;
    contents.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("open failed for " + tmp + ": " +
                           std::strerror(errno));
  }
  size_t off = 0;
  while (off < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError("write failed for " + tmp + ": " +
                             std::strerror(err));
    }
    off += static_cast<size_t>(n);
  }
  // File fsync BEFORE rename: the rename must never become visible while
  // the new contents are still only in the page cache.
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError("fsync failed for " + tmp + ": " +
                           std::strerror(err));
  }
  if (::close(fd) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    return Status::IoError("close failed for " + tmp + ": " +
                           std::strerror(err));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path + " failed: " +
                           std::strerror(err));
  }
  // Directory fsync AFTER rename: makes the new directory entry durable, so
  // a crash cannot roll the file back to the old contents after the caller
  // has been told the write succeeded.
  const std::string dir = DirName(path);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    // Some filesystems refuse fsync on directories; best effort is the
    // accepted practice (the rename itself is already atomic).
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

void AppendRecord(std::string* out, std::string_view payload) {
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU32(out, Crc32c(payload.data(), payload.size()));
  out->append(payload.data(), payload.size());
}

StatusOr<std::string_view> RecordReader::Next() {
  if (AtEnd()) {
    return Status::OutOfRange("no more records");
  }
  if (buffer_.size() - pos_ < 8) {
    return Status::Corruption("truncated record header at offset " +
                              std::to_string(pos_));
  }
  const char* p = buffer_.data() + pos_;
  uint32_t len = LoadU32(p);
  uint32_t stored_crc = LoadU32(p + 4);
  if (buffer_.size() - pos_ - 8 < len) {
    return Status::Corruption("truncated record payload at offset " +
                              std::to_string(pos_) + ": declared " +
                              std::to_string(len) + " bytes, " +
                              std::to_string(buffer_.size() - pos_ - 8) +
                              " available");
  }
  std::string_view payload(p + 8, len);
  uint32_t actual_crc = Crc32c(payload.data(), payload.size());
  if (actual_crc != stored_crc) {
    return Status::Corruption("record checksum mismatch at offset " +
                              std::to_string(pos_));
  }
  pos_ += 8 + static_cast<size_t>(len);
  return payload;
}

}  // namespace util
}  // namespace regcluster
