// Crash-safe file primitives: atomic-replace writes and CRC32C-framed
// record I/O.
//
// The durability contract is the standard one from write-ahead-logging
// systems: a file produced by `AtomicWriteFile` is, after any crash, either
// the complete new contents or the complete previous contents — never a
// truncated or interleaved mix.  This is achieved by writing to a temp file
// in the same directory, fsync'ing the file, rename(2)'ing over the target,
// and fsync'ing the directory so the rename itself is durable.
//
// On top of raw bytes, `AppendRecord` / `RecordReader` provide a framed
// record stream ([u32 length][u32 crc32c][payload]) whose reader detects
// torn writes and truncation: every malformed shape is rejected with a
// distinct `kCorruption` status, mirroring the matrix-store hardening
// (src/matrix/store.cc).  Checkpoint snapshots (src/io/checkpoint.h) are
// built from these two layers.

#ifndef REGCLUSTER_UTIL_DURABLE_FILE_H_
#define REGCLUSTER_UTIL_DURABLE_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace regcluster {
namespace util {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) over
/// `size` bytes.  Software table implementation; the framing layer's
/// integrity check, chosen over plain CRC32 for its better error-detection
/// properties on short records.  `seed` allows incremental composition:
/// Crc32c(b, nb, Crc32c(a, na)) == Crc32c(concat(a, b)).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

/// Reads the entire file at `path` into a string.  kNotFound when the file
/// does not exist; kIoError on any other failure.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Atomically replaces `path` with `contents`.
///
/// Writes to a fixed-name sibling temp file (`path` + ".tmp"), fsyncs it,
/// renames it over `path`, and fsyncs the containing directory.  After a
/// crash at any instant, `path` holds either the previous complete contents
/// or the new complete contents.  The fixed temp name means repeated
/// crashes never accumulate orphan temp files: the next write reuses (and
/// the rename consumes) the same name.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// Appends one framed record to `out`: [u32 payload length][u32 CRC32C of
/// payload][payload bytes].  All integers little-endian.
void AppendRecord(std::string* out, std::string_view payload);

/// Sequential reader over a buffer of `AppendRecord` frames.  Distinguishes
/// every malformed shape with its own kCorruption message so torn writes,
/// truncation, and bit flips are reported precisely:
///   - header extends past the buffer  -> "truncated record header"
///   - declared payload length overruns -> "truncated record payload"
///   - stored CRC != computed CRC       -> "record checksum mismatch"
class RecordReader {
 public:
  /// `buffer` must outlive the reader (records are returned as views).
  explicit RecordReader(std::string_view buffer) : buffer_(buffer) {}

  /// True when the reader is positioned at the end of the buffer (a clean
  /// stream ends exactly on a frame boundary).
  bool AtEnd() const { return pos_ == buffer_.size(); }

  /// Reads the next record, advancing past it.  kOutOfRange when `AtEnd()`;
  /// a distinct kCorruption per malformed shape (see class comment).
  StatusOr<std::string_view> Next();

  /// Bytes consumed so far (for error reporting offsets).
  size_t position() const { return pos_; }

 private:
  std::string_view buffer_;
  size_t pos_ = 0;
};

}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_DURABLE_FILE_H_
