// Minimal leveled logging to stderr.
//
// Usage:  REGCLUSTER_LOG(kInfo) << "mined " << n << " clusters";
// The default threshold is kWarning so library users are not spammed;
// benchmarks raise it to kInfo.

#ifndef REGCLUSTER_UTIL_LOGGING_H_
#define REGCLUSTER_UTIL_LOGGING_H_

#include <sstream>

namespace regcluster {
namespace util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that will actually be emitted.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel GetLogLevel();

/// One log statement; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace util
}  // namespace regcluster

#define REGCLUSTER_LOG(severity)                                     \
  ::regcluster::util::LogMessage(                                    \
      ::regcluster::util::LogLevel::severity, __FILE__, __LINE__)    \
      .stream()

#endif  // REGCLUSTER_UTIL_LOGGING_H_
