// Word-level helpers for flat uint64 bitsets.
//
// The core index stores many fixed-width bitmaps (one bit per condition)
// packed into rows of uint64 words; these free functions are the single
// place that knows the word width, so callers never hand-roll shift/mask
// arithmetic.  All rows are length WordsForBits(n); bits >= n are zero by
// construction and every operation here preserves that invariant (the only
// writer of all-ones rows, FillOnes, masks the tail word).

#ifndef REGCLUSTER_UTIL_BITSET_H_
#define REGCLUSTER_UTIL_BITSET_H_

#include <bit>
#include <cstdint>

namespace regcluster {
namespace util {

inline constexpr int kBitsPerWord = 64;

/// Number of uint64 words needed to hold `bits` bits (>= 0).
inline constexpr int WordsForBits(int bits) {
  return (bits + kBitsPerWord - 1) / kBitsPerWord;
}

inline void SetBit(uint64_t* words, int bit) {
  words[bit >> 6] |= uint64_t{1} << (bit & 63);
}

inline bool TestBit(const uint64_t* words, int bit) {
  return (words[bit >> 6] >> (bit & 63)) & 1u;
}

/// Sets the first `bits` bits and clears any tail bits of the last word.
inline void FillOnes(uint64_t* words, int bits) {
  const int full = bits >> 6;
  for (int w = 0; w < full; ++w) words[w] = ~uint64_t{0};
  if (bits & 63) words[full] = (uint64_t{1} << (bits & 63)) - 1;
}

/// Calls `fn(bit)` for every set bit of `words[0..num_words)`, ascending.
template <typename Fn>
inline void ForEachSetBit(const uint64_t* words, int num_words, Fn&& fn) {
  for (int w = 0; w < num_words; ++w) {
    uint64_t word = words[w];
    while (word) {
      fn(w * kBitsPerWord + std::countr_zero(word));
      word &= word - 1;  // clear lowest set bit
    }
  }
}

// Word-loop primitives of the index hot path.  These are the portable scalar
// reference implementations; util/simd/ dispatches to vector versions of the
// same contracts, and the forced-scalar differential gate compares the two
// (see DESIGN.md).  Keeping the scalar bodies here -- with no simd include --
// means every non-dispatched caller shares one source of truth.

/// dst[w] = a[w] & b[w].  `dst` may alias `a` or `b`.
inline void AndWords(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                     int words) {
  for (int w = 0; w < words; ++w) dst[w] = a[w] & b[w];
}

/// dst[w] |= src[w].
inline void OrWordsInto(uint64_t* dst, const uint64_t* src, int words) {
  for (int w = 0; w < words; ++w) dst[w] |= src[w];
}

/// dst[w] = src[w].  Rows must not overlap.
inline void CopyWords(uint64_t* dst, const uint64_t* src, int words) {
  for (int w = 0; w < words; ++w) dst[w] = src[w];
}

/// Population count of a[w] & ~b[w] & mask[w] over the row (the pruning-2
/// drop counter of miner PrepareNode: regulation-linked but MinC-cut).
inline int64_t AndNotMaskPopcount(const uint64_t* a, const uint64_t* b,
                                  const uint64_t* mask, int words) {
  int64_t count = 0;
  for (int w = 0; w < words; ++w) count += std::popcount(a[w] & ~b[w] & mask[w]);
  return count;
}

}  // namespace util
}  // namespace regcluster

#endif  // REGCLUSTER_UTIL_BITSET_H_
