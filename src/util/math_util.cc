#include "util/math_util.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace regcluster {
namespace util {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  const size_t n = v.size();
  if (n < 2) return 0.0;
  const double m = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return ss / static_cast<double>(n - 1);
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  assert(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double LogFactorial(int64_t n) {
  assert(n >= 0);
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(int64_t n, int64_t k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double HypergeomPmf(int64_t k, int64_t population, int64_t successes,
                    int64_t draws) {
  const double log_p = LogBinomial(successes, k) +
                       LogBinomial(population - successes, draws - k) -
                       LogBinomial(population, draws);
  if (std::isinf(log_p)) return 0.0;
  return std::exp(log_p);
}

double HypergeomUpperTail(int64_t k, int64_t population, int64_t successes,
                          int64_t draws) {
  if (k <= 0) return 1.0;
  const int64_t k_max = std::min(successes, draws);
  if (k > k_max) return 0.0;
  // Sum in log space from the mode outwards would be fancier; the direct sum
  // over at most min(successes, draws) terms is exact enough and cheap for
  // genome-scale populations (tens of thousands).
  double total = 0.0;
  for (int64_t i = k; i <= k_max; ++i) {
    total += HypergeomPmf(i, population, successes, draws);
  }
  return std::min(1.0, total);
}

bool FitShiftScale(const std::vector<double>& x, const std::vector<double>& y,
                   double* s1, double* s2) {
  assert(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return false;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  if (sxx == 0.0) return false;
  *s1 = sxy / sxx;
  *s2 = my - *s1 * mx;
  return true;
}

double MaxAbsResidual(const std::vector<double>& x,
                      const std::vector<double>& y, double s1, double s2) {
  assert(x.size() == y.size());
  double worst = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, std::fabs(y[i] - (s1 * x[i] + s2)));
  }
  return worst;
}

}  // namespace util
}  // namespace regcluster
