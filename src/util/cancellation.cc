#include "util/cancellation.h"

#include <limits>

namespace regcluster {
namespace util {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kMemoryBudget:
      return "memory_budget";
    case StopReason::kNodeBudget:
      return "node_budget";
    case StopReason::kClusterBudget:
      return "cluster_budget";
  }
  return "unknown";
}

void CancellationToken::Cancel(StopReason reason) {
  if (reason == StopReason::kNone) return;
  int32_t expected = static_cast<int32_t>(StopReason::kNone);
  reason_.compare_exchange_strong(expected, static_cast<int32_t>(reason),
                                  std::memory_order_relaxed,
                                  std::memory_order_relaxed);
}

void CancellationToken::CancelAfterPolls(int64_t k) {
  polls_until_cancel_.store(k, std::memory_order_relaxed);
}

bool CancellationToken::Poll() {
  if (polls_until_cancel_.load(std::memory_order_relaxed) >= 0) {
    // fetch_sub returns the pre-decrement value: the k-th poll observes 1.
    if (polls_until_cancel_.fetch_sub(1, std::memory_order_relaxed) == 1) {
      Cancel(StopReason::kCancelled);
    }
  }
  return cancelled();
}

DeadlineSource DeadlineSource::AfterMillis(double ms) {
  DeadlineSource source;
  source.active_ = true;
  source.limit_ms_ = ms > 0 ? ms : 0.0;
  source.timer_.Reset();
  return source;
}

double DeadlineSource::RemainingMillis() const {
  if (!active_) return std::numeric_limits<double>::infinity();
  const double left = limit_ms_ - timer_.ElapsedMillis();
  return left > 0 ? left : 0.0;
}

BudgetGuard::BudgetGuard(const Limits& limits, int num_slots)
    : limits_(limits), slot_bytes_(num_slots > 0 ? num_slots : 1) {
  if (limits_.deadline_ms >= 0) {
    deadline_ = DeadlineSource::AfterMillis(limits_.deadline_ms);
  }
  for (auto& bytes : slot_bytes_) bytes.store(0, std::memory_order_relaxed);
}

StopReason BudgetGuard::reason() const {
  const StopReason hard = hard_reason();
  if (hard != StopReason::kNone) return hard;
  return static_cast<StopReason>(soft_.load(std::memory_order_relaxed));
}

void BudgetGuard::Trip(StopReason reason) {
  if (reason == StopReason::kNone) return;
  std::atomic<int32_t>& cell = IsHardStop(reason) ? hard_ : soft_;
  int32_t expected = static_cast<int32_t>(StopReason::kNone);
  cell.compare_exchange_strong(expected, static_cast<int32_t>(reason),
                               std::memory_order_relaxed,
                               std::memory_order_relaxed);
}

StopReason BudgetGuard::Poll(int slot, int64_t slot_bytes) {
  polls_.fetch_add(1, std::memory_order_relaxed);
  if (limits_.token != nullptr && limits_.token->Poll()) {
    Trip(limits_.token->reason());
  }
  if (deadline_.Expired()) Trip(StopReason::kDeadline);
  if (slot >= 0 && slot < static_cast<int>(slot_bytes_.size())) {
    slot_bytes_[slot].store(slot_bytes, std::memory_order_relaxed);
    int64_t total = base_bytes_.load(std::memory_order_relaxed);
    for (const auto& bytes : slot_bytes_) {
      total += bytes.load(std::memory_order_relaxed);
    }
    int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (total > peak && !peak_bytes_.compare_exchange_weak(
                               peak, total, std::memory_order_relaxed)) {
    }
    if (limits_.soft_memory_limit_bytes >= 0 &&
        total > limits_.soft_memory_limit_bytes) {
      Trip(StopReason::kMemoryBudget);
    }
  }
  if (limits_.max_nodes >= 0 && total_nodes() >= limits_.max_nodes) {
    Trip(StopReason::kNodeBudget);
  }
  if (limits_.max_clusters >= 0 && total_clusters() >= limits_.max_clusters) {
    Trip(StopReason::kClusterBudget);
  }
  return reason();
}

}  // namespace util
}  // namespace regcluster
