# Empty dependencies file for regcluster_cli.
# This may be replaced when dependencies are built.
