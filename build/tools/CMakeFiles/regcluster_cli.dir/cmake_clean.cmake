file(REMOVE_RECURSE
  "CMakeFiles/regcluster_cli.dir/regcluster_cli.cc.o"
  "CMakeFiles/regcluster_cli.dir/regcluster_cli.cc.o.d"
  "regcluster"
  "regcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regcluster_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
