file(REMOVE_RECURSE
  "CMakeFiles/annotation_io_test.dir/io/annotation_io_test.cc.o"
  "CMakeFiles/annotation_io_test.dir/io/annotation_io_test.cc.o.d"
  "annotation_io_test"
  "annotation_io_test.pdb"
  "annotation_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotation_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
