# Empty compiler generated dependencies file for annotation_io_test.
# This may be replaced when dependencies are built.
