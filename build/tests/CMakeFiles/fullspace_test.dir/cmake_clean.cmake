file(REMOVE_RECURSE
  "CMakeFiles/fullspace_test.dir/baselines/fullspace_test.cc.o"
  "CMakeFiles/fullspace_test.dir/baselines/fullspace_test.cc.o.d"
  "fullspace_test"
  "fullspace_test.pdb"
  "fullspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
