# Empty dependencies file for fullspace_test.
# This may be replaced when dependencies are built.
