# Empty dependencies file for miner_closed_test.
# This may be replaced when dependencies are built.
