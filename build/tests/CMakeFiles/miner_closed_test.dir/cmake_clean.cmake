file(REMOVE_RECURSE
  "CMakeFiles/miner_closed_test.dir/core/miner_closed_test.cc.o"
  "CMakeFiles/miner_closed_test.dir/core/miner_closed_test.cc.o.d"
  "miner_closed_test"
  "miner_closed_test.pdb"
  "miner_closed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_closed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
