file(REMOVE_RECURSE
  "CMakeFiles/opsm_test.dir/baselines/opsm_test.cc.o"
  "CMakeFiles/opsm_test.dir/baselines/opsm_test.cc.o.d"
  "opsm_test"
  "opsm_test.pdb"
  "opsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
