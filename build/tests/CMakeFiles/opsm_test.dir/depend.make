# Empty dependencies file for opsm_test.
# This may be replaced when dependencies are built.
