file(REMOVE_RECURSE
  "CMakeFiles/miner_parallel_test.dir/core/miner_parallel_test.cc.o"
  "CMakeFiles/miner_parallel_test.dir/core/miner_parallel_test.cc.o.d"
  "miner_parallel_test"
  "miner_parallel_test.pdb"
  "miner_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
