# Empty dependencies file for miner_parallel_test.
# This may be replaced when dependencies are built.
