# Empty dependencies file for scaling_cluster_test.
# This may be replaced when dependencies are built.
