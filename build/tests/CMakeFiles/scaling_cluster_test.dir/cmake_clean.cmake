file(REMOVE_RECURSE
  "CMakeFiles/scaling_cluster_test.dir/baselines/scaling_cluster_test.cc.o"
  "CMakeFiles/scaling_cluster_test.dir/baselines/scaling_cluster_test.cc.o.d"
  "scaling_cluster_test"
  "scaling_cluster_test.pdb"
  "scaling_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
