# Empty compiler generated dependencies file for miner_lifecycle_test.
# This may be replaced when dependencies are built.
