file(REMOVE_RECURSE
  "CMakeFiles/miner_lifecycle_test.dir/core/miner_lifecycle_test.cc.o"
  "CMakeFiles/miner_lifecycle_test.dir/core/miner_lifecycle_test.cc.o.d"
  "miner_lifecycle_test"
  "miner_lifecycle_test.pdb"
  "miner_lifecycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
