# Empty compiler generated dependencies file for expression_matrix_test.
# This may be replaced when dependencies are built.
