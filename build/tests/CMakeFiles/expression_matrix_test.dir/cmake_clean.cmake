file(REMOVE_RECURSE
  "CMakeFiles/expression_matrix_test.dir/matrix/expression_matrix_test.cc.o"
  "CMakeFiles/expression_matrix_test.dir/matrix/expression_matrix_test.cc.o.d"
  "expression_matrix_test"
  "expression_matrix_test.pdb"
  "expression_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expression_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
