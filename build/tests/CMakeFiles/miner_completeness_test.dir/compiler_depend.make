# Empty compiler generated dependencies file for miner_completeness_test.
# This may be replaced when dependencies are built.
