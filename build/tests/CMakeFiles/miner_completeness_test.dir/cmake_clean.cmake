file(REMOVE_RECURSE
  "CMakeFiles/miner_completeness_test.dir/core/miner_completeness_test.cc.o"
  "CMakeFiles/miner_completeness_test.dir/core/miner_completeness_test.cc.o.d"
  "miner_completeness_test"
  "miner_completeness_test.pdb"
  "miner_completeness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_completeness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
