file(REMOVE_RECURSE
  "CMakeFiles/opcluster_test.dir/baselines/opcluster_test.cc.o"
  "CMakeFiles/opcluster_test.dir/baselines/opcluster_test.cc.o.d"
  "opcluster_test"
  "opcluster_test.pdb"
  "opcluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opcluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
