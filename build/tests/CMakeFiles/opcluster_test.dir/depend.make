# Empty dependencies file for opcluster_test.
# This may be replaced when dependencies are built.
