file(REMOVE_RECURSE
  "CMakeFiles/yeast_surrogate_test.dir/synth/yeast_surrogate_test.cc.o"
  "CMakeFiles/yeast_surrogate_test.dir/synth/yeast_surrogate_test.cc.o.d"
  "yeast_surrogate_test"
  "yeast_surrogate_test.pdb"
  "yeast_surrogate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yeast_surrogate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
