# Empty dependencies file for yeast_surrogate_test.
# This may be replaced when dependencies are built.
