# Empty dependencies file for analysis_stack_test.
# This may be replaced when dependencies are built.
