file(REMOVE_RECURSE
  "CMakeFiles/analysis_stack_test.dir/integration/analysis_stack_test.cc.o"
  "CMakeFiles/analysis_stack_test.dir/integration/analysis_stack_test.cc.o.d"
  "analysis_stack_test"
  "analysis_stack_test.pdb"
  "analysis_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
