# Empty dependencies file for miner_property_test.
# This may be replaced when dependencies are built.
