file(REMOVE_RECURSE
  "CMakeFiles/miner_property_test.dir/core/miner_property_test.cc.o"
  "CMakeFiles/miner_property_test.dir/core/miner_property_test.cc.o.d"
  "miner_property_test"
  "miner_property_test.pdb"
  "miner_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
