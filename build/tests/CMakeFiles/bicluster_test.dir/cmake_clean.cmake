file(REMOVE_RECURSE
  "CMakeFiles/bicluster_test.dir/core/bicluster_test.cc.o"
  "CMakeFiles/bicluster_test.dir/core/bicluster_test.cc.o.d"
  "bicluster_test"
  "bicluster_test.pdb"
  "bicluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
