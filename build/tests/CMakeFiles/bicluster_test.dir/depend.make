# Empty dependencies file for bicluster_test.
# This may be replaced when dependencies are built.
