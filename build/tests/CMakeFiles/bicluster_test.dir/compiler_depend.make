# Empty compiler generated dependencies file for bicluster_test.
# This may be replaced when dependencies are built.
