file(REMOVE_RECURSE
  "CMakeFiles/pcluster_test.dir/baselines/pcluster_test.cc.o"
  "CMakeFiles/pcluster_test.dir/baselines/pcluster_test.cc.o.d"
  "pcluster_test"
  "pcluster_test.pdb"
  "pcluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
