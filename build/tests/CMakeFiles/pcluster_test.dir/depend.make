# Empty dependencies file for pcluster_test.
# This may be replaced when dependencies are built.
