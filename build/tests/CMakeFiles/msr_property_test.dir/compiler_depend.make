# Empty compiler generated dependencies file for msr_property_test.
# This may be replaced when dependencies are built.
