file(REMOVE_RECURSE
  "CMakeFiles/msr_property_test.dir/baselines/msr_property_test.cc.o"
  "CMakeFiles/msr_property_test.dir/baselines/msr_property_test.cc.o.d"
  "msr_property_test"
  "msr_property_test.pdb"
  "msr_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msr_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
