# Empty compiler generated dependencies file for rwave_test.
# This may be replaced when dependencies are built.
