file(REMOVE_RECURSE
  "CMakeFiles/rwave_test.dir/core/rwave_test.cc.o"
  "CMakeFiles/rwave_test.dir/core/rwave_test.cc.o.d"
  "rwave_test"
  "rwave_test.pdb"
  "rwave_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
