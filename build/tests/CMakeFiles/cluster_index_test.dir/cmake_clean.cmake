file(REMOVE_RECURSE
  "CMakeFiles/cluster_index_test.dir/eval/cluster_index_test.cc.o"
  "CMakeFiles/cluster_index_test.dir/eval/cluster_index_test.cc.o.d"
  "cluster_index_test"
  "cluster_index_test.pdb"
  "cluster_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
