# Empty compiler generated dependencies file for cluster_index_test.
# This may be replaced when dependencies are built.
