file(REMOVE_RECURSE
  "CMakeFiles/miner_targeted_test.dir/core/miner_targeted_test.cc.o"
  "CMakeFiles/miner_targeted_test.dir/core/miner_targeted_test.cc.o.d"
  "miner_targeted_test"
  "miner_targeted_test.pdb"
  "miner_targeted_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_targeted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
