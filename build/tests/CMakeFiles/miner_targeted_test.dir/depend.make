# Empty dependencies file for miner_targeted_test.
# This may be replaced when dependencies are built.
