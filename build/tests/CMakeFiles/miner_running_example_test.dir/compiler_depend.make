# Empty compiler generated dependencies file for miner_running_example_test.
# This may be replaced when dependencies are built.
