file(REMOVE_RECURSE
  "CMakeFiles/miner_running_example_test.dir/core/miner_running_example_test.cc.o"
  "CMakeFiles/miner_running_example_test.dir/core/miner_running_example_test.cc.o.d"
  "miner_running_example_test"
  "miner_running_example_test.pdb"
  "miner_running_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_running_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
