# Empty dependencies file for go_enrichment_test.
# This may be replaced when dependencies are built.
