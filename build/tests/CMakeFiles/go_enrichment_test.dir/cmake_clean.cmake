file(REMOVE_RECURSE
  "CMakeFiles/go_enrichment_test.dir/eval/go_enrichment_test.cc.o"
  "CMakeFiles/go_enrichment_test.dir/eval/go_enrichment_test.cc.o.d"
  "go_enrichment_test"
  "go_enrichment_test.pdb"
  "go_enrichment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/go_enrichment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
