file(REMOVE_RECURSE
  "CMakeFiles/annotation_gen_test.dir/eval/annotation_gen_test.cc.o"
  "CMakeFiles/annotation_gen_test.dir/eval/annotation_gen_test.cc.o.d"
  "annotation_gen_test"
  "annotation_gen_test.pdb"
  "annotation_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotation_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
