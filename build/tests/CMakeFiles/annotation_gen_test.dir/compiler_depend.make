# Empty compiler generated dependencies file for annotation_gen_test.
# This may be replaced when dependencies are built.
