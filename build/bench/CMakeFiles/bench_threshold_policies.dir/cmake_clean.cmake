file(REMOVE_RECURSE
  "CMakeFiles/bench_threshold_policies.dir/bench_threshold_policies.cc.o"
  "CMakeFiles/bench_threshold_policies.dir/bench_threshold_policies.cc.o.d"
  "bench_threshold_policies"
  "bench_threshold_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_threshold_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
