# Empty compiler generated dependencies file for bench_yeast.
# This may be replaced when dependencies are built.
