file(REMOVE_RECURSE
  "CMakeFiles/bench_yeast.dir/bench_yeast.cc.o"
  "CMakeFiles/bench_yeast.dir/bench_yeast.cc.o.d"
  "bench_yeast"
  "bench_yeast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yeast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
