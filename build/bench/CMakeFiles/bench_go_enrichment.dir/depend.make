# Empty dependencies file for bench_go_enrichment.
# This may be replaced when dependencies are built.
