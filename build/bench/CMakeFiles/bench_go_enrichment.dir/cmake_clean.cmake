file(REMOVE_RECURSE
  "CMakeFiles/bench_go_enrichment.dir/bench_go_enrichment.cc.o"
  "CMakeFiles/bench_go_enrichment.dir/bench_go_enrichment.cc.o.d"
  "bench_go_enrichment"
  "bench_go_enrichment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_go_enrichment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
