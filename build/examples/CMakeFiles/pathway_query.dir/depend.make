# Empty dependencies file for pathway_query.
# This may be replaced when dependencies are built.
