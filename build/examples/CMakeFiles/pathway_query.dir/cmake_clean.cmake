file(REMOVE_RECURSE
  "CMakeFiles/pathway_query.dir/pathway_query.cpp.o"
  "CMakeFiles/pathway_query.dir/pathway_query.cpp.o.d"
  "pathway_query"
  "pathway_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathway_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
