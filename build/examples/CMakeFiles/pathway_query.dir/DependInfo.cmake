
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pathway_query.cpp" "examples/CMakeFiles/pathway_query.dir/pathway_query.cpp.o" "gcc" "examples/CMakeFiles/pathway_query.dir/pathway_query.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/regcluster_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/regcluster_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/regcluster_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/regcluster_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/regcluster_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/regcluster_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/regcluster_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
