file(REMOVE_RECURSE
  "CMakeFiles/tendency_vs_coherence.dir/tendency_vs_coherence.cpp.o"
  "CMakeFiles/tendency_vs_coherence.dir/tendency_vs_coherence.cpp.o.d"
  "tendency_vs_coherence"
  "tendency_vs_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tendency_vs_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
