# Empty compiler generated dependencies file for tendency_vs_coherence.
# This may be replaced when dependencies are built.
