file(REMOVE_RECURSE
  "CMakeFiles/missing_data.dir/missing_data.cpp.o"
  "CMakeFiles/missing_data.dir/missing_data.cpp.o.d"
  "missing_data"
  "missing_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/missing_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
