# Empty dependencies file for missing_data.
# This may be replaced when dependencies are built.
