file(REMOVE_RECURSE
  "CMakeFiles/negative_correlation.dir/negative_correlation.cpp.o"
  "CMakeFiles/negative_correlation.dir/negative_correlation.cpp.o.d"
  "negative_correlation"
  "negative_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negative_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
