# Empty dependencies file for negative_correlation.
# This may be replaced when dependencies are built.
