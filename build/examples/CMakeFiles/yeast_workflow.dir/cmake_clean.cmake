file(REMOVE_RECURSE
  "CMakeFiles/yeast_workflow.dir/yeast_workflow.cpp.o"
  "CMakeFiles/yeast_workflow.dir/yeast_workflow.cpp.o.d"
  "yeast_workflow"
  "yeast_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yeast_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
