# Empty dependencies file for yeast_workflow.
# This may be replaced when dependencies are built.
