# Empty dependencies file for regcluster_eval.
# This may be replaced when dependencies are built.
