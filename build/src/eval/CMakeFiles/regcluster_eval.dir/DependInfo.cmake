
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/annotation_gen.cc" "src/eval/CMakeFiles/regcluster_eval.dir/annotation_gen.cc.o" "gcc" "src/eval/CMakeFiles/regcluster_eval.dir/annotation_gen.cc.o.d"
  "/root/repo/src/eval/cluster_index.cc" "src/eval/CMakeFiles/regcluster_eval.dir/cluster_index.cc.o" "gcc" "src/eval/CMakeFiles/regcluster_eval.dir/cluster_index.cc.o.d"
  "/root/repo/src/eval/consensus.cc" "src/eval/CMakeFiles/regcluster_eval.dir/consensus.cc.o" "gcc" "src/eval/CMakeFiles/regcluster_eval.dir/consensus.cc.o.d"
  "/root/repo/src/eval/go_enrichment.cc" "src/eval/CMakeFiles/regcluster_eval.dir/go_enrichment.cc.o" "gcc" "src/eval/CMakeFiles/regcluster_eval.dir/go_enrichment.cc.o.d"
  "/root/repo/src/eval/match.cc" "src/eval/CMakeFiles/regcluster_eval.dir/match.cc.o" "gcc" "src/eval/CMakeFiles/regcluster_eval.dir/match.cc.o.d"
  "/root/repo/src/eval/quality.cc" "src/eval/CMakeFiles/regcluster_eval.dir/quality.cc.o" "gcc" "src/eval/CMakeFiles/regcluster_eval.dir/quality.cc.o.d"
  "/root/repo/src/eval/significance.cc" "src/eval/CMakeFiles/regcluster_eval.dir/significance.cc.o" "gcc" "src/eval/CMakeFiles/regcluster_eval.dir/significance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/regcluster_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/regcluster_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/regcluster_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
