file(REMOVE_RECURSE
  "libregcluster_eval.a"
)
