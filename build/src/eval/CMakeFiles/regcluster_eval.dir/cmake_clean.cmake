file(REMOVE_RECURSE
  "CMakeFiles/regcluster_eval.dir/annotation_gen.cc.o"
  "CMakeFiles/regcluster_eval.dir/annotation_gen.cc.o.d"
  "CMakeFiles/regcluster_eval.dir/cluster_index.cc.o"
  "CMakeFiles/regcluster_eval.dir/cluster_index.cc.o.d"
  "CMakeFiles/regcluster_eval.dir/consensus.cc.o"
  "CMakeFiles/regcluster_eval.dir/consensus.cc.o.d"
  "CMakeFiles/regcluster_eval.dir/go_enrichment.cc.o"
  "CMakeFiles/regcluster_eval.dir/go_enrichment.cc.o.d"
  "CMakeFiles/regcluster_eval.dir/match.cc.o"
  "CMakeFiles/regcluster_eval.dir/match.cc.o.d"
  "CMakeFiles/regcluster_eval.dir/quality.cc.o"
  "CMakeFiles/regcluster_eval.dir/quality.cc.o.d"
  "CMakeFiles/regcluster_eval.dir/significance.cc.o"
  "CMakeFiles/regcluster_eval.dir/significance.cc.o.d"
  "libregcluster_eval.a"
  "libregcluster_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regcluster_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
