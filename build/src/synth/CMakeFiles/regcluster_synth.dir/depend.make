# Empty dependencies file for regcluster_synth.
# This may be replaced when dependencies are built.
