file(REMOVE_RECURSE
  "CMakeFiles/regcluster_synth.dir/generator.cc.o"
  "CMakeFiles/regcluster_synth.dir/generator.cc.o.d"
  "CMakeFiles/regcluster_synth.dir/yeast_surrogate.cc.o"
  "CMakeFiles/regcluster_synth.dir/yeast_surrogate.cc.o.d"
  "libregcluster_synth.a"
  "libregcluster_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regcluster_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
