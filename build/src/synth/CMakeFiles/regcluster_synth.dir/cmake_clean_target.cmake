file(REMOVE_RECURSE
  "libregcluster_synth.a"
)
