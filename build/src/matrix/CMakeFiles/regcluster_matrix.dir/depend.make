# Empty dependencies file for regcluster_matrix.
# This may be replaced when dependencies are built.
