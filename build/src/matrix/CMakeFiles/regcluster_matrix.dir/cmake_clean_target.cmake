file(REMOVE_RECURSE
  "libregcluster_matrix.a"
)
