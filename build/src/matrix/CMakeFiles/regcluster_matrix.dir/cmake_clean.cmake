file(REMOVE_RECURSE
  "CMakeFiles/regcluster_matrix.dir/expression_matrix.cc.o"
  "CMakeFiles/regcluster_matrix.dir/expression_matrix.cc.o.d"
  "CMakeFiles/regcluster_matrix.dir/matrix_io.cc.o"
  "CMakeFiles/regcluster_matrix.dir/matrix_io.cc.o.d"
  "CMakeFiles/regcluster_matrix.dir/stats.cc.o"
  "CMakeFiles/regcluster_matrix.dir/stats.cc.o.d"
  "CMakeFiles/regcluster_matrix.dir/transforms.cc.o"
  "CMakeFiles/regcluster_matrix.dir/transforms.cc.o.d"
  "libregcluster_matrix.a"
  "libregcluster_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regcluster_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
