file(REMOVE_RECURSE
  "libregcluster_util.a"
)
