# Empty dependencies file for regcluster_util.
# This may be replaced when dependencies are built.
