file(REMOVE_RECURSE
  "CMakeFiles/regcluster_util.dir/logging.cc.o"
  "CMakeFiles/regcluster_util.dir/logging.cc.o.d"
  "CMakeFiles/regcluster_util.dir/math_util.cc.o"
  "CMakeFiles/regcluster_util.dir/math_util.cc.o.d"
  "CMakeFiles/regcluster_util.dir/prng.cc.o"
  "CMakeFiles/regcluster_util.dir/prng.cc.o.d"
  "CMakeFiles/regcluster_util.dir/status.cc.o"
  "CMakeFiles/regcluster_util.dir/status.cc.o.d"
  "CMakeFiles/regcluster_util.dir/string_util.cc.o"
  "CMakeFiles/regcluster_util.dir/string_util.cc.o.d"
  "libregcluster_util.a"
  "libregcluster_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regcluster_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
