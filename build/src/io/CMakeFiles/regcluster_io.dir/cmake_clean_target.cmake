file(REMOVE_RECURSE
  "libregcluster_io.a"
)
