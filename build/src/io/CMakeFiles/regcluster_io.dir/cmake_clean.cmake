file(REMOVE_RECURSE
  "CMakeFiles/regcluster_io.dir/annotation_io.cc.o"
  "CMakeFiles/regcluster_io.dir/annotation_io.cc.o.d"
  "CMakeFiles/regcluster_io.dir/cluster_io.cc.o"
  "CMakeFiles/regcluster_io.dir/cluster_io.cc.o.d"
  "CMakeFiles/regcluster_io.dir/gnuplot.cc.o"
  "CMakeFiles/regcluster_io.dir/gnuplot.cc.o.d"
  "CMakeFiles/regcluster_io.dir/json_export.cc.o"
  "CMakeFiles/regcluster_io.dir/json_export.cc.o.d"
  "libregcluster_io.a"
  "libregcluster_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regcluster_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
