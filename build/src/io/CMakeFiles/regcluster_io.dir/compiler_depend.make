# Empty compiler generated dependencies file for regcluster_io.
# This may be replaced when dependencies are built.
