
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/annotation_io.cc" "src/io/CMakeFiles/regcluster_io.dir/annotation_io.cc.o" "gcc" "src/io/CMakeFiles/regcluster_io.dir/annotation_io.cc.o.d"
  "/root/repo/src/io/cluster_io.cc" "src/io/CMakeFiles/regcluster_io.dir/cluster_io.cc.o" "gcc" "src/io/CMakeFiles/regcluster_io.dir/cluster_io.cc.o.d"
  "/root/repo/src/io/gnuplot.cc" "src/io/CMakeFiles/regcluster_io.dir/gnuplot.cc.o" "gcc" "src/io/CMakeFiles/regcluster_io.dir/gnuplot.cc.o.d"
  "/root/repo/src/io/json_export.cc" "src/io/CMakeFiles/regcluster_io.dir/json_export.cc.o" "gcc" "src/io/CMakeFiles/regcluster_io.dir/json_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/regcluster_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/regcluster_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/regcluster_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/regcluster_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
