file(REMOVE_RECURSE
  "CMakeFiles/regcluster_baselines.dir/cheng_church.cc.o"
  "CMakeFiles/regcluster_baselines.dir/cheng_church.cc.o.d"
  "CMakeFiles/regcluster_baselines.dir/floc.cc.o"
  "CMakeFiles/regcluster_baselines.dir/floc.cc.o.d"
  "CMakeFiles/regcluster_baselines.dir/fullspace.cc.o"
  "CMakeFiles/regcluster_baselines.dir/fullspace.cc.o.d"
  "CMakeFiles/regcluster_baselines.dir/opcluster.cc.o"
  "CMakeFiles/regcluster_baselines.dir/opcluster.cc.o.d"
  "CMakeFiles/regcluster_baselines.dir/opsm.cc.o"
  "CMakeFiles/regcluster_baselines.dir/opsm.cc.o.d"
  "CMakeFiles/regcluster_baselines.dir/pcluster.cc.o"
  "CMakeFiles/regcluster_baselines.dir/pcluster.cc.o.d"
  "CMakeFiles/regcluster_baselines.dir/scaling_cluster.cc.o"
  "CMakeFiles/regcluster_baselines.dir/scaling_cluster.cc.o.d"
  "libregcluster_baselines.a"
  "libregcluster_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regcluster_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
