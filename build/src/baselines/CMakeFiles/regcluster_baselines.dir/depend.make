# Empty dependencies file for regcluster_baselines.
# This may be replaced when dependencies are built.
