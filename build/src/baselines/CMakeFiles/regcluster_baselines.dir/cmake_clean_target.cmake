file(REMOVE_RECURSE
  "libregcluster_baselines.a"
)
