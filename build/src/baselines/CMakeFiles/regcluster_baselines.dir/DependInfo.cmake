
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cheng_church.cc" "src/baselines/CMakeFiles/regcluster_baselines.dir/cheng_church.cc.o" "gcc" "src/baselines/CMakeFiles/regcluster_baselines.dir/cheng_church.cc.o.d"
  "/root/repo/src/baselines/floc.cc" "src/baselines/CMakeFiles/regcluster_baselines.dir/floc.cc.o" "gcc" "src/baselines/CMakeFiles/regcluster_baselines.dir/floc.cc.o.d"
  "/root/repo/src/baselines/fullspace.cc" "src/baselines/CMakeFiles/regcluster_baselines.dir/fullspace.cc.o" "gcc" "src/baselines/CMakeFiles/regcluster_baselines.dir/fullspace.cc.o.d"
  "/root/repo/src/baselines/opcluster.cc" "src/baselines/CMakeFiles/regcluster_baselines.dir/opcluster.cc.o" "gcc" "src/baselines/CMakeFiles/regcluster_baselines.dir/opcluster.cc.o.d"
  "/root/repo/src/baselines/opsm.cc" "src/baselines/CMakeFiles/regcluster_baselines.dir/opsm.cc.o" "gcc" "src/baselines/CMakeFiles/regcluster_baselines.dir/opsm.cc.o.d"
  "/root/repo/src/baselines/pcluster.cc" "src/baselines/CMakeFiles/regcluster_baselines.dir/pcluster.cc.o" "gcc" "src/baselines/CMakeFiles/regcluster_baselines.dir/pcluster.cc.o.d"
  "/root/repo/src/baselines/scaling_cluster.cc" "src/baselines/CMakeFiles/regcluster_baselines.dir/scaling_cluster.cc.o" "gcc" "src/baselines/CMakeFiles/regcluster_baselines.dir/scaling_cluster.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/regcluster_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/regcluster_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/regcluster_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
