file(REMOVE_RECURSE
  "CMakeFiles/regcluster_core.dir/bicluster.cc.o"
  "CMakeFiles/regcluster_core.dir/bicluster.cc.o.d"
  "CMakeFiles/regcluster_core.dir/coherence.cc.o"
  "CMakeFiles/regcluster_core.dir/coherence.cc.o.d"
  "CMakeFiles/regcluster_core.dir/miner.cc.o"
  "CMakeFiles/regcluster_core.dir/miner.cc.o.d"
  "CMakeFiles/regcluster_core.dir/rwave.cc.o"
  "CMakeFiles/regcluster_core.dir/rwave.cc.o.d"
  "CMakeFiles/regcluster_core.dir/threshold.cc.o"
  "CMakeFiles/regcluster_core.dir/threshold.cc.o.d"
  "libregcluster_core.a"
  "libregcluster_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regcluster_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
