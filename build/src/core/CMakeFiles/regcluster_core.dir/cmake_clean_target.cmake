file(REMOVE_RECURSE
  "libregcluster_core.a"
)
