
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bicluster.cc" "src/core/CMakeFiles/regcluster_core.dir/bicluster.cc.o" "gcc" "src/core/CMakeFiles/regcluster_core.dir/bicluster.cc.o.d"
  "/root/repo/src/core/coherence.cc" "src/core/CMakeFiles/regcluster_core.dir/coherence.cc.o" "gcc" "src/core/CMakeFiles/regcluster_core.dir/coherence.cc.o.d"
  "/root/repo/src/core/miner.cc" "src/core/CMakeFiles/regcluster_core.dir/miner.cc.o" "gcc" "src/core/CMakeFiles/regcluster_core.dir/miner.cc.o.d"
  "/root/repo/src/core/rwave.cc" "src/core/CMakeFiles/regcluster_core.dir/rwave.cc.o" "gcc" "src/core/CMakeFiles/regcluster_core.dir/rwave.cc.o.d"
  "/root/repo/src/core/threshold.cc" "src/core/CMakeFiles/regcluster_core.dir/threshold.cc.o" "gcc" "src/core/CMakeFiles/regcluster_core.dir/threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/regcluster_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/regcluster_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
