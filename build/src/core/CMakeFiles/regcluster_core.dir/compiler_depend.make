# Empty compiler generated dependencies file for regcluster_core.
# This may be replaced when dependencies are built.
