#!/usr/bin/env python3
"""Benchmark regression gate for BENCH_miner.json.

Compares a freshly measured ``micro`` section (written by ``bench_micro
--bench_out=...``) against the committed baseline and fails when any
benchmark matching the prefix regressed by more than the threshold in
per-iteration real time.  Every baseline benchmark matching the prefix must
be present in the fresh file -- a silently dropped benchmark is treated as a
failure, not a pass.

Usage (mirrors the CI step):

    bench_micro --benchmark_filter='^BM_MineSynthetic' \
        --benchmark_min_time=1x --bench_out=build/BENCH_fresh.json
    python3 tools/bench_check.py --baseline BENCH_miner.json \
        --fresh build/BENCH_fresh.json

Also gates the cancellation layer: the ``budget_overhead`` section written
by ``bench_threads`` records how much slower a serial mine runs with every
budget source armed but none binding; ``--max-budget-overhead`` (default 2%)
fails the check when that fraction is exceeded.  The gate is skipped with a
notice when neither input has the section (e.g. ``bench_threads`` has not
run), so the micro comparison stays usable on its own.

The durability layer is gated the same way: ``checkpoint_overhead`` records
how much slower a serial mine runs through the chunked, snapshot-writing
``RunCheckpointedMine`` driver (real checkpoint file, default cadence) than
through a plain ``Mine()``; ``--max-checkpoint-overhead`` (default 2%)
fails the check when that fraction is exceeded.

The observability layer is gated the same way: ``stats_overhead`` records
how much slower a serial mine runs with ``collect_stats`` on vs off, capped
by ``--max-stats-overhead`` (default 1%); and the ``stats`` section carries
the miner's deterministic work counters (nodes expanded, per-rule prunes,
index word ops, ...) for the reference synthetic dataset.  Those counters
are a pure function of data + options, so baseline and fresh must agree
*exactly* when they describe the same dataset/options -- any drift means a
search-behaviour change (pruning regression, index bug) that wall-clock
noise could mask.  Both gates skip with a notice when the sections are
absent or describe different configurations.

The batch-sweep engine is gated through the ``sweep`` section, also written
by ``bench_threads``: one SweepEngine run over an equal-gamma grid must beat
the same mines done independently (each paying its own matrix load and model
build) by ``--min-sweep-speedup`` (default 1.5x), with byte-identical
output.  Same fresh-then-baseline fallback and skip-with-notice behaviour.

The incremental time-course path is gated through the ``incremental``
section, also written by ``bench_threads``: appending one steady-state
condition and re-mining through ``io::MineIncremental`` (delta gamma-model
update, dirty roots only, clean roots spliced) must beat the from-scratch
mine of the grown matrix by ``--min-incremental-speedup`` (default 1.5x),
with the clusters and deterministic work counters byte-identical.  Same
fresh-then-baseline fallback and skip-with-notice behaviour.

The SIMD kernel layer is gated two ways, both through the ``threads``
section.  The ``simd`` object records a forced-scalar vs best-level
ablation of the serial sort phase; ``--min-sort-speedup`` (default 1.5x)
fails when the radix pipeline no longer beats the scalar comparator sort by
that much.  The gate skips with a notice when the best compiled-in level is
scalar (nothing to compare) or when the run recorded ``degraded_hw``
(unknown or single hardware thread -- bench_threads sets the flag and all
speedup gates stand down, since contention noise on such a host can fake
either verdict).  Separately, the ``serial_phase_ns`` breakdown is compared
fresh-vs-baseline per phase (filter/score/sort/emit): any phase above the
``--phase-floor-ns`` noise floor that regressed by more than
``--phase-threshold`` fails, so a hot-path regression is pinned to the
phase that caused it instead of hiding inside total wall time.

The mining service's resource cache is gated through the ``server``
section written by ``bench_server``: the same mine request is issued cold
(matrix load + model build + mine) and warm (both cache levels hit)
through one MiningService, and ``--min-warm-speedup`` (default 4x, i.e.
warm at most 0.25x cold) fails the check when the cache no longer removes
the load + build work -- with the warm responses required byte-identical
to the cold one.  Same fallback and skip-with-notice behaviour.

The out-of-core path is gated through the ``scalability`` section written
by ``bench_scalability --sweep=outofcore``: it records the peak RSS of a
memory-capped genome-scale mine through the mmap + model-cache path.
``--max-peak-rss`` (bytes; 0 disables) fails the check when the recorded
high-water mark exceeds the cap -- the section is the committed proof that
the bounded-memory contract holds.  Same fresh-then-baseline fallback and
skip-with-notice behaviour as the other section gates.

Exit status: 0 when every compared benchmark is within the threshold,
1 on regression / missing data / malformed input.
"""

import argparse
import json
import sys


def load_doc(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def load_micro(doc):
    """Returns {benchmark name: (real_time, time_unit)} from the micro
    section of a BENCH_miner.json-style document."""
    rows = doc.get("micro", {}).get("benchmarks", [])
    out = {}
    for row in rows:
        out[row["name"]] = (float(row["real_time"]), row.get("time_unit", ""))
    return out


def check_budget_overhead(fresh_doc, baseline_doc, max_overhead):
    """Gates budget_overhead.overhead_fraction.  Prefers the fresh
    measurement, falls back to the committed baseline; returns True (pass)
    with a notice when neither document carries the section."""
    for label, doc in (("fresh", fresh_doc), ("baseline", baseline_doc)):
        section = doc.get("budget_overhead")
        if not section:
            continue
        overhead = float(section["overhead_fraction"])
        ok = overhead <= max_overhead
        print(f"budget-guard overhead ({label}): {overhead:+.2%} "
              f"(limit {max_overhead:.2%})"
              f"{'' if ok else '  REGRESSION'}")
        return ok
    print("budget-guard overhead: no budget_overhead section in either "
          "input; skipping gate (run bench_threads to measure)")
    return True


def check_stats_overhead(fresh_doc, baseline_doc, max_overhead):
    """Gates stats_overhead.overhead_fraction (collect_stats on vs off),
    mirroring check_budget_overhead's fresh-then-baseline fallback."""
    for label, doc in (("fresh", fresh_doc), ("baseline", baseline_doc)):
        section = doc.get("stats_overhead")
        if not section:
            continue
        overhead = float(section["overhead_fraction"])
        ok = overhead <= max_overhead
        print(f"stats-collection overhead ({label}): {overhead:+.2%} "
              f"(limit {max_overhead:.2%})"
              f"{'' if ok else '  REGRESSION'}")
        return ok
    print("stats-collection overhead: no stats_overhead section in either "
          "input; skipping gate (run bench_threads to measure)")
    return True


def check_checkpoint_overhead(fresh_doc, baseline_doc, max_overhead):
    """Gates checkpoint_overhead.overhead_fraction (durable chunked mine
    with snapshot writes vs plain mine), mirroring check_budget_overhead's
    fresh-then-baseline fallback."""
    for label, doc in (("fresh", fresh_doc), ("baseline", baseline_doc)):
        section = doc.get("checkpoint_overhead")
        if not section:
            continue
        overhead = float(section["overhead_fraction"])
        ok = overhead <= max_overhead
        print(f"checkpoint overhead ({label}): {overhead:+.2%} "
              f"(limit {max_overhead:.2%})"
              f"{'' if ok else '  REGRESSION'}")
        return ok
    print("checkpoint overhead: no checkpoint_overhead section in either "
          "input; skipping gate (run bench_threads to measure)")
    return True


def check_sweep_speedup(fresh_doc, baseline_doc, min_speedup):
    """Gates the shared-index batch sweep: sweep.speedup (one SweepEngine run
    over an equal-gamma grid vs the same mines done independently, each with
    its own load + model build) must stay >= --min-sweep-speedup, and the
    engine's output must have matched the independent mines.  Same
    fresh-then-baseline fallback and skip-with-notice as the overhead
    gates."""
    for label, doc in (("fresh", fresh_doc), ("baseline", baseline_doc)):
        section = doc.get("sweep")
        if not section:
            continue
        speedup = float(section["speedup"])
        identical = bool(section.get("identical_to_independent"))
        ok = speedup >= min_speedup and identical
        print(f"sweep sharing ({label}): {speedup:.2f}x over "
              f"{section.get('points', '?')} independent mines "
              f"(minimum {min_speedup:.2f}x)"
              f"{'' if identical else '  OUTPUT MISMATCH'}"
              f"{'' if ok else '  REGRESSION'}")
        return ok
    print("sweep sharing: no sweep section in either input; skipping gate "
          "(run bench_threads to measure)")
    return True


def check_incremental_speedup(fresh_doc, baseline_doc, min_speedup):
    """Gates the incremental time-course path: incremental.speedup (one
    steady-state condition appended, MineIncremental's delta update + dirty
    roots vs a from-scratch mine of the grown matrix) must stay >=
    --min-incremental-speedup, and the incremental output must have been
    byte-identical to the from-scratch one (clusters and deterministic work
    counters).  Same fresh-then-baseline fallback and skip-with-notice as
    the other section gates."""
    for label, doc in (("fresh", fresh_doc), ("baseline", baseline_doc)):
        section = doc.get("incremental")
        if not section:
            continue
        speedup = float(section["speedup"])
        identical = bool(section.get("identical_to_scratch"))
        ok = speedup >= min_speedup and identical
        print(f"incremental append ({label}): {speedup:.2f}x over the "
              f"from-scratch mine, {section.get('roots_remined', '?')} roots "
              f"re-mined / {section.get('roots_spliced', '?')} spliced "
              f"(minimum {min_speedup:.2f}x)"
              f"{'' if identical else '  OUTPUT MISMATCH'}"
              f"{'' if ok else '  REGRESSION'}")
        return ok
    print("incremental append: no incremental section in either input; "
          "skipping gate (run bench_threads to measure)")
    return True


def check_sort_speedup(fresh_doc, baseline_doc, min_speedup):
    """Gates the SIMD sort ablation: threads.simd.sort_speedup (serial sort
    phase, forced-scalar vs the best kernel level, best-of-3 interleaved)
    must stay >= --min-sort-speedup.  Skips with a notice when no threads
    section carries the ablation, when the best level is scalar (the
    comparison is vacuous), or when the run flagged degraded_hw."""
    for label, doc in (("fresh", fresh_doc), ("baseline", baseline_doc)):
        threads = doc.get("threads") or {}
        simd = threads.get("simd")
        if not simd:
            continue
        speedup = float(simd["sort_speedup"])
        best_level = simd.get("best_level", "scalar")
        if best_level == "scalar":
            print(f"simd sort speedup ({label}): best level is scalar on "
                  "this host; skipping gate (needs an AVX2/NEON machine)")
            return True
        if threads.get("degraded_hw"):
            print(f"simd sort speedup ({label}): {speedup:.2f}x scalar vs "
                  f"{best_level}, but degraded_hw recorded; skipping gate")
            return True
        ok = speedup >= min_speedup
        print(f"simd sort speedup ({label}): {speedup:.2f}x scalar vs "
              f"{best_level} (minimum {min_speedup:.2f}x)"
              f"{'' if ok else '  REGRESSION'}")
        return ok
    print("simd sort speedup: no threads.simd section in either input; "
          "skipping gate (run bench_threads to measure)")
    return True


def check_warm_speedup(fresh_doc, baseline_doc, min_speedup):
    """Gates the mining service's resource cache: server.warm_speedup (cold
    request latency over best warm-repeat latency for the same request, as
    measured by bench_server) must stay >= --min-warm-speedup, and the warm
    responses must have been byte-identical to the cold one.  Same
    fresh-then-baseline fallback and skip-with-notice as the other section
    gates."""
    for label, doc in (("fresh", fresh_doc), ("baseline", baseline_doc)):
        section = doc.get("server")
        if not section:
            continue
        raw = section.get("warm_speedup")
        if raw is None:
            print(f"server warm cache ({label}): server section has no "
                  "warm_speedup; skipping gate (re-run bench_server)")
            return True
        speedup = float(raw)
        identical = bool(section.get("identical_to_cold"))
        ok = speedup >= min_speedup and identical
        print(f"server warm cache ({label}): cold "
              f"{float(section.get('cold_ms', 0)):.1f} ms, warm "
              f"{float(section.get('warm_ms', 0)):.1f} ms, {speedup:.2f}x "
              f"(minimum {min_speedup:.2f}x)"
              f"{'' if identical else '  OUTPUT MISMATCH'}"
              f"{'' if ok else '  REGRESSION'}")
        return ok
    print("server warm cache: no server section in either input; skipping "
          "gate (run bench_server to measure)")
    return True


def check_phase_ns(fresh_doc, baseline_doc, threshold, floor_ns):
    """Compares threads.serial_phase_ns per phase, fresh vs baseline.

    Phases below the noise floor in the baseline are reported but not
    gated (a 15% swing on a sub-millisecond phase is scheduler noise).
    Skips with a notice when either document lacks the section, the runs
    describe different dataset/options, or either run recorded degraded_hw
    -- phase timings measured on an unknown or single-core host (like the
    committed baseline's 0.96x "speedup" at 2 threads) carry contention
    noise that can fake a regression or mask one, the same reason
    check_sort_speedup stands down."""
    fresh_threads = fresh_doc.get("threads") or {}
    baseline_threads = baseline_doc.get("threads") or {}
    fresh = fresh_threads.get("serial_phase_ns")
    baseline = baseline_threads.get("serial_phase_ns")
    if not fresh or not baseline:
        print("phase breakdown: no serial_phase_ns in "
              f"{'fresh' if not fresh else 'baseline'} input; skipping gate "
              "(run bench_threads to measure)")
        return True
    for label, threads in (("fresh", fresh_threads),
                           ("baseline", baseline_threads)):
        if threads.get("degraded_hw"):
            print(f"phase breakdown: {label} threads section recorded "
                  "degraded_hw; skipping comparison (timings from an "
                  "unknown/single-core host are not interpretable)")
            return True
    if (fresh_threads.get("dataset") != baseline_threads.get("dataset")
            or fresh_threads.get("options") != baseline_threads.get(
                "options")):
        print("phase breakdown: threads sections describe different "
              "dataset/options; skipping comparison")
        return True
    ok = True
    for key in ("filter_ns", "score_ns", "sort_ns", "emit_ns"):
        base_val = baseline.get(key)
        fresh_val = fresh.get(key)
        if base_val is None or fresh_val is None:
            continue
        ratio = fresh_val / base_val if base_val > 0 else float("inf")
        gated = base_val >= floor_ns
        verdict = ""
        if gated and ratio > 1.0 + threshold:
            verdict = f"  REGRESSION (> {1.0 + threshold:.2f}x)"
            ok = False
        note = "" if gated else "  (below noise floor, not gated)"
        print(f"phase {key:<10} baseline {base_val / 1e6:8.1f} ms  fresh "
              f"{fresh_val / 1e6:8.1f} ms  {ratio:5.2f}x{verdict}{note}")
    return ok


def check_stats_counters(fresh_doc, baseline_doc):
    """Compares the deterministic work counters of the ``stats`` sections.

    The counters are a pure function of dataset + options, so when both
    documents carry a ``stats`` section for the same configuration every
    integer field must match exactly.  Skips with a notice when either
    section is missing or the configurations differ (dataset regenerated
    with new parameters)."""
    fresh = fresh_doc.get("stats")
    baseline = baseline_doc.get("stats")
    if not fresh or not baseline:
        print("work counters: no stats section in "
              f"{'fresh' if not fresh else 'baseline'} input; skipping gate "
              "(run bench_threads to measure)")
        return True
    if (fresh.get("dataset") != baseline.get("dataset")
            or fresh.get("options") != baseline.get("options")):
        print("work counters: stats sections describe different "
              "dataset/options; skipping exact comparison")
        return True
    ok = True
    compared = 0
    for key in sorted(baseline):
        if key in ("dataset", "options"):
            continue
        base_val = baseline[key]
        fresh_val = fresh.get(key)
        if not isinstance(base_val, int):
            continue
        compared += 1
        if fresh_val != base_val:
            print(f"work counters: {key}: baseline {base_val} != "
                  f"fresh {fresh_val}  MISMATCH")
            ok = False
    if ok:
        print(f"work counters: {compared} deterministic counters match "
              "exactly")
    else:
        print("work counters: deterministic counter drift -- the search "
              "visited different work than the committed baseline "
              "(pruning/index behaviour changed)")
    return ok


def check_peak_rss(fresh_doc, baseline_doc, max_peak_rss):
    """Gates scalability.peak_rss_bytes (memory-capped out-of-core mine).

    Prefers the fresh measurement, falls back to the committed baseline;
    skips with a notice when neither document carries the section or when
    the gate is disabled (--max-peak-rss 0)."""
    if max_peak_rss <= 0:
        return True
    for label, doc in (("fresh", fresh_doc), ("baseline", baseline_doc)):
        section = doc.get("scalability")
        if not section or "peak_rss_bytes" not in section:
            continue
        peak = int(section["peak_rss_bytes"])
        dataset = section.get("dataset", {})
        ok = peak <= max_peak_rss
        print(f"out-of-core peak RSS ({label}): {peak / 2**20:.1f} MiB at "
              f"{dataset.get('genes', '?')} x "
              f"{dataset.get('conditions', '?')} "
              f"(limit {max_peak_rss / 2**20:.1f} MiB)"
              f"{'' if ok else '  OVER BUDGET'}")
        return ok
    print("out-of-core peak RSS: no scalability section in either input; "
          "skipping gate (run bench_scalability --sweep=outofcore)")
    return True


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_miner.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly measured BENCH file to check")
    parser.add_argument("--prefix", default="BM_MineSynthetic",
                        help="benchmark name prefix to compare "
                             "(default: %(default)s)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="maximum tolerated fractional slowdown "
                             "(default: %(default)s)")
    parser.add_argument("--max-budget-overhead", type=float, default=0.02,
                        help="maximum tolerated budget-guard overhead "
                             "fraction from the budget_overhead section "
                             "(default: %(default)s)")
    parser.add_argument("--max-checkpoint-overhead", type=float, default=0.02,
                        help="maximum tolerated durable-mine overhead "
                             "fraction from the checkpoint_overhead section "
                             "(default: %(default)s)")
    parser.add_argument("--max-stats-overhead", type=float, default=0.01,
                        help="maximum tolerated stats-collection overhead "
                             "fraction from the stats_overhead section "
                             "(default: %(default)s)")
    parser.add_argument("--min-sweep-speedup", type=float, default=1.5,
                        help="minimum required shared-index sweep speedup "
                             "from the sweep section "
                             "(default: %(default)s)")
    parser.add_argument("--min-incremental-speedup", type=float, default=1.5,
                        help="minimum required incremental-append speedup "
                             "over the from-scratch mine, from the "
                             "incremental section (default: %(default)s)")
    parser.add_argument("--min-sort-speedup", type=float, default=1.5,
                        help="minimum required forced-scalar vs best-level "
                             "sort-phase speedup from threads.simd "
                             "(default: %(default)s)")
    parser.add_argument("--phase-threshold", type=float, default=0.15,
                        help="maximum tolerated fractional slowdown per "
                             "serial phase (filter/score/sort/emit) "
                             "(default: %(default)s)")
    parser.add_argument("--phase-floor-ns", type=float, default=5e6,
                        help="serial phases below this many baseline ns are "
                             "reported but not gated "
                             "(default: %(default)s)")
    parser.add_argument("--max-peak-rss", type=float, default=0,
                        help="maximum tolerated peak_rss_bytes from the "
                             "scalability section, in bytes; 0 disables "
                             "the gate (default: %(default)s)")
    parser.add_argument("--min-warm-speedup", type=float, default=4.0,
                        help="minimum required cold/warm request latency "
                             "ratio from the server section (4.0 == warm "
                             "at most 0.25x cold) (default: %(default)s)")
    args = parser.parse_args(argv)

    try:
        baseline_doc = load_doc(args.baseline)
        fresh_doc = load_doc(args.fresh)
        baseline = load_micro(baseline_doc)
        fresh = load_micro(fresh_doc)
    except (OSError, ValueError, KeyError) as err:
        print(f"bench_check: cannot load inputs: {err}", file=sys.stderr)
        return 1

    names = sorted(n for n in baseline if n.startswith(args.prefix))
    if not names:
        print(f"bench_check: baseline {args.baseline} has no benchmarks "
              f"matching prefix {args.prefix!r}", file=sys.stderr)
        return 1

    failed = False
    print(f"{'benchmark':<32} {'baseline':>12} {'fresh':>12} {'ratio':>8}")
    for name in names:
        base_time, base_unit = baseline[name]
        if name not in fresh:
            print(f"{name:<32} {base_time:>10.2f}{base_unit:<2} "
                  f"{'MISSING':>12}")
            failed = True
            continue
        fresh_time, fresh_unit = fresh[name]
        if base_unit != fresh_unit:
            print(f"{name:<32} unit mismatch: baseline {base_unit!r} vs "
                  f"fresh {fresh_unit!r}")
            failed = True
            continue
        ratio = fresh_time / base_time if base_time > 0 else float("inf")
        verdict = ""
        if ratio > 1.0 + args.threshold:
            verdict = f"  REGRESSION (> {1.0 + args.threshold:.2f}x)"
            failed = True
        print(f"{name:<32} {base_time:>10.2f}{base_unit:<2} "
              f"{fresh_time:>10.2f}{fresh_unit:<2} {ratio:>7.2f}x{verdict}")

    if not check_budget_overhead(fresh_doc, baseline_doc,
                                 args.max_budget_overhead):
        failed = True
    if not check_stats_overhead(fresh_doc, baseline_doc,
                                args.max_stats_overhead):
        failed = True
    if not check_checkpoint_overhead(fresh_doc, baseline_doc,
                                     args.max_checkpoint_overhead):
        failed = True
    if not check_sweep_speedup(fresh_doc, baseline_doc,
                               args.min_sweep_speedup):
        failed = True
    if not check_incremental_speedup(fresh_doc, baseline_doc,
                                     args.min_incremental_speedup):
        failed = True
    if not check_sort_speedup(fresh_doc, baseline_doc,
                              args.min_sort_speedup):
        failed = True
    if not check_warm_speedup(fresh_doc, baseline_doc,
                              args.min_warm_speedup):
        failed = True
    if not check_phase_ns(fresh_doc, baseline_doc, args.phase_threshold,
                          args.phase_floor_ns):
        failed = True
    if not check_stats_counters(fresh_doc, baseline_doc):
        failed = True
    if not check_peak_rss(fresh_doc, baseline_doc, args.max_peak_rss):
        failed = True

    if failed:
        print(f"bench_check: FAILED (threshold {args.threshold:.0%})",
              file=sys.stderr)
        return 1
    print(f"bench_check: ok ({len(names)} benchmarks within "
          f"{args.threshold:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
